package ratte_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ratte"
)

// TestFigure4_UndesirableBehaviours walks the four example failure
// classes of the paper's Figure 4 and checks each is caught by the
// right mechanism: the first two statically (verifier), the last two
// dynamically (reference interpreter).
func TestFigure4_UndesirableBehaviours(t *testing.T) {
	wrap := func(body string) string {
		return `"builtin.module"() ({
  "func.func"() ({` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	}

	t.Run("1_id_reuse_is_compile_error", func(t *testing.T) {
		m, err := ratte.ParseModule(wrap(`
    %x = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %x = "arith.constant"() {value = 2 : i64} : () -> (i64)`))
		if err != nil {
			t.Fatal(err)
		}
		if err := ratte.VerifyModule(m); err == nil {
			t.Error("ID reuse must be a compile error")
		}
	})

	t.Run("2_type_mismatch_is_compile_error", func(t *testing.T) {
		m, err := ratte.ParseModule(wrap(`
    %0 = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 7 : i32} : () -> (i32)
    %2 = "arith.addi"(%0, %1) : (i64, i32) -> (i32)`))
		if err != nil {
			t.Fatal(err)
		}
		if err := ratte.VerifyModule(m); err == nil {
			t.Error("mismatched addi types must be a compile error")
		}
	})

	t.Run("3_division_by_zero_is_UB", func(t *testing.T) {
		m, err := ratte.ParseModule(wrap(`
    %0 = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %n = "arith.divsi"(%1, %0) : (i64, i64) -> (i64)`))
		if err != nil {
			t.Fatal(err)
		}
		if err := ratte.VerifyModule(m); err != nil {
			t.Fatalf("statically valid program rejected: %v", err)
		}
		_, err = ratte.Interpret(m, "main")
		if err == nil || !ratte.IsUB(err) {
			t.Errorf("want UB, got %v", err)
		}
	})

	t.Run("4_oob_access_is_runtime_error", func(t *testing.T) {
		m, err := ratte.ParseModule(wrap(`
    %0 = "arith.constant"() {value = dense<0> : tensor<3x3xi64>} : () -> (tensor<3x3xi64>)
    %1 = "arith.constant"() {value = 9 : index} : () -> (index)
    %2 = "tensor.extract"(%0, %1, %1) : (tensor<3x3xi64>, index, index) -> (i64)`))
		if err != nil {
			t.Fatal(err)
		}
		if err := ratte.VerifyModule(m); err != nil {
			t.Fatalf("statically valid program rejected: %v", err)
		}
		_, err = ratte.Interpret(m, "main")
		if err == nil || !ratte.IsTrap(err) {
			t.Errorf("want runtime trap, got %v", err)
		}
	})
}

// TestArtifactFlows reproduces the paper artifact's A.5 command-line
// flows against the real binaries: mlir-quickcheck generates a program
// plus its expected output, and ref-interpreter reproduces exactly that
// output.
func TestArtifactFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := t.TempDir()
	for _, tool := range []string{"mlir-quickcheck", "ref-interpreter", "mlir-opt", "mlir-reduce"} {
		cmd := exec.Command(goTool, "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	for _, preset := range []string{"ariths", "linalggeneric", "tensor"} {
		// A.5.1/A.5.4: generate a program of size 30 and its expected
		// result.
		out, err := exec.Command(filepath.Join(bin, "mlir-quickcheck"),
			"-d="+preset, "-n=30", "-seed=5").Output()
		if err != nil {
			t.Fatalf("%s: mlir-quickcheck: %v", preset, err)
		}
		text := string(out)
		marker := "// expected output:\n"
		idx := strings.Index(text, marker)
		if idx < 0 {
			t.Fatalf("%s: no expected-output block:\n%s", preset, text)
		}
		program := text[:idx]
		var expect strings.Builder
		for _, line := range strings.Split(strings.TrimRight(text[idx+len(marker):], "\n"), "\n") {
			expect.WriteString(strings.TrimPrefix(line, "// "))
			expect.WriteByte('\n')
		}

		// A.5.5: the reference interpreter reproduces the expectation.
		cmd := exec.Command(filepath.Join(bin, "ref-interpreter"), "-m=main")
		cmd.Stdin = strings.NewReader(program)
		ref, err := cmd.Output()
		if err != nil {
			t.Fatalf("%s: ref-interpreter: %v", preset, err)
		}
		if string(ref) != expect.String() {
			t.Errorf("%s: interpreter output %q, generator expected %q", preset, ref, expect.String())
		}

		// A.5.4: the program compiles with the preset pipeline.
		cmd = exec.Command(filepath.Join(bin, "mlir-opt"), "-preset", preset, "-O", "1")
		cmd.Stdin = strings.NewReader(program)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("%s: mlir-opt: %v\n%s", preset, err, out)
		}
	}

	// A.5.5: the shipped example files interpret to their documented
	// outputs.
	for file, want := range map[string]string{
		"testdata/examples/example1.mlir": "42\n-1\n",
		"testdata/examples/example2.mlir": "8\n( ( 2, 4 ), ( 6, 8 ) )\n",
	} {
		out, err := exec.Command(filepath.Join(bin, "ref-interpreter"), "-f", file).Output()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if string(out) != want {
			t.Errorf("%s: output %q, want %q", file, out, want)
		}
	}

	// A.5.2-style reduction: mlir-reduce shrinks the bug-7 case while
	// preserving its oracle.
	out, err := exec.Command(filepath.Join(bin, "mlir-reduce"),
		"-preset", "ariths", "-bugs", "7", "testdata/bugs/7.mlir").Output()
	if err != nil {
		t.Fatalf("mlir-reduce: %v", err)
	}
	if !strings.Contains(string(out), "arith.floordivsi") {
		t.Errorf("reduced case lost the trigger op:\n%s", out)
	}
}
