package ratte_test

import (
	"strings"
	"testing"

	"ratte"
	"ratte/internal/compiler"
)

func TestFacadeEndToEnd(t *testing.T) {
	p, err := ratte.Generate(ratte.GenConfig{Preset: "ariths", Size: 12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := ratte.VerifyModule(p.Module); err != nil {
		t.Fatal(err)
	}

	text := ratte.PrintModule(p.Module)
	reparsed, err := ratte.ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}

	res, err := ratte.Interpret(reparsed, "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != p.Expected {
		t.Fatalf("output %q, expected %q", res.Output, p.Expected)
	}

	lowered, err := ratte.Compile(p.Module, "ariths", compiler.O1, ratte.NoBugs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := ratte.Execute(lowered, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != p.Expected {
		t.Fatalf("executed output %q, expected %q", out.Output, p.Expected)
	}

	rep := ratte.Test(p.Module, p.Expected, "ariths", ratte.NoBugs())
	if oracle := rep.Detected(); oracle != ratte.OracleNone {
		t.Fatalf("correct compiler flagged by %s", oracle)
	}
}

func TestFacadeBugHelpers(t *testing.T) {
	if len(ratte.BugTable()) != 8 {
		t.Errorf("bug table has %d rows, want 8", len(ratte.BugTable()))
	}
	all := ratte.AllBugs()
	if len(all) != 8 {
		t.Errorf("AllBugs has %d entries", len(all))
	}
	none := ratte.NoBugs()
	if len(none) != 0 {
		t.Errorf("NoBugs has %d entries", len(none))
	}
	only := ratte.Bugs(5, 7)
	if !only.Enabled(5) || !only.Enabled(7) || only.Enabled(3) {
		t.Error("Bugs selection wrong")
	}
	if n := len(ratte.SupportedOps()); n < 43 {
		t.Errorf("only %d supported ops, paper lists 43", n)
	}
}

func TestFacadeUBClassification(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %q = "arith.divui"(%a, %z) : (i64, i64) -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ratte.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ratte.Interpret(m, "main")
	if err == nil || !ratte.IsUB(err) {
		t.Fatalf("expected UB, got %v", err)
	}
	if ratte.IsTrap(err) {
		t.Error("UB misclassified as trap")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestFacadeReduce(t *testing.T) {
	p, err := ratte.Generate(ratte.GenConfig{Preset: "ariths", Size: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	small := ratte.ReduceModule(p.Module, func(m *ratte.Module) bool {
		// Interesting = still interprets successfully.
		_, err := ratte.Interpret(m, "main")
		return err == nil
	})
	if small.NumOps() > p.Module.NumOps() {
		t.Error("reduction grew the module")
	}
}
