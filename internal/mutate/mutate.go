// Package mutate implements semantics-preserving program mutations —
// the metamorphic-testing direction the paper's Related Work singles
// out as future work for MLIR ("semantics-preserving mutations can be
// applied to an existing program to obtain a set of equivalent
// programs … such a technique also has the potential to find
// miscompilations").
//
// Like Ratte's generators and interpreters, the rules are per-dialect
// and composable: each Rule rewrites one operation locally and
// guarantees the module's observable behaviour is unchanged, so any
// output difference between a compiled mutant and the compiled original
// is a compiler bug — a second, reference-free oracle on top of DT-R.
package mutate

import (
	"fmt"
	"math/rand"
	"strconv"

	"ratte/internal/ir"
)

// Rule is one semantics-preserving rewrite. Apply attempts to rewrite
// the operation at ops[idx] (inserting helper operations as needed) and
// reports whether it fired.
type Rule struct {
	Name string
	// applies reports whether the rule can rewrite this op.
	applies func(op *ir.Operation) bool
	// apply performs the rewrite, returning replacement ops for the
	// single op (the op itself plus any inserted neighbours).
	apply func(mu *mutator, op *ir.Operation) []*ir.Operation
}

// Rules returns the built-in semantics-preserving rules.
func Rules() []Rule {
	return []Rule{
		{
			// x  ⇒  x' ; x = x' + 0
			Name:    "add-zero",
			applies: hasScalarResult,
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				return mu.wrapResult(op, func(orig, res ir.Value) []*ir.Operation {
					zero, zv := mu.constant(0, orig.Type)
					add := ir.NewOp("arith.addi")
					add.Operands = []ir.Value{orig, zv}
					add.Results = []ir.Value{res}
					return []*ir.Operation{zero, add}
				})
			},
		},
		{
			// x  ⇒  x' ; x = x' * 1
			Name:    "mul-one",
			applies: hasScalarResult,
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				return mu.wrapResult(op, func(orig, res ir.Value) []*ir.Operation {
					one, ov := mu.constant(1, orig.Type)
					mul := ir.NewOp("arith.muli")
					mul.Operands = []ir.Value{orig, ov}
					mul.Results = []ir.Value{res}
					return []*ir.Operation{one, mul}
				})
			},
		},
		{
			// x  ⇒  x' ; x = (x' ^ c) ^ c
			Name:    "double-xor",
			applies: hasScalarResult,
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				return mu.wrapResult(op, func(orig, res ir.Value) []*ir.Operation {
					c, cv := mu.constant(int64(mu.r.Intn(256))-128, orig.Type)
					x1 := ir.NewOp("arith.xori")
					x1.Operands = []ir.Value{orig, cv}
					mid := mu.fresh(orig.Type)
					x1.Results = []ir.Value{mid}
					x2 := ir.NewOp("arith.xori")
					x2.Operands = []ir.Value{mid, cv}
					x2.Results = []ir.Value{res}
					return []*ir.Operation{c, x1, x2}
				})
			},
		},
		{
			// x  ⇒  x' ; x = select(true, x', x')
			Name:    "select-true",
			applies: hasScalarResult,
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				return mu.wrapResult(op, func(orig, res ir.Value) []*ir.Operation {
					tr, tv := mu.constant(1, ir.I1)
					sel := ir.NewOp("arith.select")
					sel.Operands = []ir.Value{tv, orig, orig}
					sel.Results = []ir.Value{res}
					return []*ir.Operation{tr, sel}
				})
			},
		},
		{
			// a ⊕ b  ⇒  b ⊕ a for commutative ⊕
			Name: "swap-commutative",
			applies: func(op *ir.Operation) bool {
				switch op.Name {
				case "arith.addi", "arith.muli", "arith.andi", "arith.ori", "arith.xori",
					"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui":
					return len(op.Operands) == 2
				}
				return false
			},
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				op.Operands[0], op.Operands[1] = op.Operands[1], op.Operands[0]
				return []*ir.Operation{op}
			},
		},
		{
			// cmpi p a, b  ⇒  cmpi swap(p) b, a
			Name: "flip-comparison",
			applies: func(op *ir.Operation) bool {
				return op.Name == "arith.cmpi" && len(op.Operands) == 2
			},
			apply: func(mu *mutator, op *ir.Operation) []*ir.Operation {
				p, _ := op.Attrs.IntValueOf("predicate")
				// eq/ne are symmetric; the orderings swap lt<->gt.
				swapped := map[int64]int64{0: 0, 1: 1, 2: 4, 3: 5, 4: 2, 5: 3, 6: 8, 7: 9, 8: 6, 9: 7}
				op.Attrs.Set("predicate", ir.IntAttr(swapped[p], ir.I64))
				op.Operands[0], op.Operands[1] = op.Operands[1], op.Operands[0]
				return []*ir.Operation{op}
			},
		},
	}
}

func hasScalarResult(op *ir.Operation) bool {
	if len(op.Regions) > 0 || len(op.Results) == 0 {
		return false
	}
	// Wrap only ops whose first result is a non-i1 integer/index scalar
	// (i1 + muli/xori constants stay trivially correct too, so allow i1
	// as well).
	return ir.IsIntegerOrIndex(op.Results[0].Type)
}

// Mutate applies up to n random semantics-preserving mutations to a
// clone of m, returning the mutant and the names of the rules applied.
// The input module is not modified.
func Mutate(m *ir.Module, seed int64, n int) (*ir.Module, []string) {
	out := m.Clone()
	mu := &mutator{r: rand.New(rand.NewSource(seed))}
	rules := Rules()

	var applied []string
	for i := 0; i < n; i++ {
		if name, ok := mu.applyOnce(out, rules); ok {
			applied = append(applied, name)
		}
	}
	return out, applied
}

type mutator struct {
	r    *rand.Rand
	used map[string]bool
}

// applyOnce picks a random function, block, op and applicable rule.
func (mu *mutator) applyOnce(m *ir.Module, rules []Rule) (string, bool) {
	funcs := m.Funcs()
	if len(funcs) == 0 {
		return "", false
	}
	f := funcs[mu.r.Intn(len(funcs))]
	mu.collectUsed(f)

	var blocks []*ir.Block
	f.Walk(func(op *ir.Operation) bool {
		for _, r := range op.Regions {
			blocks = append(blocks, r.Blocks...)
		}
		return true
	})
	if len(blocks) == 0 {
		return "", false
	}
	b := blocks[mu.r.Intn(len(blocks))]
	if len(b.Ops) == 0 {
		return "", false
	}
	oi := mu.r.Intn(len(b.Ops))
	op := b.Ops[oi]

	// Try rules in a random rotation.
	start := mu.r.Intn(len(rules))
	for k := 0; k < len(rules); k++ {
		rule := rules[(start+k)%len(rules)]
		if !rule.applies(op) {
			continue
		}
		repl := rule.apply(mu, op)
		b.Ops = append(b.Ops[:oi:oi], append(repl, b.Ops[oi+1:]...)...)
		return rule.Name, true
	}
	return "", false
}

// wrapResult renames op's first result to a fresh ID and returns op
// followed by build(origValue, publicResult) ops, where publicResult
// keeps the original ID so every existing use is untouched.
func (mu *mutator) wrapResult(op *ir.Operation, build func(orig, res ir.Value) []*ir.Operation) []*ir.Operation {
	public := op.Results[0]
	orig := mu.fresh(public.Type)
	op.Results[0] = orig
	return append([]*ir.Operation{op}, build(orig, public)...)
}

func (mu *mutator) constant(v int64, t ir.Type) (*ir.Operation, ir.Value) {
	c := ir.NewOp("arith.constant")
	// Clamp to the width to keep the verifier's range check happy.
	if w, ok := ir.BitWidth(t); ok && w < 64 {
		mask := int64(1)<<w - 1
		v &= mask
		if v >= int64(1)<<(w-1) {
			v -= int64(1) << w
		}
	}
	c.Attrs.Set("value", ir.IntAttr(v, t))
	res := mu.fresh(t)
	c.Results = []ir.Value{res}
	return c, res
}

func (mu *mutator) fresh(t ir.Type) ir.Value {
	for i := 0; ; i++ {
		id := "m" + strconv.Itoa(len(mu.used)) + "_" + strconv.Itoa(i)
		if !mu.used[id] {
			mu.used[id] = true
			return ir.V(id, t)
		}
	}
}

func (mu *mutator) collectUsed(f *ir.Operation) {
	mu.used = make(map[string]bool)
	f.Walk(func(op *ir.Operation) bool {
		for _, r := range op.Results {
			mu.used[r.ID] = true
		}
		for _, reg := range op.Regions {
			for _, b := range reg.Blocks {
				for _, a := range b.Args {
					mu.used[a.ID] = true
				}
			}
		}
		return true
	})
}

// Equivalent checks the metamorphic relation for a pair of modules
// under an execution function: equal outputs (or equal failure).
func Equivalent(run func(*ir.Module) (string, error), a, b *ir.Module) (bool, error) {
	oa, ea := run(a)
	ob, eb := run(b)
	if (ea == nil) != (eb == nil) {
		return false, fmt.Errorf("one of the pair failed: %v vs %v", ea, eb)
	}
	if ea != nil {
		return true, nil // both rejected identically enough
	}
	return oa == ob, nil
}
