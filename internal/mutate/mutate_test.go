package mutate_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/mutate"
	"ratte/internal/verify"
)

// TestMutantsPreserveSemantics is the metamorphic core property: a
// mutant verifies, and both the reference interpreter and the (correct)
// compiled pipeline produce the original's output.
func TestMutantsPreserveSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mutant, applied := mutate.Mutate(p.Module, seed*31+1, 6)
		if len(applied) == 0 {
			t.Fatalf("seed %d: no mutation applied", seed)
		}
		if err := verify.Module(mutant, dialects.SourceSpecs()); err != nil {
			t.Fatalf("seed %d (%v): mutant fails verification: %v\n%s",
				seed, applied, err, ir.Print(mutant))
		}
		res, err := dialects.NewReferenceInterpreter().Run(mutant, "main")
		if err != nil {
			t.Fatalf("seed %d (%v): mutant does not interpret: %v", seed, applied, err)
		}
		if res.Output != p.Expected {
			t.Fatalf("seed %d (%v): mutant output %q, original %q\n%s",
				seed, applied, res.Output, p.Expected, ir.Print(mutant))
		}
		// Compiled equivalence (correct compiler, O1).
		c := &compiler.Compiler{Level: compiler.O1}
		lowered, err := c.Compile(mutant, "ariths")
		if err != nil {
			t.Fatalf("seed %d (%v): mutant does not compile: %v", seed, applied, err)
		}
		out, err := dialects.NewExecutor().Run(lowered, "main")
		if err != nil {
			t.Fatalf("seed %d (%v): mutant does not execute: %v", seed, applied, err)
		}
		if out.Output != p.Expected {
			t.Fatalf("seed %d (%v): compiled mutant output %q, original %q",
				seed, applied, out.Output, p.Expected)
		}
	}
}

// TestMutantsOfTensorProgramsPreserveSemantics extends the metamorphic
// property to the tensor/linalg presets, whose mutants flow through the
// bufferising pipeline (mutations may land inside linalg.generic and
// tensor.generate bodies).
func TestMutantsOfTensorProgramsPreserveSemantics(t *testing.T) {
	for _, preset := range []string{"tensor", "linalggeneric"} {
		for seed := int64(0); seed < 8; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 18, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			mutant, applied := mutate.Mutate(p.Module, seed*7+3, 5)
			if len(applied) == 0 {
				continue
			}
			if err := verify.Module(mutant, dialects.SourceSpecs()); err != nil {
				t.Fatalf("%s seed %d (%v): mutant fails verification: %v", preset, seed, applied, err)
			}
			res, err := dialects.NewReferenceInterpreter().Run(mutant, "main")
			if err != nil {
				t.Fatalf("%s seed %d (%v): %v", preset, seed, applied, err)
			}
			if res.Output != p.Expected {
				t.Fatalf("%s seed %d (%v): mutant output %q, original %q",
					preset, seed, applied, res.Output, p.Expected)
			}
			c := &compiler.Compiler{Level: compiler.O1}
			lowered, err := c.Compile(mutant, preset)
			if err != nil {
				t.Fatalf("%s seed %d (%v): compile: %v", preset, seed, applied, err)
			}
			out, err := dialects.NewExecutor().Run(lowered, "main")
			if err != nil {
				t.Fatalf("%s seed %d (%v): execute: %v", preset, seed, applied, err)
			}
			if out.Output != p.Expected {
				t.Fatalf("%s seed %d (%v): compiled mutant output %q, original %q",
					preset, seed, applied, out.Output, p.Expected)
			}
		}
	}
}

// TestMutationChangesModule: mutations are real rewrites, not no-ops.
func TestMutationChangesModule(t *testing.T) {
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mutant, applied := mutate.Mutate(p.Module, 77, 4)
	if len(applied) == 0 {
		t.Fatal("no mutation applied")
	}
	if ir.Print(mutant) == ir.Print(p.Module) {
		t.Errorf("mutations %v left the module textually unchanged", applied)
	}
	// And the original is untouched.
	if got := p.Module.NumOps(); got == mutant.NumOps() && ir.Print(p.Module) == ir.Print(mutant) {
		t.Error("input mutated in place")
	}
}

// TestMetamorphicOracleSeesInjectedBug: the reference-free metamorphic
// oracle — compile original and mutant, compare outputs — can expose a
// miscompilation when a mutation perturbs the syntactic shape the buggy
// pattern matches. Bug 2's chain fold (index_cast(index_cast(x)) ⇒ x)
// is broken by a double-xor wrap between the two casts: xori pairs
// survive canonicalize (unlike +0/*1, which identity folds restore), so
// the mutant compiles correctly while the original is miscompiled.
func TestMetamorphicOracleSeesInjectedBug(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %big = "func.call"() {callee = @c} : () -> (index)
    %n = "arith.index_cast"(%big) : (index) -> (i8)
    %back = "arith.index_cast"(%n) : (i8) -> (index)
    "vector.print"(%back) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 300 : index} : () -> (index)
    "func.return"(%a) : (index) -> ()
  }) {sym_name = "c", function_type = () -> (index)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mod *ir.Module) (string, error) {
		c := &compiler.Compiler{Level: compiler.O1, Bugs: bugs.Only(bugs.IndexCastChainFold)}
		lowered, err := c.Compile(mod, "ariths")
		if err != nil {
			return "", err
		}
		res, err := dialects.NewExecutor().Run(lowered, "main")
		if err != nil {
			return "", err
		}
		return res.Output, nil
	}

	// Sanity: the original IS miscompiled (prints 300 instead of 44).
	if out, err := run(m); err != nil || out != "300\n" {
		t.Fatalf("bug 2 not firing on the original: %q %v", out, err)
	}

	// Find a mutation seed whose mutant breaks the buggy fold's pattern.
	for seed := int64(0); seed < 60; seed++ {
		mutant, applied := mutate.Mutate(m, seed, 3)
		if len(applied) == 0 {
			continue
		}
		eq, err := mutate.Equivalent(run, m, mutant)
		if err != nil {
			continue
		}
		if !eq {
			return // the metamorphic oracle fired
		}
	}
	t.Error("no mutation exposed bug 2 through the metamorphic oracle")
}

// TestEquivalentHelper covers the relation checker.
func TestEquivalentHelper(t *testing.T) {
	ok := func(*ir.Module) (string, error) { return "x", nil }
	eq, err := mutate.Equivalent(ok, nil, nil)
	if err != nil || !eq {
		t.Errorf("identical runs should be equivalent: %v %v", eq, err)
	}
	i := 0
	alternating := func(*ir.Module) (string, error) {
		i++
		if i == 1 {
			return "a", nil
		}
		return "b", nil
	}
	eq, err = mutate.Equivalent(alternating, nil, nil)
	if err != nil || eq {
		t.Errorf("diverging runs should not be equivalent: %v %v", eq, err)
	}
}

// TestRulesInventory sanity-checks the rule set.
func TestRulesInventory(t *testing.T) {
	names := map[string]bool{}
	for _, r := range mutate.Rules() {
		if names[r.Name] {
			t.Errorf("duplicate rule %s", r.Name)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"add-zero", "mul-one", "double-xor", "select-true", "swap-commutative", "flip-comparison"} {
		if !names[want] {
			t.Errorf("missing rule %s", want)
		}
	}
}
