package mlirsmith_test

import (
	"testing"

	"ratte/internal/ir"
	"ratte/internal/mlirsmith"
)

// Every MLIRSmith program must be syntactically well-formed: it prints
// and re-parses. (That is the only guarantee the baseline makes.)
func TestSyntacticValidity(t *testing.T) {
	for _, preset := range mlirsmith.Presets() {
		for seed := int64(0); seed < 50; seed++ {
			m, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			text := ir.Print(m)
			if _, err := ir.Parse(text); err != nil {
				t.Fatalf("%s seed %d: unparseable output: %v\n%s", preset, seed, err, text)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: 20, Seed: 3})
	b, _ := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: 20, Seed: 3})
	if ir.Print(a) != ir.Print(b) {
		t.Error("same seed produced different programs")
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := mlirsmith.Generate(mlirsmith.Config{Preset: "nope"}); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestProgramsProduceOutputOps(t *testing.T) {
	m, err := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: 20, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	prints := 0
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "vector.print" {
			prints++
		}
		return true
	})
	if prints == 0 {
		t.Error("no print ops — programs would be useless even when valid")
	}
}
