// Package mlirsmith re-creates the MLIRSmith baseline the paper
// compares against (§4.2, Table 4): a grammar-driven random program
// generator that tracks only *types* — never concrete values — and
// therefore produces syntactically plausible programs that routinely
// contain undefined behaviour (random divisors, random shift amounts,
// random subscripts, printing uninitialised data) and, for the linalg
// dialect, statically invalid indexing maps.
//
// Like the original, it is much faster than Ratte's generator — there
// is no interpretation during generation — which is exactly the
// throughput-vs-quality trade-off the paper's §4.2 quantifies.
package mlirsmith

import (
	"fmt"
	"math/rand"

	"ratte/internal/ir"
)

// Config parameterises one generation.
type Config struct {
	// Preset is "ariths", "linalggeneric", "tensor" (the restricted
	// configurations of Table 4) or "unmod" (the unmodified generator,
	// which freely mixes constructs and frequently emits statically
	// invalid IR).
	Preset string
	Size   int
	Seed   int64
}

// Presets lists the supported configurations.
func Presets() []string { return []string{"ariths", "linalggeneric", "tensor", "unmod"} }

// Generate produces one random module. The result is always
// syntactically well-formed (it parses); static validity and dynamic
// well-definedness are exactly what it does NOT guarantee.
func Generate(cfg Config) (*ir.Module, error) {
	ok := false
	for _, p := range Presets() {
		if p == cfg.Preset {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("mlirsmith: unknown preset %q", cfg.Preset)
	}
	if cfg.Size <= 0 {
		cfg.Size = 20
	}
	s := &smith{
		cfg: cfg,
		r:   rand.New(rand.NewSource(cfg.Seed)),
	}
	return s.run(), nil
}

type typedValue struct {
	val ir.Value
}

type smith struct {
	cfg   Config
	r     *rand.Rand
	scope []typedValue
	fresh int
	block *ir.Block
}

var scalarTypes = []ir.Type{ir.I1, ir.I8, ir.I16, ir.I32, ir.I64, ir.Index}

func (s *smith) run() *ir.Module {
	m := ir.NewModule()
	f := ir.NewOp("func.func")
	f.Attrs.Set("sym_name", ir.StrAttr("main"))
	f.Attrs.Set("function_type", ir.TypeAttrOf(ir.FuncOf(nil, nil)))
	f.Regions = []*ir.Region{ir.NewRegion()}
	m.Body().Append(f)
	s.block = f.Regions[0].Entry()

	for i := 0; i < s.cfg.Size; i++ {
		s.genOp()
	}
	s.epilogue()
	s.block.Append(ir.NewOp("func.return"))
	return m
}

func (s *smith) freshValue(t ir.Type) ir.Value {
	v := ir.V(fmt.Sprintf("%d", s.fresh), t)
	s.fresh++
	return v
}

func (s *smith) define(v ir.Value) {
	s.scope = append(s.scope, typedValue{val: v})
}

// operand picks a random visible value of type t, or emits a constant.
// In "unmod" mode it sometimes returns a value of the WRONG type — the
// unrestricted generator's statically-invalid output.
func (s *smith) operand(t ir.Type) ir.Value {
	if s.cfg.Preset == "unmod" && s.r.Intn(100) < 4 && len(s.scope) > 0 {
		return s.scope[s.r.Intn(len(s.scope))].val
	}
	var cands []ir.Value
	for _, tv := range s.scope {
		if ir.TypeEqual(tv.val.Type, t) {
			cands = append(cands, tv.val)
		}
	}
	if len(cands) > 0 && s.r.Intn(3) != 0 {
		return cands[s.r.Intn(len(cands))]
	}
	return s.constant(t)
}

// constant emits a random constant — no value discipline: zero, MIN and
// out-of-range shift amounts all occur freely.
func (s *smith) constant(t ir.Type) ir.Value {
	op := ir.NewOp("arith.constant")
	v := int64(s.r.Intn(7) - 3)
	if s.r.Intn(4) == 0 {
		v = int64(int8(s.r.Uint64())) // wilder values
	}
	if w, ok := ir.BitWidth(t); ok && w < 8 {
		v &= int64(1<<w) - 1
		if v >= int64(1)<<(w-1) {
			v -= int64(1) << w
		}
	}
	op.Attrs.Set("value", ir.IntAttr(v, t))
	res := s.freshValue(t)
	op.Results = []ir.Value{res}
	s.block.Append(op)
	s.define(res)
	return res
}

func (s *smith) randType() ir.Type { return scalarTypes[s.r.Intn(len(scalarTypes))] }

func (s *smith) genOp() {
	switch s.cfg.Preset {
	case "ariths":
		s.genArithOp()
	case "tensor":
		if s.r.Intn(2) == 0 {
			s.genTensorOp()
		} else {
			s.genArithOp()
		}
	case "linalggeneric":
		switch s.r.Intn(6) {
		case 0:
			s.genLinalgGeneric()
		case 1, 2:
			s.genTensorOp()
		default:
			s.genArithOp()
		}
	case "unmod":
		switch s.r.Intn(12) {
		case 0:
			s.genLinalgGeneric()
		case 1, 2:
			s.genTensorOp()
		default:
			s.genArithOp()
		}
	}
}

var binaryArith = []string{
	"arith.addi", "arith.subi", "arith.muli",
	"arith.andi", "arith.ori", "arith.xori",
	"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
	"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
	"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
	"arith.shli", "arith.shrsi", "arith.shrui",
	"arith.shli", "arith.shrsi", "arith.shrui",
	"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
}

func (s *smith) genArithOp() {
	t := s.randType()
	switch s.r.Intn(10) {
	case 0:
		s.constant(t)
	case 1:
		// cmpi
		op := ir.NewOp("arith.cmpi")
		op.Operands = []ir.Value{s.operand(t), s.operand(t)}
		op.Attrs.Set("predicate", ir.IntAttr(int64(s.r.Intn(10)), ir.I64))
		res := s.freshValue(ir.I1)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	case 2:
		// select
		op := ir.NewOp("arith.select")
		op.Operands = []ir.Value{s.operand(ir.I1), s.operand(t), s.operand(t)}
		res := s.freshValue(t)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	case 3:
		// extended multiplication
		op := ir.NewOp("arith.mulsi_extended")
		op.Operands = []ir.Value{s.operand(t), s.operand(t)}
		lo, hi := s.freshValue(t), s.freshValue(t)
		op.Results = []ir.Value{lo, hi}
		s.block.Append(op)
		s.define(lo)
		s.define(hi)
	default:
		name := binaryArith[s.r.Intn(len(binaryArith))]
		op := ir.NewOp(name)
		op.Operands = []ir.Value{s.operand(t), s.operand(t)}
		res := s.freshValue(t)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	}
}

func (s *smith) randShape() []int64 {
	rank := 1 + s.r.Intn(2)
	shape := make([]int64, rank)
	for i := range shape {
		shape[i] = int64(1 + s.r.Intn(4))
	}
	return shape
}

func (s *smith) tensorOperand() (ir.Value, ir.TensorType, bool) {
	var cands []ir.Value
	for _, tv := range s.scope {
		if _, ok := tv.val.Type.(ir.TensorType); ok {
			cands = append(cands, tv.val)
		}
	}
	if len(cands) == 0 {
		return ir.Value{}, ir.TensorType{}, false
	}
	v := cands[s.r.Intn(len(cands))]
	return v, v.Type.(ir.TensorType), true
}

func (s *smith) genTensorOp() {
	switch s.r.Intn(4) {
	case 0:
		// tensor.empty — its elements are uninitialised; MLIRSmith has
		// no definedness analysis, so these leak into prints.
		tt := ir.TensorOf(s.randShape(), ir.I64)
		op := ir.NewOp("tensor.empty")
		res := s.freshValue(tt)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	case 1:
		// dense constant
		shape := s.randShape()
		tt := ir.TensorOf(shape, ir.I64)
		n := tt.NumElements()
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(s.r.Intn(9) - 4)
		}
		op := ir.NewOp("arith.constant")
		op.Attrs.Set("value", ir.DenseAttr(vals, tt))
		res := s.freshValue(tt)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	case 2:
		// tensor.extract with RANDOM subscripts — in or out of bounds.
		src, tt, ok := s.tensorOperand()
		if !ok {
			s.genTensorOp()
			return
		}
		op := ir.NewOp("tensor.extract")
		op.Operands = []ir.Value{src}
		for range tt.Shape {
			// Random constant subscript in [0, 8): frequently OOB.
			idxOp := ir.NewOp("arith.constant")
			idxOp.Attrs.Set("value", ir.IntAttr(int64(s.r.Intn(8)), ir.Index))
			idxRes := s.freshValue(ir.Index)
			idxOp.Results = []ir.Value{idxRes}
			s.block.Append(idxOp)
			s.define(idxRes)
			op.Operands = append(op.Operands, idxRes)
		}
		res := s.freshValue(tt.Elem)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	case 3:
		// linalg.fill
		src, tt, ok := s.tensorOperand()
		if !ok {
			s.genTensorOp()
			return
		}
		op := ir.NewOp("linalg.fill")
		op.Operands = []ir.Value{s.operand(tt.Elem), src}
		res := s.freshValue(tt)
		op.Results = []ir.Value{res}
		s.block.Append(op)
		s.define(res)
	}
}

// genLinalgGeneric emits a linalg.generic with RANDOM indexing maps —
// the dominant reason the paper measured only 6.9% of MLIRSmith's
// linalg programs compiling.
func (s *smith) genLinalgGeneric() {
	rank := 1 + s.r.Intn(2)
	extents := make([]int64, rank)
	for i := range extents {
		extents[i] = int64(1 + s.r.Intn(3))
	}
	elem := ir.I64

	nOps := 2 + s.r.Intn(2) // 1-2 ins + 1 out
	maps := make([]ir.Attribute, nOps)
	operands := make([]ir.Value, nOps)
	for i := 0; i < nOps; i++ {
		// Random map results: each output dim drawn independently —
		// only sometimes a permutation.
		results := make([]int, rank)
		for j := range results {
			results[j] = s.r.Intn(rank)
		}
		maps[i] = ir.PermutationMap(rank, results...)
		shape := make([]int64, rank)
		for j, d := range results {
			shape[j] = extents[d]
		}
		tt := ir.TensorOf(shape, elem)
		// Materialise via tensor.empty (uninitialised!).
		eop := ir.NewOp("tensor.empty")
		res := s.freshValue(tt)
		eop.Results = []ir.Value{res}
		s.block.Append(eop)
		s.define(res)
		operands[i] = res
	}

	body := &ir.Block{Label: "bb0"}
	args := make([]ir.Value, nOps)
	for i := range args {
		args[i] = s.freshValue(elem)
	}
	body.Args = args
	yield := ir.NewOp("linalg.yield")
	yield.Operands = []ir.Value{args[s.r.Intn(len(args))]}
	body.Append(yield)

	iters := make([]ir.Attribute, rank)
	for i := range iters {
		iters[i] = ir.StrAttr("parallel")
	}
	op := ir.NewOp("linalg.generic")
	op.Operands = operands
	op.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
	op.Attrs.Set("indexing_maps", ir.ArrayAttr{Elems: maps})
	op.Attrs.Set("iterator_types", ir.ArrayAttr{Elems: iters})
	op.Attrs.Set("operand_segment_sizes", ir.ArrayAttrOf(
		ir.IntAttr(int64(nOps-1), ir.I64), ir.IntAttr(1, ir.I64)))
	res := s.freshValue(operands[nOps-1].Type)
	op.Results = []ir.Value{res}
	s.block.Append(op)
	s.define(res)
}

// epilogue prints scalars in scope (capped), with no definedness
// analysis — programs that computed uninitialised or poisoned values
// print them, which is precisely why so few MLIRSmith programs are
// usable for differential testing. The most recently derived values
// are printed first: those are the interesting computation results.
func (s *smith) epilogue() {
	printed := 0
	for i := len(s.scope) - 1; i >= 0 && printed < 10; i-- {
		tv := s.scope[i]
		if !ir.IsIntegerOrIndex(tv.val.Type) {
			continue
		}
		p := ir.NewOp("vector.print")
		p.Operands = []ir.Value{tv.val}
		s.block.Append(p)
		printed++
	}
}
