package bugs_test

import (
	"testing"

	"ratte/internal/bugs"
)

// TestTable5BugRegistry checks the bug inventory against the paper's
// Table 3 / artifact Table 5 row by row.
func TestTable5BugRegistry(t *testing.T) {
	want := []struct {
		id      bugs.ID
		pass    string
		oracle  string
		issue   int
		symptom string
	}{
		{1, "canonicalize", "DT-R", 90238, "Miscompile"},
		{2, "canonicalize", "DT-R", 90296, "Miscompile"},
		{3, "remove-dead-values", "NC", 82788, "Rejection"},
		{4, "convert-arith-to-llvm", "NC", 84986, "Rejection"},
		{5, "canonicalize", "DT-R", 88732, "Miscompile"},
		{6, "convert-arith-to-llvm", "DT-R", 89382, "Miscompile"},
		{7, "arith-expand", "NC", 83079, "Miscompile"},
		{8, "arith-expand", "DT-R", 106519, "Miscompile"},
	}
	table := bugs.Table()
	if len(table) != len(want) {
		t.Fatalf("table has %d rows, want %d", len(table), len(want))
	}
	for i, w := range want {
		got := table[i]
		if got.ID != w.id || got.Pass != w.pass || got.Oracle != w.oracle ||
			got.Issue != w.issue || got.Symptom != w.symptom {
			t.Errorf("row %d = %+v, want %+v", i, got, w)
		}
	}
	// Six of eight are miscompilations; two are wrong rejections.
	mis := 0
	for _, info := range table {
		if info.Symptom == "Miscompile" {
			mis++
		}
	}
	if mis != 6 {
		t.Errorf("%d miscompilations, paper reports 6", mis)
	}
}

func TestLookup(t *testing.T) {
	info, err := bugs.Lookup(bugs.FloorDivSiExpand)
	if err != nil || info.Issue != 83079 {
		t.Errorf("Lookup(7) = %+v, %v", info, err)
	}
	if _, err := bugs.Lookup(99); err == nil {
		t.Error("unknown id should error")
	}
}

func TestSets(t *testing.T) {
	if len(bugs.All()) != 8 {
		t.Error("All should enable 8 bugs")
	}
	if len(bugs.None()) != 0 {
		t.Error("None should be empty")
	}
	s := bugs.Only(bugs.MulsiExtendedI1Fold)
	if !s.Enabled(bugs.MulsiExtendedI1Fold) || s.Enabled(bugs.IndexCastUIFold) {
		t.Error("Only selection wrong")
	}
	var nilSet bugs.Set
	if nilSet.Enabled(bugs.MulsiExtendedI1Fold) {
		t.Error("nil set should enable nothing")
	}
}
