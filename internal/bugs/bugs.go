// Package bugs is the registry of the 8 production-MLIR defects the
// Ratte paper reports (Table 3), re-created from their GitHub-issue
// root causes as *injectable* faults in Ratte-Go's compiler substrate.
//
// A from-scratch substrate has no legacy bug population to mine, so the
// bug-finding experiment (Table 3) re-creates each paper bug at the
// same place in the pipeline — the same pass, triggered by the same
// operation, with the same symptom — and toggles it on for the fuzzing
// campaign. With every bug disabled the compiler is intended to be
// correct, which the differential test suite asserts.
package bugs

import "fmt"

// ID identifies one injectable bug, numbered as in the paper's Table 3.
type ID int

// The eight bugs of Table 3.
const (
	// IndexCastUIFold (bug 1): the canonicalize fold of
	// arith.index_castui over a constant sign-extends instead of
	// zero-extending. Miscompile, detected by DT-R. Issue 90238.
	IndexCastUIFold ID = 1

	// IndexCastChainFold (bug 2): canonicalize folds
	// index_cast(index_cast(x : index -> iN) : iN -> index) to x,
	// dropping the intermediate truncation. Miscompile, detected by
	// DT-R. Issue 90296.
	IndexCastChainFold ID = 2

	// RemoveDeadValuesCall (bug 3): the remove-dead-values pass rejects
	// valid modules containing a func.call with an unused result.
	// Wrong rejection, detected by NC. Issue 82788.
	RemoveDeadValuesCall ID = 3

	// AdduiExtendedLegalize (bug 4): convert-arith-to-llvm fails to
	// legalize arith.addui_extended over i1 operands and rejects the
	// module. Wrong rejection, detected by NC. Issue 84986.
	AdduiExtendedLegalize ID = 4

	// MulsiExtendedI1Fold (bug 5): canonicalize special-cases i1 in
	// arith.mulsi_extended, replacing the high result with the low
	// result ("the high half is the sign of the product") — wrong for
	// 1-bit integers, where the high half is always 0 (paper Figure 2).
	// Miscompile, detected by DT-R. Issue 88732.
	MulsiExtendedI1Fold ID = 5

	// CeilDivSiConvert (bug 6): convert-arith-to-llvm lowers
	// arith.ceildivsi with the positive-operand-only formula
	// (a + b - 1) / b. Miscompile, detected by DT-R. Issue 89382.
	CeilDivSiConvert ID = 6

	// FloorDivSiExpand (bug 7): arith-expand lowers arith.floordivsi
	// through an unconditionally-computed intermediate
	// (x - n) / m that evaluates -2^63 / -1 for n = -2^63 + 1, m = -1 —
	// a signed-division overflow that traps at the llvm level (paper
	// Figure 12). Lowering miscompile, detected by NC. Issue 83079.
	FloorDivSiExpand ID = 7

	// CeilDivSiExpand (bug 8): arith-expand lowers arith.ceildivsi as
	// -floordiv(-a, b); the negation wraps for a = INT_MIN, producing a
	// wrong (non-trapping) result. Lowering miscompile, detected by
	// DT-R. Issue 106519.
	CeilDivSiExpand ID = 8
)

// Info is one row of the paper's Table 3.
type Info struct {
	ID           ID
	Phase        string // Optimisation, Verifier or Lowering
	Symptom      string // Miscompile or Rejection
	Status       string // paper-reported status
	Pass         string // pass containing the defect
	Oracle       string // oracle that detected it: NC, DT-O or DT-R
	DetectedWith string // operation whose generator triggered it
	Issue        int    // llvm-project GitHub issue number
}

// Table returns the full Table 3 inventory, in paper order.
func Table() []Info {
	return []Info{
		{IndexCastUIFold, "Optimisation", "Miscompile", "Submitted", "canonicalize", "DT-R", "arith.index_castui", 90238},
		{IndexCastChainFold, "Optimisation", "Miscompile", "Confirmed", "canonicalize", "DT-R", "arith.index_cast", 90296},
		{RemoveDeadValuesCall, "Verifier", "Rejection", "Confirmed", "remove-dead-values", "NC", "func.call", 82788},
		{AdduiExtendedLegalize, "Verifier", "Rejection", "Confirmed", "convert-arith-to-llvm", "NC", "arith.addui_extended", 84986},
		{MulsiExtendedI1Fold, "Optimisation", "Miscompile", "Fixed", "canonicalize", "DT-R", "arith.mulsi_extended", 88732},
		{CeilDivSiConvert, "Optimisation", "Miscompile", "Fixed", "convert-arith-to-llvm", "DT-R", "arith.ceildivsi", 89382},
		{FloorDivSiExpand, "Lowering", "Miscompile", "Fixed", "arith-expand", "NC", "arith.floordivsi", 83079},
		{CeilDivSiExpand, "Lowering", "Miscompile", "Confirmed", "arith-expand", "DT-R", "arith.ceildivsi", 106519},
	}
}

// Lookup returns the Info for id.
func Lookup(id ID) (Info, error) {
	for _, info := range Table() {
		if info.ID == id {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("bugs: unknown bug id %d", int(id))
}

// Set is a selection of enabled bugs.
type Set map[ID]bool

// None returns an empty selection: the correct compiler.
func None() Set { return Set{} }

// All returns a selection with every bug enabled.
func All() Set {
	s := Set{}
	for _, info := range Table() {
		s[info.ID] = true
	}
	return s
}

// Only returns a selection with exactly the given bugs enabled.
func Only(ids ...ID) Set {
	s := Set{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Enabled reports whether id is enabled (nil Set means none).
func (s Set) Enabled(id ID) bool { return s != nil && s[id] }
