package rtval

import (
	"fmt"
	"strings"

	"ratte/internal/ir"
)

// Value is the interface of all runtime values flowing through the
// reference interpreter: scalar Ints and Tensors.
type Value interface {
	// Type returns the IR type of the value. For tensors this is the
	// *concrete* type: every dimension is static, even when the program
	// text used a dynamically-sized tensor type (the paper's distinction
	// between syntactical and concrete types, §3.3).
	Type() ir.Type

	// Defined reports whether the value is fully well-defined (for
	// tensors: every element).
	Defined() bool

	// String renders the value for oracle comparison.
	String() string
}

var (
	_ Value = Int{}
	_ Value = (*Tensor)(nil)
)

// Equal compares two runtime values for oracle purposes.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Int:
		y, ok := b.(Int)
		return ok && x.Equal(y)
	case *Tensor:
		y, ok := b.(*Tensor)
		return ok && x.Equal(y)
	}
	return false
}

// Tensor is a ranked tensor value with a concrete (fully static) shape,
// row-major element storage, and per-element definedness so that
// tensor.empty results can flow through a program without poisoning
// everything they touch (the paper's well-definedness analysis, §3.4).
type Tensor struct {
	Shape []int64
	Elem  ir.Type // scalar element type
	Elems []Int   // len == product(Shape)
}

// NewTensor builds a tensor with all elements initialised to fill.
func NewTensor(shape []int64, elem ir.Type, fill Int) *Tensor {
	t := &Tensor{
		Shape: append([]int64(nil), shape...),
		Elem:  elem,
	}
	n := t.NumElements()
	t.Elems = make([]Int, n)
	for i := range t.Elems {
		t.Elems[i] = fill
	}
	return t
}

// EmptyTensor builds a tensor whose elements are all undef, as produced
// by tensor.empty.
func EmptyTensor(shape []int64, elem ir.Type) *Tensor {
	return NewTensor(shape, elem, UndefInt(elem))
}

// NumElements returns the number of elements.
func (t *Tensor) NumElements() int64 {
	n := int64(1)
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Type returns the concrete tensor type (all dims static).
func (t *Tensor) Type() ir.Type { return ir.TensorOf(t.Shape, t.Elem) }

// Defined reports whether every element is well-defined.
func (t *Tensor) Defined() bool {
	for _, e := range t.Elems {
		if !e.Defined() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (tensors have value semantics in MLIR; ops
// like tensor.insert produce a new tensor).
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		Shape: append([]int64(nil), t.Shape...),
		Elem:  t.Elem,
		Elems: append([]Int(nil), t.Elems...),
	}
}

// Equal reports whether two tensors have identical shape, element type
// and elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) || !ir.TypeEqual(t.Elem, o.Elem) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	for i := range t.Elems {
		if !t.Elems[i].Equal(o.Elems[i]) {
			return false
		}
	}
	return true
}

// Offset converts a multi-dimensional index to a row-major offset,
// reporting a trap for out-of-bounds access.
func (t *Tensor) Offset(idx []int64) (int64, error) {
	if len(idx) != len(t.Shape) {
		return 0, &TrapError{Op: "tensor", Reason: fmt.Sprintf("rank mismatch: %d indices into rank-%d tensor", len(idx), len(t.Shape))}
	}
	off := int64(0)
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			return 0, &TrapError{Op: "tensor", Reason: fmt.Sprintf("index %d out of bounds for dim %d of size %d", x, i, t.Shape[i])}
		}
		off = off*t.Shape[i] + x
	}
	return off, nil
}

// At returns the element at the multi-dimensional index.
func (t *Tensor) At(idx []int64) (Int, error) {
	off, err := t.Offset(idx)
	if err != nil {
		return Int{}, err
	}
	return t.Elems[off], nil
}

// Insert returns a copy of t with the element at idx replaced by v.
func (t *Tensor) Insert(idx []int64, v Int) (*Tensor, error) {
	off, err := t.Offset(idx)
	if err != nil {
		return nil, err
	}
	c := t.Clone()
	c.Elems[off] = v
	return c, nil
}

// String renders the tensor as vector.print renders memrefs/vectors:
// nested parenthesised rows, e.g. "( ( 1, 2 ), ( 3, 4 ) )".
func (t *Tensor) String() string {
	var b strings.Builder
	var rec func(dim int, off int64, stride int64)
	rec = func(dim int, off int64, stride int64) {
		if dim == len(t.Shape) {
			b.WriteString(t.Elems[off].String())
			return
		}
		inner := stride / t.Shape[dim]
		b.WriteString("( ")
		for i := int64(0); i < t.Shape[dim]; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			rec(dim+1, off+i*inner, inner)
		}
		b.WriteString(" )")
	}
	if len(t.Shape) == 0 {
		if len(t.Elems) == 0 {
			return "( )"
		}
		return t.Elems[0].String()
	}
	rec(0, 0, t.NumElements())
	return b.String()
}

// FromAttr materialises a tensor from a dense attribute.
func FromAttr(a ir.DenseIntAttr) (*Tensor, error) {
	tt := a.Type
	if !tt.HasStaticShape() {
		return nil, fmt.Errorf("rtval: dense attribute with dynamic shape %s", tt)
	}
	w, ok := ir.BitWidth(tt.Elem)
	if !ok {
		return nil, fmt.Errorf("rtval: unsupported dense element type %s", tt.Elem)
	}
	_, isIdx := tt.Elem.(ir.IndexType)
	mk := func(v int64) Int {
		if isIdx {
			return NewIndex(v)
		}
		return NewInt(w, v)
	}
	t := EmptyTensor(tt.Shape, tt.Elem)
	n := t.NumElements()
	if a.Splat {
		for i := range t.Elems {
			t.Elems[i] = mk(a.Values[0])
		}
		return t, nil
	}
	if int64(len(a.Values)) != n {
		return nil, fmt.Errorf("rtval: dense attribute has %d values for %d elements", len(a.Values), n)
	}
	for i, v := range a.Values {
		t.Elems[i] = mk(v)
	}
	return t, nil
}
