package rtval

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"ratte/internal/ir"
)

func TestNewIntMasksToWidth(t *testing.T) {
	if got := NewInt(8, 300).Unsigned(); got != 300&0xff {
		t.Errorf("NewInt(8, 300) = %d", got)
	}
	if got := NewInt(1, -1).Unsigned(); got != 1 {
		t.Errorf("NewInt(1, -1) bits = %d", got)
	}
	if got := NewInt(1, -1).Signed(); got != -1 {
		t.Errorf("NewInt(1, -1) signed = %d", got)
	}
	if got := NewInt(64, -5).Signed(); got != -5 {
		t.Errorf("NewInt(64, -5) = %d", got)
	}
	if got := NewIndex(-9).Signed(); got != -9 {
		t.Errorf("NewIndex(-9) = %d", got)
	}
}

func TestIntTypes(t *testing.T) {
	if !ir.TypeEqual(NewInt(32, 1).Type(), ir.I32) {
		t.Error("i32 type")
	}
	if !ir.TypeEqual(NewIndex(1).Type(), ir.Index) {
		t.Error("index type")
	}
	if NewIndex(1).Equal(NewInt(64, 1)) {
		t.Error("index and i64 must not compare equal")
	}
	u := UndefInt(ir.I8)
	if u.Defined() {
		t.Error("undef should not be defined")
	}
	if u.String() != "undef" {
		t.Errorf("undef prints %q", u.String())
	}
	if !ir.TypeEqual(u.Type(), ir.I8) {
		t.Error("undef keeps its type")
	}
}

// Figure 2 of the paper: (-1) * (-1) on i1. The full signed product of
// -1 and -1 is +1 = 0b01, so low must be 1 (i.e. -1 as i1) and high 0.
func TestFigure2MulsiExtendedI1(t *testing.T) {
	n1 := NewInt(1, -1)
	low, high := n1.MulSIExtended(n1)
	if low.Signed() != -1 { // bit pattern 1 on i1 prints as -1... see below
		t.Errorf("low = %d, want bit 1 (signed -1)", low.Signed())
	}
	if low.Unsigned() != 1 {
		t.Errorf("low bits = %d, want 1", low.Unsigned())
	}
	if high.Unsigned() != 0 {
		t.Errorf("high bits = %d, want 0 — the production bug made this 1", high.Unsigned())
	}
}

func TestMulExtendedAgainstBigInt(t *testing.T) {
	widths := []uint{1, 7, 8, 16, 32, 33, 48, 64}
	f := func(a, b int64, wi uint8) bool {
		w := widths[int(wi)%len(widths)]
		x, y := NewInt(w, a), NewInt(w, b)

		// Signed oracle via big.Int.
		bx, by := big.NewInt(x.Signed()), big.NewInt(y.Signed())
		prod := new(big.Int).Mul(bx, by)
		twoW := new(big.Int).Lsh(big.NewInt(1), w)
		lo := new(big.Int).Mod(prod, twoW)
		hi := new(big.Int).Rsh(prod, w)
		hi.Mod(hi, twoW)
		low, high := x.MulSIExtended(y)
		if low.Unsigned() != lo.Uint64() || high.Unsigned() != hi.Uint64() {
			t.Logf("signed w=%d a=%d b=%d: got (%d,%d) want (%d,%d)",
				w, x.Signed(), y.Signed(), low.Unsigned(), high.Unsigned(), lo.Uint64(), hi.Uint64())
			return false
		}

		// Unsigned oracle.
		ux := new(big.Int).SetUint64(x.Unsigned())
		uy := new(big.Int).SetUint64(y.Unsigned())
		uprod := new(big.Int).Mul(ux, uy)
		ulo := new(big.Int).Mod(uprod, twoW)
		uhi := new(big.Int).Rsh(uprod, w)
		uhi.Mod(uhi, twoW)
		ulow, uhigh := x.MulUIExtended(y)
		if ulow.Unsigned() != ulo.Uint64() || uhigh.Unsigned() != uhi.Uint64() {
			t.Logf("unsigned w=%d a=%d b=%d: got (%d,%d) want (%d,%d)",
				w, x.Unsigned(), y.Unsigned(), ulow.Unsigned(), uhigh.Unsigned(), ulo.Uint64(), uhi.Uint64())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddUIExtended(t *testing.T) {
	cases := []struct {
		w        uint
		a, b     int64
		sum      uint64
		overflow bool
	}{
		{8, 200, 100, 44, true},
		{8, 100, 100, 200, false},
		{1, 1, 1, 0, true},
		{64, -1, 1, 0, true},
		{64, 5, 7, 12, false},
	}
	for _, c := range cases {
		s, o := NewInt(c.w, c.a).AddUIExtended(NewInt(c.w, c.b))
		if s.Unsigned() != c.sum || o.IsTrue() != c.overflow {
			t.Errorf("addui_extended i%d %d+%d = (%d,%v), want (%d,%v)",
				c.w, c.a, c.b, s.Unsigned(), o.IsTrue(), c.sum, c.overflow)
		}
	}
}

func TestDivisionUB(t *testing.T) {
	var ub *UBError
	if _, err := NewInt(64, 1).DivS(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("divsi by zero should be UB")
	}
	min := NewInt(64, MinSigned(64))
	if _, err := min.DivS(NewInt(64, -1)); !errors.As(err, &ub) {
		t.Error("divsi MIN/-1 should be UB")
	}
	if _, err := NewInt(8, MinSigned(8)).DivS(NewInt(8, -1)); !errors.As(err, &ub) {
		t.Error("divsi i8 MIN/-1 should be UB")
	}
	if _, err := NewInt(64, 1).DivU(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("divui by zero should be UB")
	}
	if _, err := NewInt(64, 1).RemS(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("remsi by zero should be UB")
	}
	if _, err := min.RemS(NewInt(64, -1)); !errors.As(err, &ub) {
		t.Error("remsi MIN%-1 should be UB")
	}
	if _, err := NewInt(64, 1).RemU(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("remui by zero should be UB")
	}
	if _, err := NewInt(64, 1).CeilDivS(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("ceildivsi by zero should be UB")
	}
	if _, err := NewInt(64, 1).FloorDivS(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("floordivsi by zero should be UB")
	}
	if _, err := NewInt(64, 1).CeilDivU(NewInt(64, 0)); !errors.As(err, &ub) {
		t.Error("ceildivui by zero should be UB")
	}
	if _, err := min.CeilDivS(NewInt(64, -1)); !errors.As(err, &ub) {
		t.Error("ceildivsi MIN/-1 should be UB")
	}
	if _, err := min.FloorDivS(NewInt(64, -1)); !errors.As(err, &ub) {
		t.Error("floordivsi MIN/-1 should be UB")
	}
}

// Figure 12 of the paper: (-2^63 + 1) / -1 is fine (no overflow) and
// must floor-divide to 2^63 - 1.
func TestFigure12FloorDiv(t *testing.T) {
	a := NewInt(64, MinSigned(64)+1)
	b := NewInt(64, -1)
	q, err := a.FloorDivS(b)
	if err != nil {
		t.Fatalf("unexpected UB: %v", err)
	}
	if q.Signed() != MaxSigned(64) {
		t.Errorf("got %d, want %d", q.Signed(), MaxSigned(64))
	}
}

func TestRoundingDivisions(t *testing.T) {
	cases := []struct {
		a, b               int64
		ceil, floor, trunc int64
	}{
		{7, 2, 4, 3, 3},
		{-7, 2, -3, -4, -3},
		{7, -2, -3, -4, -3},
		{-7, -2, 4, 3, 3},
		{6, 3, 2, 2, 2},
		{-6, 3, -2, -2, -2},
	}
	for _, c := range cases {
		x, y := NewInt(64, c.a), NewInt(64, c.b)
		if got, _ := x.CeilDivS(y); got.Signed() != c.ceil {
			t.Errorf("ceildiv %d/%d = %d, want %d", c.a, c.b, got.Signed(), c.ceil)
		}
		if got, _ := x.FloorDivS(y); got.Signed() != c.floor {
			t.Errorf("floordiv %d/%d = %d, want %d", c.a, c.b, got.Signed(), c.floor)
		}
		if got, _ := x.DivS(y); got.Signed() != c.trunc {
			t.Errorf("divsi %d/%d = %d, want %d", c.a, c.b, got.Signed(), c.trunc)
		}
	}
	if got, _ := NewInt(8, 7).CeilDivU(NewInt(8, 2)); got.Unsigned() != 4 {
		t.Errorf("ceildivui 7/2 = %d", got.Unsigned())
	}
}

func TestFloorCeilDivAgreeWithBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 || (a == MinSigned(64) && b == -1) {
			return true
		}
		x, y := NewInt(64, a), NewInt(64, b)
		fl, _ := x.FloorDivS(y)
		ce, _ := x.CeilDivS(y)
		var q big.Int
		var r big.Int
		q.DivMod(big.NewInt(a), big.NewInt(b), &r) // Euclidean
		// Convert Euclidean to floor: big.Int.Div is Euclidean; floor
		// differs when remainder != 0 and b < 0.
		floor := new(big.Int).Set(&q)
		if r.Sign() != 0 && b < 0 {
			floor.Sub(floor, big.NewInt(1))
		}
		ceil := new(big.Int).Add(floor, big.NewInt(0))
		if r.Sign() != 0 {
			ceil.Add(floor, big.NewInt(1))
		}
		return fl.Signed() == floor.Int64() && ce.Signed() == ceil.Int64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShiftUB(t *testing.T) {
	var ub *UBError
	if _, err := NewInt(8, 1).ShL(NewInt(8, 8)); !errors.As(err, &ub) {
		t.Error("shli past width should be UB")
	}
	if _, err := NewInt(8, 1).ShRU(NewInt(8, 9)); !errors.As(err, &ub) {
		t.Error("shrui past width should be UB")
	}
	if _, err := NewInt(8, 1).ShRS(NewInt(8, 200)); !errors.As(err, &ub) {
		t.Error("shrsi past width should be UB (unsigned amount)")
	}
	if got, _ := NewInt(8, 1).ShL(NewInt(8, 7)); got.Unsigned() != 128 {
		t.Errorf("1<<7 = %d", got.Unsigned())
	}
	if got, _ := NewInt(8, -128).ShRS(NewInt(8, 7)); got.Signed() != -1 {
		t.Errorf("-128>>s7 = %d", got.Signed())
	}
	if got, _ := NewInt(8, -128).ShRU(NewInt(8, 7)); got.Unsigned() != 1 {
		t.Errorf("-128>>u7 = %d", got.Unsigned())
	}
}

func TestCmpPredicates(t *testing.T) {
	a, b := NewInt(8, -1), NewInt(8, 1)
	cases := []struct {
		p    CmpPredicate
		want bool
	}{
		{CmpEQ, false}, {CmpNE, true},
		{CmpSLT, true}, {CmpSLE, true}, {CmpSGT, false}, {CmpSGE, false},
		// -1 is 255 unsigned.
		{CmpULT, false}, {CmpULE, false}, {CmpUGT, true}, {CmpUGE, true},
	}
	for _, c := range cases {
		got, err := a.Cmp(c.p, b)
		if err != nil {
			t.Fatal(err)
		}
		if got.IsTrue() != c.want {
			t.Errorf("cmpi %s -1, 1 = %v, want %v", c.p, got.IsTrue(), c.want)
		}
	}
	if _, err := a.Cmp(CmpPredicate(42), b); err == nil {
		t.Error("invalid predicate should error")
	}
	if CmpPredicate(42).Valid() {
		t.Error("42 is not a valid predicate")
	}
}

func TestExtTruncCasts(t *testing.T) {
	if got := NewInt(8, -1).ExtS(32).Signed(); got != -1 {
		t.Errorf("extsi(-1:i8):i32 = %d", got)
	}
	if got := NewInt(8, -1).ExtU(32).Signed(); got != 255 {
		t.Errorf("extui(-1:i8):i32 = %d", got)
	}
	if got := NewInt(32, 0x1ff).Trunc(8).Unsigned(); got != 0xff {
		t.Errorf("trunci = %d", got)
	}
	if got := NewInt(8, -1).IndexCast(ir.Index).Signed(); got != -1 {
		t.Errorf("index_cast(-1:i8) = %d", got)
	}
	if got := NewInt(8, -1).IndexCastU(ir.Index).Signed(); got != 255 {
		t.Errorf("index_castui(-1:i8) = %d", got)
	}
	if got := NewIndex(-1).IndexCast(ir.I8).Unsigned(); got != 0xff {
		t.Errorf("index_cast(-1:index):i8 = %d", got)
	}
	if got := NewIndex(3).IndexCast(ir.I32).Type(); !ir.TypeEqual(got, ir.I32) {
		t.Errorf("index_cast result type = %v", got)
	}
}

func TestSelectAndMinMax(t *testing.T) {
	a, b := NewInt(8, -5), NewInt(8, 10)
	if got := Bool(true).Select(a, b); !got.Equal(a) {
		t.Error("select true")
	}
	if got := Bool(false).Select(a, b); !got.Equal(b) {
		t.Error("select false")
	}
	if got := a.MinS(b); got.Signed() != -5 {
		t.Errorf("minsi = %d", got.Signed())
	}
	if got := a.MaxS(b); got.Signed() != 10 {
		t.Errorf("maxsi = %d", got.Signed())
	}
	// -5 is 251 unsigned.
	if got := a.MinU(b); got.Unsigned() != 10 {
		t.Errorf("minui = %d", got.Unsigned())
	}
	if got := a.MaxU(b); got.Unsigned() != 251 {
		t.Errorf("maxui = %d", got.Unsigned())
	}
}

func TestUndefPropagation(t *testing.T) {
	u := UndefInt(ir.I8)
	d := NewInt(8, 3)
	if u.Add(d).Defined() || d.Add(u).Defined() {
		t.Error("add must propagate undef")
	}
	if d.Add(d).Defined() != true {
		t.Error("defined + defined is defined")
	}
	q, err := u.DivS(d)
	if err != nil || q.Defined() {
		t.Error("undef/3 is defined-error-free but undef")
	}
	if got, _ := u.Cmp(CmpEQ, d); got.Defined() {
		t.Error("cmp must propagate undef")
	}
	lo, hi := u.MulSIExtended(d)
	if lo.Defined() || hi.Defined() {
		t.Error("mulsi_extended must propagate undef")
	}
	if u.ExtS(16).Defined() || u.Trunc(4).Defined() || u.IndexCast(ir.Index).Defined() {
		t.Error("casts must propagate undef")
	}
}

func TestWrapArithmetic(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(8, a), NewInt(8, b)
		sum := x.Add(y)
		if sum.Unsigned() != uint64(uint8(uint64(a)+uint64(b))) {
			return false
		}
		diff := x.Sub(y)
		if diff.Unsigned() != uint64(uint8(uint64(a)-uint64(b))) {
			return false
		}
		prod := x.Mul(y)
		if prod.Unsigned() != uint64(uint8(uint64(a)*uint64(b))) {
			return false
		}
		if !x.Neg().Equal(NewInt(8, 0).Sub(x)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxConstants(t *testing.T) {
	if MinSigned(8) != -128 || MaxSigned(8) != 127 || MaxUnsigned(8) != 255 {
		t.Error("i8 bounds wrong")
	}
	if MinSigned(1) != -1 || MaxSigned(1) != 0 || MaxUnsigned(1) != 1 {
		t.Error("i1 bounds wrong")
	}
	if MinSigned(64) != -9223372036854775808 || MaxSigned(64) != 9223372036854775807 {
		t.Error("i64 bounds wrong")
	}
}
