// Small-value interning: pre-boxed Value views of the Ints the hot
// paths produce over and over — loop counters, comparison results,
// generated-program constants. Converting an Int (a 24-byte struct) to
// the Value interface heap-allocates a copy every time; for the
// compiled engine that boxing is the dominant per-iteration allocation
// (every frame-slot store is an interface value). Interning mirrors
// what package ir does for scalar types: one immutable boxed copy per
// (type, small value), shared by every reader.
//
// The tables are built once at init and never mutated, so returning a
// shared boxed value is safe from any number of goroutines. Sharing is
// semantically invisible: Int is an immutable value type, and nothing
// in the interpreter compares Values by interface identity.
package rtval

// Interned signed-value range. The low end covers the small negative
// constants generators favour (including all of i8); the high end
// covers realistic loop trip counts so induction variables stay
// allocation-free. ~2k entries across 6 width classes keeps the
// resident cost to a few hundred kilobytes.
const (
	internMin = -128
	internMax = 2047
)

// internClasses fixes the width classes with a table: the iN widths the
// generator and the lowering pipeline actually emit, plus index.
var internClasses = [...]struct {
	width   uint
	isIndex bool
}{
	{1, false},
	{8, false},
	{16, false},
	{32, false},
	{64, false},
	{64, true},
}

var internTables [len(internClasses)][]Value

func init() {
	for ci, c := range internClasses {
		tbl := make([]Value, internMax-internMin+1)
		for s := internMin; s <= internMax; s++ {
			var v Int
			if c.isIndex {
				v = NewIndex(int64(s))
			} else {
				v = NewInt(c.width, int64(s))
			}
			// Skip values the width cannot represent (an i1 can only be
			// 0 or -1): the lookup in Box never reaches them, but a nil
			// entry keeps the table honest.
			if v.Signed() != int64(s) {
				continue
			}
			tbl[s-internMin] = v
		}
		internTables[ci] = tbl
	}
}

// internClass maps a width to its table index, -1 when uninterned.
func internClass(width uint, isIndex bool) int {
	if isIndex {
		if width == 64 {
			return 5
		}
		return -1
	}
	switch width {
	case 1:
		return 0
	case 8:
		return 1
	case 16:
		return 2
	case 32:
		return 3
	case 64:
		return 4
	}
	return -1
}

// Box converts an Int to a Value, returning a shared pre-boxed copy
// when the value is a defined, small-magnitude integer of a common
// width — the no-allocation fast path for loop counters, i1 flags and
// small constants. Out-of-range or undef values box normally. Box(x)
// is observationally identical to a plain interface conversion of x.
func Box(x Int) Value {
	if !x.undef {
		if ci := internClass(x.width, x.isIndex); ci >= 0 {
			if s := x.Signed(); s >= internMin && s <= internMax {
				if v := internTables[ci][s-internMin]; v != nil {
					return v
				}
			}
		}
	}
	return x
}
