package rtval

import (
	"testing"

	"ratte/internal/ir"
)

// TestBoxIdentity checks that Box is observationally a plain interface
// conversion over the whole interned range and beyond its edges.
func TestBoxIdentity(t *testing.T) {
	widths := []uint{1, 8, 16, 32, 64}
	values := []int64{internMin - 1, internMin, -1, 0, 1, 2, 100, 2000, internMax, internMax + 1, 1 << 40}
	for _, w := range widths {
		for _, v := range values {
			x := NewInt(w, v)
			b := Box(x)
			got, ok := b.(Int)
			if !ok {
				t.Fatalf("Box(NewInt(%d, %d)) is not an Int", w, v)
			}
			if !got.Equal(x) {
				t.Fatalf("Box(NewInt(%d, %d)) = %v, want %v", w, v, got, x)
			}
			if !ir.TypeEqual(b.Type(), x.Type()) {
				t.Fatalf("Box(NewInt(%d, %d)) type = %v, want %v", w, v, b.Type(), x.Type())
			}
		}
	}
	for _, v := range values {
		x := NewIndex(v)
		got, ok := Box(x).(Int)
		if !ok || !got.Equal(x) {
			t.Fatalf("Box(NewIndex(%d)) = %v, want %v", v, got, x)
		}
	}
}

// TestBoxUndef checks that undef values never intern (they would
// otherwise alias definedness across unrelated uses).
func TestBoxUndef(t *testing.T) {
	u := UndefInt(ir.I32)
	b := Box(u)
	if got := b.(Int); got.Defined() {
		t.Fatalf("Box(undef) returned a defined value")
	}
}

// TestBoxBool checks the i1 results comparisons produce hit the table:
// Bool(true) has bit pattern 1, whose signed reading at width 1 is -1.
func TestBoxBool(t *testing.T) {
	for _, v := range []bool{false, true} {
		x := Bool(v)
		got := Box(x).(Int)
		if !got.Equal(x) {
			t.Fatalf("Box(Bool(%v)) = %v, want %v", v, got, x)
		}
	}
}

// TestBoxInterningAllocs pins the no-allocation guarantee for the
// interned range — the regression guard the interning layer exists for.
func TestBoxInterningAllocs(t *testing.T) {
	cases := []struct {
		name string
		x    Int
	}{
		{"i1_true", Bool(true)},
		{"i1_false", Bool(false)},
		{"i32_small", NewInt(32, 42)},
		{"i64_small", NewInt(64, 1999)},
		{"i64_neg", NewInt(64, -100)},
		{"index_counter", NewIndex(2000)},
	}
	for _, tc := range cases {
		x := tc.x
		var sink Value
		allocs := testing.AllocsPerRun(100, func() {
			sink = Box(x)
		})
		if allocs != 0 {
			t.Errorf("%s: Box allocates %.1f/op, want 0", tc.name, allocs)
		}
		_ = sink
	}
}

func BenchmarkBoxInterned(b *testing.B) {
	x := NewIndex(100)
	var sink Value
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = Box(x)
	}
	_ = sink
}

func BenchmarkBoxUninterned(b *testing.B) {
	x := NewInt(64, 1<<40)
	var sink Value
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = Box(x)
	}
	_ = sink
}
