package rtval

import (
	"errors"
	"testing"

	"ratte/internal/ir"
)

func TestTensorBasics(t *testing.T) {
	fill := NewInt(64, 7)
	tn := NewTensor([]int64{2, 3}, ir.I64, fill)
	if tn.NumElements() != 6 {
		t.Fatalf("NumElements = %d", tn.NumElements())
	}
	if !ir.TypeEqual(tn.Type(), ir.TensorOf([]int64{2, 3}, ir.I64)) {
		t.Errorf("type %v", tn.Type())
	}
	if !tn.Defined() {
		t.Error("filled tensor should be defined")
	}
	v, err := tn.At([]int64{1, 2})
	if err != nil || v.Signed() != 7 {
		t.Errorf("At = %v, %v", v, err)
	}
}

func TestTensorOutOfBounds(t *testing.T) {
	tn := NewTensor([]int64{2, 3}, ir.I64, NewInt(64, 0))
	var trap *TrapError
	if _, err := tn.At([]int64{2, 0}); !errors.As(err, &trap) {
		t.Error("row OOB should trap")
	}
	if _, err := tn.At([]int64{0, 3}); !errors.As(err, &trap) {
		t.Error("col OOB should trap")
	}
	if _, err := tn.At([]int64{-1, 0}); !errors.As(err, &trap) {
		t.Error("negative index should trap")
	}
	if _, err := tn.At([]int64{0}); !errors.As(err, &trap) {
		t.Error("rank mismatch should trap")
	}
}

func TestTensorInsertIsValueSemantics(t *testing.T) {
	tn := NewTensor([]int64{2, 2}, ir.I32, NewInt(32, 0))
	tn2, err := tn.Insert([]int64{0, 1}, NewInt(32, 9))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tn.At([]int64{0, 1}); v.Signed() != 0 {
		t.Error("insert mutated the original tensor")
	}
	if v, _ := tn2.At([]int64{0, 1}); v.Signed() != 9 {
		t.Error("insert did not update the copy")
	}
}

func TestEmptyTensorDefinedness(t *testing.T) {
	tn := EmptyTensor([]int64{2}, ir.I64)
	if tn.Defined() {
		t.Error("tensor.empty result must be undef")
	}
	filled, err := tn.Insert([]int64{0}, NewInt(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if filled.Defined() {
		t.Error("partially-initialised tensor is still not fully defined")
	}
	filled, err = filled.Insert([]int64{1}, NewInt(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !filled.Defined() {
		t.Error("fully-initialised tensor should be defined")
	}
}

func TestTensorString(t *testing.T) {
	tn := NewTensor([]int64{2, 2}, ir.I64, NewInt(64, 0))
	tn, _ = tn.Insert([]int64{0, 0}, NewInt(64, 1))
	tn, _ = tn.Insert([]int64{0, 1}, NewInt(64, 2))
	tn, _ = tn.Insert([]int64{1, 0}, NewInt(64, 3))
	tn, _ = tn.Insert([]int64{1, 1}, NewInt(64, 4))
	want := "( ( 1, 2 ), ( 3, 4 ) )"
	if got := tn.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	scalar := NewTensor(nil, ir.I64, NewInt(64, 5))
	if got := scalar.String(); got != "5" {
		t.Errorf("rank-0 String = %q", got)
	}
}

func TestTensorEqual(t *testing.T) {
	a := NewTensor([]int64{2}, ir.I64, NewInt(64, 1))
	b := NewTensor([]int64{2}, ir.I64, NewInt(64, 1))
	if !a.Equal(b) {
		t.Error("equal tensors")
	}
	c, _ := b.Insert([]int64{0}, NewInt(64, 2))
	if a.Equal(c) {
		t.Error("different elements")
	}
	d := NewTensor([]int64{2, 1}, ir.I64, NewInt(64, 1))
	if a.Equal(d) {
		t.Error("different shapes")
	}
	e := NewTensor([]int64{2}, ir.I32, NewInt(32, 1))
	if a.Equal(e) {
		t.Error("different element types")
	}
	if !Equal(a, b) || Equal(a, NewInt(64, 1)) {
		t.Error("Equal dispatch wrong")
	}
	if !Equal(NewInt(8, 3), NewInt(8, 3)) || Equal(NewInt(8, 3), NewInt(8, 4)) {
		t.Error("Equal on ints wrong")
	}
}

func TestFromAttr(t *testing.T) {
	a := ir.DenseAttr([]int64{1, 2, 3, 4}, ir.TensorOf([]int64{2, 2}, ir.I64))
	tn, err := FromAttr(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tn.At([]int64{1, 0}); v.Signed() != 3 {
		t.Errorf("element (1,0) = %d", v.Signed())
	}

	sp, err := FromAttr(ir.SplatAttr(-1, ir.TensorOf([]int64{3}, ir.I8)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if v, _ := sp.At([]int64{i}); v.Signed() != -1 {
			t.Errorf("splat element %d = %d", i, v.Signed())
		}
	}

	if _, err := FromAttr(ir.DenseAttr([]int64{1}, ir.TensorOf([]int64{2}, ir.I64))); err == nil {
		t.Error("count mismatch should error")
	}
	if _, err := FromAttr(ir.DenseAttr([]int64{1}, ir.TensorOf([]int64{ir.DynamicSize}, ir.I64))); err == nil {
		t.Error("dynamic shape should error")
	}
}
