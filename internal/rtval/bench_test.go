package rtval

import (
	"testing"

	"ratte/internal/ir"
)

// Component micro-benchmarks for the value domain — these operations
// run once per interpreted instruction, so they are the floor of
// interpreter throughput.
func BenchmarkIntArithmetic(b *testing.B) {
	x, y := NewInt(64, 123456789), NewInt(64, -987654321)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y).Mul(y).Sub(x).Xor(y)
	}
}

func BenchmarkIntDivision(b *testing.B) {
	x, y := NewInt(64, 123456789), NewInt(64, -97)
	for i := 0; i < b.N; i++ {
		if _, err := x.FloorDivS(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulExtended(b *testing.B) {
	x, y := NewInt(64, -123456789), NewInt(64, 987654321)
	for i := 0; i < b.N; i++ {
		_, _ = x.MulSIExtended(y)
	}
}

func BenchmarkTensorInsert(b *testing.B) {
	t := NewTensor([]int64{4, 4}, ir.I64, NewInt(64, 0))
	v := NewInt(64, 7)
	idx := []int64{2, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nt, err := t.Insert(idx, v)
		if err != nil {
			b.Fatal(err)
		}
		_ = nt
	}
}
