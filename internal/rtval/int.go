// Package rtval implements the runtime value domain of Ratte's reference
// semantics: arbitrary-width two's-complement integers (the arith and
// index scalar types) and ranked tensors with per-element definedness.
//
// The pure operations on Int correspond to the paper's type interfaces
// (Figure 10): everything a dialect semantics may compute on a value
// without side effects lives here, so dialect kernels can be written
// against this package rather than against concrete machine types.
//
// Undefined behaviour is reported eagerly via *UBError: the reference
// interpreter rejects UB instead of producing a value, which is what lets
// the generator guarantee UB-freedom and the differential oracle treat
// every output mismatch as a bug.
package rtval

import (
	"fmt"
	"math/bits"

	"ratte/internal/ir"
)

// UBError describes an undefined behaviour encountered while evaluating
// an operation, such as division by zero or signed-division overflow.
type UBError struct {
	Op     string // operation that triggered the UB, e.g. "arith.divsi"
	Reason string // human-readable description
}

func (e *UBError) Error() string {
	if e.Op == "" {
		return "undefined behaviour: " + e.Reason
	}
	return "undefined behaviour in " + e.Op + ": " + e.Reason
}

// TrapError describes a deterministic runtime failure (e.g. an
// out-of-bounds tensor.extract, or a failed tensor.cast). Traps are
// distinct from UB: a correct compiler must preserve a trap, but Ratte's
// generators avoid producing either.
type TrapError struct {
	Op     string
	Reason string
}

func (e *TrapError) Error() string {
	return "runtime trap in " + e.Op + ": " + e.Reason
}

// Int is a signless integer value of a given bit width in two's
// complement, covering both the iN types (Width=N) and index
// (Width=64, IsIndex=true). The zero value is an i0-like invalid value;
// construct Ints via NewInt, NewIndex or Bool.
type Int struct {
	width   uint
	isIndex bool
	bits    uint64 // masked to width
	undef   bool   // true when the value is not well-defined
}

// NewInt builds an integer value of the given width from a 64-bit
// pattern; bits outside the width are discarded.
func NewInt(width uint, v int64) Int {
	return Int{width: width, bits: uint64(v) & mask(width)}
}

// NewIndex builds an index value (modelled as 64-bit).
func NewIndex(v int64) Int {
	return Int{width: 64, isIndex: true, bits: uint64(v)}
}

// Bool builds an i1 value.
func Bool(b bool) Int {
	if b {
		return NewInt(1, 1)
	}
	return NewInt(1, 0)
}

// UndefInt builds a not-well-defined integer of the given type, as
// produced by reading uninitialised storage (e.g. tensor.empty).
func UndefInt(t ir.Type) Int {
	w, _ := ir.BitWidth(t)
	_, isIdx := t.(ir.IndexType)
	return Int{width: w, isIndex: isIdx, undef: true}
}

func mask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Width returns the bit width (64 for index).
func (x Int) Width() uint { return x.width }

// IsIndex reports whether the value has index type.
func (x Int) IsIndex() bool { return x.isIndex }

// Type returns the IR type of the value.
func (x Int) Type() ir.Type {
	if x.isIndex {
		return ir.Index
	}
	return ir.I(x.width)
}

// Defined reports whether the value is well-defined.
func (x Int) Defined() bool { return !x.undef }

// Bits returns the raw zero-extended bit pattern.
func (x Int) Bits() uint64 { return x.bits }

// Signed returns the value interpreted as a signed two's-complement
// integer (sign-extended to 64 bits).
func (x Int) Signed() int64 {
	if x.width == 0 {
		return 0
	}
	if x.width < 64 && x.bits&(uint64(1)<<(x.width-1)) != 0 {
		return int64(x.bits | ^mask(x.width))
	}
	return int64(x.bits)
}

// Unsigned returns the value interpreted as unsigned.
func (x Int) Unsigned() uint64 { return x.bits }

// IsZero reports whether all bits are zero.
func (x Int) IsZero() bool { return x.bits == 0 }

// IsTrue reports whether an i1 value is 1.
func (x Int) IsTrue() bool { return x.bits != 0 }

// MinSigned returns the smallest signed value of width w (e.g. -2^63).
func MinSigned(w uint) int64 {
	return -(int64(1) << (w - 1))
}

// MaxSigned returns the largest signed value of width w.
func MaxSigned(w uint) int64 {
	return int64(1)<<(w-1) - 1
}

// MaxUnsigned returns the largest unsigned value of width w.
func MaxUnsigned(w uint) uint64 { return mask(w) }

// String renders the value the way vector.print renders scalars:
// signed decimal for integers and index.
func (x Int) String() string {
	if x.undef {
		return "undef"
	}
	return fmt.Sprintf("%d", x.Signed())
}

// Equal reports whether two Ints have the same type, definedness and bits.
func (x Int) Equal(y Int) bool {
	return x.width == y.width && x.isIndex == y.isIndex &&
		x.undef == y.undef && (x.undef || x.bits == y.bits)
}

// sameType builds a result value of x's type from a raw pattern.
func (x Int) make(bits uint64) Int {
	return Int{width: x.width, isIndex: x.isIndex, bits: bits & mask(x.width)}
}

func (x Int) propagateUndef(y Int, bits uint64) Int {
	r := x.make(bits)
	r.undef = x.undef || y.undef
	return r
}

// Add returns x+y with wraparound.
func (x Int) Add(y Int) Int { return x.propagateUndef(y, x.bits+y.bits) }

// Sub returns x-y with wraparound.
func (x Int) Sub(y Int) Int { return x.propagateUndef(y, x.bits-y.bits) }

// Mul returns x*y with wraparound.
func (x Int) Mul(y Int) Int { return x.propagateUndef(y, x.bits*y.bits) }

// Neg returns -x with wraparound.
func (x Int) Neg() Int {
	r := x.make(-x.bits)
	r.undef = x.undef
	return r
}

// DivS implements arith.divsi: signed division rounding toward zero.
// Division by zero and MIN/-1 overflow are UB.
func (x Int) DivS(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.divsi", Reason: "division by zero"}
	}
	a, b := x.Signed(), y.Signed()
	if a == MinSigned(x.width) && b == -1 {
		return Int{}, &UBError{Op: "arith.divsi", Reason: "signed division overflow"}
	}
	return x.propagateUndef(y, uint64(a/b)), nil
}

// DivU implements arith.divui: unsigned division. Division by zero is UB.
func (x Int) DivU(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.divui", Reason: "division by zero"}
	}
	return x.propagateUndef(y, x.bits/y.bits), nil
}

// RemS implements arith.remsi. Division by zero is UB; like LLVM's srem,
// the MIN%-1 case is also UB.
func (x Int) RemS(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.remsi", Reason: "remainder by zero"}
	}
	a, b := x.Signed(), y.Signed()
	if a == MinSigned(x.width) && b == -1 {
		return Int{}, &UBError{Op: "arith.remsi", Reason: "signed remainder overflow"}
	}
	return x.propagateUndef(y, uint64(a%b)), nil
}

// RemU implements arith.remui. Division by zero is UB.
func (x Int) RemU(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.remui", Reason: "remainder by zero"}
	}
	return x.propagateUndef(y, x.bits%y.bits), nil
}

// CeilDivS implements arith.ceildivsi: signed division rounding toward
// positive infinity. Division by zero and MIN/-1 are UB.
func (x Int) CeilDivS(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.ceildivsi", Reason: "division by zero"}
	}
	a, b := x.Signed(), y.Signed()
	if a == MinSigned(x.width) && b == -1 {
		return Int{}, &UBError{Op: "arith.ceildivsi", Reason: "signed division overflow"}
	}
	q := a / b
	if (a%b != 0) && ((a > 0) == (b > 0)) {
		q++
	}
	return x.propagateUndef(y, uint64(q)), nil
}

// FloorDivS implements arith.floordivsi: signed division rounding toward
// negative infinity. Division by zero and MIN/-1 are UB.
func (x Int) FloorDivS(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.floordivsi", Reason: "division by zero"}
	}
	a, b := x.Signed(), y.Signed()
	if a == MinSigned(x.width) && b == -1 {
		return Int{}, &UBError{Op: "arith.floordivsi", Reason: "signed division overflow"}
	}
	q := a / b
	if (a%b != 0) && ((a > 0) != (b > 0)) {
		q--
	}
	return x.propagateUndef(y, uint64(q)), nil
}

// CeilDivU implements arith.ceildivui: unsigned division rounding up.
// Division by zero is UB.
func (x Int) CeilDivU(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, &UBError{Op: "arith.ceildivui", Reason: "division by zero"}
	}
	q := x.bits / y.bits
	if x.bits%y.bits != 0 {
		q++
	}
	return x.propagateUndef(y, q), nil
}

// ShL implements arith.shli. A shift amount >= width is UB (the
// LLVM-semantics reading the Ratte spec work established for arith).
func (x Int) ShL(y Int) (Int, error) {
	if y.Unsigned() >= uint64(x.width) {
		return Int{}, &UBError{Op: "arith.shli", Reason: "shift amount past bit width"}
	}
	return x.propagateUndef(y, x.bits<<y.Unsigned()), nil
}

// ShRU implements arith.shrui (logical shift right). Shift >= width is UB.
func (x Int) ShRU(y Int) (Int, error) {
	if y.Unsigned() >= uint64(x.width) {
		return Int{}, &UBError{Op: "arith.shrui", Reason: "shift amount past bit width"}
	}
	return x.propagateUndef(y, x.bits>>y.Unsigned()), nil
}

// ShRS implements arith.shrsi (arithmetic shift right). Shift >= width
// is UB.
func (x Int) ShRS(y Int) (Int, error) {
	if y.Unsigned() >= uint64(x.width) {
		return Int{}, &UBError{Op: "arith.shrsi", Reason: "shift amount past bit width"}
	}
	return x.propagateUndef(y, uint64(x.Signed()>>y.Unsigned())), nil
}

// And returns the bitwise AND.
func (x Int) And(y Int) Int { return x.propagateUndef(y, x.bits&y.bits) }

// Or returns the bitwise OR.
func (x Int) Or(y Int) Int { return x.propagateUndef(y, x.bits|y.bits) }

// Xor returns the bitwise XOR.
func (x Int) Xor(y Int) Int { return x.propagateUndef(y, x.bits^y.bits) }

// MinS returns the signed minimum.
func (x Int) MinS(y Int) Int {
	if x.Signed() <= y.Signed() {
		return x.propagateUndef(y, x.bits)
	}
	return x.propagateUndef(y, y.bits)
}

// MaxS returns the signed maximum.
func (x Int) MaxS(y Int) Int {
	if x.Signed() >= y.Signed() {
		return x.propagateUndef(y, x.bits)
	}
	return x.propagateUndef(y, y.bits)
}

// MinU returns the unsigned minimum.
func (x Int) MinU(y Int) Int {
	if x.bits <= y.bits {
		return x.propagateUndef(y, x.bits)
	}
	return x.propagateUndef(y, y.bits)
}

// MaxU returns the unsigned maximum.
func (x Int) MaxU(y Int) Int {
	if x.bits >= y.bits {
		return x.propagateUndef(y, x.bits)
	}
	return x.propagateUndef(y, y.bits)
}

// CmpPredicate enumerates arith.cmpi predicates, numbered as in MLIR.
type CmpPredicate int

// The arith.cmpi predicates.
const (
	CmpEQ  CmpPredicate = 0
	CmpNE  CmpPredicate = 1
	CmpSLT CmpPredicate = 2
	CmpSLE CmpPredicate = 3
	CmpSGT CmpPredicate = 4
	CmpSGE CmpPredicate = 5
	CmpULT CmpPredicate = 6
	CmpULE CmpPredicate = 7
	CmpUGT CmpPredicate = 8
	CmpUGE CmpPredicate = 9
)

var cmpNames = map[CmpPredicate]string{
	CmpEQ: "eq", CmpNE: "ne",
	CmpSLT: "slt", CmpSLE: "sle", CmpSGT: "sgt", CmpSGE: "sge",
	CmpULT: "ult", CmpULE: "ule", CmpUGT: "ugt", CmpUGE: "uge",
}

func (p CmpPredicate) String() string {
	if s, ok := cmpNames[p]; ok {
		return s
	}
	return fmt.Sprintf("cmp(%d)", int(p))
}

// Valid reports whether p is a defined predicate.
func (p CmpPredicate) Valid() bool { _, ok := cmpNames[p]; return ok }

// Cmp implements arith.cmpi, returning an i1.
func (x Int) Cmp(p CmpPredicate, y Int) (Int, error) {
	var r bool
	switch p {
	case CmpEQ:
		r = x.bits == y.bits
	case CmpNE:
		r = x.bits != y.bits
	case CmpSLT:
		r = x.Signed() < y.Signed()
	case CmpSLE:
		r = x.Signed() <= y.Signed()
	case CmpSGT:
		r = x.Signed() > y.Signed()
	case CmpSGE:
		r = x.Signed() >= y.Signed()
	case CmpULT:
		r = x.bits < y.bits
	case CmpULE:
		r = x.bits <= y.bits
	case CmpUGT:
		r = x.bits > y.bits
	case CmpUGE:
		r = x.bits >= y.bits
	default:
		return Int{}, fmt.Errorf("rtval: invalid cmpi predicate %d", int(p))
	}
	res := Bool(r)
	res.undef = x.undef || y.undef
	return res, nil
}

// ExtS implements arith.extsi: sign extension to a wider type.
func (x Int) ExtS(to uint) Int {
	r := NewInt(to, x.Signed())
	r.undef = x.undef
	return r
}

// ExtU implements arith.extui: zero extension to a wider type.
func (x Int) ExtU(to uint) Int {
	r := NewInt(to, int64(x.bits))
	r.undef = x.undef
	return r
}

// Trunc implements arith.trunci: truncation to a narrower type.
func (x Int) Trunc(to uint) Int {
	r := NewInt(to, int64(x.bits))
	r.undef = x.undef
	return r
}

// IndexCast implements arith.index_cast: a sign-extending (or
// truncating) conversion between index and integer types.
func (x Int) IndexCast(to ir.Type) Int {
	var r Int
	switch t := to.(type) {
	case ir.IndexType:
		r = NewIndex(x.Signed())
	case ir.IntegerType:
		r = NewInt(t.Width, x.Signed())
	default:
		panic(fmt.Sprintf("rtval: index_cast to non-scalar type %v", to))
	}
	r.undef = x.undef
	return r
}

// IndexCastU implements arith.index_castui: a zero-extending (or
// truncating) conversion between index and integer types.
func (x Int) IndexCastU(to ir.Type) Int {
	var r Int
	switch t := to.(type) {
	case ir.IndexType:
		r = NewIndex(int64(x.bits))
	case ir.IntegerType:
		r = NewInt(t.Width, int64(x.bits))
	default:
		panic(fmt.Sprintf("rtval: index_castui to non-scalar type %v", to))
	}
	r.undef = x.undef
	return r
}

// AddUIExtended implements arith.addui_extended, returning the wrapped
// sum and an i1 overflow (carry) flag.
func (x Int) AddUIExtended(y Int) (sum, overflow Int) {
	s := x.bits + y.bits
	var carry bool
	if x.width < 64 {
		// The unmasked sum cannot wrap uint64, so the carry is simply
		// whether the sum exceeded the width's range.
		carry = s > mask(x.width)
	} else {
		carry = s < x.bits
	}
	sum = x.propagateUndef(y, s)
	overflow = Bool(carry)
	overflow.undef = sum.undef
	return sum, overflow
}

// MulSIExtended implements arith.mulsi_extended, returning the low and
// high halves of the full 2N-bit signed product.
func (x Int) MulSIExtended(y Int) (low, high Int) {
	lo, hi := mulFull(uint64(x.Signed()), uint64(y.Signed()))
	low = x.propagateUndef(y, lo)
	high = x.propagateUndef(y, extractHigh(lo, hi, x.width))
	return low, high
}

// MulUIExtended implements arith.mului_extended, returning the low and
// high halves of the full 2N-bit unsigned product.
func (x Int) MulUIExtended(y Int) (low, high Int) {
	lo, hi := umulFull(x.bits, y.bits)
	low = x.propagateUndef(y, lo)
	high = x.propagateUndef(y, extractHigh(lo, hi, x.width))
	return low, high
}

// Select implements arith.select on scalars.
func (x Int) Select(onTrue, onFalse Int) Int {
	var r Int
	if x.IsTrue() {
		r = onTrue
	} else {
		r = onFalse
	}
	r.undef = r.undef || x.undef
	return r
}

// extractHigh returns bits [w, 2w) of a 128-bit product (lo, hi): the
// "high" result of the extended-multiplication ops for width w.
func extractHigh(lo, hi uint64, w uint) uint64 {
	if w == 64 {
		return hi
	}
	return ((lo >> w) | (hi << (64 - w))) & mask(w)
}

// mulFull computes the 128-bit signed product of two sign-extended
// 64-bit patterns, returning (low64, high64).
func mulFull(a, b uint64) (lo, hi uint64) {
	lo, hi = umulFull(a, b)
	// Convert unsigned 128-bit product to signed: subtract the
	// corrections for negative operands.
	if int64(a) < 0 {
		hi -= b
	}
	if int64(b) < 0 {
		hi -= a
	}
	return lo, hi
}

// umulFull computes the 128-bit unsigned product of two 64-bit values.
func umulFull(a, b uint64) (lo, hi uint64) {
	hi, lo = bits.Mul64(a, b)
	return lo, hi
}
