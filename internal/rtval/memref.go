package rtval

import (
	"fmt"

	"ratte/internal/ir"
)

// MemRef is a reference to a mutable buffer owned by an interpreter
// context. MemRefs appear only in lowered (bufferised) programs; the
// reference semantics of the source dialects are tensor-based.
type MemRef struct {
	Handle int64
	Shape  []int64
	Elem   ir.Type
}

// Type returns the concrete memref type.
func (m MemRef) Type() ir.Type { return ir.MemRefOf(m.Shape, m.Elem) }

// Defined reports true: the reference itself is always defined (its
// contents carry their own definedness).
func (m MemRef) Defined() bool { return true }

func (m MemRef) String() string { return fmt.Sprintf("memref@%d", m.Handle) }

// NumElements returns the number of elements in the buffer.
func (m MemRef) NumElements() int64 {
	n := int64(1)
	for _, d := range m.Shape {
		n *= d
	}
	return n
}

// Offset converts a multi-dimensional index to a row-major offset,
// trapping when out of bounds.
func (m MemRef) Offset(idx []int64) (int64, error) {
	if len(idx) != len(m.Shape) {
		return 0, &TrapError{Op: "memref", Reason: fmt.Sprintf("rank mismatch: %d indices into rank-%d memref", len(idx), len(m.Shape))}
	}
	off := int64(0)
	for i, x := range idx {
		if x < 0 || x >= m.Shape[i] {
			return 0, &TrapError{Op: "memref", Reason: fmt.Sprintf("index %d out of bounds for dim %d of size %d", x, i, m.Shape[i])}
		}
		off = off*m.Shape[i] + x
	}
	return off, nil
}

var _ Value = MemRef{}
