package reduce_test

import (
	"reflect"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/reduce"
)

// planFires reports whether the (program, plan) pair still diverges
// from the reference under the given bug set — the interestingness
// predicate a plan-mode campaign hands the reducer.
func planFires(bugSet bugs.Set) reduce.PlanPredicate {
	return func(m *ir.Module, p compiler.Plan) bool {
		ref, err := dialects.NewReferenceInterpreter().Run(m, "main")
		if err != nil {
			return false
		}
		outs := compiler.CompilePlans(m, []compiler.Plan{p}, bugSet)
		if outs[0].Err != nil {
			return true // wrong rejection still fires NC
		}
		res, err := dialects.NewExecutor().Run(outs[0].Module, "main")
		if err != nil {
			return true
		}
		return res.Output != ref.Output
	}
}

// findPlanDivergence scans seeds for a program the bare-skeleton plan
// miscompiles under bug 6 (the direct ceildivsi conversion).
func findPlanDivergence(t *testing.T) (*ir.Module, compiler.Plan) {
	t.Helper()
	skel, err := compiler.PlanSkeleton("ariths")
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately fat plan: the optional passes are noise the
	// reducer must strip.
	plan := compiler.Plan{Preset: "ariths", Passes: append([]string{
		"canonicalize", "canonicalize", "cse",
	}, skel...)}
	plan.Passes = append(plan.Passes, "remove-dead-values")
	if err := compiler.ValidatePlan(plan); err != nil {
		t.Fatal(err)
	}
	fires := planFires(bugs.Only(bugs.CeilDivSiConvert))
	for seed := int64(0); seed < 300; seed++ {
		prog, err := gen.Generate(gen.Config{Preset: "ariths", Size: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if fires(prog.Module, plan) {
			return prog.Module, plan
		}
	}
	t.Fatal("no divergent (program, plan) pair in 300 seeds")
	return nil, compiler.Plan{}
}

func TestProgramPlanShrinksBothAxes(t *testing.T) {
	m, plan := findPlanDivergence(t)
	pred := planFires(bugs.Only(bugs.CeilDivSiConvert))
	minM, minP := reduce.ProgramPlan(m, plan, pred)

	if !pred(minM, minP) {
		t.Fatal("reduced pair no longer fires")
	}
	if err := compiler.ValidatePlan(minP); err != nil {
		t.Fatalf("reduced plan illegal: %v", err)
	}
	// Plan axis: bug 6 fires precisely without arith-expand, and no
	// optional pass is needed to trigger it — the minimal plan is the
	// bare skeleton.
	skel, _ := compiler.PlanSkeleton("ariths")
	if !reflect.DeepEqual(minP.Passes, skel) {
		t.Errorf("plan reduced to %v, want bare skeleton %v", minP.Passes, skel)
	}
	// Module axis: strictly fewer ops than the original.
	if got, was := countOps(minM), countOps(m); got >= was {
		t.Errorf("module not reduced: %d ops, was %d", got, was)
	}
}

func TestProgramPlanUninterestingPairUnchanged(t *testing.T) {
	prog, err := gen.Generate(gen.Config{Preset: "ariths", Size: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	skel, _ := compiler.PlanSkeleton("ariths")
	plan := compiler.Plan{Preset: "ariths", Passes: append([]string{"cse"}, skel...)}
	m2, p2 := reduce.ProgramPlan(prog.Module, plan, func(*ir.Module, compiler.Plan) bool { return false })
	if m2 != prog.Module || !reflect.DeepEqual(p2, plan) {
		t.Error("uninteresting pair was modified")
	}
}

func countOps(m *ir.Module) int {
	n := 0
	m.Walk(func(*ir.Operation) bool { n++; return true })
	return n
}
