package reduce_test

import (
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/reduce"
	"ratte/internal/verify"
)

func TestReduceRemovesDeadCode(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %dead1 = "arith.addi"(%a, %b) : (i64, i64) -> (i64)
    %dead2 = "arith.muli"(%a, %a) : (i64, i64) -> (i64)
    "vector.print"(%a) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "unused", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumOps()
	// Interesting = "still prints 1".
	pred := func(c *ir.Module) bool {
		res, err := dialects.NewReferenceInterpreter().Run(c, "main")
		return err == nil && res.Output == "1\n"
	}
	small := reduce.Module(m, pred)
	if got := small.NumOps(); got >= m.NumOps() {
		t.Errorf("no reduction: %d ops vs %d", got, m.NumOps())
	}
	if strings.Contains(ir.Print(small), "dead") {
		t.Errorf("dead ops survive:\n%s", ir.Print(small))
	}
	if small.Func("unused") != nil {
		t.Error("uncalled function survives")
	}
	if !pred(small) {
		t.Error("reduced module no longer interesting")
	}
	// The original module must be untouched.
	if m.NumOps() != before {
		t.Errorf("input module mutated: %d ops, was %d", m.NumOps(), before)
	}
}

func TestReduceKeepsPredicate(t *testing.T) {
	// End-to-end: reduce a generated bug-triggering program while the
	// bug keeps reproducing; the result must still verify and still
	// trigger the same oracle.
	res, err := difftest.RunCampaign(difftest.CampaignConfig{
		Preset:      "ariths",
		Programs:    300,
		Size:        30,
		Seed:        5000,
		Bugs:        bugs.Only(bugs.MulsiExtendedI1Fold),
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) == 0 {
		t.Skip("bug 5 not hit within the budget — covered by difftest tests")
	}
	d := res.Detections[0]
	pred := func(c *ir.Module) bool {
		if err := verify.Module(c, dialects.SourceSpecs()); err != nil {
			return false
		}
		ref, err := dialects.NewReferenceInterpreter().Run(c, "main")
		if err != nil {
			return false
		}
		rep := difftest.TestModule(c, ref.Output, "ariths", bugs.Only(bugs.MulsiExtendedI1Fold))
		return rep.Detected() == d.Oracle
	}
	small := reduce.Module(d.Program, pred)
	if small.NumOps() > d.Program.NumOps() {
		t.Error("reduction grew the module")
	}
	if !pred(small) {
		t.Fatalf("reduced module no longer triggers the bug:\n%s", ir.Print(small))
	}
	t.Logf("reduced %d ops to %d", d.Program.NumOps(), small.NumOps())
}

func TestReduceUninterestingInputUnchanged(t *testing.T) {
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := reduce.Module(p.Module, func(*ir.Module) bool { return false })
	if out != p.Module {
		t.Error("uninteresting module should be returned unchanged")
	}
}
