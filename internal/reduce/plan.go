// Two-axis reduction for plan-mode findings: a phase-ordering
// counterexample is a (program, plan) pair, and a useful reproducer is
// minimal on both axes. The plan axis shrinks first — dropping
// optional passes is cheap (each candidate is one recompile of one
// module) and every pass dropped shrinks the search space the module
// axis then works in — then the module shrinks under the already
// minimized plan.
package reduce

import (
	"ratte/internal/compiler"
	"ratte/internal/ir"
)

// PlanPredicate reports whether a candidate (program, plan) pair is
// still interesting (e.g. the plan-equivalence oracle still fires).
// It must be deterministic.
type PlanPredicate func(m *ir.Module, p compiler.Plan) bool

// ProgramPlan minimizes a failing (program, plan) pair while pred
// keeps holding: first the plan (adjacent idempotent duplicates
// collapsed, then optional passes greedily dropped — mandatory
// lowering stages are never touched, so every candidate plan is legal
// by construction), then the module under the minimized plan, then one
// more plan pass in case the smaller module freed further plan
// reductions. The inputs are not modified; pred(m, p) must be true on
// entry, otherwise the pair is returned unchanged.
func ProgramPlan(m *ir.Module, p compiler.Plan, pred PlanPredicate) (*ir.Module, compiler.Plan) {
	if !pred(m, p) {
		return m, p
	}
	cur := m
	plan := compiler.ShrinkPlan(p, func(cand compiler.Plan) bool {
		return pred(cur, cand)
	})
	cur = Module(cur, func(cand *ir.Module) bool {
		return pred(cand, plan)
	})
	plan = compiler.ShrinkPlan(plan, func(cand compiler.Plan) bool {
		return pred(cur, cand)
	})
	return cur, plan
}
