// Package reduce implements a delta-debugging test-case reducer for
// bug-triggering modules: it repeatedly removes operations (and whole
// helper functions) while an interestingness predicate — typically
// "this oracle still fires" — keeps holding. The paper's reduced test
// cases (Figures 2 and 12, and the per-bug "Detected With" isolation of
// Table 3) are products of this step.
package reduce

import (
	"ratte/internal/ir"
)

// Predicate reports whether a candidate module is still interesting
// (e.g. still triggers the miscompilation). It must be deterministic.
type Predicate func(m *ir.Module) bool

// TraceFunc observes one accepted reduction step: step counts from 1,
// and m is the (smaller) module the predicate just accepted. The module
// is live reducer state — observe it (print, count ops), don't mutate.
type TraceFunc func(step int, m *ir.Module)

// Module shrinks m while pred keeps holding, returning the smallest
// module found. The input module is not modified. pred(m) must be true
// on entry; otherwise m is returned unchanged.
func Module(m *ir.Module, pred Predicate) *ir.Module {
	return ModuleTrace(m, pred, nil)
}

// ModuleTrace is Module with a step observer: trace (if non-nil) is
// called after every accepted removal, so callers can assert or log
// that the predicate held at each intermediate stage of the reduction.
func ModuleTrace(m *ir.Module, pred Predicate, trace TraceFunc) *ir.Module {
	if !pred(m) {
		return m
	}
	step := 0
	observed := func(cand *ir.Module) bool {
		if !pred(cand) {
			return false
		}
		step++
		if trace != nil {
			trace(step, cand)
		}
		return true
	}
	cur := m.Clone()
	for {
		shrunk := false
		if next, ok := tryRemoveOps(cur, observed); ok {
			cur, shrunk = next, true
		}
		if next, ok := tryRemoveFuncs(cur, observed); ok {
			cur, shrunk = next, true
		}
		if !shrunk {
			return cur
		}
	}
}

// tryRemoveOps attempts to delete individual operations whose results
// are unused, scanning from the end (later ops are more likely dead
// once their consumers are gone). Print ops have no results and are
// always structurally removable.
func tryRemoveOps(m *ir.Module, pred Predicate) (*ir.Module, bool) {
	removedAny := false
	cur := m
	for {
		removed := false
		for _, f := range cur.Funcs() {
			uses := usedIDs(f)
			blocks := allBlocks(f)
			for bi, b := range blocks {
				for i := len(b.Ops) - 1; i >= 0; i-- {
					op := b.Ops[i]
					if isTerminator(op) {
						continue
					}
					if anyResultUsed(op, uses) {
						continue
					}
					cand := cur.Clone()
					deleteOpAt(cand, ir.FuncSymbol(f), bi, i)
					if pred(cand) {
						cur = cand
						removed, removedAny = true, true
						break
					}
				}
				if removed {
					break
				}
			}
			if removed {
				break
			}
		}
		if !removed {
			return cur, removedAny
		}
	}
}

// tryRemoveFuncs attempts to delete whole uncalled functions (except
// main).
func tryRemoveFuncs(m *ir.Module, pred Predicate) (*ir.Module, bool) {
	removedAny := false
	cur := m
	for {
		removed := false
		for i, op := range cur.Body().Ops {
			if op.Name != "func.func" || ir.FuncSymbol(op) == "main" {
				continue
			}
			if isCalled(cur, ir.FuncSymbol(op)) {
				continue
			}
			cand := cur.Clone()
			cand.Body().Ops = append(cand.Body().Ops[:i:i], cand.Body().Ops[i+1:]...)
			if pred(cand) {
				cur = cand
				removed, removedAny = true, true
				break
			}
		}
		if !removed {
			return cur, removedAny
		}
	}
}

func isCalled(m *ir.Module, sym string) bool {
	called := false
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "func.call" || op.Name == "llvm.call" {
			if s, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr); ok && s.Name == sym {
				called = true
				return false
			}
		}
		return true
	})
	return called
}

// deleteOpAt removes the op at position opIdx of the blockIdx-th block
// (in walk order) of the named function inside the clone. Clone
// preserves structure, so walk-order indices identify blocks stably.
func deleteOpAt(cand *ir.Module, funcSym string, blockIdx, opIdx int) {
	f := cand.Func(funcSym)
	if f == nil {
		return
	}
	blocks := allBlocks(f)
	if blockIdx >= len(blocks) {
		return
	}
	b := blocks[blockIdx]
	if opIdx >= len(b.Ops) {
		return
	}
	b.Ops = append(b.Ops[:opIdx:opIdx], b.Ops[opIdx+1:]...)
}

func allBlocks(f *ir.Operation) []*ir.Block {
	var bs []*ir.Block
	f.Walk(func(op *ir.Operation) bool {
		for _, r := range op.Regions {
			bs = append(bs, r.Blocks...)
		}
		return true
	})
	return bs
}

var terminators = map[string]bool{
	"func.return": true, "scf.yield": true, "linalg.yield": true,
	"tensor.yield": true, "cf.br": true, "cf.cond_br": true,
	"llvm.return": true,
}

func isTerminator(op *ir.Operation) bool { return terminators[op.Name] }

func usedIDs(f *ir.Operation) map[string]int {
	uses := make(map[string]int)
	f.Walk(func(op *ir.Operation) bool {
		for _, o := range op.Operands {
			uses[o.ID]++
		}
		for _, s := range op.Successors {
			for _, a := range s.Args {
				uses[a.ID]++
			}
		}
		return true
	})
	return uses
}

func anyResultUsed(op *ir.Operation, uses map[string]int) bool {
	for _, r := range op.Results {
		if uses[r.ID] > 0 {
			return true
		}
	}
	return false
}
