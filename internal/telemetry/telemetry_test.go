package telemetry

import (
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(100)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	var v *CounterVec
	v.Inc("x")
	v.Add("y", 2)
	if v.With("x") != nil {
		t.Fatal("nil vec handed out a counter")
	}
}

func TestNilRegistryHandsOutNilInstruments(t *testing.T) {
	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil ||
		r.Histogram("c", "") != nil || r.CounterVec("d", "l", "") != nil {
		t.Fatal("nil registry returned a live instrument")
	}
	r.GaugeFunc("e", "", func() int64 { return 1 }) // must not panic
	if got := r.PrometheusText(); got != "" {
		t.Fatalf("nil registry rendered %q", got)
	}
	if n := len(r.Snapshot()); n != 0 {
		t.Fatalf("nil registry snapshot has %d entries", n)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "h")
	b := r.Counter("hits", "h")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverged")
	}
	// Same name, different labels: distinct series.
	l1 := r.CounterWith("reqs", `code="200"`, "")
	l2 := r.CounterWith("reqs", `code="500"`, "")
	if l1 == l2 {
		t.Fatal("distinct label sets shared a counter")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops", "op", "ops by name")
	v.Inc("add")
	v.Inc("add")
	v.Add("mul", 3)
	if got := v.With("add").Value(); got != 2 {
		t.Fatalf("add = %d, want 2", got)
	}
	if got := v.With("mul").Value(); got != 3 {
		t.Fatalf("mul = %d, want 3", got)
	}
	// The vec's series share the family name in the registry.
	if r.CounterWith("ops", `op="add"`, "") != v.With("add") {
		t.Fatal("vec series not visible through the registry")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("lat", "")
	v := r.CounterVec("ops", "op", "")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i))
				v.Inc("x")
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if v.With("x").Value() != workers*perWorker {
		t.Fatalf("vec = %d, want %d", v.With("x").Value(), workers*perWorker)
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`a"b`:          `a\"b`,
		`a\b`:          `a\\b`,
		"a\nb":         `a\nb`,
		`mix"\` + "\n": `mix\"\\\n`,
	}
	for in, want := range cases {
		if got := escapeLabel(in); got != want {
			t.Errorf("escapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
