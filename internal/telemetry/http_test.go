package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ratte_test_total", "a counter").Add(3)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "ratte_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	// Serve registers process gauges on the registry.
	if !strings.Contains(body, "ratte_process_goroutines") {
		t.Error("/metrics missing process metrics")
	}

	body, ctype = get("/debug/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if vars["ratte_test_total"].(float64) != 3 {
		t.Errorf("/debug/vars counter = %v", vars["ratte_test_total"])
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
	body, _ = get("/debug/pprof/goroutine?debug=1")
	if !strings.Contains(body, "goroutine profile") {
		t.Errorf("goroutine profile malformed:\n%.200s", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}
