// Package telemetry is the observability substrate of the fuzzing
// pipeline: a low-overhead, concurrency-safe metrics registry
// (counters, gauges, fixed-bucket latency histograms), a ring-buffered
// span recorder for per-stage tracing, and exporters for the
// Prometheus text format and JSON snapshots, served live over HTTP
// when a campaign runs with -metrics-addr.
//
// Two properties shape every type here:
//
//   - Nil safety. Every instrument is useful as a nil pointer: a nil
//     *Counter's Inc is a no-op, a nil *Registry hands out nil
//     instruments, a nil *SpanRecorder records nothing. Code under
//     instrumentation therefore carries no "is telemetry on?"
//     branching of its own, and the disabled path costs a nil check —
//     zero allocations, which internal/interp's alloc guard pins.
//
//   - Observation only. Instruments never feed back into the work they
//     measure: a campaign run with telemetry enabled produces the
//     byte-identical report of a run with it disabled, serial or
//     parallel (the difftest determinism guard asserts this). Hot-path
//     updates are single atomic operations; no instrument takes a lock
//     on the update path.
//
// The package depends only on the standard library, so every layer of
// the pipeline (gen, compiler, interp, difftest, faultinject) may
// instrument itself without import cycles.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready
// to use; a nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates registry entries at export time.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument: a name, optional constant
// labels (rendered as `k="v",...`), and exactly one live value source.
type metric struct {
	name   string
	labels string // pre-rendered, without braces; "" when unlabelled
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	gf     func() int64
	h      *Histogram
}

// Registry holds named instruments and renders them for export. A nil
// *Registry hands out nil instruments, so "telemetry off" is spelled
// by simply not constructing one. Registration takes a lock; updates
// to the returned instruments never do.
//
// There is one process-wide Default registry (package-level collectors
// and the CLIs use it) and any number of private instances (each
// campaign gets its own, so concurrent campaigns don't mix counts).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// defaultRegistry is the process-wide registry.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup returns the metric registered under (name, labels), creating
// it with mk on first use. Re-registration returns the same entry, so
// instrument construction is idempotent.
func (r *Registry) lookup(name, labels, help string, mk func() *metric) *metric {
	key := name
	if labels != "" {
		key += "{" + labels + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		return m
	}
	m := mk()
	m.name, m.labels, m.help = name, labels, help
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, "", help)
}

// CounterWith is Counter with pre-rendered constant labels
// (`k="v",...`), the primitive CounterVec builds on.
func (r *Registry) CounterWith(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, help, func() *metric {
		return &metric{kind: kindCounter, c: &Counter{}}
	})
	return m.c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, "", help)
}

// GaugeWith is Gauge with pre-rendered constant labels.
func (r *Registry) GaugeWith(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, help, func() *metric {
		return &metric{kind: kindGauge, g: &Gauge{}}
	})
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time — the zero-hot-path-cost way to expose state a subsystem
// already tracks (cache sizes, journal bytes). fn must be safe to call
// from any goroutine. A nil registry ignores the registration.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.GaugeFuncWith(name, "", help, fn)
}

// GaugeFuncWith is GaugeFunc with pre-rendered constant labels.
func (r *Registry) GaugeFuncWith(name, labels, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.lookup(name, labels, help, func() *metric {
		return &metric{kind: kindGaugeFunc, gf: fn}
	})
}

// Histogram returns the named latency histogram, creating it on first
// use. A nil registry returns nil.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWith(name, "", help)
}

// HistogramWith is Histogram with pre-rendered constant labels.
func (r *Registry) HistogramWith(name, labels, help string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, help, func() *metric {
		return &metric{kind: kindHistogram, h: &Histogram{}}
	})
	return m.h
}

// snapshot returns the registered metrics sorted by (name, labels) —
// the deterministic export order.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// Counters returns every registered counter's current value keyed by
// its series name (`name` or `name{labels}`) — the process-portable
// form a fleet worker attaches to shard uploads so the coordinator
// can merge deltas by series. Gauges, gauge funcs and histograms are
// excluded: they describe the process that recorded them, not the
// campaign's work, and do not sum meaningfully across workers. A nil
// registry returns nil.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, m := range r.snapshot() {
		if m.kind == kindCounter {
			out[series(m.name, m.labels, "")] = m.c.Value()
		}
	}
	return out
}

// CounterVec is a family of counters sharing one metric name and
// distinguished by a single label — e.g. generated operations by op
// name, verdicts by kind. The per-label counter is resolved through a
// lock-free cache after first use, so the hot path is one sync.Map
// load plus one atomic add. A nil CounterVec is a no-op.
type CounterVec struct {
	reg   *Registry
	name  string
	label string
	help  string
	cache sync.Map // label value -> *Counter
}

// CounterVec returns a labelled counter family. A nil registry returns
// nil (a no-op vec).
func (r *Registry) CounterVec(name, label, help string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, name: name, label: label, help: help}
}

// With returns the counter for one label value, creating it on first
// use. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.cache.Load(value); ok {
		return c.(*Counter)
	}
	c := v.reg.CounterWith(v.name, v.label+`="`+escapeLabel(value)+`"`, v.help)
	actual, _ := v.cache.LoadOrStore(value, c)
	return actual.(*Counter)
}

// Inc adds 1 to the counter for the given label value. Nil-safe.
func (v *CounterVec) Inc(value string) {
	v.With(value).Inc()
}

// Add adds n to the counter for the given label value. Nil-safe.
func (v *CounterVec) Add(value string, n uint64) {
	v.With(value).Add(n)
}

// escapeLabel escapes a label value per the Prometheus exposition
// rules (backslash, double-quote, newline).
func escapeLabel(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '"' || s[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
