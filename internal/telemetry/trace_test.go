package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanRecorder(t *testing.T) {
	var r *SpanRecorder
	r.Record(1, "compile", time.Millisecond, "ok")
	r.SeedDone(1, "ok")
	if r.Spans() != nil || r.SlowestSeeds(5) != nil || r.StageStats() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.ReportSection(5) != "" {
		t.Fatal("nil recorder rendered a report")
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(int64(i), "s", time.Duration(i), "")
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first: seeds 2,3,4,5 survive.
	for i, sp := range spans {
		if sp.Seed != int64(i+2) {
			t.Fatalf("span %d has seed %d, want %d", i, sp.Seed, i+2)
		}
	}
}

func TestStageStatsAggregation(t *testing.T) {
	r := NewSpanRecorder(16)
	r.Record(1, "compile", 10*time.Millisecond, "ok")
	r.Record(2, "compile", 30*time.Millisecond, "ok")
	r.Record(1, "interpret", 5*time.Millisecond, "panic")
	stats := r.StageStats()
	if len(stats) != 2 {
		t.Fatalf("got %d stages, want 2", len(stats))
	}
	// Sorted by total descending: compile (40ms) first.
	if stats[0].Stage != "compile" || stats[0].Count != 2 ||
		stats[0].Total != 40*time.Millisecond || stats[0].Max != 30*time.Millisecond ||
		stats[0].Mean != 20*time.Millisecond {
		t.Fatalf("compile row = %+v", stats[0])
	}
	if stats[1].Stage != "interpret" || stats[1].Count != 1 {
		t.Fatalf("interpret row = %+v", stats[1])
	}
}

func TestSlowestSeedsLeaderboard(t *testing.T) {
	r := NewSpanRecorder(16)
	// Seed cost accumulates across stages until SeedDone.
	r.Record(7, "compile", 10*time.Millisecond, "ok")
	r.Record(7, "interpret", 15*time.Millisecond, "ok")
	r.Record(8, "compile", 5*time.Millisecond, "ok")
	r.SeedDone(7, "ok")
	r.SeedDone(8, "detection")
	// A seed never finalized stays out of the leaderboard.
	r.Record(9, "compile", time.Hour, "ok")

	slow := r.SlowestSeeds(10)
	if len(slow) != 2 {
		t.Fatalf("leaderboard has %d entries, want 2", len(slow))
	}
	if slow[0].Seed != 7 || slow[0].Total != 25*time.Millisecond {
		t.Fatalf("slowest = %+v, want seed 7 at 25ms", slow[0])
	}
	if slow[1].Seed != 8 || slow[1].Outcome != "detection" {
		t.Fatalf("second = %+v", slow[1])
	}
	// SeedDone twice is harmless: the second call finds no pending time.
	r.SeedDone(7, "ok")
	if len(r.SlowestSeeds(10)) != 2 {
		t.Fatal("duplicate SeedDone added an entry")
	}
}

func TestSlowestSeedsBounded(t *testing.T) {
	r := NewSpanRecorder(16)
	for i := 0; i < defaultSlowestTracked+20; i++ {
		r.Record(int64(i), "s", time.Duration(i+1)*time.Microsecond, "")
		r.SeedDone(int64(i), "ok")
	}
	slow := r.SlowestSeeds(defaultSlowestTracked + 20)
	if len(slow) != defaultSlowestTracked {
		t.Fatalf("leaderboard has %d entries, want %d", len(slow), defaultSlowestTracked)
	}
	// It kept the costliest: the highest-seed entries.
	if slow[0].Seed != int64(defaultSlowestTracked+19) {
		t.Fatalf("top entry is seed %d", slow[0].Seed)
	}
}

func TestReportSection(t *testing.T) {
	r := NewSpanRecorder(16)
	if r.ReportSection(5) != "" {
		t.Fatal("empty recorder rendered a report")
	}
	r.Record(3, "compile", 2*time.Millisecond, "ok")
	r.SeedDone(3, "ok")
	out := r.ReportSection(5)
	for _, want := range []string{"telemetry:", "compile", "slowest seeds", "seed 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(64)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seed := int64(w*per + i)
				r.Record(seed, "s", time.Microsecond, "ok")
				r.SeedDone(seed, "ok")
			}
		}(w)
	}
	wg.Wait()
	stats := r.StageStats()
	if len(stats) != 1 || stats[0].Count != workers*per {
		t.Fatalf("stats = %+v, want %d spans", stats, workers*per)
	}
}
