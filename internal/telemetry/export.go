// Exporters: the Prometheus text exposition format (for /metrics and
// scrape-based monitoring) and a JSON snapshot (for /debug/vars and
// programmatic inspection). Export walks a sorted copy of the
// registry, so output order is deterministic for a fixed metric set.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Metrics sharing a name (labelled
// families) emit one HELP/TYPE header followed by every series, and
// histograms render cumulative le-bounded buckets plus _sum and
// _count, as the format requires. A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastName string
	for _, m := range r.snapshot() {
		if m.name != lastName {
			lastName = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, promType(m.kind)); err != nil {
				return err
			}
		}
		if err := writePromMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes a HELP line per the 0.0.4 exposition rules:
// backslash and newline (the only characters the format escapes in
// help text — double quotes stay literal here, unlike label values).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// series renders `name{labels}` (or just `name`), with extraLabels
// appended inside the braces when non-empty.
func series(name, labels, extraLabels string) string {
	all := labels
	if extraLabels != "" {
		if all != "" {
			all += ","
		}
		all += extraLabels
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

func writePromMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels, ""), m.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels, ""), m.g.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels, ""), m.gf())
		return err
	case kindHistogram:
		s := m.h.read()
		var cum uint64
		for i := 0; i < numHistBuckets; i++ {
			cum += s.buckets[i]
			if _, err := fmt.Fprintf(w, "%s %d\n",
				series(m.name+"_bucket", m.labels, fmt.Sprintf(`le="%d"`, bucketBound(i))), cum); err != nil {
				return err
			}
		}
		cum += s.overflow
		if _, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", m.labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_sum", m.labels, ""), s.sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_count", m.labels, ""), s.count)
		return err
	}
	return nil
}

// PrometheusText renders the registry to a string (see WritePrometheus).
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	r.WritePrometheus(&b) // strings.Builder writes cannot fail
	return b.String()
}

// HistogramJSON is a histogram's JSON-snapshot form.
type HistogramJSON struct {
	Count   uint64            `json:"count"`
	SumNs   uint64            `json:"sum_ns"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // le-bound -> cumulative count
}

// Snapshot returns every metric's current value keyed by its series
// name (`name` or `name{labels}`). Counters and gauges map to numbers,
// histograms to HistogramJSON. A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		key := series(m.name, m.labels, "")
		switch m.kind {
		case kindCounter:
			out[key] = m.c.Value()
		case kindGauge:
			out[key] = m.g.Value()
		case kindGaugeFunc:
			out[key] = m.gf()
		case kindHistogram:
			s := m.h.read()
			hj := HistogramJSON{Count: s.count, SumNs: s.sum, Buckets: make(map[string]uint64)}
			var cum uint64
			for i := 0; i < numHistBuckets; i++ {
				cum += s.buckets[i]
				if s.buckets[i] != 0 {
					hj.Buckets[fmt.Sprint(bucketBound(i))] = cum
				}
			}
			if s.overflow != 0 {
				hj.Buckets["+Inf"] = cum + s.overflow
			}
			out[key] = hj
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
