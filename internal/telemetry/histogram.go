// The fixed-bucket latency histogram: power-of-two bucket bounds, one
// atomic add per observation, no locks anywhere on the record path.
// Durations are observed in nanoseconds; the bucket layout spans 1µs
// (everything faster lands in the first bucket) to ~18 minutes
// (everything slower lands in the overflow bucket), which covers every
// latency the pipeline produces — a cache-hit interpretation to a
// watchdog-expired multi-second program.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histMinShift/histMaxShift bound the bucket range: bucket i has
	// upper bound 2^(histMinShift+i) nanoseconds, inclusive.
	histMinShift = 10 // first bound: 2^10 ns ≈ 1µs
	histMaxShift = 40 // last bound: 2^40 ns ≈ 18.3min

	// numHistBuckets is the finite bucket count; observations above the
	// last bound go to a separate overflow (+Inf) cell.
	numHistBuckets = histMaxShift - histMinShift + 1
)

// Histogram is a fixed-bucket histogram of nanosecond durations. The
// zero value is ready to use; a nil Histogram is a no-op. All methods
// are safe for concurrent use.
type Histogram struct {
	buckets  [numHistBuckets]atomic.Uint64 // non-cumulative counts
	overflow atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Uint64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket: the smallest i
// with v <= 2^(histMinShift+i), or numHistBuckets for overflow.
func bucketIndex(v uint64) int {
	if v <= 1<<histMinShift {
		return 0
	}
	// bits.Len64(v-1) is the exponent of the smallest power of two >= v.
	i := bits.Len64(v-1) - histMinShift
	if i >= numHistBuckets {
		return numHistBuckets
	}
	return i
}

// Observe records one nanosecond value.
func (h *Histogram) Observe(ns uint64) {
	if h == nil {
		return
	}
	if i := bucketIndex(ns); i == numHistBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveDuration records one duration (negative durations count as 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values in nanoseconds.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.Sum() / n)
}

// histSnapshot is a consistent-enough copy for export: buckets are
// read one atomic load at a time, so a snapshot taken mid-update may
// be off by in-flight observations — harmless for monitoring.
type histSnapshot struct {
	buckets  [numHistBuckets]uint64
	overflow uint64
	count    uint64
	sum      uint64
}

func (h *Histogram) read() histSnapshot {
	var s histSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	s.overflow = h.overflow.Load()
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	return s
}

// bucketBound returns bucket i's inclusive upper bound in nanoseconds.
func bucketBound(i int) uint64 { return 1 << (histMinShift + i) }

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of
// the observed values: the bound of the first bucket at which the
// cumulative count reaches q·count. With no observations it returns 0;
// if the quantile lands in the overflow bucket it returns the last
// finite bound (the histogram cannot resolve beyond it).
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.read()
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numHistBuckets; i++ {
		cum += s.buckets[i]
		if cum >= target {
			return time.Duration(bucketBound(i))
		}
	}
	return time.Duration(bucketBound(numHistBuckets - 1))
}
