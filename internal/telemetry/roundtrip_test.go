package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

// parsePromCounters is a minimal 0.0.4 text-format parser for the
// round-trip tests: it returns counter/gauge sample lines as
// series -> value, with label values unescaped. It rejects lines it
// cannot parse, so a malformed exposition fails the test rather than
// vanishing.
func parsePromCounters(t *testing.T, text string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		series, value := line[:sp], line[sp+1:]
		if open := strings.IndexByte(series, '{'); open >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name := series[:open]
			labels := parsePromLabels(t, line, series[open+1:len(series)-1])
			series = name + "{" + labels + "}"
		}
		out[series] = value
	}
	return out
}

// parsePromLabels walks a label body (`k="v",...`), unescaping each
// value per the exposition rules, and re-renders it with raw values —
// so a correct escape round-trips to the original input.
func parsePromLabels(t *testing.T, line, body string) string {
	t.Helper()
	var parts []string
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 || eq+i+1 >= len(body) || body[i+eq+1] != '"' {
			t.Fatalf("bad label pair in %q", line)
		}
		key := body[i : i+eq]
		j := i + eq + 2 // first byte of the value
		var val strings.Builder
		for {
			if j >= len(body) {
				t.Fatalf("unterminated label value in %q", line)
			}
			c := body[j]
			if c == '"' {
				break
			}
			if c == '\\' {
				if j+1 >= len(body) {
					t.Fatalf("dangling escape in %q", line)
				}
				switch body[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("unknown escape \\%c in %q", body[j+1], line)
				}
				j += 2
				continue
			}
			val.WriteByte(c)
			j++
		}
		parts = append(parts, key+"="+val.String())
		i = j + 1
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return strings.Join(parts, ",")
}

// TestCounterVecLabelEscapeRoundTrip pins the exposition of label
// values containing the characters the 0.0.4 format escapes: a value
// with `"`, `\` or a newline must render as a parseable sample line
// whose unescaped value equals the original.
func TestCounterVecLabelEscapeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("rt_test_total", "site", "round-trip test")
	hostile := []string{
		`plain`,
		`has"quote`,
		`back\slash`,
		`both"and\`,
		"new\nline",
		`trailing\`,
		`\"mixed\" up`,
	}
	for i, v := range hostile {
		vec.Add(v, uint64(i+1))
	}

	parsed := parsePromCounters(t, reg.PrometheusText())
	for i, v := range hostile {
		series := `rt_test_total{site=` + v + `}`
		got, ok := parsed[series]
		if !ok {
			t.Errorf("no sample round-tripped for label value %q (have %v)", v, parsed)
			continue
		}
		if want := fmt.Sprint(i + 1); got != want {
			t.Errorf("value for %q = %s, want %s", v, got, want)
		}
	}
	// Distinct hostile values must stay distinct series.
	if len(parsed) != len(hostile) {
		t.Errorf("parsed %d series, want %d: %v", len(parsed), len(hostile), parsed)
	}
}

// TestHelpEscapeRoundTrip pins HELP-line escaping: backslashes and
// newlines in help text must not break the line-oriented format.
func TestHelpEscapeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_help_total", "path C:\\tmp\nsecond line").Inc()
	text := reg.PrometheusText()
	want := `# HELP rt_help_total path C:\\tmp\nsecond line`
	if !strings.Contains(text, want+"\n") {
		t.Errorf("help line not escaped:\n%s", text)
	}
	// Every line must still parse (no raw newline smuggled through).
	parsePromCounters(t, text)
}

// TestRegistryCounters pins the snapshot form fleet workers ship:
// counters only, keyed by series name.
func TestRegistryCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_c_total", "c").Add(7)
	reg.CounterVec("rt_v_total", "kind", "v").Add("x", 3)
	reg.Gauge("rt_g", "g").Set(9)
	reg.GaugeFunc("rt_gf", "gf", func() int64 { return 1 })
	reg.Histogram("rt_h_ns", "h").Observe(5)

	got := reg.Counters()
	want := map[string]uint64{
		"rt_c_total":           7,
		`rt_v_total{kind="x"}`: 3,
	}
	if len(got) != len(want) {
		t.Fatalf("Counters() = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Counters()[%q] = %d, want %d", k, got[k], v)
		}
	}
	var nilReg *Registry
	if nilReg.Counters() != nil {
		t.Error("nil registry returned counters")
	}
}
