// Structured stage tracing: a ring-buffered span recorder keyed by
// (seed, stage). Every stage execution of the per-seed pipeline
// records one Span — duration plus outcome — and the recorder keeps
// three views of them: the raw ring (the last N spans, for live
// introspection), per-stage aggregates (count/total/max plus a
// power-of-two latency histogram, for the final report's latency
// table), and a bounded leaderboard of the costliest seeds (for the
// report's slowest-seeds section).
//
// Recording takes one short mutex hold per span — spans are per-stage,
// not per-op, so the rate is a handful per seed and the lock never
// shows on a profile. A nil *SpanRecorder records nothing.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one recorded stage execution.
type Span struct {
	Seed    int64         `json:"seed"`
	Stage   string        `json:"stage"`
	Dur     time.Duration `json:"dur_ns"`
	Outcome string        `json:"outcome,omitempty"`
}

// stageAgg aggregates every span of one stage.
type stageAgg struct {
	count   uint64
	total   time.Duration
	max     time.Duration
	hist    Histogram
	outcome map[string]uint64
}

// SeedCost is one entry of the slowest-seeds leaderboard: the total
// wall-clock a seed's stages consumed, and its final outcome.
type SeedCost struct {
	Seed    int64         `json:"seed"`
	Total   time.Duration `json:"total_ns"`
	Outcome string        `json:"outcome,omitempty"`
}

// DefaultSpanRingSize bounds the raw-span ring of a recorder built
// with NewSpanRecorder(0).
const DefaultSpanRingSize = 4096

// defaultSlowestTracked is how many of the costliest seeds the
// leaderboard retains.
const defaultSlowestTracked = 32

// SpanRecorder records stage spans. Safe for concurrent use; a nil
// recorder is a no-op.
type SpanRecorder struct {
	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans ever recorded; ring slot is next % len
	stages  map[string]*stageAgg
	pending map[int64]time.Duration // per-seed totals, until SeedDone
	slowest []SeedCost              // min-heap-by-Total of the top K
}

// NewSpanRecorder builds a recorder whose ring keeps the last
// ringSize spans (DefaultSpanRingSize if <= 0).
func NewSpanRecorder(ringSize int) *SpanRecorder {
	if ringSize <= 0 {
		ringSize = DefaultSpanRingSize
	}
	return &SpanRecorder{
		ring:    make([]Span, 0, ringSize),
		stages:  make(map[string]*stageAgg),
		pending: make(map[int64]time.Duration),
	}
}

// Record logs one stage execution for a seed: its duration and
// outcome ("ok", a verdict kind, "panic", "injected", ...). The
// duration also accrues to the seed's running total for the
// slowest-seeds leaderboard (finalized by SeedDone).
func (t *SpanRecorder) Record(seed int64, stage string, d time.Duration, outcome string) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	sp := Span{Seed: seed, Stage: stage, Dur: d, Outcome: outcome}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next%uint64(cap(t.ring))] = sp
	}
	t.next++
	agg := t.stages[stage]
	if agg == nil {
		agg = &stageAgg{outcome: make(map[string]uint64)}
		t.stages[stage] = agg
	}
	agg.count++
	agg.total += d
	if d > agg.max {
		agg.max = d
	}
	if outcome != "" {
		agg.outcome[outcome]++
	}
	t.pending[seed] += d
	t.mu.Unlock()
	agg.hist.ObserveDuration(d) // atomic; outside the lock on purpose
}

// SeedDone finalizes a seed: its accumulated stage time enters the
// slowest-seeds leaderboard tagged with the seed's final outcome, and
// the running total is released.
func (t *SpanRecorder) SeedDone(seed int64, outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total, ok := t.pending[seed]
	if !ok {
		return
	}
	delete(t.pending, seed)
	sc := SeedCost{Seed: seed, Total: total, Outcome: outcome}
	if len(t.slowest) < defaultSlowestTracked {
		t.slowest = append(t.slowest, sc)
		return
	}
	// Replace the cheapest retained entry if this seed beats it.
	min := 0
	for i := 1; i < len(t.slowest); i++ {
		if t.slowest[i].Total < t.slowest[min].Total {
			min = i
		}
	}
	if total > t.slowest[min].Total {
		t.slowest[min] = sc
	}
}

// Spans returns the ring's contents, oldest first.
func (t *SpanRecorder) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		out := make([]Span, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Span, 0, cap(t.ring))
	start := t.next % uint64(cap(t.ring))
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// SlowestSeeds returns the up-to-n costliest finalized seeds, most
// expensive first (ties broken by seed for a stable order).
func (t *SpanRecorder) SlowestSeeds(n int) []SeedCost {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	out := make([]SeedCost, len(t.slowest))
	copy(out, t.slowest)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Seed < out[j].Seed
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// StageStat is one row of the per-stage latency table.
type StageStat struct {
	Stage string        `json:"stage"`
	Count uint64        `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// StageStats returns per-stage aggregates sorted by total time
// descending (ties by name) — where the wall-clock went.
func (t *SpanRecorder) StageStats() []StageStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]StageStat, 0, len(t.stages))
	for name, agg := range t.stages {
		st := StageStat{
			Stage: name,
			Count: agg.count,
			Total: agg.total,
			Max:   agg.max,
			P50:   agg.hist.Quantile(0.50),
			P99:   agg.hist.Quantile(0.99),
		}
		if agg.count > 0 {
			st.Mean = agg.total / time.Duration(agg.count)
		}
		out = append(out, st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// ReportSection renders the telemetry appendix of a campaign report:
// the per-stage latency table and the slowest-N seeds. It is advisory
// output — timings vary run to run — so it is kept out of the
// canonical ReportText that determinism guards compare.
func (t *SpanRecorder) ReportSection(slowestN int) string {
	if t == nil {
		return ""
	}
	stats := t.StageStats()
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("telemetry:\n")
	b.WriteString("  stage        count      total       mean        p50        p99        max\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "  %-10s %7d %10s %10s %10s %10s %10s\n",
			st.Stage, st.Count, fmtDur(st.Total), fmtDur(st.Mean),
			fmtDur(st.P50), fmtDur(st.P99), fmtDur(st.Max))
	}
	if slow := t.SlowestSeeds(slowestN); len(slow) > 0 {
		fmt.Fprintf(&b, "  slowest seeds (top %d):\n", len(slow))
		for _, sc := range slow {
			fmt.Fprintf(&b, "    seed %-12d %10s  %s\n", sc.Seed, fmtDur(sc.Total), sc.Outcome)
		}
	}
	return b.String()
}

// fmtDur renders a duration compactly with millisecond/microsecond
// granularity appropriate to its size.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}
