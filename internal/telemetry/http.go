// Live introspection: the -metrics-addr HTTP endpoint. One small mux
// serves the Prometheus text format at /metrics, a JSON snapshot at
// /debug/vars, and the standard pprof handler suite (profile, heap,
// goroutine, block, mutex, trace, ...) under /debug/pprof/ — the
// block and mutex profiles are populated when the caller enables
// their runtime sampling (see internal/profiling.EnableContention).
package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (host:port; port 0
// picks a free port) over the given registry, and returns once the
// listener is bound. Process metrics (goroutines, heap, GC) are
// registered on the registry as callback gauges.
func Serve(addr string, reg *Registry) (*Server, error) {
	RegisterProcessMetrics(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// RegisterProcessMetrics registers process-level callback gauges
// (goroutine count, heap bytes, GC cycles) on the registry.
// Registration is idempotent; a nil registry is a no-op.
func RegisterProcessMetrics(reg *Registry) {
	reg.GaugeFunc("ratte_process_goroutines", "current goroutine count",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("ratte_process_heap_alloc_bytes", "bytes of allocated heap objects",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		})
	reg.GaugeFunc("ratte_process_gc_cycles", "completed GC cycles",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
}
