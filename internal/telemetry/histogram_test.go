package telemetry

import (
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{1024, 0}, // exactly 2^10: first bucket is inclusive
		{1025, 1}, // one past: next bucket
		{2048, 1}, // exactly 2^11
		{2049, 2},
		{1 << 40, numHistBuckets - 1},   // last finite bound, inclusive
		{(1 << 40) + 1, numHistBuckets}, // overflow
		{^uint64(0), numHistBuckets},    // max value overflows
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsArePowersOfTwo(t *testing.T) {
	for i := 0; i < numHistBuckets; i++ {
		want := uint64(1) << (histMinShift + i)
		if bucketBound(i) != want {
			t.Fatalf("bucketBound(%d) = %d, want %d", i, bucketBound(i), want)
		}
		// Every bound's own value must land in its bucket (inclusive
		// upper bounds), and bound+1 in the next.
		if got := bucketIndex(want); got != i {
			t.Fatalf("bound %d landed in bucket %d, want %d", want, got, i)
		}
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	var h Histogram
	h.Observe(500)        // bucket 0 (≤1µs)
	h.Observe(1500)       // bucket 1
	h.Observe(3000)       // bucket 2
	h.ObserveDuration(-5) // clamps to 0, bucket 0
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5000 {
		t.Fatalf("sum = %d, want 5000", h.Sum())
	}
	if h.Mean() != 1250 {
		t.Fatalf("mean = %v, want 1250ns", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(500) // bucket 0, bound 1024
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // bound 2^20
	}
	if got := h.Quantile(0.5); got != time.Duration(1024) {
		t.Fatalf("p50 = %v, want 1024ns", got)
	}
	if got := h.Quantile(0.99); got != time.Duration(1<<20) {
		t.Fatalf("p99 = %v, want %v", got, time.Duration(1<<20))
	}
	// Quantiles clamp out-of-range q.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	h.Observe(1 << 50) // far beyond the last bound
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	s := h.read()
	if s.overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.overflow)
	}
	// The quantile cannot resolve past the last finite bound.
	if got := h.Quantile(1); got != time.Duration(bucketBound(numHistBuckets-1)) {
		t.Fatalf("overflow quantile = %v", got)
	}
}
