package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one of everything.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ratte_hits_total", "total hits").Add(7)
	r.Gauge("ratte_depth", "queue depth").Set(-3)
	r.GaugeFunc("ratte_cache_size", "entries", func() int64 { return 42 })
	h := r.Histogram("ratte_latency_ns", "op latency")
	h.Observe(500)
	h.Observe(2000)
	v := r.CounterVec("ratte_ops_total", "op", "ops by name")
	v.Inc("add")
	v.Add("mul", 2)
	return r
}

// TestPrometheusExposition validates the text output against the
// exposition format's structural rules: HELP/TYPE once per family,
// every series parseable as `name{labels} value`, histogram buckets
// cumulative and le-ordered, _count consistent with the +Inf bucket.
func TestPrometheusExposition(t *testing.T) {
	text := buildTestRegistry().PrometheusText()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")

	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	values := map[string]float64{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			helpSeen[parts[0]]++
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q", line)
			}
			typeSeen[parts[0]]++
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			val, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			values[line[:i]] = val
		}
	}
	for fam, n := range helpSeen {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines", fam, n)
		}
	}
	for fam, n := range typeSeen {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}

	if values["ratte_hits_total"] != 7 {
		t.Errorf("counter exported %v, want 7", values["ratte_hits_total"])
	}
	if values["ratte_depth"] != -3 {
		t.Errorf("gauge exported %v, want -3", values["ratte_depth"])
	}
	if values["ratte_cache_size"] != 42 {
		t.Errorf("gauge func exported %v, want 42", values["ratte_cache_size"])
	}
	if values[`ratte_ops_total{op="add"}`] != 1 || values[`ratte_ops_total{op="mul"}`] != 2 {
		t.Error("labelled counter series wrong")
	}

	// Histogram: buckets must be cumulative (monotone in le order) and
	// the +Inf bucket must equal _count.
	var prev float64
	for i := 0; i < numHistBuckets; i++ {
		key := fmt.Sprintf(`ratte_latency_ns_bucket{le="%d"}`, bucketBound(i))
		cum, ok := values[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if cum < prev {
			t.Fatalf("bucket %s not cumulative: %v < %v", key, cum, prev)
		}
		prev = cum
	}
	inf := values[`ratte_latency_ns_bucket{le="+Inf"}`]
	if inf != values["ratte_latency_ns_count"] {
		t.Errorf("+Inf bucket %v != _count %v", inf, values["ratte_latency_ns_count"])
	}
	if values["ratte_latency_ns_count"] != 2 || values["ratte_latency_ns_sum"] != 2500 {
		t.Errorf("histogram count/sum = %v/%v, want 2/2500",
			values["ratte_latency_ns_count"], values["ratte_latency_ns_sum"])
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	a := buildTestRegistry().PrometheusText()
	b := buildTestRegistry().PrometheusText()
	if a != b {
		t.Fatal("two identical registries rendered differently")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := buildTestRegistry()
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if got["ratte_hits_total"].(float64) != 7 {
		t.Errorf("counter = %v, want 7", got["ratte_hits_total"])
	}
	if got["ratte_depth"].(float64) != -3 {
		t.Errorf("gauge = %v, want -3", got["ratte_depth"])
	}
	hist, ok := got["ratte_latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing from snapshot: %v", got["ratte_latency_ns"])
	}
	if hist["count"].(float64) != 2 || hist["sum_ns"].(float64) != 2500 {
		t.Errorf("histogram snapshot = %v", hist)
	}
}
