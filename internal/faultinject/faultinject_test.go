package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// collect drives n Point calls at site and records what fired.
func collect(in *Injector, site string, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !IsInjectedPanic(r) {
						panic(r)
					}
					out = append(out, fmt.Sprintf("%d:panic", i))
				}
			}()
			if err := in.Point(site); err != nil {
				out = append(out, fmt.Sprintf("%d:error", i))
			}
		}()
	}
	return out
}

func TestDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Rate: 0.3, Delay: time.Microsecond}
	a := collect(New(spec), SiteInterpDispatch, 200)
	b := collect(New(spec), SiteInterpDispatch, 200)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same spec, different faults:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 200 points fired nothing")
	}
	c := collect(New(Spec{Seed: 43, Rate: 0.3, Delay: time.Microsecond}), SiteInterpDispatch, 200)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestNilAndZeroRateInjectNothing(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Point(SiteCompilerPass); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if nilInj.Hits() != 0 || nilInj.Fired() != nil {
		t.Fatal("nil injector reported hits")
	}
	in := New(Spec{Seed: 1, Rate: 0})
	if got := collect(in, SiteCompilerPass, 100); len(got) != 0 {
		t.Fatalf("zero-rate injector fired: %v", got)
	}
}

func TestSiteAddressing(t *testing.T) {
	spec := Spec{Seed: 7, Rate: 1, Kinds: []Kind{KindError}, Sites: []string{"compiler"}}
	in := New(spec)
	if err := in.Point(SiteInterpDispatch); err != nil {
		t.Fatalf("interp site fired under compiler-only filter: %v", err)
	}
	if err := in.Point(SiteCompilerPass); err == nil {
		t.Fatal("compiler site did not fire under rate 1")
	}
	if err := in.Point(SiteCompilerRegistry); err == nil {
		t.Fatal("prefix filter should match compiler/registry")
	}
	if in.Hits() != 2 {
		t.Fatalf("hits = %d, want 2", in.Hits())
	}
}

func TestKindsRestriction(t *testing.T) {
	in := New(Spec{Seed: 3, Rate: 1, Kinds: []Kind{KindError}})
	for i := 0; i < 50; i++ {
		err := in.Point(SiteInterpRegistry)
		if err == nil {
			t.Fatal("rate-1 error-only injector returned nil")
		}
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("injected error has wrong type: %T", err)
		}
		if !IsInjected(err) {
			t.Fatal("IsInjected does not recognise its own error")
		}
		if !IsInjected(fmt.Errorf("wrapped: %w", err)) {
			t.Fatal("IsInjected fails through wrapping")
		}
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := New(Spec{Seed: 5, Rate: 1, Kinds: []Kind{KindError}, MaxFaults: 1})
	if err := in.Point(SiteCompilerPass); err == nil {
		t.Fatal("first point should fire")
	}
	for i := 0; i < 20; i++ {
		if err := in.Point(SiteCompilerPass); err != nil {
			t.Fatalf("budget of 1 exceeded at call %d: %v", i, err)
		}
	}
	if in.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", in.Hits())
	}
}

func TestForSeedDerivation(t *testing.T) {
	base := Spec{Seed: 9, Rate: 0.5}
	a := base.ForSeed(100)
	b := base.ForSeed(100)
	c := base.ForSeed(101)
	if a.Seed != b.Seed {
		t.Fatal("ForSeed not deterministic")
	}
	if a.Seed == c.Seed {
		t.Fatal("distinct program seeds derived identical injector seeds")
	}
	if a.Rate != base.Rate {
		t.Fatal("ForSeed dropped the rate")
	}
}

func TestFiredRecords(t *testing.T) {
	in := New(Spec{Seed: 11, Rate: 1, Kinds: []Kind{KindDelay}, Delay: time.Microsecond})
	for i := 0; i < 3; i++ {
		if err := in.Point(SiteInterpDispatch); err != nil {
			t.Fatalf("delay fault returned error: %v", err)
		}
	}
	fired := in.Fired()
	if len(fired) != 3 {
		t.Fatalf("fired = %d records, want 3", len(fired))
	}
	for i, f := range fired {
		if f.Kind != KindDelay || f.Site != SiteInterpDispatch || f.N != int64(i) {
			t.Fatalf("fired[%d] = %+v", i, f)
		}
	}
}
