// The network half of the fault-injection layer: a seeded
// http.RoundTripper that manufactures the failures a fleet campaign
// must absorb on the wire — refused connections, response delays,
// injected 5xx, bodies truncated mid-stream (requests and responses)
// and duplicated deliveries. Like the in-process Injector, every
// decision is a pure function of (spec seed, request path, per-path
// occurrence number): no wall clock, no global randomness, so a chaos
// run is reproducible from its spec.
//
// The Transport wraps a real transport and is safe for concurrent use
// (a fleet worker's heartbeat goroutine shares the client with its
// lease/upload loop). Note the occurrence numbering is per path, so
// concurrent requests to the same path race for occurrence slots: the
// fault *schedule* interleaving may vary run to run, but the fleet's
// output may not — that is exactly the property the fleet-chaos
// conformance oracle pins.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NetKind classifies one injected network fault.
type NetKind int

// The network fault kinds.
const (
	// NetRefuse fails the request without sending it — a refused or
	// reset connection.
	NetRefuse NetKind = iota
	// NetDelay sleeps Spec.Delay before forwarding the request.
	NetDelay
	// Net5xx synthesizes a 503 response without reaching the server.
	Net5xx
	// NetTruncateRequest cuts the request body mid-stream: the server
	// sees a torn (e.g. half-gzip'd) body, the client sees a transport
	// error.
	NetTruncateRequest
	// NetTruncateResponse delivers only a prefix of the response body.
	NetTruncateResponse
	// NetDuplicate delivers the request twice; the caller sees only the
	// second response (the first is drained and discarded).
	NetDuplicate
)

func (k NetKind) String() string {
	switch k {
	case NetRefuse:
		return "refuse"
	case NetDelay:
		return "delay"
	case Net5xx:
		return "5xx"
	case NetTruncateRequest:
		return "truncate-request"
	case NetTruncateResponse:
		return "truncate-response"
	case NetDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("NetKind(%d)", int(k))
}

// NetSpec configures a fault-injecting Transport. The zero NetSpec
// injects nothing.
type NetSpec struct {
	// Seed keys every decision; the same NetSpec injects the same
	// faults at the same (path, occurrence) points.
	Seed int64
	// Rate is the per-request fault probability in [0, 1].
	Rate float64
	// Kinds restricts the injected fault kinds (empty = all six).
	Kinds []NetKind
	// Paths restricts injection to request paths with one of these
	// prefixes (empty = every path).
	Paths []string
	// Delay is the sleep for NetDelay faults (0 = DefaultDelay).
	Delay time.Duration
	// MaxFaults bounds the total faults one Transport fires (0 =
	// unbounded). Chaos oracles use it to guarantee the fleet
	// eventually makes progress.
	MaxFaults int
}

// NetFault records one network fault that fired.
type NetFault struct {
	Path string
	N    int64 // the path's occurrence number that fired
	Kind NetKind
}

// NetError is the error NetRefuse and NetTruncateRequest surface to
// the HTTP client.
type NetError struct {
	Path string
	N    int64
	Kind NetKind
}

func (e *NetError) Error() string {
	return fmt.Sprintf("faultinject: injected network %s at %s#%d", e.Kind, e.Path, e.N)
}

// IsInjectedNet reports whether err stems from an injected network
// fault (at any wrapping depth). net/http wraps transport errors in
// *url.Error, so the string check covers that layer too.
func IsInjectedNet(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), "faultinject: injected network")
}

// Transport is a fault-injecting http.RoundTripper. Create with
// NewTransport; safe for concurrent use.
type Transport struct {
	spec  NetSpec
	delay time.Duration
	inner http.RoundTripper

	mu     sync.Mutex
	counts map[string]int64
	hits   int
	fired  []NetFault
}

// NewTransport wraps inner (nil = http.DefaultTransport) with the
// seeded network fault layer.
func NewTransport(spec NetSpec, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	d := spec.Delay
	if d == 0 {
		d = DefaultDelay
	}
	return &Transport{spec: spec, delay: d, inner: inner, counts: make(map[string]int64)}
}

// Hits returns how many network faults have fired so far.
func (t *Transport) Hits() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits
}

// Fired returns the network faults that fired, in firing order.
func (t *Transport) Fired() []NetFault {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]NetFault(nil), t.fired...)
}

// decide draws the fault decision for one request, under t.mu.
func (t *Transport) decide(path string) (NetFault, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.counts[path]
	t.counts[path] = n + 1
	if t.spec.Rate <= 0 {
		return NetFault{}, false
	}
	if t.spec.MaxFaults > 0 && t.hits >= t.spec.MaxFaults {
		return NetFault{}, false
	}
	if !t.pathEnabled(path) {
		return NetFault{}, false
	}
	h := mix(mix(uint64(t.spec.Seed), hashString(path)), uint64(n))
	if float64(h>>11)/(1<<53) >= t.spec.Rate {
		return NetFault{}, false
	}
	kinds := t.spec.Kinds
	if len(kinds) == 0 {
		kinds = []NetKind{NetRefuse, NetDelay, Net5xx, NetTruncateRequest, NetTruncateResponse, NetDuplicate}
	}
	f := NetFault{Path: path, N: n, Kind: kinds[(h>>53)%uint64(len(kinds))]}
	t.hits++
	t.fired = append(t.fired, f)
	return f, true
}

func (t *Transport) pathEnabled(path string) bool {
	if len(t.spec.Paths) == 0 {
		return true
	}
	for _, p := range t.spec.Paths {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// RoundTrip applies at most one fault per request, then (unless the
// fault consumed the request) forwards it to the inner transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, fire := t.decide(req.URL.Path)
	if !fire {
		return t.inner.RoundTrip(req)
	}
	switch f.Kind {
	case NetRefuse:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &NetError{Path: f.Path, N: f.N, Kind: f.Kind}
	case NetDelay:
		time.Sleep(t.delay)
		return t.inner.RoundTrip(req)
	case Net5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body) //nolint:errcheck // drain before closing
			req.Body.Close()
		}
		body := fmt.Sprintf("faultinject: injected 503 at %s#%d", f.Path, f.N)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case NetTruncateRequest:
		return t.truncateRequest(req, f)
	case NetTruncateResponse:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return truncateResponse(resp), nil
	case NetDuplicate:
		return t.duplicate(req)
	}
	return t.inner.RoundTrip(req)
}

// truncateRequest forwards only a prefix of the request body, then
// fails the body read — the wire picture of a connection dropped
// mid-upload: the server sees a torn body, the client an error.
func (t *Transport) truncateRequest(req *http.Request, f NetFault) (*http.Response, error) {
	if req.Body == nil || req.ContentLength <= 1 {
		// Nothing to tear; degrade to a refused connection.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &NetError{Path: f.Path, N: f.N, Kind: NetRefuse}
	}
	inner := req.Body
	req.Body = &tornReader{r: io.LimitReader(inner, req.ContentLength/2), c: inner,
		err: &NetError{Path: f.Path, N: f.N, Kind: f.Kind}}
	req.GetBody = nil // the torn body must not be silently replayed
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// The server managed to answer the torn request (typically 400);
	// the real network would have torn the connection under the
	// client, so surface the injected error instead.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	resp.Body.Close()
	return nil, &NetError{Path: f.Path, N: f.N, Kind: f.Kind}
}

// tornReader yields a prefix then fails with the injected error.
type tornReader struct {
	r   io.Reader
	c   io.Closer
	err error
}

func (t *tornReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		return n, t.err
	}
	return n, err
}

func (t *tornReader) Close() error { return t.c.Close() }

// truncateResponse swaps the response body for its first half; the
// declared Content-Length is left alone, so decoders see a stream cut
// off mid-value, exactly like a dropped connection.
func truncateResponse(resp *http.Response) *http.Response {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
	return resp
}

// duplicate delivers the request twice and returns the second
// response. Requires a replayable body (GetBody); without one the
// request degrades to a single delivery.
func (t *Transport) duplicate(req *http.Request) (*http.Response, error) {
	if req.Body != nil && req.GetBody == nil {
		return t.inner.RoundTrip(req)
	}
	first, err := t.inner.RoundTrip(req)
	if err == nil {
		io.Copy(io.Discard, first.Body) //nolint:errcheck // drain for reuse
		first.Body.Close()
	}
	second := req.Clone(req.Context())
	if req.GetBody != nil {
		body, berr := req.GetBody()
		if berr != nil {
			return nil, berr
		}
		second.Body = body
	}
	return t.inner.RoundTrip(second)
}
