package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// echoServer answers every POST with the request body it managed to
// read (or a 400 if the body was torn), tagged with a serial number so
// duplicate deliveries are observable.
func echoServer(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	hits := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "torn body", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "echo %d: %s", *hits, data)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

func post(t *testing.T, client *http.Client, url, body string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return resp, string(data), rerr
	}
	return resp, string(data), nil
}

// TestNetDecideDeterministic: the fault schedule is a pure function of
// (seed, path, occurrence) — two transports with the same spec fire
// identically, a different seed fires differently.
func TestNetDecideDeterministic(t *testing.T) {
	spec := NetSpec{Seed: 7, Rate: 0.3}
	a, b := NewTransport(spec, nil), NewTransport(spec, nil)
	var fa, fb []NetFault
	for i := 0; i < 200; i++ {
		if f, ok := a.decide("/fleet/result"); ok {
			fa = append(fa, f)
		}
		if f, ok := b.decide("/fleet/result"); ok {
			fb = append(fb, f)
		}
	}
	if len(fa) == 0 {
		t.Fatal("rate 0.3 over 200 draws fired nothing")
	}
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("same spec, different schedules:\n%v\n%v", fa, fb)
	}
	c := NewTransport(NetSpec{Seed: 8, Rate: 0.3}, nil)
	var fc []NetFault
	for i := 0; i < 200; i++ {
		if f, ok := c.decide("/fleet/result"); ok {
			fc = append(fc, f)
		}
	}
	if reflect.DeepEqual(fa, fc) {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

// TestNetMaxFaultsBound: MaxFaults caps the total fired, so a chaos
// run always eventually runs fault-free.
func TestNetMaxFaultsBound(t *testing.T) {
	tr := NewTransport(NetSpec{Seed: 1, Rate: 1, MaxFaults: 3}, nil)
	for i := 0; i < 50; i++ {
		tr.decide("/x")
	}
	if got := tr.Hits(); got != 3 {
		t.Fatalf("MaxFaults 3: %d faults fired", got)
	}
}

// TestNetPathFilter: Paths restricts injection to matching prefixes.
func TestNetPathFilter(t *testing.T) {
	tr := NewTransport(NetSpec{Seed: 1, Rate: 1, Paths: []string{"/fleet/result"}}, nil)
	if _, ok := tr.decide("/fleet/lease"); ok {
		t.Fatal("fault fired on a filtered-out path")
	}
	if _, ok := tr.decide("/fleet/result"); !ok {
		t.Fatal("fault did not fire on an enabled path")
	}
}

// TestNetRefuse: the request never reaches the server and the client
// sees an identifiable injected error.
func TestNetRefuse(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{NetRefuse},
	}, nil)}
	_, _, err := post(t, client, srv.URL+"/a", "ping")
	if err == nil || !IsInjectedNet(err) {
		t.Fatalf("refused request returned %v, want injected net error", err)
	}
	if *hits != 0 {
		t.Fatalf("refused request reached the server %d times", *hits)
	}
	// Past MaxFaults the wire is clean again.
	if _, body, err := post(t, client, srv.URL+"/a", "ping"); err != nil || !strings.Contains(body, "ping") {
		t.Fatalf("post-fault request: %v %q", err, body)
	}
}

// TestNet5xx: the synthesized 503 never reaches the server and names
// its injection point.
func TestNet5xx(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{Net5xx},
	}, nil)}
	resp, body, err := post(t, client, srv.URL+"/b", "ping")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "injected 503") {
		t.Fatalf("503 body %q does not name the injection", body)
	}
	if *hits != 0 {
		t.Fatalf("injected 503 reached the server %d times", *hits)
	}
}

// TestNetTruncateRequest: the server sees a torn body (and answers
// 400), but the client sees the injected transport error — never the
// server's reply, exactly like a connection dropped mid-upload.
func TestNetTruncateRequest(t *testing.T) {
	srv, _ := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{NetTruncateRequest},
	}, nil)}
	_, _, err := post(t, client, srv.URL+"/c", strings.Repeat("x", 4096))
	if err == nil || !IsInjectedNet(err) {
		t.Fatalf("torn request returned %v, want injected net error", err)
	}
}

// TestNetTruncateResponse: the client reads only a prefix of the
// declared Content-Length — the decoder, not this layer, reports the
// tear.
func TestNetTruncateResponse(t *testing.T) {
	srv, _ := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{NetTruncateResponse},
	}, nil)}
	resp, err := client.Post(srv.URL+"/d", "text/plain", strings.NewReader(strings.Repeat("y", 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, readErr := io.ReadAll(resp.Body)
	if readErr == nil && int64(len(data)) == resp.ContentLength {
		t.Fatalf("response not truncated: read %d of %d declared bytes cleanly", len(data), resp.ContentLength)
	}
}

// TestNetDuplicate: the request is delivered twice; the caller sees
// the second response.
func TestNetDuplicate(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{NetDuplicate},
	}, nil)}
	_, body, err := post(t, client, srv.URL+"/e", "ping")
	if err != nil {
		t.Fatal(err)
	}
	if *hits != 2 {
		t.Fatalf("duplicated request delivered %d times, want 2", *hits)
	}
	if !strings.Contains(body, "echo 2") {
		t.Fatalf("caller saw %q, want the second delivery", body)
	}
}

// TestNetDelayForwards: a delayed request still reaches the server
// intact after the injected sleep.
func TestNetDelayForwards(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: NewTransport(NetSpec{
		Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []NetKind{NetDelay}, Delay: time.Millisecond,
	}, nil)}
	start := time.Now()
	_, body, err := post(t, client, srv.URL+"/f", "ping")
	if err != nil || !strings.Contains(body, "ping") {
		t.Fatalf("delayed request: %v %q", err, body)
	}
	if *hits != 1 {
		t.Fatalf("delayed request delivered %d times, want 1", *hits)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("no delay observed")
	}
}

// TestNetErrorWrapping: IsInjectedNet sees the error through
// net/http's *url.Error wrapping.
func TestNetErrorWrapping(t *testing.T) {
	err := &NetError{Path: "/x", N: 3, Kind: NetRefuse}
	if !IsInjectedNet(err) {
		t.Fatal("bare NetError not recognised")
	}
	if !IsInjectedNet(fmt.Errorf("Post \"http://x/y\": %w", err)) {
		t.Fatal("wrapped NetError not recognised")
	}
	if IsInjectedNet(fmt.Errorf("connection refused")) {
		t.Fatal("ordinary error misclassified as injected")
	}
	if IsInjectedNet(nil) {
		t.Fatal("nil error classified as injected")
	}
	var buf bytes.Buffer
	fmt.Fprint(&buf, err)
	if !strings.Contains(buf.String(), "refuse") {
		t.Fatalf("NetError text %q does not name its kind", buf.String())
	}
}
