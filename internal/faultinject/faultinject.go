// Package faultinject is Ratte's deterministic fault-injection layer:
// the chaos-engineering half of the campaign engine's robustness story.
// Production fuzzing campaigns must survive panicking kernels, runaway
// passes and transient infrastructure failures; this package lets the
// conformance harness *manufacture* those failures on demand — at named
// sites, with a seeded probability — so the containment machinery in
// internal/difftest is itself under test.
//
// An Injector is created from a Spec and consulted at fault points
// ("sites") sprinkled through the stack: pass execution and registry
// lookup in internal/compiler, kernel dispatch and call lookup in
// internal/interp. Each Point call draws a deterministic decision from
// (spec seed, site name, per-site occurrence number) — no global state,
// no wall clock — so a campaign seeded the same way injects exactly the
// same faults in the same places, run after run, serial or parallel.
//
// Three fault kinds model the failure classes the campaign must absorb:
//
//   - KindPanic: the site panics with a *Panic value (a crashing
//     kernel or pass);
//   - KindError: the site returns a *Error (a transient infrastructure
//     failure — the retry layer's food);
//   - KindDelay: the site sleeps Spec.Delay (a runaway computation —
//     the watchdog layer's food).
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Kind classifies one injected fault.
type Kind int

// The fault kinds.
const (
	KindError Kind = iota // Point returns a *Error
	KindPanic             // Point panics with a *Panic
	KindDelay             // Point sleeps Spec.Delay, then reports no fault
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// The fault sites wired into the stack. Site names are hierarchical
// ("layer/point"); Spec.Sites filters by prefix, so "compiler" selects
// both compiler sites and "compiler/pass" only pass execution.
const (
	// SiteCompilerPass fires before each pass executes (compiler.runPass).
	SiteCompilerPass = "compiler/pass"
	// SiteCompilerRegistry fires at pass-registry lookup during
	// shared-prefix compilation (compiler.CompileConfigs).
	SiteCompilerRegistry = "compiler/registry"
	// SiteInterpDispatch fires before each operation dispatch, in both
	// the tree-walking and the compiled execution engine.
	SiteInterpDispatch = "interp/dispatch"
	// SiteInterpRegistry fires at kernel-registry and function-table
	// lookups in the interpreter.
	SiteInterpRegistry = "interp/registry"
)

// DefaultDelay is the sleep a KindDelay fault injects when Spec.Delay
// is zero — long enough to trip a tight per-program watchdog, short
// enough to keep fault-tolerance tests fast.
const DefaultDelay = 2 * time.Millisecond

// Spec configures an Injector. The zero Spec injects nothing.
type Spec struct {
	// Seed keys every decision; the same Spec injects the same faults.
	Seed int64
	// Rate is the per-Point fault probability in [0, 1].
	Rate float64
	// Kinds restricts the injected fault kinds (empty = all three).
	Kinds []Kind
	// Sites restricts injection to sites with one of these prefixes
	// (empty = every site).
	Sites []string
	// Delay is the sleep for KindDelay faults (0 = DefaultDelay).
	Delay time.Duration
	// MaxFaults bounds the total faults one Injector fires (0 =
	// unbounded). Targeted tests use it to fault exactly one attempt
	// and let the retry succeed.
	MaxFaults int
}

// ForSeed derives the Spec for one campaign program: the same campaign
// spec and program seed always yield the same per-program injector,
// which is what makes fault-injected campaigns deterministic per seed
// regardless of worker count or retry scheduling.
func (s Spec) ForSeed(programSeed int64) Spec {
	d := s
	d.Seed = int64(mix(uint64(s.Seed), uint64(programSeed)^0x9e3779b97f4a7c15))
	return d
}

// Panic is the value injected panics carry; the campaign's stage guards
// recognise it to classify the failure as injected (hence transient).
type Panic struct {
	Site string
	N    int64 // the site's occurrence number that fired
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s#%d", p.Site, p.N)
}

// Error is the error injected KindError faults return.
type Error struct {
	Site string
	N    int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s#%d", e.Site, e.N)
}

// IsInjected reports whether err stems from an injected fault (at any
// wrapping depth). The campaign's retry layer treats injected failures
// as transient.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsInjectedPanic reports whether a recovered panic value is an
// injected fault.
func IsInjectedPanic(v any) bool {
	_, ok := v.(*Panic)
	return ok
}

// Injector draws deterministic fault decisions at named sites. An
// Injector is NOT safe for concurrent use: the campaign engine creates
// one per program attempt and threads it through that attempt's
// single-goroutine pipeline.
type Injector struct {
	spec     Spec
	delay    time.Duration
	counts   map[string]int64
	hits     int
	fired    []Fault
	observer func(Fault)
}

// Fault records one fault that fired.
type Fault struct {
	Site string
	N    int64
	Kind Kind
}

// New builds an injector for the spec. A nil *Injector is valid and
// injects nothing, so call sites need no enablement flag.
func New(spec Spec) *Injector {
	d := spec.Delay
	if d == 0 {
		d = DefaultDelay
	}
	return &Injector{spec: spec, delay: d, counts: make(map[string]int64)}
}

// Hits returns how many faults have fired so far (delays included).
func (in *Injector) Hits() int {
	if in == nil {
		return 0
	}
	return in.hits
}

// Fired returns the faults that fired, in order.
func (in *Injector) Fired() []Fault {
	if in == nil {
		return nil
	}
	return in.fired
}

// SetObserver installs a callback invoked as each fault fires (before
// the fault is applied, so it runs even for panics). Observation must
// not influence the work under test — the campaign's telemetry layer
// uses it to count faults by site and kind. A nil receiver is a no-op;
// fn may be nil to clear.
func (in *Injector) SetObserver(fn func(Fault)) {
	if in != nil {
		in.observer = fn
	}
}

// Point is a fault point: it decides deterministically whether this
// occurrence of site faults, and if so applies the fault — panicking
// for KindPanic, sleeping for KindDelay (then returning nil), or
// returning a *Error for KindError. A nil receiver or a non-firing
// decision returns nil.
func (in *Injector) Point(site string) error {
	if in == nil || in.spec.Rate <= 0 {
		return nil
	}
	n := in.counts[site]
	in.counts[site] = n + 1
	if in.spec.MaxFaults > 0 && in.hits >= in.spec.MaxFaults {
		return nil
	}
	if !in.siteEnabled(site) {
		return nil
	}
	h := mix(mix(uint64(in.spec.Seed), hashString(site)), uint64(n))
	if float64(h>>11)/(1<<53) >= in.spec.Rate {
		return nil
	}
	kind := in.pickKind(h)
	in.hits++
	in.fired = append(in.fired, Fault{Site: site, N: n, Kind: kind})
	if in.observer != nil {
		in.observer(Fault{Site: site, N: n, Kind: kind})
	}
	switch kind {
	case KindPanic:
		panic(&Panic{Site: site, N: n})
	case KindDelay:
		time.Sleep(in.delay)
		return nil
	default:
		return &Error{Site: site, N: n}
	}
}

func (in *Injector) siteEnabled(site string) bool {
	if len(in.spec.Sites) == 0 {
		return true
	}
	for _, p := range in.spec.Sites {
		if strings.HasPrefix(site, p) {
			return true
		}
	}
	return false
}

// pickKind selects the fault kind from independent bits of the draw.
func (in *Injector) pickKind(h uint64) Kind {
	kinds := in.spec.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindError, KindPanic, KindDelay}
	}
	return kinds[(h>>53)%uint64(len(kinds))]
}

// mix is splitmix64's finalizer over a seeded combination — cheap,
// well-distributed, and stable across platforms.
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15 + b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString is FNV-1a, inlined to keep Point allocation-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
