// Package semantics implements the incremental semantic store Ratte's
// generators consult while constructing programs (paper §3.1–§3.3).
//
// The store is a tuple of independently-updatable incremental states —
// exactly the shape of Definition 3.3, S(P') = f(S(P), e):
//
//   - the dialect-agnostic *type table* (Figure 6, left): which SSA
//     values are visible in the current scope and at which syntactic
//     types;
//   - the dialect-agnostic *fresh-ID source* (Figure 6, right);
//   - the *concrete interpretation*: the runtime value of every visible
//     SSA value, obtained by evaluating each appended operation with
//     the reference kernels the moment it is generated. Concrete values
//     subsume the paper's well-definedness analysis (§3.4) and concrete
//     container-shape tracking (§3.3): both are fields of the runtime
//     value.
//
// Apply is the only mutation on a generated prefix: it evaluates one
// extension operation and updates every sub-state, so the cost of
// keeping the semantics current is proportional to the extension, never
// to the whole prefix.
package semantics

import (
	"fmt"
	"strconv"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// Store carries the semantic state of a partially-generated program.
type Store struct {
	ctx   *interp.Context
	types *scoped.Table[ir.Value]
	fresh int
}

// NewStore builds a store whose concrete interpretation uses the given
// interpreter's kernels (normally the composed reference interpreter of
// the dialects being fuzzed).
func NewStore(in *interp.Interpreter) *Store {
	return &Store{
		ctx:   interp.NewContext(in),
		types: scoped.New[ir.Value](),
	}
}

// Context exposes the underlying evaluation context (for output
// retrieval and function registration).
func (s *Store) Context() *interp.Context { return s.ctx }

// FreshID hands out the next free SSA identifier — the incremental
// next-ID semantics of Figure 6.
func (s *Store) FreshID() string {
	id := strconv.Itoa(s.fresh)
	s.fresh++
	return id
}

// FreshValue allocates a fresh value of the given type.
func (s *Store) FreshValue(t ir.Type) ir.Value { return ir.V(s.FreshID(), t) }

// PushScope/PopScope track region nesting during generation.
func (s *Store) PushScope(kind scoped.ScopeType) {
	s.ctx.PushScope(kind)
	s.types.Push(kind)
}

// PopScope leaves the innermost scope.
func (s *Store) PopScope() {
	s.ctx.PopScope()
	s.types.Pop()
}

// BindArg introduces a block argument with a concrete sample value
// (used when generating region bodies whose arguments are supplied by
// the enclosing operation at run time).
func (s *Store) BindArg(v ir.Value, sample rtval.Value) error {
	if err := s.ctx.Define(v, sample); err != nil {
		return err
	}
	return s.types.Define(v.ID, v)
}

// AddFunc registers a helper function so that generated func.call
// operations can be evaluated during generation.
func (s *Store) AddFunc(f *ir.Operation) error { return s.ctx.AddFunc(f) }

// Apply evaluates one extension operation and folds its results into
// every sub-state. An error means the extension would introduce
// undefined behaviour or a trap — the generator must never produce one,
// so callers treat it as a generator defect.
func (s *Store) Apply(op *ir.Operation) error {
	if err := s.ctx.Eval(op); err != nil {
		return err
	}
	for _, r := range op.Results {
		if err := s.types.Define(r.ID, r); err != nil {
			return fmt.Errorf("semantics: %w", err)
		}
	}
	return nil
}

// Value returns the concrete runtime value of a visible SSA value.
func (s *Store) Value(id string) (rtval.Value, bool) { return s.ctx.Lookup(id) }

// Candidate is a visible SSA value paired with its concrete value.
type Candidate struct {
	Val ir.Value
	RT  rtval.Value
}

// Candidates returns every visible value satisfying pred. The order is
// deterministic (sorted by ID) so generation is reproducible.
func (s *Store) Candidates(pred func(v ir.Value, rt rtval.Value) bool) []Candidate {
	ids := s.types.VisibleKeys()
	sortStrings(ids)
	var out []Candidate
	for _, id := range ids {
		v, ok := s.types.Lookup(id)
		if !ok {
			continue
		}
		rt, ok := s.ctx.Lookup(id)
		if !ok {
			continue
		}
		if pred == nil || pred(v, rt) {
			out = append(out, Candidate{Val: v, RT: rt})
		}
	}
	return out
}

// ScalarsOfType returns visible integer/index values of exactly type t.
func (s *Store) ScalarsOfType(t ir.Type) []Candidate {
	return s.Candidates(func(v ir.Value, rt rtval.Value) bool {
		return ir.TypeEqual(v.Type, t)
	})
}

// Tensors returns the visible tensor values.
func (s *Store) Tensors() []Candidate {
	return s.Candidates(func(v ir.Value, rt rtval.Value) bool {
		_, ok := rt.(*rtval.Tensor)
		return ok
	})
}

// Output returns everything printed by evaluated vector.print ops: the
// expected output of the generated program (the generation-time oracle).
func (s *Store) Output() string { return s.ctx.Output() }

func sortStrings(ss []string) {
	// Insertion sort: candidate lists are small and this avoids pulling
	// in sort for a hot path… no — clarity wins; use a simple shell of
	// the stdlib. (Kept tiny and allocation-free.)
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && less(ss[j], ss[j-1]); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// less orders IDs numerically when both are numeric, lexically
// otherwise, so %2 < %10.
func less(a, b string) bool {
	na, ea := strconv.Atoi(a)
	nb, eb := strconv.Atoi(b)
	if ea == nil && eb == nil {
		return na < nb
	}
	if (ea == nil) != (eb == nil) {
		return ea == nil
	}
	return a < b
}
