package semantics_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
	"ratte/internal/semantics"
)

func newStore() *semantics.Store {
	return semantics.NewStore(dialects.NewReferenceInterpreter())
}

func constOp(id string, v int64, t ir.Type) *ir.Operation {
	op := ir.NewOp("arith.constant")
	op.Attrs.Set("value", ir.IntAttr(v, t))
	op.Results = []ir.Value{ir.V(id, t)}
	return op
}

func binOp(name, id string, t ir.Type, a, b ir.Value) *ir.Operation {
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, b}
	op.Results = []ir.Value{ir.V(id, t)}
	return op
}

// TestFigure6IncrementalSemantics replays the paper's Figure 6: the two
// dialect-agnostic incremental semantics — the value-type table and the
// next-fresh-ID tracker — evolve step by step as extensions are applied.
func TestFigure6IncrementalSemantics(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.IsolatedFromAbove)

	// Fresh-ID semantics: 0, 1, 2, … independent of anything else.
	if id := s.FreshID(); id != "0" {
		t.Fatalf("first fresh id %q", id)
	}
	if id := s.FreshID(); id != "1" {
		t.Fatalf("second fresh id %q", id)
	}

	// Type semantics: applying an extension records its result types.
	if err := s.Apply(constOp("0", 7, ir.I64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(constOp("1", 3, ir.I32)); err != nil {
		t.Fatal(err)
	}
	types := map[string]string{}
	for _, c := range s.Candidates(nil) {
		types[c.Val.ID] = c.Val.Type.String()
	}
	if types["0"] != "i64" || types["1"] != "i32" {
		t.Errorf("type table %v", types)
	}

	// Incremental update: one more extension extends — not recomputes —
	// the state.
	v2 := ir.V(s.FreshID(), ir.I64)
	if err := s.Apply(binOp("arith.addi", v2.ID, ir.I64, ir.V("0", ir.I64), ir.V("0", ir.I64))); err != nil {
		t.Fatal(err)
	}
	rt, ok := s.Value(v2.ID)
	if !ok {
		t.Fatal("value missing after Apply")
	}
	if got := rt.(rtval.Int).Signed(); got != 14 {
		t.Errorf("concrete interpretation says %d, want 14", got)
	}
}

// TestConcreteInterpretationGuidesChoices demonstrates Figure 11's
// discipline: the store knows which visible values are safe divisors.
func TestConcreteInterpretationGuidesChoices(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.IsolatedFromAbove)
	if err := s.Apply(constOp("z", 0, ir.I64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(constOp("nz", 5, ir.I64)); err != nil {
		t.Fatal(err)
	}
	safe := s.Candidates(func(v ir.Value, rt rtval.Value) bool {
		i, ok := rt.(rtval.Int)
		return ok && i.Defined() && !i.IsZero()
	})
	if len(safe) != 1 || safe[0].Val.ID != "nz" {
		t.Errorf("safe divisors = %v", safe)
	}
}

// TestApplyRejectsUB: an extension that would introduce UB is rejected
// by the incremental evaluation — the generator can never emit one
// unnoticed.
func TestApplyRejectsUB(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.IsolatedFromAbove)
	if err := s.Apply(constOp("a", 1, ir.I64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(constOp("z", 0, ir.I64)); err != nil {
		t.Fatal(err)
	}
	div := binOp("arith.divsi", "q", ir.I64, ir.V("a", ir.I64), ir.V("z", ir.I64))
	if err := s.Apply(div); err == nil {
		t.Fatal("division by zero must be rejected by Apply")
	}
}

// TestScopeDiscipline: region-scoped values vanish on PopScope;
// enclosing values stay visible through Standard scopes and are hidden
// by IsolatedFromAbove.
func TestScopeDiscipline(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.IsolatedFromAbove)
	if err := s.Apply(constOp("outer", 1, ir.I64)); err != nil {
		t.Fatal(err)
	}

	s.PushScope(scoped.Standard)
	if err := s.Apply(constOp("inner", 2, ir.I64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Value("outer"); !ok {
		t.Error("standard scope must see enclosing values")
	}
	s.PopScope()
	if _, ok := s.Value("inner"); ok {
		t.Error("region-local value escaped its scope")
	}

	s.PushScope(scoped.IsolatedFromAbove)
	if _, ok := s.Value("outer"); ok {
		t.Error("isolated scope must not see enclosing values")
	}
	s.PopScope()
}

// TestBindArg samples region arguments.
func TestBindArg(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.Standard)
	arg := ir.V("arg0", ir.Index)
	if err := s.BindArg(arg, rtval.NewIndex(3)); err != nil {
		t.Fatal(err)
	}
	rt, ok := s.Value("arg0")
	if !ok || rt.(rtval.Int).Signed() != 3 {
		t.Errorf("bound arg = %v, %v", rt, ok)
	}
}

// TestOutputAccumulates: evaluated prints become the expected output.
func TestOutputAccumulates(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.IsolatedFromAbove)
	if err := s.Apply(constOp("a", -5, ir.I8)); err != nil {
		t.Fatal(err)
	}
	p := ir.NewOp("vector.print")
	p.Operands = []ir.Value{ir.V("a", ir.I8)}
	if err := s.Apply(p); err != nil {
		t.Fatal(err)
	}
	if s.Output() != "-5\n" {
		t.Errorf("output %q", s.Output())
	}
}

// TestCandidatesDeterministic: candidate enumeration is sorted, so
// generation is reproducible.
func TestCandidatesDeterministic(t *testing.T) {
	s := newStore()
	s.PushScope(scoped.Standard)
	for _, id := range []string{"2", "10", "1"} {
		if err := s.Apply(constOp(id, 1, ir.I64)); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Candidates(nil)
	if len(c) != 3 || c[0].Val.ID != "1" || c[1].Val.ID != "2" || c[2].Val.ID != "10" {
		ids := []string{}
		for _, x := range c {
			ids = append(ids, x.Val.ID)
		}
		t.Errorf("candidate order %v, want numeric [1 2 10]", ids)
	}
}
