// campaign-fault-tolerance/<preset>: the robustness contract of the
// fault-isolated campaign engine, checked end to end under deterministic
// fault injection. With faults manufactured at every instrumented site
// (registry lookups, pass execution, interpreter dispatch), a campaign
// must still:
//
//   - verdict every seed — panics and injected errors are contained as
//     stage failures, never crashes;
//   - agree byte-for-byte between the serial and parallel engines, and
//     across repeat runs — the fault schedule is addressed by
//     (spec, seed, site, occurrence), never by wall clock or goroutine;
//   - leave unaffected seeds (zero fault hits) byte-identical to the
//     fault-free run — injection has no blast radius beyond the seeds
//     it touches, in particular no poisoning through shared
//     compiled-program caches;
//   - leak no goroutines once the run completes.
//
// Module-free, like campaign-agreement: the campaign seed schedule is
// the input, so there is nothing to shrink.
package conformance

import (
	"fmt"
	"runtime"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/ir"
)

// FamilyFaultTolerance names the fault-tolerance oracle family.
const FamilyFaultTolerance = "campaign-fault-tolerance"

type faultTolerance struct{ preset string }

// NewFaultTolerance returns the fault-injected campaign robustness
// oracle for one preset.
func NewFaultTolerance(preset string) Oracle { return faultTolerance{preset} }

func (o faultTolerance) Name() string { return FamilyFaultTolerance + "/" + o.preset }

func (o faultTolerance) Generate(int64) (*ir.Module, error) { return nil, nil }

func (o faultTolerance) Check(_ *ir.Module, seed int64) *Failure {
	goroutinesBefore := runtime.NumGoroutine()

	base := difftest.CampaignConfig{
		Preset:   o.preset,
		Programs: 4,
		Size:     15,
		Seed:     seed,
		Bugs:     bugs.All(),
	}
	clean, err := difftest.RunCampaign(base)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("fault-free baseline failed: %v", err)}
	}

	// The paper-scale smoke rate: ~2% of fault decisions fire, every
	// kind enabled. Delays stay at the small default and no per-program
	// timeout is set, so the fault schedule alone — not scheduling
	// noise — determines every verdict.
	cfg := base
	cfg.Faults = &faultinject.Spec{
		Seed: seed,
		Rate: 0.02,
		Kinds: []faultinject.Kind{
			faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay,
		},
	}
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Microsecond

	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("fault-injected serial campaign failed: %v", err)}
	}
	if len(serial.Verdicts) != cfg.Programs {
		return &Failure{Detail: fmt.Sprintf("fault-injected campaign verdicted %d of %d seeds", len(serial.Verdicts), cfg.Programs)}
	}

	parallel, err := difftest.RunCampaignParallel(cfg, 4)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("fault-injected parallel campaign failed: %v", err)}
	}
	if d := difftest.DiffResults(serial, parallel); d != "" {
		return &Failure{Detail: fmt.Sprintf("fault-injected engines disagree: %s", d)}
	}

	// Unaffected seeds must be untouched by the fault machinery.
	for i, v := range serial.Verdicts {
		if v.Faults > 0 {
			continue
		}
		want := clean.Verdicts[i]
		if d := difftest.DiffVerdicts([]difftest.Verdict{want}, []difftest.Verdict{v}); d != "" {
			return &Failure{Detail: fmt.Sprintf("unaffected seed %d drifted from fault-free run: %s", v.Seed, d)}
		}
	}

	// Goroutine hygiene: the pipeline's workers, feeders and closers
	// must all have exited. Give the runtime a moment to reap them.
	deadline := time.Now().Add(time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			return &Failure{Detail: fmt.Sprintf("goroutine leak: %d before campaigns, %d after", goroutinesBefore, runtime.NumGoroutine())}
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}
