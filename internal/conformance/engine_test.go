package conformance_test

import (
	"path/filepath"
	"testing"

	"ratte/internal/conformance"
	"ratte/internal/gen"
)

// TestEngineAgreementCorpus replays the committed regression corpus
// through the compiled-vs-tree-walking agreement check: every persisted
// counterexample — whatever oracle originally produced it — must
// execute byte-identically under both engines. The corpus skews toward
// modules that once broke something, which makes it a better agreement
// workload than fresh random programs alone.
func TestEngineAgreementCorpus(t *testing.T) {
	rs, err := conformance.ReadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("empty regression corpus")
	}
	for _, r := range rs {
		r := r
		t.Run(filepath.Base(r.File), func(t *testing.T) {
			if f := conformance.CheckEngineAgreement(r.Module, "corpus"); f != nil {
				t.Error(f.Detail)
			}
		})
	}
}

// TestEngineAgreementTrials smoke-tests the oracle end to end on fresh
// programs: a few seeds per preset, each checked at source level and
// after every build configuration's lowering.
func TestEngineAgreementTrials(t *testing.T) {
	for _, preset := range gen.AllPresets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			o := conformance.NewEngineAgreement(preset)
			for seed := int64(0); seed < 3; seed++ {
				m, err := o.Generate(seed)
				if err != nil {
					t.Fatalf("seed %d: generate: %v", seed, err)
				}
				if f := o.Check(m, seed); f != nil {
					t.Errorf("seed %d: %s", seed, f.Detail)
				}
			}
		})
	}
}
