package conformance

import (
	"fmt"
	"strings"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/ir"
)

// The plan-fuzzing oracle families (see internal/compiler/planfuzz.go).
const (
	FamilyPlanLegality = "plan-legality"
	FamilyPlanEquiv    = "plan-equivalence"
)

// planEquivPlans is the plan-set size the plan-equivalence oracle
// samples per trial — small enough that a Check stays comparable in
// cost to the difftest oracle, large enough that the optional passes
// actually show up.
const planEquivPlans = 6

// ---------------------------------------------------------------------
// plan-legality/<preset>: the sampler only emits legal plans, and the
// validator is not vacuous — every sampled plan passes ValidatePlan,
// and a deliberately broken mutation of a legal plan (mandatory stage
// dropped or reordered, occurrence cap exceeded, fused pair split,
// pass placed after its invalidator, unknown pass) is always rejected.
// Module-free: the plan space itself is the input, indexed by seed.

type planLegality struct{ preset string }

// NewPlanLegality returns the plan sampler/validator agreement oracle.
func NewPlanLegality(preset string) Oracle { return planLegality{preset} }

func (o planLegality) Name() string { return FamilyPlanLegality + "/" + o.preset }

func (o planLegality) Generate(int64) (*ir.Module, error) { return nil, nil }

func (o planLegality) Check(_ *ir.Module, seed int64) *Failure {
	plans, err := compiler.SamplePlans(o.preset, 16, seed)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("sampler failed: %v", err)}
	}
	for _, p := range plans {
		if err := compiler.ValidatePlan(p); err != nil {
			return &Failure{
				Detail: fmt.Sprintf("sampled plan %v is illegal: %v", p.Passes, err),
				Plan:   append([]string(nil), p.Passes...),
			}
		}
		for _, mut := range illegalMutations(p) {
			if err := compiler.ValidatePlan(mut.plan); err == nil {
				return &Failure{
					Detail: fmt.Sprintf("validator accepted %s of legal plan %v: %v",
						mut.desc, p.Passes, mut.plan.Passes),
					Plan: append([]string(nil), mut.plan.Passes...),
				}
			}
		}
	}
	return nil
}

// planMutation is one deliberately illegal rewrite of a legal plan.
type planMutation struct {
	desc string
	plan compiler.Plan
}

// illegalMutations derives plans that must be rejected from a legal
// one. Each rewrite breaks exactly one rule the validator enforces;
// none of them can accidentally produce a different legal plan.
func illegalMutations(p compiler.Plan) []planMutation {
	var muts []planMutation
	add := func(desc string, passes []string) {
		muts = append(muts, planMutation{desc, compiler.Plan{Preset: p.Preset, Passes: passes}})
	}
	clone := func() []string { return append([]string(nil), p.Passes...) }

	// Mandatory-stage positions, in plan order.
	var mand []int
	for i, name := range p.Passes {
		if meta, ok := compiler.PassMetadata(name); ok && meta.Mandatory {
			mand = append(mand, i)
		}
	}
	// Drop each mandatory lowering stage: incomplete skeleton.
	for _, i := range mand {
		c := clone()
		add(fmt.Sprintf("drop of mandatory %s", p.Passes[i]), append(c[:i:i], c[i+1:]...))
	}
	// Swap each consecutive pair of mandatory stages: ordering violated.
	for k := 0; k+1 < len(mand); k++ {
		i, j := mand[k], mand[k+1]
		c := clone()
		c[i], c[j] = c[j], c[i]
		add(fmt.Sprintf("swap of mandatory %s and %s", p.Passes[i], p.Passes[j]), c)
	}
	// Repeat a mandatory stage: exactly-once violated.
	if len(mand) > 0 {
		add(fmt.Sprintf("repeat of mandatory %s", p.Passes[mand[0]]),
			append(clone(), p.Passes[mand[0]]))
	}
	// Exceed an occurrence cap: canonicalize past its MaxOccur.
	if meta, ok := compiler.PassMetadata("canonicalize"); ok {
		have := 0
		for _, name := range p.Passes {
			if name == "canonicalize" {
				have++
			}
		}
		extra := make([]string, meta.MaxOccur+1-have)
		for i := range extra {
			extra[i] = "canonicalize"
		}
		add("occurrence overflow of canonicalize", append(extra, clone()...))
	}
	// Place arith-expand after its invalidator (convert-arith-to-llvm
	// is in every skeleton, so appending it at the very end is illegal
	// in every preset).
	add("placement of arith-expand after convert-arith-to-llvm",
		append(clone(), "arith-expand"))
	// Split the fused bufferize/lower pair, where the preset has one.
	for i, name := range p.Passes {
		meta, ok := compiler.PassMetadata(name)
		if !ok || meta.FuseWith == "" {
			continue
		}
		c := clone()
		c = append(c[:i+1:i+1], append([]string{"cse"}, c[i+1:]...)...)
		add(fmt.Sprintf("split of fused pair %s+%s", name, meta.FuseWith), c)
	}
	// An unknown pass anywhere.
	add("insertion of unknown pass", append([]string{"no-such-pass"}, clone()...))
	return muts
}

// ---------------------------------------------------------------------
// plan-equivalence/<preset>: phase ordering is semantics-preserving —
// a UB-free module compiled under any sampled legal plan agrees with
// the Ratte reference semantics (and hence any two legal plans agree
// with each other; DT-P is subsumed by DT-R because the reference is
// always defined). With no injected bugs this asserts the pass
// implementations commute where the plan space says they may; with a
// bug set it is the plan-mode campaign's oracle in QuickCheck harness
// form. A counterexample is a (program, plan) pair: the engine shrinks
// the module axis, and Check itself reduces the offending plan to a
// minimal still-failing one, so the persisted regression is small on
// both axes.

type planEquiv struct {
	preset string
	bugSet bugs.Set
}

// NewPlanEquivalence returns the cross-plan semantic-equivalence
// oracle against a (possibly bug-injected) compiler build.
func NewPlanEquivalence(preset string, bugSet bugs.Set) Oracle {
	return planEquiv{preset, bugSet}
}

func (o planEquiv) Name() string { return FamilyPlanEquiv + "/" + o.preset }

// InjectedBugs exposes the build's defects for regression persistence.
func (o planEquiv) InjectedBugs() bugs.Set { return o.bugSet }

func (o planEquiv) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 25, seed)
}

func (o planEquiv) Check(m *ir.Module, seed int64) *Failure {
	ref, ok := reference(m)
	if !ok {
		return nil
	}
	plans, err := compiler.SamplePlans(o.preset, planEquivPlans, seed)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("sampler failed: %v", err)}
	}
	rep := difftest.TestModulePlans(m, ref, plans, o.bugSet)
	fired, key := rep.Detected()
	if fired == difftest.OracleNone {
		return nil
	}
	bad, found := plans[0], false
	for _, p := range plans {
		if p.Key() == key {
			bad, found = p, true
			break
		}
	}
	if !found {
		return &Failure{
			Detail: fmt.Sprintf("%s fired but attributed to unknown plan %s", fired, key),
			Fired:  string(fired),
		}
	}
	// Shrink the plan axis: the smallest legal plan under which this
	// module still trips the oracle.
	min := compiler.ShrinkPlan(bad, func(cand compiler.Plan) bool {
		r := difftest.TestModulePlans(m, ref, []compiler.Plan{cand}, o.bugSet)
		f, _ := r.Detected()
		return f == fired
	})
	return &Failure{
		Detail: fmt.Sprintf("%s fired under plan %v", fired, min.Passes),
		Fired:  string(fired),
		Plan:   append([]string(nil), min.Passes...),
	}
}

// planOf reconstructs a regression's compilation plan from its stored
// pass list, using the preset spelled in the oracle name.
func planOf(r *Regression) (compiler.Plan, error) {
	plan := compiler.Plan{Preset: presetOf(r.Oracle), Passes: r.Plan}
	if err := compiler.ValidatePlan(plan); err != nil {
		return compiler.Plan{}, fmt.Errorf("stored plan %v is no longer legal: %w", r.Plan, err)
	}
	return plan, nil
}

// planHeader renders a pass list for the corpus header ("" when none).
func planHeader(passes []string) string { return strings.Join(passes, ",") }
