package conformance_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/conformance"
	"ratte/internal/ir"
)

// corpusDir is the committed regression corpus, shared repo-wide (the
// README documents its layout).
const corpusDir = "../../testdata/regressions"

var updateCorpus = flag.Bool("update-corpus", false,
	"regenerate testdata/regressions/ entries seeded from the internal/bugs table")

// TestRegressionCorpusReplaysGreen is the corpus replayer: every
// committed regression, re-checked from scratch in ordinary `go test`.
// Each entry asserts both directions — the property holds against the
// correct substrate, and entries recording injected bugs still trip the
// recorded oracle against that buggy build.
func TestRegressionCorpusReplaysGreen(t *testing.T) {
	rs, err := conformance.ReadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < len(bugs.Table()) {
		t.Fatalf("corpus has %d entries, want at least the %d seeded bug reproducers", len(rs), len(bugs.Table()))
	}
	for _, r := range rs {
		r := r
		t.Run(filepath.Base(r.File), func(t *testing.T) {
			if err := conformance.Replay(r); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSeededCorpusMatchesBugTable pins the seeded part of the corpus to
// its source of truth: for every Table 3 defect, the reduced reproducer
// in testdata/bugs/ is re-shrunk by the harness against the difftest
// oracle with (exactly) that bug injected, and the resulting regression
// file must match the committed one byte for byte. Run with
// -update-corpus to regenerate after an intentional change.
func TestSeededCorpusMatchesBugTable(t *testing.T) {
	for _, info := range bugs.Table() {
		info := info
		t.Run(fmt.Sprintf("bug%d", int(info.ID)), func(t *testing.T) {
			r := seededRegression(t, info)
			if *updateCorpus {
				path, err := conformance.WriteRegression(corpusDir, r)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			tmp := t.TempDir()
			path, err := conformance.WriteRegression(tmp, r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(corpusDir, r.FileName()))
			if err != nil {
				t.Fatalf("committed corpus entry missing (run `go test ./internal/conformance -run SeededCorpus -update-corpus`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("committed %s is stale (run with -update-corpus):\n--- committed ---\n%s--- regenerated ---\n%s",
					r.FileName(), got, want)
			}
		})
	}
}

// seededRegression builds the corpus entry for one Table 3 bug from its
// reduced test case in testdata/bugs/.
func seededRegression(t *testing.T, info bugs.Info) *conformance.Regression {
	t.Helper()
	src, err := os.ReadFile(fmt.Sprintf("../../testdata/bugs/%d.mlir", int(info.ID)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	o := conformance.NewDifftest("ariths", bugs.Only(info.ID))
	f := o.Check(m, 0)
	if f == nil {
		t.Fatalf("bug %d reproducer does not fail the difftest oracle", int(info.ID))
	}
	min, _ := conformance.Minimize(o, m, 0)
	if fm := o.Check(min, 0); fm != nil {
		f = fm
	}
	if f.Fired != info.Oracle {
		t.Fatalf("bug %d fired %s, Table 3 says %s", int(info.ID), f.Fired, info.Oracle)
	}
	return &conformance.Regression{
		Oracle: "difftest/ariths",
		Seed:   0,
		Bugs:   []bugs.ID{info.ID},
		Fires:  f.Fired,
		Detail: f.Detail,
		Module: min,
	}
}
