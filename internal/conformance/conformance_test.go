package conformance_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/conformance"
	"ratte/internal/ir"
)

// TestBrokenPassCaughtShrunkPersisted is the harness's acceptance
// property: against a deliberately broken pass — here canonicalize with
// the paper's bug 5 (the i1 mulsi_extended special case) temporarily
// injected — the difftest oracle catches the miscompilation, the engine
// auto-shrinks the program to a handful of ops with the trigger
// operation still present, persists it with full metadata, and the
// resulting corpus replays green.
func TestBrokenPassCaughtShrunkPersisted(t *testing.T) {
	dir := t.TempDir()
	o := conformance.NewDifftest("ariths", bugs.Only(bugs.MulsiExtendedI1Fold))
	res, err := conformance.Run(o, conformance.Config{
		Trials:      6,
		Seed:        20, // seed 23 is a known trigger; the schedule reaches it
		CorpusDir:   dir,
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want 1 counterexample, got %d", len(res.Failures))
	}
	ce := res.Failures[0]
	if ce.Fired != "DT-R" {
		t.Errorf("bug 5 should fire DT-R, fired %q", ce.Fired)
	}
	if ce.MinOps >= ce.OrigOps {
		t.Errorf("shrinking did not shrink: %d -> %d ops", ce.OrigOps, ce.MinOps)
	}
	if ce.MinOps > 15 {
		t.Errorf("counterexample not minimal enough: %d ops", ce.MinOps)
	}
	if ce.ShrinkSteps == 0 {
		t.Error("no shrink steps recorded")
	}
	if !strings.Contains(ir.Print(ce.Module), "arith.mulsi_extended") {
		t.Errorf("minimized module lost the trigger op:\n%s", ir.Print(ce.Module))
	}
	if ce.File == "" {
		t.Fatal("counterexample was not persisted")
	}
	if _, err := os.Stat(ce.File); err != nil {
		t.Fatal(err)
	}

	// The persisted corpus replays green: property holds on the correct
	// build, and the reproducer still fires against the buggy one.
	rs, errs := conformance.ReplayCorpus(dir)
	if len(errs) > 0 {
		t.Fatalf("replay violations: %v", errs)
	}
	if len(rs) != 1 {
		t.Fatalf("want 1 corpus entry, got %d", len(rs))
	}
	r := rs[0]
	if r.Oracle != "difftest/ariths" || r.Seed != ce.Seed || r.Fires != "DT-R" {
		t.Errorf("metadata round-trip: %+v", r)
	}
	if len(r.Bugs) != 1 || r.Bugs[0] != bugs.MulsiExtendedI1Fold {
		t.Errorf("injected bugs not recorded: %v", r.Bugs)
	}
	if ir.Print(r.Module) != ir.Print(ce.Module) {
		t.Error("stored module differs from the minimized counterexample")
	}
}

// TestRunDeterministic: a fixed (oracle, Trials, Seed) yields
// byte-identical logs and identical minimized counterexamples across
// runs — the property that lets -check gate CI.
func TestRunDeterministic(t *testing.T) {
	o := conformance.NewDifftest("ariths", bugs.Only(bugs.MulsiExtendedI1Fold))
	var logs [2]bytes.Buffer
	var mods [2]string
	for i := 0; i < 2; i++ {
		res, err := conformance.Run(o, conformance.Config{
			Trials: 5, Seed: 20, StopAtFirst: true, Log: &logs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) != 1 {
			t.Fatalf("run %d: want 1 counterexample, got %d", i, len(res.Failures))
		}
		mods[i] = ir.Print(res.Failures[0].Module)
	}
	if logs[0].String() != logs[1].String() {
		t.Errorf("logs differ:\n--- run 0 ---\n%s--- run 1 ---\n%s", logs[0].String(), logs[1].String())
	}
	if mods[0] != mods[1] {
		t.Error("minimized counterexamples differ across runs")
	}
}

// TestStandardOraclesHoldOnCorrectSubstrate: the full battery, a couple
// of trials each, must be failure-free — the substrate's conformance
// smoke run.
func TestStandardOraclesHoldOnCorrectSubstrate(t *testing.T) {
	for _, o := range conformance.StandardOracles() {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			res, err := conformance.Run(o, conformance.Config{Trials: 3, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, ce := range res.Failures {
				t.Errorf("seed %d: %s\n%s", ce.Seed, ce.Detail, printIfAny(ce.Module))
			}
		})
	}
}

func printIfAny(m *ir.Module) string {
	if m == nil {
		return "(module-free oracle)"
	}
	return ir.Print(m)
}

// TestLookupInvertsNames: every standard oracle's name must round-trip
// through the registry — that is what lets a regression file name its
// property and be re-checked later.
func TestLookupInvertsNames(t *testing.T) {
	for _, o := range conformance.StandardOracles() {
		got, err := conformance.Lookup(o.Name())
		if err != nil {
			t.Errorf("Lookup(%q): %v", o.Name(), err)
			continue
		}
		if got.Name() != o.Name() {
			t.Errorf("Lookup(%q).Name() = %q", o.Name(), got.Name())
		}
	}
	// The noexpand lowering-strategy variant is addressable too.
	o, err := conformance.Lookup("prefix-equivalence/ariths/O1-noexpand")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "prefix-equivalence/ariths/O1-noexpand" {
		t.Errorf("noexpand variant: %q", o.Name())
	}
	for _, bad := range []string{"", "round-trip", "round-trip/nope", "nope/ariths", "prefix-equivalence/ariths/O7"} {
		if _, err := conformance.Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) should fail", bad)
		}
	}
}

// TestCorpusRoundTrip pins the regression file format: write, read
// back, all metadata and the module intact; non-regression files are
// rejected.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := conformance.NewDifftest("ariths", bugs.Only(bugs.IndexCastUIFold))
	m, err := o.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	in := &conformance.Regression{
		Oracle: "difftest/ariths",
		Seed:   7,
		Bugs:   []bugs.ID{bugs.IndexCastUIFold},
		Fires:  "DT-R",
		Detail: "multi\nline detail",
		Module: m,
	}
	path, err := conformance.WriteRegression(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "difftest-ariths-b1-seed7.mlir" {
		t.Errorf("canonical file name: got %s", filepath.Base(path))
	}
	out, err := conformance.ReadRegression(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Oracle != in.Oracle || out.Seed != in.Seed || out.Fires != in.Fires {
		t.Errorf("metadata: %+v", out)
	}
	if out.Detail != "multi line detail" {
		t.Errorf("detail not flattened to one line: %q", out.Detail)
	}
	if len(out.Bugs) != 1 || out.Bugs[0] != bugs.IndexCastUIFold {
		t.Errorf("bugs: %v", out.Bugs)
	}
	if ir.Print(out.Module) != ir.Print(m) {
		t.Error("module round-trip differs")
	}

	plain := filepath.Join(dir, "plain.mlir")
	if err := os.WriteFile(plain, []byte(ir.Print(m)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := conformance.ReadRegression(plain); err == nil {
		t.Error("plain .mlir accepted as a regression file")
	}
}
