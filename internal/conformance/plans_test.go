package conformance_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/conformance"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

// TestPlanLegalityAcrossPresets: the sampler/validator agreement
// property over many seeds and every preset — broader than the
// three-trial smoke the standard battery gives it.
func TestPlanLegalityAcrossPresets(t *testing.T) {
	for _, preset := range gen.AllPresets() {
		o := conformance.NewPlanLegality(preset)
		res, err := conformance.Run(o, conformance.Config{Trials: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, ce := range res.Failures {
			t.Errorf("%s seed %d: %s", preset, ce.Seed, ce.Detail)
		}
	}
}

// TestPlanEquivalenceCatchesShrinksPersists is the plan-fuzzing
// acceptance property: against a build with bug 6 injected (the direct
// ceildivsi conversion, live exactly when arith-expand is absent) the
// plan-equivalence oracle catches the miscompilation, the engine
// shrinks the module, Check shrinks the plan to the bare skeleton, and
// the persisted (program, plan) regression replays green.
func TestPlanEquivalenceCatchesShrinksPersists(t *testing.T) {
	dir := t.TempDir()
	o := conformance.NewPlanEquivalence("ariths", bugs.Only(bugs.CeilDivSiConvert))
	res, err := conformance.Run(o, conformance.Config{
		Trials:      12,
		Seed:        30, // seed 38 is a known trigger; the schedule reaches it
		CorpusDir:   dir,
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want 1 counterexample, got %d", len(res.Failures))
	}
	ce := res.Failures[0]
	if ce.Fired != "DT-R" {
		t.Errorf("bug 6 should fire DT-R, fired %q", ce.Fired)
	}
	skel, err := compiler.PlanSkeleton("ariths")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ce.Plan, skel) {
		t.Errorf("plan axis not minimized: %v, want bare skeleton %v", ce.Plan, skel)
	}
	if ce.MinOps >= ce.OrigOps {
		t.Errorf("module axis not minimized: %d -> %d ops", ce.OrigOps, ce.MinOps)
	}
	if !strings.Contains(ir.Print(ce.Module), "arith.ceildivsi") {
		t.Errorf("minimized module lost the trigger op:\n%s", ir.Print(ce.Module))
	}
	if ce.File == "" {
		t.Fatal("counterexample was not persisted")
	}

	// The corpus file carries the plan header and replays green.
	data, err := os.ReadFile(ce.File)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "// plan: "+strings.Join(skel, ",")) {
		t.Errorf("regression file missing plan header:\n%s", data)
	}
	rs, errs := conformance.ReplayCorpus(dir)
	if len(errs) > 0 {
		t.Fatalf("replay violations: %v", errs)
	}
	if len(rs) != 1 {
		t.Fatalf("want 1 corpus entry, got %d", len(rs))
	}
	r := rs[0]
	if r.Oracle != "plan-equivalence/ariths" || !reflect.DeepEqual(r.Plan, skel) {
		t.Errorf("metadata round-trip: %+v", r)
	}
	if len(r.Bugs) != 1 || r.Bugs[0] != bugs.CeilDivSiConvert {
		t.Errorf("injected bugs not recorded: %v", r.Bugs)
	}
}

// TestSeededPlanRegressionMatchesBugTable pins the committed
// (program, plan) reproducer: bug 6's reduced test case from
// testdata/bugs/, re-checked and re-shrunk against the plan-equivalence
// oracle, must match the committed corpus entry byte for byte. Run with
// -update-corpus to regenerate after an intentional change.
func TestSeededPlanRegressionMatchesBugTable(t *testing.T) {
	src, err := os.ReadFile("../../testdata/bugs/6.mlir")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	o := conformance.NewPlanEquivalence("ariths", bugs.Only(bugs.CeilDivSiConvert))
	f := o.Check(m, 0)
	if f == nil {
		t.Fatal("bug 6 reproducer does not fail the plan-equivalence oracle")
	}
	min, _ := conformance.Minimize(o, m, 0)
	if fm := o.Check(min, 0); fm != nil {
		f = fm
	}
	skel, _ := compiler.PlanSkeleton("ariths")
	if !reflect.DeepEqual(f.Plan, skel) {
		t.Fatalf("bug 6 plan axis: %v, want bare skeleton %v", f.Plan, skel)
	}
	r := &conformance.Regression{
		Oracle: "plan-equivalence/ariths",
		Seed:   0,
		Bugs:   []bugs.ID{bugs.CeilDivSiConvert},
		Fires:  f.Fired,
		Plan:   f.Plan,
		Detail: f.Detail,
		Module: min,
	}
	if *updateCorpus {
		path, err := conformance.WriteRegression(corpusDir, r)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	tmp := t.TempDir()
	path, err := conformance.WriteRegression(tmp, r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(corpusDir, r.FileName()))
	if err != nil {
		t.Fatalf("committed corpus entry missing (run `go test ./internal/conformance -run SeededPlan -update-corpus`): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("committed %s is stale (run with -update-corpus):\n--- committed ---\n%s--- regenerated ---\n%s",
			r.FileName(), got, want)
	}
}

// findSkeletonTrigger scans for a module bug 6 miscompiles under the
// bare-skeleton plan.
func findSkeletonTrigger(t *testing.T) (*ir.Module, compiler.Plan) {
	t.Helper()
	skel, err := compiler.PlanSkeleton("ariths")
	if err != nil {
		t.Fatal(err)
	}
	plan := compiler.Plan{Preset: "ariths", Passes: skel}
	for seed := int64(0); seed < 200; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep := difftest.TestModulePlans(p.Module, p.Expected, []compiler.Plan{plan}, bugs.Only(bugs.CeilDivSiConvert))
		if fired, _ := rep.Detected(); fired != difftest.OracleNone {
			return p.Module, plan
		}
	}
	t.Fatal("no skeleton-plan trigger for bug 6 in 200 seeds")
	return nil, compiler.Plan{}
}

// TestReplayUsesStoredPlan: a plan-bearing regression is replayed
// under its stored plan, not some fixed build configuration — the same
// module recorded with a plan the bug cannot fire under must be
// reported stale, and an illegal stored plan must be an error.
func TestReplayUsesStoredPlan(t *testing.T) {
	m, plan := findSkeletonTrigger(t)
	base := conformance.Regression{
		Oracle: "plan-equivalence/ariths",
		Seed:   0,
		Bugs:   []bugs.ID{bugs.CeilDivSiConvert},
		Fires:  "DT-R",
		Plan:   plan.Passes,
		Module: m,
	}
	good := base
	if err := conformance.Replay(&good); err != nil {
		t.Errorf("skeleton-plan reproducer should replay green: %v", err)
	}

	// arith-expand rewrites ceildivsi before the buggy conversion sees
	// it, so under this plan the reproducer cannot fire.
	masked := base
	masked.Plan = append([]string{"arith-expand"}, plan.Passes...)
	if err := conformance.Replay(&masked); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("masked plan should be reported stale, got %v", err)
	}

	illegal := base
	illegal.Plan = plan.Passes[1:]
	if err := conformance.Replay(&illegal); err == nil || !strings.Contains(err.Error(), "no longer legal") {
		t.Errorf("illegal stored plan should be an error, got %v", err)
	}
}
