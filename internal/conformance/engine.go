// The interp-engine-agreement oracle: the compiled execution engine
// and the tree walker are the same semantics in two implementations,
// and the engine's contract is byte-identical Results — same output,
// same returned values, and on failure the same error text and the
// same UB/trap classification. This oracle enforces the contract
// end-to-end: a generated module and every build configuration's
// lowered form of it run under both engines, forced (the engine's own
// payoff tiering is bypassed, because agreement must hold even for the
// modules tiering would walk).
package conformance

import (
	"fmt"

	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

// FamilyEngineAgree is the compiled-vs-tree-walking engine oracle.
const FamilyEngineAgree = "interp-engine-agreement"

type engineAgree struct{ preset string }

// NewEngineAgreement returns the oracle asserting the compiled
// execution engine and the tree walker produce byte-identical results
// on one preset's modules, at source level and after every build
// configuration's lowering.
func NewEngineAgreement(preset string) Oracle { return engineAgree{preset} }

func (o engineAgree) Name() string { return FamilyEngineAgree + "/" + o.preset }

func (o engineAgree) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 25, seed)
}

func (o engineAgree) Check(m *ir.Module, _ int64) *Failure {
	if f := CheckEngineAgreement(m, "source"); f != nil {
		return f
	}
	outs := compiler.CompileConfigs(m, o.preset, nil, difftest.BuildConfigs)
	for i, bc := range difftest.BuildConfigs {
		if outs[i].Err != nil {
			continue // not this oracle's property; difftest owns rejections
		}
		if f := CheckEngineAgreement(outs[i].Module, bc.String()); f != nil {
			return f
		}
	}
	return nil
}

// engineOutcome is everything the agreement compares: Result bytes on
// success, error text and classification on failure.
type engineOutcome struct {
	ok       bool
	output   string
	returned string
	errText  string
	ub       bool
	trap     bool
}

func outcomeOf(res *interp.Result, err error) engineOutcome {
	if err != nil {
		return engineOutcome{errText: err.Error(), ub: interp.IsUB(err), trap: interp.IsTrap(err)}
	}
	return engineOutcome{ok: true, output: res.Output, returned: fmt.Sprintf("%v", res.Returned)}
}

func (a engineOutcome) diff(b engineOutcome) string {
	switch {
	case a.ok != b.ok:
		return fmt.Sprintf("tree ok=%v (err %q) vs compiled ok=%v (err %q)", a.ok, a.errText, b.ok, b.errText)
	case a.output != b.output:
		return fmt.Sprintf("output %q vs compiled %q", a.output, b.output)
	case a.returned != b.returned:
		return fmt.Sprintf("returned %s vs compiled %s", a.returned, b.returned)
	case a.errText != b.errText:
		return fmt.Sprintf("error %q vs compiled %q", a.errText, b.errText)
	case a.ub != b.ub || a.trap != b.trap:
		return fmt.Sprintf("error class ub=%v trap=%v vs compiled ub=%v trap=%v", a.ub, a.trap, b.ub, b.trap)
	}
	return ""
}

// engineMaxSteps bounds both engines identically, so a program that
// trips the step limit trips it at the same step under each.
const engineMaxSteps = 2_000_000

// CheckEngineAgreement runs one module under the tree walker and the
// compiled engine — the latter twice, with superinstruction fusion
// disabled and enabled — (all over the full executor registry, so any
// lowering level is accepted) and reports the first disagreement;
// stage labels the module's position in the pipeline for the report.
// The three-way check is what pins fusion as a pure execution
// strategy: fused and unfused compiled programs must be byte-identical
// to each other AND to the walker, including error text and UB/trap
// classification. Exported for the regression-corpus replayer, which
// re-checks the agreement over every persisted counterexample.
func CheckEngineAgreement(m *ir.Module, stage string) *Failure {
	tree := dialects.NewTreeWalkingExecutor()
	tree.MaxSteps = engineMaxSteps
	treeOut := outcomeOf(tree.Run(m, "main"))

	unfused := dialects.NewTreeWalkingExecutor()
	unfused.MaxSteps = engineMaxSteps
	uprog := interp.CompileWith(dialects.ExecutorRegistry(), m, interp.CompileOptions{DisableFusion: true})
	unfusedOut := outcomeOf(unfused.RunProgram(uprog, "main"))

	fused := dialects.NewTreeWalkingExecutor()
	fused.MaxSteps = engineMaxSteps
	fprog := interp.Compile(dialects.ExecutorRegistry(), m)
	fusedOut := outcomeOf(fused.RunProgram(fprog, "main"))

	if d := treeOut.diff(unfusedOut); d != "" {
		return &Failure{Detail: fmt.Sprintf("engines disagree at %s (fusion off): %s", stage, d)}
	}
	if d := treeOut.diff(fusedOut); d != "" {
		return &Failure{Detail: fmt.Sprintf("engines disagree at %s (fusion on): %s", stage, d)}
	}
	return nil
}
