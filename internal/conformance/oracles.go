package conformance

import (
	"fmt"
	"sort"
	"strings"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/mutate"
	"ratte/internal/verify"
)

// The built-in oracle families. An oracle's Name is its family joined
// with its parameters by "/" — e.g. "round-trip/ariths",
// "prefix-equivalence/tensor/O2" — and Lookup inverts that spelling.
const (
	FamilyRoundTrip     = "round-trip"
	FamilyVerifierIdem  = "verifier-idempotent"
	FamilyPrefixEquiv   = "prefix-equivalence"
	FamilyMutationEquiv = "mutation-equivalence"
	FamilyCampaignAgree = "campaign-agreement"
	FamilyDifftest      = "difftest"
	// FamilyEngineAgree is declared in engine.go.
)

// BugCarrier is implemented by oracles that check against a deliberately
// bug-injected compiler build; the engine uses it to record the injected
// defects in persisted regressions, so the corpus replayer can assert
// the reproducer still fires against that build.
type BugCarrier interface {
	InjectedBugs() bugs.Set
}

// generate builds the trial module with the semantics-guided generator
// and asserts the generator's own contract (statically valid, the
// incremental expected output matches a from-scratch interpretation is
// asserted elsewhere); a violation is a generator bug and aborts the
// run rather than becoming a counterexample of this oracle.
func generate(preset string, size int, seed int64) (*ir.Module, error) {
	p, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed})
	if err != nil {
		return nil, err
	}
	return p.Module, nil
}

// reference interprets m under the Ratte reference semantics, reporting
// ok=false for modules outside the conformance domain (statically
// invalid, UB-carrying or trapping) — shrink candidates land there and
// must check clean.
func reference(m *ir.Module) (string, bool) {
	if err := verify.Module(m, dialects.SourceSpecs()); err != nil {
		return "", false
	}
	res, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		return "", false
	}
	return res.Output, true
}

// ---------------------------------------------------------------------
// round-trip/<preset>: print → parse → print is the identity on text.

type roundTrip struct{ preset string }

// NewRoundTrip returns the printer/parser round-trip oracle.
func NewRoundTrip(preset string) Oracle { return roundTrip{preset} }

func (o roundTrip) Name() string { return FamilyRoundTrip + "/" + o.preset }

func (o roundTrip) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 30, seed)
}

func (o roundTrip) Check(m *ir.Module, _ int64) *Failure {
	text := ir.Print(m)
	back, err := ir.Parse(text)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("printed module does not re-parse: %v", err)}
	}
	if again := ir.Print(back); again != text {
		return &Failure{Detail: fmt.Sprintf("round-trip not stable: %d-byte print re-prints as %d bytes", len(text), len(again))}
	}
	return nil
}

// ---------------------------------------------------------------------
// verifier-idempotent/<preset>: verification is a pure function — it
// never mutates the module and repeated runs agree (same acceptance,
// same diagnostic). This holds for every module, valid or not, so the
// shrinker is unconstrained.

type verifierIdem struct{ preset string }

// NewVerifierIdempotent returns the verifier purity/idempotence oracle.
func NewVerifierIdempotent(preset string) Oracle { return verifierIdem{preset} }

func (o verifierIdem) Name() string { return FamilyVerifierIdem + "/" + o.preset }

func (o verifierIdem) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 30, seed)
}

func (o verifierIdem) Check(m *ir.Module, _ int64) *Failure {
	before := ir.Print(m)
	err1 := verify.Module(m, dialects.SourceSpecs())
	if after := ir.Print(m); after != before {
		return &Failure{Detail: "verifier mutated the module"}
	}
	err2 := verify.Module(m, dialects.SourceSpecs())
	if (err1 == nil) != (err2 == nil) {
		return &Failure{Detail: fmt.Sprintf("verifier not deterministic: %v vs %v", err1, err2)}
	}
	if err1 != nil && err1.Error() != err2.Error() {
		return &Failure{Detail: fmt.Sprintf("verifier diagnostic unstable: %q vs %q", err1, err2)}
	}
	return nil
}

// ---------------------------------------------------------------------
// prefix-equivalence/<preset>/O<n>[-noexpand]: after EVERY executable
// prefix of the preset's pipeline, the module — a mixed-dialect module
// mid-lowering — still executes to the reference output. A pass that
// corrupts semantics anywhere in the pipeline fails here with the exact
// prefix identified. The only non-executable prefix is the one ending
// immediately after one-shot-bufferize (bufferised but the linalg ops
// not yet lowered to loops), which is skipped.

type prefixEquiv struct {
	preset     string
	level      compiler.OptLevel
	skipExpand bool
}

// NewPrefixEquivalence returns the per-pass-prefix semantic-equivalence
// oracle for one (preset, optimisation level, lowering strategy).
func NewPrefixEquivalence(preset string, level compiler.OptLevel, skipExpand bool) Oracle {
	return prefixEquiv{preset, level, skipExpand}
}

func (o prefixEquiv) Name() string {
	cfg := compiler.Config{Level: o.level, SkipArithExpand: o.skipExpand}
	return FamilyPrefixEquiv + "/" + o.preset + "/" + cfg.String()
}

func (o prefixEquiv) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 25, seed)
}

func (o prefixEquiv) Check(m *ir.Module, _ int64) *Failure {
	ref, ok := reference(m)
	if !ok {
		return nil
	}
	names, err := compiler.PipelineForConfig(o.preset, o.level, o.skipExpand)
	if err != nil {
		return &Failure{Detail: err.Error()}
	}
	bufferizeAt := -1
	for i, n := range names {
		if n == "one-shot-bufferize" {
			bufferizeAt = i
		}
	}
	for prefix := 0; prefix <= len(names); prefix++ {
		if bufferizeAt >= 0 && prefix == bufferizeAt+1 {
			continue // bufferised-but-not-looped: internal-only state
		}
		pipe, err := compiler.NewPipeline(names[:prefix]...)
		if err != nil {
			return &Failure{Detail: err.Error()}
		}
		mm := m.Clone()
		if err := pipe.Run(mm, &compiler.Options{}); err != nil {
			return &Failure{Detail: fmt.Sprintf("after %v: pass rejected a valid UB-free module: %v", names[:prefix], err)}
		}
		res, err := dialects.NewExecutor().Run(mm, "main")
		if err != nil {
			return &Failure{Detail: fmt.Sprintf("after %v: execution failed: %v", names[:prefix], err)}
		}
		if res.Output != ref {
			return &Failure{Detail: fmt.Sprintf("after %v: output %q, reference %q", names[:prefix], res.Output, ref)}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// mutation-equivalence/<preset>: metamorphic testing via
// internal/mutate — a semantics-preserving mutant, compiled under every
// build configuration, must behave exactly like the compiled original.
// This is a second, reference-free oracle on top of DT-R: any
// divergence is a bug in either a mutation rule or a compiler pass.

type mutationEquiv struct{ preset string }

// NewMutationEquivalence returns the metamorphic mutation oracle.
func NewMutationEquivalence(preset string) Oracle { return mutationEquiv{preset} }

func (o mutationEquiv) Name() string { return FamilyMutationEquiv + "/" + o.preset }

func (o mutationEquiv) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 25, seed)
}

func (o mutationEquiv) Check(m *ir.Module, seed int64) *Failure {
	ref, ok := reference(m)
	if !ok {
		return nil
	}
	mutant, rules := mutate.Mutate(m, seed, 3)
	if len(rules) == 0 {
		return nil // nothing mutable: the relation holds vacuously
	}
	if err := verify.Module(mutant, dialects.SourceSpecs()); err != nil {
		return &Failure{Detail: fmt.Sprintf("mutations %v produced a statically invalid module: %v", rules, err)}
	}
	orig := difftest.TestModule(m, ref, o.preset, nil)
	mut := difftest.TestModule(mutant, ref, o.preset, nil)
	for _, bc := range difftest.BuildConfigs {
		lo, lm := orig.Levels[bc], mut.Levels[bc]
		if (lo.CompileErr == nil) != (lm.CompileErr == nil) {
			return &Failure{Detail: fmt.Sprintf("mutations %v at %s: compile outcome diverged: %v vs %v", rules, bc, lo.CompileErr, lm.CompileErr)}
		}
		if (lo.RunErr == nil) != (lm.RunErr == nil) {
			return &Failure{Detail: fmt.Sprintf("mutations %v at %s: run outcome diverged: %v vs %v", rules, bc, lo.RunErr, lm.RunErr)}
		}
		if lo.Output != lm.Output {
			return &Failure{Detail: fmt.Sprintf("mutations %v at %s: output %q vs mutant %q", rules, bc, lo.Output, lm.Output)}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// campaign-agreement/<preset>: the serial and parallel campaign engines
// are observationally identical — same programs, same detections in
// seed order, same per-oracle tallies — for the same configuration.
// Runs against the all-bugs build so there are detections to compare,
// in both exhaustive and stop-at-first mode (where the engines'
// result-shape once disagreed). Module-free: there is nothing to
// shrink, the campaign seed schedule itself is the input.

type campaignAgree struct{ preset string }

// NewCampaignAgreement returns the serial-vs-parallel engine oracle.
func NewCampaignAgreement(preset string) Oracle { return campaignAgree{preset} }

func (o campaignAgree) Name() string { return FamilyCampaignAgree + "/" + o.preset }

func (o campaignAgree) Generate(int64) (*ir.Module, error) { return nil, nil }

func (o campaignAgree) Check(_ *ir.Module, seed int64) *Failure {
	for _, stop := range []bool{false, true} {
		cfg := difftest.CampaignConfig{
			Preset:      o.preset,
			Programs:    4,
			Size:        15,
			Seed:        seed,
			Bugs:        bugs.All(),
			StopAtFirst: stop,
		}
		serial, err := difftest.RunCampaign(cfg)
		if err != nil {
			return &Failure{Detail: fmt.Sprintf("serial engine failed: %v", err)}
		}
		parallel, err := difftest.RunCampaignParallel(cfg, 4)
		if err != nil {
			return &Failure{Detail: fmt.Sprintf("parallel engine failed: %v", err)}
		}
		if d := difftest.DiffResults(serial, parallel); d != "" {
			return &Failure{Detail: fmt.Sprintf("stopAtFirst=%v: engines disagree: %s", stop, d)}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// difftest/<preset>: the end-to-end differential property — a
// statically valid, UB-free module compiles and runs to the reference
// output under every build configuration. With no injected bugs this
// asserts the substrate compiler is clean; with a bug set injected it
// is the bug-finder the paper's Table 3 campaign runs, and the harness
// shrinks whatever it catches into the regression corpus.

type diffTest struct {
	preset string
	bugSet bugs.Set
}

// NewDifftest returns the differential-testing oracle against a
// (possibly bug-injected) compiler build.
func NewDifftest(preset string, bugSet bugs.Set) Oracle {
	return diffTest{preset, bugSet}
}

func (o diffTest) Name() string { return FamilyDifftest + "/" + o.preset }

// InjectedBugs exposes the build's defects for regression persistence.
func (o diffTest) InjectedBugs() bugs.Set { return o.bugSet }

func (o diffTest) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 30, seed)
}

func (o diffTest) Check(m *ir.Module, _ int64) *Failure {
	ref, ok := reference(m)
	if !ok {
		return nil
	}
	rep := difftest.TestModule(m, ref, o.preset, o.bugSet)
	if fired := rep.Detected(); fired != difftest.OracleNone {
		return &Failure{
			Detail: fmt.Sprintf("%s fired under build configs %v", fired, describeLevels(rep)),
			Fired:  string(fired),
		}
	}
	return nil
}

// describeLevels summarises a report's per-configuration outcomes.
func describeLevels(rep *difftest.Report) []string {
	var out []string
	for _, bc := range difftest.BuildConfigs {
		lr := rep.Levels[bc]
		switch {
		case lr.CompileErr != nil:
			out = append(out, fmt.Sprintf("%s:reject", bc))
		case lr.RunErr != nil:
			out = append(out, fmt.Sprintf("%s:crash", bc))
		case lr.Output != rep.Reference:
			out = append(out, fmt.Sprintf("%s:wrong-output", bc))
		default:
			out = append(out, fmt.Sprintf("%s:ok", bc))
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Registry.

// StandardOracles returns the full built-in oracle battery: for every
// generator preset the round-trip, verifier, mutation, difftest
// (correct build), campaign-agreement, plan-legality and
// plan-equivalence properties, plus prefix-equivalence across every
// optimisation level.
func StandardOracles() []Oracle {
	var os []Oracle
	for _, preset := range gen.AllPresets() {
		os = append(os,
			NewRoundTrip(preset),
			NewVerifierIdempotent(preset),
		)
		for _, level := range compiler.OptLevels {
			os = append(os, NewPrefixEquivalence(preset, level, false))
		}
		os = append(os,
			NewMutationEquivalence(preset),
			NewCoverageInert(preset),
			NewEngineAgreement(preset),
			NewDifftest(preset, bugs.None()),
			NewCampaignAgreement(preset),
			NewFaultTolerance(preset),
			NewFleetChaos(preset),
			NewPlanLegality(preset),
			NewPlanEquivalence(preset, bugs.None()),
		)
	}
	return os
}

// OracleNames lists the standard oracles' names, sorted.
func OracleNames() []string {
	var names []string
	for _, o := range StandardOracles() {
		names = append(names, o.Name())
	}
	sort.Strings(names)
	return names
}

// Lookup reconstructs an oracle from its Name() spelling. This is what
// lets a persisted regression name the property it violated and have
// the corpus replayer re-check it years later.
func Lookup(name string) (Oracle, error) {
	parts := strings.Split(name, "/")
	if len(parts) < 2 {
		return nil, fmt.Errorf("conformance: malformed oracle name %q", name)
	}
	family, preset := parts[0], parts[1]
	if !validPreset(preset) {
		return nil, fmt.Errorf("conformance: oracle %q: unknown preset %q (want one of %v)", name, preset, gen.AllPresets())
	}
	switch family {
	case FamilyRoundTrip:
		return NewRoundTrip(preset), nil
	case FamilyVerifierIdem:
		return NewVerifierIdempotent(preset), nil
	case FamilyMutationEquiv:
		return NewMutationEquivalence(preset), nil
	case FamilyCoverageInert:
		return NewCoverageInert(preset), nil
	case FamilyCampaignAgree:
		return NewCampaignAgreement(preset), nil
	case FamilyFaultTolerance:
		return NewFaultTolerance(preset), nil
	case FamilyFleetChaos:
		return NewFleetChaos(preset), nil
	case FamilyEngineAgree:
		return NewEngineAgreement(preset), nil
	case FamilyDifftest:
		return NewDifftest(preset, bugs.None()), nil
	case FamilyPlanLegality:
		return NewPlanLegality(preset), nil
	case FamilyPlanEquiv:
		return NewPlanEquivalence(preset, bugs.None()), nil
	case FamilyPrefixEquiv:
		if len(parts) != 3 {
			return nil, fmt.Errorf("conformance: oracle %q: want %s/<preset>/O<level>[-noexpand]", name, FamilyPrefixEquiv)
		}
		spec := parts[2]
		skip := strings.HasSuffix(spec, "-noexpand")
		spec = strings.TrimSuffix(spec, "-noexpand")
		var level compiler.OptLevel
		switch spec {
		case "O0":
			level = compiler.O0
		case "O1":
			level = compiler.O1
		case "O2":
			level = compiler.O2
		default:
			return nil, fmt.Errorf("conformance: oracle %q: unknown optimisation level %q", name, spec)
		}
		return NewPrefixEquivalence(preset, level, skip), nil
	}
	return nil, fmt.Errorf("conformance: unknown oracle family %q in %q", family, name)
}

func validPreset(p string) bool {
	for _, q := range gen.AllPresets() {
		if p == q {
			return true
		}
	}
	return false
}
