package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/ir"
)

// A Regression is one persisted, minimized counterexample: the module
// plus enough metadata (oracle name, trial seed, injected bugs and the
// difftest oracle that fired) for the corpus replayer to re-check it
// from scratch. On disk it is an ordinary .mlir file with a comment
// header:
//
//	// ratte-regression v1
//	// oracle: difftest/ariths
//	// seed: 42
//	// bugs: 5            (optional: the injected defects it depends on)
//	// fires: DT-R        (optional: the oracle those defects trip)
//	// plan: a,b,c        (optional: the compilation plan, for
//	//                     plan-fuzzing reproducers)
//	// detail: ...        (optional, informational)
//	"builtin.module"() ({ ... }) : () -> ()
type Regression struct {
	Oracle string
	Seed   int64
	Bugs   []bugs.ID
	Fires  string
	Plan   []string // pass list of the offending plan (nil if plan-free)
	Detail string
	Module *ir.Module
	File   string // path it was read from or written to
}

const regressionMagic = "// ratte-regression v1"

// regressionOf converts an engine counterexample into its persistable
// form, pulling the injected bug set off the oracle when it carries one.
func regressionOf(o Oracle, ce *Counterexample) *Regression {
	r := &Regression{
		Oracle: ce.Oracle,
		Seed:   ce.Seed,
		Fires:  ce.Fired,
		Plan:   ce.Plan,
		Detail: ce.Detail,
		Module: ce.Module,
	}
	if bc, ok := o.(BugCarrier); ok {
		for id := range bc.InjectedBugs() {
			r.Bugs = append(r.Bugs, id)
		}
		sort.Slice(r.Bugs, func(i, j int) bool { return r.Bugs[i] < r.Bugs[j] })
	}
	return r
}

// FileName returns the regression's canonical corpus file name, derived
// from its identity (oracle, bugs, seed) so that regenerating the same
// counterexample overwrites rather than duplicates.
func (r *Regression) FileName() string {
	name := strings.ReplaceAll(r.Oracle, "/", "-")
	if len(r.Bugs) > 0 {
		parts := make([]string, len(r.Bugs))
		for i, id := range r.Bugs {
			parts[i] = strconv.Itoa(int(id))
		}
		name += "-b" + strings.Join(parts, "_")
	}
	return fmt.Sprintf("%s-seed%d.mlir", name, r.Seed)
}

// WriteRegression persists r under dir (creating it as needed) and
// returns the file path written.
func WriteRegression(dir string, r *Regression) (string, error) {
	if r.Module == nil {
		return "", fmt.Errorf("conformance: regression for %s has no module", r.Oracle)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(regressionMagic + "\n")
	fmt.Fprintf(&b, "// oracle: %s\n", r.Oracle)
	fmt.Fprintf(&b, "// seed: %d\n", r.Seed)
	if len(r.Bugs) > 0 {
		parts := make([]string, len(r.Bugs))
		for i, id := range r.Bugs {
			parts[i] = strconv.Itoa(int(id))
		}
		fmt.Fprintf(&b, "// bugs: %s\n", strings.Join(parts, ","))
	}
	if r.Fires != "" {
		fmt.Fprintf(&b, "// fires: %s\n", r.Fires)
	}
	if len(r.Plan) > 0 {
		fmt.Fprintf(&b, "// plan: %s\n", planHeader(r.Plan))
	}
	if r.Detail != "" {
		fmt.Fprintf(&b, "// detail: %s\n", strings.ReplaceAll(r.Detail, "\n", " "))
	}
	b.WriteString(ir.Print(r.Module))
	path := filepath.Join(dir, r.FileName())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	r.File = path
	return path, nil
}

// ReadRegression parses one corpus file.
func ReadRegression(path string) (*Regression, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	src := string(data)
	if !strings.HasPrefix(src, regressionMagic) {
		return nil, fmt.Errorf("%s: not a ratte-regression file", path)
	}
	r := &Regression{File: path}
	for _, line := range strings.Split(src, "\n") {
		if !strings.HasPrefix(line, "// ") {
			break // header ends at the first non-comment line
		}
		key, val, ok := strings.Cut(strings.TrimPrefix(line, "// "), ": ")
		if !ok {
			continue
		}
		switch key {
		case "oracle":
			r.Oracle = val
		case "seed":
			r.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad seed %q", path, val)
			}
		case "bugs":
			for _, part := range strings.Split(val, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("%s: bad bug id %q", path, part)
				}
				r.Bugs = append(r.Bugs, bugs.ID(n))
			}
		case "fires":
			r.Fires = val
		case "plan":
			for _, part := range strings.Split(val, ",") {
				if part = strings.TrimSpace(part); part != "" {
					r.Plan = append(r.Plan, part)
				}
			}
		case "detail":
			r.Detail = val
		}
	}
	if r.Oracle == "" {
		return nil, fmt.Errorf("%s: missing oracle header", path)
	}
	m, err := ir.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: module does not parse: %w", path, err)
	}
	r.Module = m
	return r, nil
}

// ReadCorpus loads every regression under dir, in stable (sorted file
// name) order. A missing directory is an empty corpus, not an error.
func ReadCorpus(dir string) ([]*Regression, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rs []*Regression
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mlir") {
			continue
		}
		r, err := ReadRegression(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		rs = append(rs, r)
	}
	return rs, nil
}

// Replay re-checks one regression and returns an error describing any
// violation:
//
//   - the named property must hold on the stored module under the
//     correct (bug-free) substrate — a once-fixed failure must stay
//     fixed; and
//   - when the regression records injected bugs, the stored module must
//     still trip the recorded difftest oracle against a build with
//     exactly those defects — a reproducer must not go stale.
func Replay(r *Regression) error {
	o, err := Lookup(r.Oracle)
	if err != nil {
		return fmt.Errorf("%s: %w", r.File, err)
	}
	if f := o.Check(r.Module, r.Seed); f != nil {
		return fmt.Errorf("%s: property %s violated again: %s", r.File, r.Oracle, f.Detail)
	}
	if len(r.Bugs) == 0 {
		return nil
	}
	preset := presetOf(r.Oracle)
	ref, ok := reference(r.Module)
	if !ok {
		return fmt.Errorf("%s: stored module is no longer valid and UB-free", r.File)
	}
	var fired difftest.Oracle
	if len(r.Plan) > 0 {
		// Plan-fuzzing reproducer: the stored module must still trip
		// the oracle under the stored plan — not merely under some
		// fixed build configuration.
		plan, err := planOf(r)
		if err != nil {
			return fmt.Errorf("%s: %w", r.File, err)
		}
		rep := difftest.TestModulePlans(r.Module, ref, []compiler.Plan{plan}, bugs.Only(r.Bugs...))
		fired, _ = rep.Detected()
	} else {
		rep := difftest.TestModule(r.Module, ref, preset, bugs.Only(r.Bugs...))
		fired = rep.Detected()
	}
	if fired == difftest.OracleNone {
		return fmt.Errorf("%s: reproducer went stale: bugs %v no longer detected", r.File, r.Bugs)
	}
	if r.Fires != "" && string(fired) != r.Fires {
		return fmt.Errorf("%s: bugs %v now detected by %s, recorded %s", r.File, r.Bugs, fired, r.Fires)
	}
	return nil
}

// ReplayCorpus replays every regression under dir, returning the loaded
// corpus and the per-file violations (empty when all green).
func ReplayCorpus(dir string) ([]*Regression, []error) {
	rs, err := ReadCorpus(dir)
	if err != nil {
		return nil, []error{err}
	}
	var errs []error
	for _, r := range rs {
		if err := Replay(r); err != nil {
			errs = append(errs, err)
		}
	}
	return rs, errs
}

// presetOf extracts the preset segment of an oracle name ("" if none).
func presetOf(oracle string) string {
	parts := strings.Split(oracle, "/")
	if len(parts) < 2 {
		return ""
	}
	return parts[1]
}
