// Package conformance is Ratte-Go's property-testing engine: the
// QuickCheck-style find→minimize→regress loop that keeps the
// substrate's own oracles trustworthy. The paper's value proposition —
// composable semantics turn "does the compiler crash?" into "does the
// compiler *miscompile*?" — only pays off if the reference machinery
// (printer, parser, verifier, interpreter, pass pipelines, campaign
// engines) is itself correct, so its strongest invariants live here as
// reusable Oracle implementations rather than one-off test loops.
//
// An Oracle generates (or takes) a module and checks one property; the
// Run engine drives trials over a deterministic seed schedule, and on
// failure auto-shrinks the module with internal/reduce against the
// still-failing predicate, then persists the minimized counterexample
// (plus seed/oracle metadata) into a regression corpus that ordinary
// `go test` replays forever after (see corpus.go).
package conformance

import (
	"fmt"
	"io"

	"ratte/internal/ir"
	"ratte/internal/reduce"
)

// Failure is one property violation, as reported by an Oracle's Check.
type Failure struct {
	// Detail describes what went wrong, in one line.
	Detail string
	// Fired is the differential-testing oracle that fired, for
	// difftest-backed properties (empty otherwise).
	Fired string
	// Plan is the pass list of the offending compilation plan, for
	// plan-fuzzing properties (nil otherwise). Oracles report it
	// already minimized — the smallest legal plan that still fails.
	Plan []string
}

// Oracle is one conformance property over modules.
//
// Generate produces the module for a trial seed — typically with the
// semantics-guided generator, so the module is statically valid and
// UB-free by construction. Module-free oracles (e.g. the campaign
// agreement property) return a nil module.
//
// Check reports a non-nil Failure iff the property does not hold on m.
// Check must be deterministic and self-contained (recomputing any
// reference data from m itself), because the shrinker re-invokes it on
// arbitrary sub-modules of the original counterexample; candidates
// outside the property's domain (statically invalid or UB-carrying
// modules) must check clean, which steers the shrinker back inside the
// domain.
type Oracle interface {
	Name() string
	Generate(seed int64) (*ir.Module, error)
	Check(m *ir.Module, seed int64) *Failure
}

// Counterexample is a structured, minimized property violation.
type Counterexample struct {
	Oracle string     // Oracle.Name()
	Seed   int64      // trial seed that produced it
	Detail string     // Failure.Detail (from the minimized module)
	Fired  string     // Failure.Fired (from the minimized module)
	Plan   []string   // Failure.Plan (from the minimized module)
	Module *ir.Module // minimized failing module; nil for module-free oracles

	OrigOps     int    // op count before shrinking
	MinOps      int    // op count after shrinking
	ShrinkSteps int    // accepted reduction steps
	File        string // corpus file it was persisted to ("" if not persisted)
}

// Config drives one conformance run.
type Config struct {
	// Trials is the number of generate+check trials; trial i uses seed
	// Seed+i, so a run is fully determined by (oracle, Trials, Seed).
	Trials int
	// Seed is the base of the seed schedule.
	Seed int64
	// NoShrink disables auto-minimization of failing modules.
	NoShrink bool
	// CorpusDir, when non-empty, receives one regression file per
	// counterexample (see WriteRegression for the format).
	CorpusDir string
	// StopAtFirst stops the run at the first counterexample.
	StopAtFirst bool
	// Log, when non-nil, receives deterministic progress lines.
	Log io.Writer
}

// Result summarises one conformance run.
type Result struct {
	Oracle   string
	Trials   int // trials actually executed
	Failures []*Counterexample
}

// Ok reports whether the property held on every trial.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

// Run drives cfg.Trials trials of one oracle. A Generate error aborts
// the run (the generator, not the property, is broken); a Check failure
// becomes a Counterexample — shrunk and persisted per cfg — and the run
// continues unless cfg.StopAtFirst. Runs are deterministic: a fixed
// (oracle, Trials, Seed) always yields the same Result and, with
// cfg.Log set, byte-identical output.
func Run(o Oracle, cfg Config) (*Result, error) {
	res := &Result{Oracle: o.Name()}
	for i := 0; i < cfg.Trials; i++ {
		seed := cfg.Seed + int64(i)
		m, err := o.Generate(seed)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: generate(seed %d): %w", o.Name(), seed, err)
		}
		res.Trials++
		f := o.Check(m, seed)
		if f == nil {
			continue
		}
		ce := &Counterexample{
			Oracle: o.Name(),
			Seed:   seed,
			Detail: f.Detail,
			Fired:  f.Fired,
			Plan:   f.Plan,
			Module: m,
		}
		if m != nil {
			ce.OrigOps = m.NumOps()
			ce.MinOps = ce.OrigOps
			if !cfg.NoShrink {
				shrink(o, ce)
			}
		}
		if cfg.CorpusDir != "" && ce.Module != nil {
			file, err := WriteRegression(cfg.CorpusDir, regressionOf(o, ce))
			if err != nil {
				return nil, fmt.Errorf("conformance: persisting counterexample: %w", err)
			}
			ce.File = file
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "FAIL %s seed=%d ops=%d->%d %s\n",
				ce.Oracle, ce.Seed, ce.OrigOps, ce.MinOps, ce.Detail)
		}
		res.Failures = append(res.Failures, ce)
		if cfg.StopAtFirst {
			break
		}
	}
	if cfg.Log != nil {
		status := "ok  "
		if !res.Ok() {
			status = "FAIL"
		}
		fmt.Fprintf(cfg.Log, "%s %s: %d trials, %d counterexamples\n",
			status, res.Oracle, res.Trials, len(res.Failures))
	}
	return res, nil
}

// Minimize shrinks a module that fails o's property with the
// delta-debugging reducer against "the oracle still fails", returning
// the minimized module and the number of accepted reduction steps. The
// input module is not modified; if it does not fail the property it is
// returned unchanged with zero steps.
func Minimize(o Oracle, m *ir.Module, seed int64) (*ir.Module, int) {
	pred := func(c *ir.Module) bool { return o.Check(c, seed) != nil }
	steps := 0
	min := reduce.ModuleTrace(m, pred, func(step int, _ *ir.Module) { steps = step })
	return min, steps
}

// shrink minimizes ce.Module, refreshing the failure detail from the
// minimized module (the message that matters is the small one).
func shrink(o Oracle, ce *Counterexample) {
	min, steps := Minimize(o, ce.Module, ce.Seed)
	ce.Module = min
	ce.MinOps = min.NumOps()
	ce.ShrinkSteps = steps
	if f := o.Check(min, ce.Seed); f != nil {
		ce.Detail, ce.Fired, ce.Plan = f.Detail, f.Fired, f.Plan
	}
}
