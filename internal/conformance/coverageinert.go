// coverage-inert/<preset>: semantic-coverage instrumentation is purely
// observational. Compiling and executing a module with a coverage map
// attached must produce exactly the modules, outputs and errors of a
// run without one — and, when the module is testable at all, must
// actually record sites (a silently dead instrument is as much a bug as
// a perturbing one).
package conformance

import (
	"fmt"
	"strings"

	"ratte/internal/compiler"
	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/ir"
)

// FamilyCoverageInert names the coverage-inertness oracle family.
const FamilyCoverageInert = "coverage-inert"

type coverageInert struct{ preset string }

// NewCoverageInert returns the coverage-inertness oracle.
func NewCoverageInert(preset string) Oracle { return coverageInert{preset} }

func (o coverageInert) Name() string { return FamilyCoverageInert + "/" + o.preset }

func (o coverageInert) Generate(seed int64) (*ir.Module, error) {
	return generate(o.preset, 25, seed)
}

func (o coverageInert) Check(m *ir.Module, _ int64) *Failure {
	// One transcript per run: the compiled module text, output or error
	// of every build configuration, in order. Byte-equal transcripts
	// mean coverage observed without perturbing.
	transcript := func(cov *coverage.Map) string {
		var b strings.Builder
		opts := &compiler.Options{Coverage: cov}
		outs := compiler.CompileConfigsOpts(m, o.preset, opts, difftest.BuildConfigs)
		for i, bc := range difftest.BuildConfigs {
			fmt.Fprintf(&b, "== %s ==\n", bc)
			if outs[i].Err != nil {
				fmt.Fprintf(&b, "compile error: %v\n", outs[i].Err)
				continue
			}
			b.WriteString(ir.Print(outs[i].Module))
			ex := dialects.NewExecutor()
			ex.Coverage = cov
			res, err := ex.Run(outs[i].Module, "main")
			if err != nil {
				fmt.Fprintf(&b, "run error: %v\n", err)
			} else {
				fmt.Fprintf(&b, "output: %q\n", res.Output)
			}
		}
		return b.String()
	}

	base := transcript(nil)
	cov := coverage.NewMap()
	with := transcript(cov)
	if base != with {
		return &Failure{Detail: fmt.Sprintf("coverage perturbed the run\n--- without ---\n%s\n--- with ---\n%s", base, with)}
	}
	// Compilation alone runs passes, so any module that got this far —
	// even a rejected one ran the verifier, and an accepted one ran the
	// pipeline — must have recorded sites if anything compiled.
	if strings.Contains(base, "output:") && cov.Sites() == 0 {
		return &Failure{Detail: "module compiled and ran but coverage recorded no sites"}
	}
	return nil
}
