// fleet-chaos/<preset>: the fleet's determinism-under-failure
// contract, checked end to end against a real localhost fleet. A
// coordinator and two workers run a campaign with every wire path
// behind seeded fault-injecting transports (refused connections,
// delays, injected 5xx, torn request and response bodies, duplicated
// deliveries) — and the coordinator itself is killed mid-campaign and
// restarted over its journal and shard ledger on the same address. The
// merged report must still be byte-identical to the single-process
// serial run: the fleet, its faults, and its crashes change wall-clock
// time, never results.
//
// Module-free, like campaign-agreement: the campaign seed schedule and
// the fault spec are the input, so there is nothing to shrink.
package conformance

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/fleet"
	"ratte/internal/ir"
)

// FamilyFleetChaos names the fleet chaos-determinism oracle family.
const FamilyFleetChaos = "fleet-chaos"

type fleetChaos struct{ preset string }

// NewFleetChaos returns the chaos-hardened fleet determinism oracle
// for one preset.
func NewFleetChaos(preset string) Oracle { return fleetChaos{preset} }

func (o fleetChaos) Name() string { return FamilyFleetChaos + "/" + o.preset }

func (o fleetChaos) Generate(int64) (*ir.Module, error) { return nil, nil }

func (o fleetChaos) Check(_ *ir.Module, seed int64) *Failure {
	base := difftest.CampaignConfig{
		Preset:   o.preset,
		Programs: 10,
		Size:     13,
		Seed:     seed,
		Bugs:     bugs.All(),
	}
	want, err := difftest.RunCampaign(base)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("serial baseline failed: %v", err)}
	}

	dir, err := os.MkdirTemp("", "ratte-fleet-chaos-")
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("tempdir: %v", err)}
	}
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "fleet.jsonl")
	lpath := jpath + ".ledger"
	const token = "chaos"

	jcfg := base
	j, err := difftest.CreateJournal(jpath, jcfg)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("journal: %v", err)}
	}
	jcfg.Journal = j
	cc := fleet.CoordinatorConfig{
		Campaign: jcfg, ShardSize: 3, LeaseTTL: 500 * time.Millisecond,
		LedgerPath: lpath, Token: token,
	}
	coord, err := fleet.NewCoordinator(cc)
	if err != nil {
		j.Close()
		return &Failure{Detail: fmt.Sprintf("coordinator: %v", err)}
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		j.Close()
		return &Failure{Detail: fmt.Sprintf("coordinator start: %v", err)}
	}
	addr := coord.Addr()

	// Two workers, each behind its own seeded fault transport with a
	// spool; MaxFaults bounds the schedule so the fleet always
	// eventually makes progress.
	const workers = 2
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	for i := 0; i < workers; i++ {
		tr := faultinject.NewTransport(faultinject.NetSpec{
			Seed:      seed*int64(workers) + int64(i),
			Rate:      0.15,
			MaxFaults: 10,
			Delay:     time.Millisecond,
		}, nil)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator:   "http://" + addr,
				Campaign:      base,
				Workers:       1,
				Token:         token,
				UploadRetries: 12,
				LeaseRetries:  60,
				SpoolPath:     filepath.Join(dir, fmt.Sprintf("worker%d.spool", i)),
				Client:        &http.Client{Timeout: 30 * time.Second, Transport: tr},
			})
		}(i)
	}

	// Kill the coordinator once the merge has made real progress.
	deadline := time.Now().Add(time.Minute)
	for coord.Merged() == 0 {
		if time.Now().After(deadline) {
			coord.Close()
			j.Close()
			return &Failure{Detail: "fleet made no progress before the kill"}
		}
		time.Sleep(5 * time.Millisecond)
	}
	coord.Kill() //nolint:errcheck // simulated crash
	if err := j.Close(); err != nil {
		return &Failure{Detail: fmt.Sprintf("journal close after kill: %v", err)}
	}

	// Restart on the same address over the same journal and ledger.
	j2, resumed, err := difftest.OpenJournalForResume(jpath, base)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("journal resume after kill: %v", err)}
	}
	defer j2.Close()
	rcfg := base
	rcfg.Journal = j2
	rcfg.Resumed = resumed
	cc.Campaign = rcfg
	cc.ResumeLedger = true
	coord2, err := fleet.NewCoordinator(cc)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("restarted coordinator: %v", err)}
	}
	defer coord2.Close()
	startErr := coord2.Start(addr)
	for i := 0; i < 100 && startErr != nil; i++ {
		time.Sleep(20 * time.Millisecond)
		startErr = coord2.Start(addr)
	}
	if startErr != nil {
		return &Failure{Detail: fmt.Sprintf("restart on %s: %v", addr, startErr)}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := coord2.Wait(ctx)
	if err != nil {
		return &Failure{Detail: fmt.Sprintf("restarted campaign did not complete: %v", err)}
	}
	coord2.DrainWorkers(10 * time.Second)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			return &Failure{Detail: fmt.Sprintf("worker %d died under chaos: %v", i, werr)}
		}
	}
	if d := difftest.DiffVerdicts(want.Verdicts, res.Verdicts); d != "" {
		return &Failure{Detail: fmt.Sprintf("post-restart fleet verdicts differ from serial: %s", d)}
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		return &Failure{Detail: fmt.Sprintf("post-restart fleet report not byte-identical to serial:\n--- serial\n%s--- fleet\n%s", a, b)}
	}
	return nil
}
