package funcd_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMutualRecursionBounded(t *testing.T) {
	// a calls b calls a: the call-depth guard must stop it.
	src := `"builtin.module"() ({
  "func.func"() ({
    %r = "func.call"() {callee = @b} : () -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = () -> (i64)} : () -> ()
  "func.func"() ({
    %r = "func.call"() {callee = @main} : () -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "b", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	_, err := dialects.NewReferenceInterpreter().Run(parse(t, src), "main")
	if err == nil {
		t.Fatal("mutual recursion must be bounded")
	}
}

func TestMultiResultCall(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b, %c = "func.call"() {callee = @three} : () -> (i8, i16, index)
    "vector.print"(%a) : (i8) -> ()
    "vector.print"(%b) : (i16) -> ()
    "vector.print"(%c) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 2 : i16} : () -> (i16)
    %c = "arith.constant"() {value = 3 : index} : () -> (index)
    "func.return"(%a, %b, %c) : (i8, i16, index) -> ()
  }) {sym_name = "three", function_type = () -> (i8, i16, index)} : () -> ()
}) : () -> ()`
	res, err := dialects.NewReferenceInterpreter().Run(parse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "1\n2\n3\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestArgumentPassing(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %x = "arith.constant"() {value = 5 : i64} : () -> (i64)
    %y = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %r = "func.call"(%x, %y) {callee = @sub} : (i64, i64) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%a: i64, %b: i64):
    %d = "arith.subi"(%a, %b) : (i64, i64) -> (i64)
    "func.return"(%d) : (i64) -> ()
  }) {sym_name = "sub", function_type = (i64, i64) -> (i64)} : () -> ()
}) : () -> ()`
	res, err := dialects.NewReferenceInterpreter().Run(parse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "2\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestTensorArgumentsAndResults(t *testing.T) {
	// Functions can pass tensors (the lowering pipeline bufferises this
	// boundary too).
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[4, 5]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %r = "func.call"(%t) {callee = @first} : (tensor<2xi64>) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%t: tensor<2xi64>):
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %e = "tensor.extract"(%t, %i0) : (tensor<2xi64>, index) -> (i64)
    "func.return"(%e) : (i64) -> ()
  }) {sym_name = "first", function_type = (tensor<2xi64>) -> (i64)} : () -> ()
}) : () -> ()`
	res, err := dialects.NewReferenceInterpreter().Run(parse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "4\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestSpecRejectsEntryBlockMismatch(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i32):
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = (i64) -> ()} : () -> ()
}) : () -> ()`
	if err := verify.Module(parse(t, src), dialects.SourceSpecs()); err == nil {
		t.Error("entry-arg/function-type mismatch must be rejected")
	}
}

func TestSpecRejectsResultTypeMismatchOnCall(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %r = "func.call"() {callee = @f} : () -> (i32)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 0 : i64} : () -> (i64)
    "func.return"(%a) : (i64) -> ()
  }) {sym_name = "f", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	if err := verify.Module(parse(t, src), dialects.SourceSpecs()); err == nil {
		t.Error("call result type mismatch must be rejected")
	}
}

func TestReturnedTensorValue(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[7]> : tensor<1xi64>} : () -> (tensor<1xi64>)
    "func.return"(%t) : (tensor<1xi64>) -> ()
  }) {sym_name = "main", function_type = () -> (tensor<1xi64>)} : () -> ()
}) : () -> ()`
	res, err := dialects.NewReferenceInterpreter().Run(parse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	tv, ok := res.Returned[0].(*rtval.Tensor)
	if !ok || tv.Elems[0].Signed() != 7 {
		t.Errorf("returned %v", res.Returned)
	}
}
