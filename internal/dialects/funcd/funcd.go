// Package funcd provides the semantics and static rules of the func
// dialect: function definition, call and return. Function bodies are
// IsolatedFromAbove regions; per the paper's region embedding, a
// function value is a stored continuation invoked by the CallFunc
// effect (interp.Context.CallFunc).
package funcd

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// Ops lists the func-dialect operations.
var Ops = []string{"func.func", "func.call", "func.return"}

// Semantics returns the interpreter kernels for the func dialect.
// func.func itself is handled at module level by interp.Run (AddFunc);
// a nested func.func is rejected.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("func")

	d.Register("func.func", func(ctx *interp.Context, op *ir.Operation) error {
		return fmt.Errorf("nested functions are not supported")
	})

	d.Register("func.call", func(ctx *interp.Context, op *ir.Operation) error {
		callee, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr)
		if !ok {
			return fmt.Errorf("call requires a callee symbol attribute")
		}
		args := make([]rtval.Value, len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return err
			}
			args[i] = v
		}
		results, err := ctx.CallFunc(callee.Name, args)
		if err != nil {
			return err
		}
		if len(results) != len(op.Results) {
			return fmt.Errorf("call @%s produced %d results, op declares %d", callee.Name, len(results), len(op.Results))
		}
		for i, r := range op.Results {
			if err := ctx.Define(r, results[i]); err != nil {
				return err
			}
		}
		return nil
	})

	d.RegisterTerminator("func.return", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		vals := make([]rtval.Value, len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return interp.TermResult{}, err
			}
			vals[i] = v
		}
		return interp.TermResult{Exit: &interp.Exit{Kind: interp.ExitReturn, Values: vals}}, nil
	})

	return d
}

// Specs returns the static rules for the func dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"func.func": {
			NumRegions:      1,
			IsolatedRegions: true,
			Check:           checkFunc,
		},
		"func.call":   {Check: checkCall},
		"func.return": {Terminator: true, Check: checkReturn},
	}
}

func checkFunc(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 0); err != nil {
		return err
	}
	if err := verify.WantResults(op, 0); err != nil {
		return err
	}
	ft, err := ir.FuncType(op)
	if err != nil {
		return verify.Errf(op, "%v", err)
	}
	entry := op.Regions[0].Entry()
	if entry == nil {
		return verify.Errf(op, "function body must have an entry block")
	}
	if len(entry.Args) != len(ft.Inputs) {
		return verify.Errf(op, "entry block has %d arguments, function type declares %d",
			len(entry.Args), len(ft.Inputs))
	}
	for i, a := range entry.Args {
		if !ir.TypeEqual(a.Type, ft.Inputs[i]) {
			return verify.Errf(op, "entry argument %d has type %s, function type declares %s",
				i, a.Type, ft.Inputs[i])
		}
	}
	return nil
}

func checkCall(c *verify.Checker, op *ir.Operation) error {
	callee, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr)
	if !ok {
		return verify.Errf(op, "call requires a callee symbol attribute")
	}
	ft, ok := c.FuncSignature(callee.Name)
	if !ok {
		return verify.Errf(op, "call to undeclared function @%s", callee.Name)
	}
	if len(op.Operands) != len(ft.Inputs) {
		return verify.Errf(op, "call @%s passes %d arguments, function takes %d",
			callee.Name, len(op.Operands), len(ft.Inputs))
	}
	for i, operand := range op.Operands {
		if !ir.TypeEqual(operand.Type, ft.Inputs[i]) {
			return verify.Errf(op, "call @%s argument %d has type %s, function takes %s",
				callee.Name, i, operand.Type, ft.Inputs[i])
		}
	}
	if len(op.Results) != len(ft.Results) {
		return verify.Errf(op, "call @%s declares %d results, function returns %d",
			callee.Name, len(op.Results), len(ft.Results))
	}
	for i, r := range op.Results {
		if !ir.TypeEqual(r.Type, ft.Results[i]) {
			return verify.Errf(op, "call @%s result %d has type %s, function returns %s",
				callee.Name, i, r.Type, ft.Results[i])
		}
	}
	return nil
}

func checkReturn(c *verify.Checker, op *ir.Operation) error {
	want := c.EnclosingFuncResults()
	if len(op.Operands) != len(want) {
		return verify.Errf(op, "return has %d operands, enclosing function returns %d",
			len(op.Operands), len(want))
	}
	for i, operand := range op.Operands {
		if !ir.TypeEqual(operand.Type, want[i]) {
			return verify.Errf(op, "return operand %d has type %s, function returns %s",
				i, operand.Type, want[i])
		}
	}
	return verify.WantResults(op, 0)
}
