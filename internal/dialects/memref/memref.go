// Package memref provides the buffer dialect that bufferisation lowers
// tensors into: allocation, load, store, copy, dim and dealloc over
// mutable buffers owned by the interpreter context.
package memref

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// Ops lists the memref-dialect operations.
var Ops = []string{
	"memref.alloc", "memref.dealloc", "memref.load", "memref.store",
	"memref.copy", "memref.dim", "memref.cast",
}

// Semantics returns the interpreter kernels for the memref dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("memref")

	d.Register("memref.alloc", func(ctx *interp.Context, op *ir.Operation) error {
		mt, ok := op.Results[0].Type.(ir.MemRefType)
		if !ok {
			return fmt.Errorf("memref.alloc must produce a memref")
		}
		shape := make([]int64, len(mt.Shape))
		k := 0
		for i, dim := range mt.Shape {
			if dim != ir.DynamicSize {
				shape[i] = dim
				continue
			}
			if k >= len(op.Operands) {
				return fmt.Errorf("memref.alloc: missing extent for dynamic dim %d", i)
			}
			e, err := ctx.GetInt(op.Operands[k])
			if err != nil {
				return err
			}
			k++
			if e.Signed() < 0 {
				return &rtval.TrapError{Op: "memref.alloc", Reason: "negative extent"}
			}
			shape[i] = e.Signed()
		}
		return ctx.Define(op.Results[0], ctx.AllocBuffer(shape, mt.Elem))
	})

	d.Register("memref.dealloc", func(ctx *interp.Context, op *ir.Operation) error {
		m, err := ctx.GetMemRef(op.Operands[0])
		if err != nil {
			return err
		}
		ctx.FreeBuffer(m)
		return nil
	})

	d.Register("memref.load", func(ctx *interp.Context, op *ir.Operation) error {
		m, err := ctx.GetMemRef(op.Operands[0])
		if err != nil {
			return err
		}
		idx, err := indexValues(ctx, op.Operands[1:])
		if err != nil {
			return err
		}
		off, err := m.Offset(idx)
		if err != nil {
			return err
		}
		buf, err := ctx.Buffer(m)
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], buf[off])
	})

	d.Register("memref.store", func(ctx *interp.Context, op *ir.Operation) error {
		v, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		m, err := ctx.GetMemRef(op.Operands[1])
		if err != nil {
			return err
		}
		idx, err := indexValues(ctx, op.Operands[2:])
		if err != nil {
			return err
		}
		off, err := m.Offset(idx)
		if err != nil {
			return err
		}
		buf, err := ctx.Buffer(m)
		if err != nil {
			return err
		}
		buf[off] = v
		return nil
	})

	d.Register("memref.copy", func(ctx *interp.Context, op *ir.Operation) error {
		src, err := ctx.GetMemRef(op.Operands[0])
		if err != nil {
			return err
		}
		dst, err := ctx.GetMemRef(op.Operands[1])
		if err != nil {
			return err
		}
		sb, err := ctx.Buffer(src)
		if err != nil {
			return err
		}
		db, err := ctx.Buffer(dst)
		if err != nil {
			return err
		}
		if len(sb) != len(db) {
			return &rtval.TrapError{Op: "memref.copy", Reason: "size mismatch"}
		}
		copy(db, sb)
		return nil
	})

	d.Register("memref.dim", func(ctx *interp.Context, op *ir.Operation) error {
		m, err := ctx.GetMemRef(op.Operands[0])
		if err != nil {
			return err
		}
		d, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		n := d.Signed()
		if n < 0 || n >= int64(len(m.Shape)) {
			return &rtval.TrapError{Op: "memref.dim", Reason: "dimension out of range"}
		}
		return ctx.Define(op.Results[0], rtval.NewIndex(m.Shape[n]))
	})

	d.Register("memref.cast", func(ctx *interp.Context, op *ir.Operation) error {
		m, err := ctx.GetMemRef(op.Operands[0])
		if err != nil {
			return err
		}
		mt, ok := op.Results[0].Type.(ir.MemRefType)
		if !ok {
			return fmt.Errorf("memref.cast must produce a memref")
		}
		if len(mt.Shape) != len(m.Shape) {
			return &rtval.TrapError{Op: "memref.cast", Reason: "rank mismatch"}
		}
		for i, dim := range mt.Shape {
			if dim != ir.DynamicSize && dim != m.Shape[i] {
				return &rtval.TrapError{Op: "memref.cast", Reason: "shape mismatch"}
			}
		}
		return ctx.Define(op.Results[0], m)
	})

	return d
}

func indexValues(ctx *interp.Context, operands []ir.Value) ([]int64, error) {
	idx := make([]int64, len(operands))
	for i, operand := range operands {
		v, err := ctx.GetInt(operand)
		if err != nil {
			return nil, err
		}
		if !v.Defined() {
			return nil, &rtval.TrapError{Op: "memref", Reason: "indexing with a poison value"}
		}
		idx[i] = v.Signed()
	}
	return idx, nil
}

// Specs returns the static rules for the memref dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"memref.alloc": {Check: func(c *verify.Checker, op *ir.Operation) error {
			mt, ok := op.Results[0].Type.(ir.MemRefType)
			if err := verify.WantResults(op, 1); err != nil {
				return err
			}
			if !ok {
				return verify.Errf(op, "result must be a memref")
			}
			dyn := 0
			for _, d := range mt.Shape {
				if d == ir.DynamicSize {
					dyn++
				}
			}
			if len(op.Operands) != dyn {
				return verify.Errf(op, "needs %d extent operands, found %d", dyn, len(op.Operands))
			}
			return nil
		}},
		"memref.dealloc": {Check: func(c *verify.Checker, op *ir.Operation) error {
			return verify.WantOperands(op, 1)
		}},
		"memref.load": {Check: func(c *verify.Checker, op *ir.Operation) error {
			mt, ok := op.Operands[0].Type.(ir.MemRefType)
			if !ok {
				return verify.Errf(op, "operand must be a memref")
			}
			if len(op.Operands)-1 != mt.Rank() {
				return verify.Errf(op, "needs %d indices, found %d", mt.Rank(), len(op.Operands)-1)
			}
			if err := verify.WantResults(op, 1); err != nil {
				return err
			}
			return verify.WantType(op, op.Results[0], mt.Elem)
		}},
		"memref.store": {Check: func(c *verify.Checker, op *ir.Operation) error {
			if len(op.Operands) < 2 {
				return verify.Errf(op, "needs value and memref operands")
			}
			mt, ok := op.Operands[1].Type.(ir.MemRefType)
			if !ok {
				return verify.Errf(op, "second operand must be a memref")
			}
			if err := verify.WantType(op, op.Operands[0], mt.Elem); err != nil {
				return err
			}
			if len(op.Operands)-2 != mt.Rank() {
				return verify.Errf(op, "needs %d indices, found %d", mt.Rank(), len(op.Operands)-2)
			}
			return verify.WantResults(op, 0)
		}},
		"memref.copy": {Check: func(c *verify.Checker, op *ir.Operation) error {
			return verify.WantOperands(op, 2)
		}},
		"memref.dim": {Check: func(c *verify.Checker, op *ir.Operation) error {
			if err := verify.WantOperands(op, 2); err != nil {
				return err
			}
			return verify.WantResults(op, 1)
		}},
		"memref.cast": {Check: func(c *verify.Checker, op *ir.Operation) error {
			if err := verify.WantOperands(op, 1); err != nil {
				return err
			}
			return verify.WantResults(op, 1)
		}},
	}
}
