package memref_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewExecutor().Run(m, "main")
}

func wrap(body string) string {
	return `"builtin.module"() ({
  "llvm.func"() ({` + body + `
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestDynamicAllocAndDim(t *testing.T) {
	res, err := run(t, wrap(`
    %n = "llvm.mlir.constant"() {value = 3 : index} : () -> (index)
    %buf = "memref.alloc"(%n) : (index) -> (memref<?x2xi64>)
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %i1 = "llvm.mlir.constant"() {value = 1 : index} : () -> (index)
    %d0 = "memref.dim"(%buf, %i0) : (memref<?x2xi64>, index) -> (index)
    %d1 = "memref.dim"(%buf, %i1) : (memref<?x2xi64>, index) -> (index)
    "llvm.print"(%d0) : (index) -> ()
    "llvm.print"(%d1) : (index) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "3\n2\n" {
		t.Errorf("dims %q", res.Output)
	}
}

func TestCopySemantics(t *testing.T) {
	res, err := run(t, wrap(`
    %a = "memref.alloc"() : () -> (memref<2xi64>)
    %b = "memref.alloc"() : () -> (memref<2xi64>)
    %v = "llvm.mlir.constant"() {value = 11 : i64} : () -> (i64)
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %i1 = "llvm.mlir.constant"() {value = 1 : index} : () -> (index)
    "memref.store"(%v, %a, %i0) : (i64, memref<2xi64>, index) -> ()
    "memref.store"(%v, %a, %i1) : (i64, memref<2xi64>, index) -> ()
    "memref.copy"(%a, %b) : (memref<2xi64>, memref<2xi64>) -> ()
    %w = "llvm.mlir.constant"() {value = 99 : i64} : () -> (i64)
    "memref.store"(%w, %a, %i0) : (i64, memref<2xi64>, index) -> ()
    %r = "memref.load"(%b, %i0) : (memref<2xi64>, index) -> (i64)
    "llvm.print"(%r) : (i64) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "11\n" {
		t.Errorf("copy should snapshot contents, got %q", res.Output)
	}
}

func TestCopySizeMismatchTraps(t *testing.T) {
	_, err := run(t, wrap(`
    %a = "memref.alloc"() : () -> (memref<2xi64>)
    %b = "memref.alloc"() : () -> (memref<3xi64>)
    "memref.copy"(%a, %b) : (memref<2xi64>, memref<3xi64>) -> ()`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("size mismatch should trap, got %v", err)
	}
}

func TestCastRuntimeCheck(t *testing.T) {
	_, err := run(t, wrap(`
    %n = "llvm.mlir.constant"() {value = 2 : index} : () -> (index)
    %a = "memref.alloc"(%n) : (index) -> (memref<?xi64>)
    %b = "memref.cast"(%a) : (memref<?xi64>) -> (memref<3xi64>)`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("incompatible cast should trap, got %v", err)
	}
}

func TestSpecRejectsBadStore(t *testing.T) {
	src := wrap(`
    %a = "memref.alloc"() : () -> (memref<2xi64>)
    %v = "llvm.mlir.constant"() {value = 1 : i32} : () -> (i32)
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    "memref.store"(%v, %a, %i0) : (i32, memref<2xi64>, index) -> ()`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.AllSpecs()); err == nil {
		t.Error("element-type mismatch on store must be rejected")
	}
}
