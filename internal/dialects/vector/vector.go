// Package vector provides the subset of the vector dialect Ratte needs:
// vector.print, the observable-output operation used by every test
// oracle.
//
// vector.print accepts values from other dialects (scalars and tensors
// here), the paper's "parameter interface" interaction: any runtime
// value that can render itself to a string is printable.
package vector

import (
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// Ops lists the vector-dialect operations.
var Ops = []string{"vector.print"}

// Semantics returns the interpreter kernels for the vector dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("vector")
	d.Register("vector.print", func(ctx *interp.Context, op *ir.Operation) error {
		v, err := ctx.Get(op.Operands[0])
		if err != nil {
			return err
		}
		return ctx.Print(v)
	})
	return d
}

// Specs returns the static rules for the vector dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"vector.print": {Check: checkPrint},
	}
}

func checkPrint(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 1); err != nil {
		return err
	}
	if err := verify.WantResults(op, 0); err != nil {
		return err
	}
	switch op.Operands[0].Type.(type) {
	case ir.IntegerType, ir.IndexType, ir.VectorType, ir.TensorType:
		return nil
	}
	return verify.Errf(op, "unprintable operand type %s", op.Operands[0].Type)
}
