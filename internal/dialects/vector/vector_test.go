package vector_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func TestPrintFormatsMatchRuntime(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %i1v = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %i8v = "arith.constant"() {value = -128 : i8} : () -> (i8)
    %idx = "arith.constant"() {value = 42 : index} : () -> (index)
    %t = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    "vector.print"(%i1v) : (i1) -> ()
    "vector.print"(%i8v) : (i8) -> ()
    "vector.print"(%idx) : (index) -> ()
    "vector.print"(%t) : (tensor<2xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	want := "-1\n-128\n42\n( 1, 2 )\n"
	if res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestPrintOfUndefIsUB(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %e = "tensor.empty"() : () -> (tensor<1xi8>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %u = "tensor.extract"(%e, %i0) : (tensor<1xi8>, index) -> (i8)
    "vector.print"(%u) : (i8) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dialects.NewReferenceInterpreter().Run(m, "main")
	if err == nil || !interp.IsUB(err) {
		t.Errorf("printing undef must be UB, got %v", err)
	}
}

func TestSpecRejectsFunctionTypedPrint(t *testing.T) {
	// A print of a non-printable type is a static error.
	src := `"builtin.module"() ({
  "func.func"() ({
    %e = "tensor.empty"() : () -> (tensor<1xi8>)
    "vector.print"(%e, %e) : (tensor<1xi8>, tensor<1xi8>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
		t.Error("two-operand print must be rejected")
	}
}
