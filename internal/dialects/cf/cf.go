// Package cf provides the control-flow dialect produced by lowering
// structured control flow: unconditional and conditional branches
// between blocks of a region.
package cf

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// Ops lists the cf-dialect operations.
var Ops = []string{"cf.br", "cf.cond_br"}

// Semantics returns the interpreter kernels for the cf dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("cf")

	d.RegisterTerminator("cf.br", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		if len(op.Successors) != 1 {
			return interp.TermResult{}, fmt.Errorf("cf.br requires exactly one successor")
		}
		return interp.TermResult{Branch: &op.Successors[0]}, nil
	})

	d.RegisterTerminator("cf.cond_br", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		if len(op.Successors) != 2 {
			return interp.TermResult{}, fmt.Errorf("cf.cond_br requires exactly two successors")
		}
		cond, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return interp.TermResult{}, err
		}
		if !cond.Defined() {
			// Branching on poison is undefined behaviour in the target;
			// the executor models it as a trap so the non-crash oracle
			// observes it, as a real run would via arbitrary behaviour.
			return interp.TermResult{}, &rtval.TrapError{Op: "cf.cond_br", Reason: "branch on a poison value"}
		}
		if cond.IsTrue() {
			return interp.TermResult{Branch: &op.Successors[0]}, nil
		}
		return interp.TermResult{Branch: &op.Successors[1]}, nil
	})

	// Fused-terminator shapes for whole-block fusion: cf.br is pure
	// control, cf.cond_br's closure replicates the kernel's poison trap
	// and successor choice. Ops with other successor/operand counts are
	// left on the kernels above (fuse.go's shape gating), preserving
	// their diagnostics.
	d.RegisterFusable("cf.br", interp.FuseSpec{Kind: interp.FuseBr})
	d.RegisterFusable("cf.cond_br", interp.FuseSpec{Kind: interp.FuseCondBr, CondBr: func(cond rtval.Int) (int, error) {
		if !cond.Defined() {
			return 0, &rtval.TrapError{Op: "cf.cond_br", Reason: "branch on a poison value"}
		}
		if cond.IsTrue() {
			return 0, nil
		}
		return 1, nil
	}})

	return d
}

// Specs returns the static rules for the cf dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"cf.br": {Terminator: true, Check: func(c *verify.Checker, op *ir.Operation) error {
			if len(op.Successors) != 1 {
				return verify.Errf(op, "cf.br requires exactly one successor")
			}
			return verify.WantOperands(op, 0)
		}},
		"cf.cond_br": {Terminator: true, Check: func(c *verify.Checker, op *ir.Operation) error {
			if len(op.Successors) != 2 {
				return verify.Errf(op, "cf.cond_br requires exactly two successors")
			}
			if err := verify.WantOperands(op, 1); err != nil {
				return err
			}
			return verify.WantType(op, op.Operands[0], ir.I1)
		}},
	}
}
