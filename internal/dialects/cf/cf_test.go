package cf_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewExecutor().Run(m, "main")
}

func TestBranchArgumentsFlow(t *testing.T) {
	src := `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    %a = "llvm.mlir.constant"() {value = 5 : i64} : () -> (i64)
    %b = "llvm.mlir.constant"() {value = 37 : i64} : () -> (i64)
    "cf.br"()[^merge(%a : i64, %b : i64)] : () -> ()
  ^merge(%x: i64, %y: i64):
    %s = "llvm.add"(%x, %y) : (i64, i64) -> (i64)
    "llvm.print"(%s) : (i64) -> ()
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestCondBranchSelectsSuccessorArgs(t *testing.T) {
	mk := func(cond int64) string {
		return `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    %c = "llvm.mlir.constant"() {value = ` + itoa(cond) + ` : i1} : () -> (i1)
    %a = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    %b = "llvm.mlir.constant"() {value = 2 : i64} : () -> (i64)
    "cf.cond_br"(%c)[^merge(%a : i64), ^merge(%b : i64)] : (i1) -> ()
  ^merge(%x: i64):
    "llvm.print"(%x) : (i64) -> ()
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	}
	res, err := run(t, mk(1))
	if err != nil || res.Output != "1\n" {
		t.Errorf("true branch: %q %v", res.Output, err)
	}
	res, err = run(t, mk(0))
	if err != nil || res.Output != "2\n" {
		t.Errorf("false branch: %q %v", res.Output, err)
	}
}

func TestMalformedBranchErrors(t *testing.T) {
	// cf.br with zero successors is rejected at run time (and statically
	// by the spec — bypassed here by calling the executor directly).
	src := `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    "cf.br"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if _, err := run(t, src); err == nil {
		t.Error("branch without successor should error")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	return "1"
}
