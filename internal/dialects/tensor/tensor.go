// Package tensor provides the semantics and static rules of the subset
// of the tensor dialect the paper supports: empty, extract, insert,
// dim, cast, generate and yield.
//
// Tensors have value semantics. The runtime tracks the *concrete* shape
// of every tensor — even when the program's syntactic type elides
// extents with `?` — which is the semantic interface the paper's
// tensor.cast generator consumes (Figure 11) to avoid runtime
// cast failures.
package tensor

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
	"ratte/internal/verify"
)

// Ops lists the tensor-dialect operations.
var Ops = []string{
	"tensor.empty", "tensor.extract", "tensor.insert",
	"tensor.dim", "tensor.cast", "tensor.generate", "tensor.yield",
}

// Semantics returns the interpreter kernels for the tensor dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("tensor")

	d.Register("tensor.empty", func(ctx *interp.Context, op *ir.Operation) error {
		rt, ok := op.Results[0].Type.(ir.TensorType)
		if !ok {
			return fmt.Errorf("tensor.empty must produce a tensor")
		}
		shape, err := concreteShape(ctx, rt.Shape, op.Operands, "tensor.empty")
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], rtval.EmptyTensor(shape, rt.Elem))
	})

	d.Register("tensor.extract", func(ctx *interp.Context, op *ir.Operation) error {
		t, err := ctx.GetTensor(op.Operands[0])
		if err != nil {
			return err
		}
		idx, err := indexOperands(ctx, op.Operands[1:])
		if err != nil {
			return err
		}
		v, err := t.At(idx)
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], v)
	})

	d.Register("tensor.insert", func(ctx *interp.Context, op *ir.Operation) error {
		scalar, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		t, err := ctx.GetTensor(op.Operands[1])
		if err != nil {
			return err
		}
		idx, err := indexOperands(ctx, op.Operands[2:])
		if err != nil {
			return err
		}
		nt, err := t.Insert(idx, scalar)
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], nt)
	})

	d.Register("tensor.dim", func(ctx *interp.Context, op *ir.Operation) error {
		t, err := ctx.GetTensor(op.Operands[0])
		if err != nil {
			return err
		}
		d, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		n := d.Signed()
		if n < 0 || n >= int64(len(t.Shape)) {
			return &rtval.TrapError{Op: "tensor.dim", Reason: fmt.Sprintf("dimension %d out of range for rank %d", n, len(t.Shape))}
		}
		return ctx.Define(op.Results[0], rtval.NewIndex(t.Shape[n]))
	})

	d.Register("tensor.cast", func(ctx *interp.Context, op *ir.Operation) error {
		t, err := ctx.GetTensor(op.Operands[0])
		if err != nil {
			return err
		}
		rt, ok := op.Results[0].Type.(ir.TensorType)
		if !ok {
			return fmt.Errorf("tensor.cast must produce a tensor")
		}
		// Casting does not alter the value, but the concrete shape must
		// satisfy every static extent of the target type; otherwise the
		// cast is a runtime error (paper §3.3).
		if len(rt.Shape) != len(t.Shape) {
			return &rtval.TrapError{Op: "tensor.cast", Reason: "rank mismatch in cast"}
		}
		for i, dim := range rt.Shape {
			if dim != ir.DynamicSize && dim != t.Shape[i] {
				return &rtval.TrapError{Op: "tensor.cast", Reason: fmt.Sprintf("runtime shape %v incompatible with target type %s", t.Shape, rt)}
			}
		}
		return ctx.Define(op.Results[0], t)
	})

	d.Register("tensor.generate", func(ctx *interp.Context, op *ir.Operation) error {
		rt, ok := op.Results[0].Type.(ir.TensorType)
		if !ok {
			return fmt.Errorf("tensor.generate must produce a tensor")
		}
		shape, err := concreteShape(ctx, rt.Shape, op.Operands, "tensor.generate")
		if err != nil {
			return err
		}
		out := rtval.EmptyTensor(shape, rt.Elem)
		n := out.NumElements()
		idx := make([]int64, len(shape))
		for flat := int64(0); flat < n; flat++ {
			args := make([]rtval.Value, len(shape))
			for i, x := range idx {
				args[i] = rtval.NewIndex(x)
			}
			exit, err := ctx.RunRegion(op.Regions[0], args, scoped.Standard)
			if err != nil {
				return err
			}
			if exit.Kind != interp.ExitYield || len(exit.Values) != 1 {
				return fmt.Errorf("tensor.generate body must yield exactly one element")
			}
			elem, ok := exit.Values[0].(rtval.Int)
			if !ok {
				return fmt.Errorf("tensor.generate must yield a scalar")
			}
			out.Elems[flat] = elem
			// Advance the multi-index in row-major order.
			for i := len(idx) - 1; i >= 0; i-- {
				idx[i]++
				if idx[i] < shape[i] {
					break
				}
				idx[i] = 0
			}
		}
		return ctx.Define(op.Results[0], out)
	})

	d.RegisterTerminator("tensor.yield", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		v, err := ctx.Get(op.Operands[0])
		if err != nil {
			return interp.TermResult{}, err
		}
		return interp.TermResult{Exit: &interp.Exit{Kind: interp.ExitYield, Values: []rtval.Value{v}}}, nil
	})

	return d
}

// concreteShape resolves a syntactic shape with dynamic dims against the
// operation's extent operands, producing the concrete runtime shape.
func concreteShape(ctx *interp.Context, shape []int64, extents []ir.Value, opName string) ([]int64, error) {
	out := make([]int64, len(shape))
	k := 0
	for i, d := range shape {
		if d != ir.DynamicSize {
			out[i] = d
			continue
		}
		if k >= len(extents) {
			return nil, fmt.Errorf("%s: missing extent operand for dynamic dim %d", opName, i)
		}
		e, err := ctx.GetInt(extents[k])
		if err != nil {
			return nil, err
		}
		k++
		if e.Signed() < 0 {
			return nil, &rtval.TrapError{Op: opName, Reason: fmt.Sprintf("negative extent %d", e.Signed())}
		}
		out[i] = e.Signed()
	}
	if k != len(extents) {
		return nil, fmt.Errorf("%s: %d extent operands for %d dynamic dims", opName, len(extents), k)
	}
	return out, nil
}

func indexOperands(ctx *interp.Context, operands []ir.Value) ([]int64, error) {
	idx := make([]int64, len(operands))
	for i, operand := range operands {
		v, err := ctx.GetInt(operand)
		if err != nil {
			return nil, err
		}
		if !v.Defined() {
			return nil, &rtval.UBError{Op: "tensor", Reason: "indexing with a value that is not well-defined"}
		}
		idx[i] = v.Signed()
	}
	return idx, nil
}

// Specs returns the static rules for the tensor dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"tensor.empty":    {Check: checkEmpty},
		"tensor.extract":  {Check: checkExtract},
		"tensor.insert":   {Check: checkInsert},
		"tensor.dim":      {Check: checkDim},
		"tensor.cast":     {Check: checkCast},
		"tensor.generate": {NumRegions: 1, Check: checkGenerate},
		"tensor.yield":    {Terminator: true, Check: checkYield},
	}
}

func resultTensor(op *ir.Operation) (ir.TensorType, error) {
	if err := verify.WantResults(op, 1); err != nil {
		return ir.TensorType{}, err
	}
	tt, ok := op.Results[0].Type.(ir.TensorType)
	if !ok {
		return ir.TensorType{}, verify.Errf(op, "result must be a tensor, is %s", op.Results[0].Type)
	}
	return tt, nil
}

func countDynamic(shape []int64) int {
	n := 0
	for _, d := range shape {
		if d == ir.DynamicSize {
			n++
		}
	}
	return n
}

func wantIndexOperands(op *ir.Operation, operands []ir.Value) error {
	for _, o := range operands {
		if err := verify.WantType(op, o, ir.Index); err != nil {
			return err
		}
	}
	return nil
}

func checkEmpty(c *verify.Checker, op *ir.Operation) error {
	tt, err := resultTensor(op)
	if err != nil {
		return err
	}
	if len(op.Operands) != countDynamic(tt.Shape) {
		return verify.Errf(op, "tensor.empty needs %d extent operands, found %d",
			countDynamic(tt.Shape), len(op.Operands))
	}
	return wantIndexOperands(op, op.Operands)
}

func checkExtract(c *verify.Checker, op *ir.Operation) error {
	if len(op.Operands) < 1 {
		return verify.Errf(op, "tensor.extract requires a tensor operand")
	}
	tt, ok := op.Operands[0].Type.(ir.TensorType)
	if !ok {
		return verify.Errf(op, "tensor.extract operand must be a tensor")
	}
	if len(op.Operands)-1 != tt.Rank() {
		return verify.Errf(op, "tensor.extract needs %d indices for rank-%d tensor, found %d",
			tt.Rank(), tt.Rank(), len(op.Operands)-1)
	}
	if err := wantIndexOperands(op, op.Operands[1:]); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	return verify.WantType(op, op.Results[0], tt.Elem)
}

func checkInsert(c *verify.Checker, op *ir.Operation) error {
	if len(op.Operands) < 2 {
		return verify.Errf(op, "tensor.insert requires scalar and tensor operands")
	}
	tt, ok := op.Operands[1].Type.(ir.TensorType)
	if !ok {
		return verify.Errf(op, "tensor.insert destination must be a tensor")
	}
	if err := verify.WantType(op, op.Operands[0], tt.Elem); err != nil {
		return err
	}
	if len(op.Operands)-2 != tt.Rank() {
		return verify.Errf(op, "tensor.insert needs %d indices for rank-%d tensor, found %d",
			tt.Rank(), tt.Rank(), len(op.Operands)-2)
	}
	if err := wantIndexOperands(op, op.Operands[2:]); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	return verify.WantType(op, op.Results[0], tt)
}

func checkDim(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	if _, ok := op.Operands[0].Type.(ir.TensorType); !ok {
		return verify.Errf(op, "tensor.dim operand must be a tensor")
	}
	if err := verify.WantType(op, op.Operands[1], ir.Index); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	return verify.WantType(op, op.Results[0], ir.Index)
}

func checkCast(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 1); err != nil {
		return err
	}
	st, ok := op.Operands[0].Type.(ir.TensorType)
	if !ok {
		return verify.Errf(op, "tensor.cast operand must be a tensor")
	}
	tt, err := resultTensor(op)
	if err != nil {
		return err
	}
	if !ir.TypeEqual(st.Elem, tt.Elem) {
		return verify.Errf(op, "tensor.cast cannot change element type (%s to %s)", st.Elem, tt.Elem)
	}
	if st.Rank() != tt.Rank() {
		return verify.Errf(op, "tensor.cast cannot change rank (%d to %d)", st.Rank(), tt.Rank())
	}
	for i := range st.Shape {
		a, b := st.Shape[i], tt.Shape[i]
		if a != ir.DynamicSize && b != ir.DynamicSize && a != b {
			return verify.Errf(op, "tensor.cast between provably different extents %d and %d", a, b)
		}
	}
	return nil
}

func checkGenerate(c *verify.Checker, op *ir.Operation) error {
	tt, err := resultTensor(op)
	if err != nil {
		return err
	}
	if len(op.Operands) != countDynamic(tt.Shape) {
		return verify.Errf(op, "tensor.generate needs %d extent operands, found %d",
			countDynamic(tt.Shape), len(op.Operands))
	}
	if err := wantIndexOperands(op, op.Operands); err != nil {
		return err
	}
	entry := op.Regions[0].Entry()
	if entry == nil {
		return verify.Errf(op, "tensor.generate body is empty")
	}
	if len(entry.Args) != tt.Rank() {
		return verify.Errf(op, "tensor.generate body must take %d index arguments, takes %d",
			tt.Rank(), len(entry.Args))
	}
	return wantIndexOperands(op, entry.Args)
}

func checkYield(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 1); err != nil {
		return err
	}
	if err := verify.WantResults(op, 0); err != nil {
		return err
	}
	parent := c.Parent()
	if parent == nil {
		return verify.Errf(op, "tensor.yield must be enclosed by tensor.generate")
	}
	switch parent.Name {
	case "tensor.generate":
		tt := parent.Results[0].Type.(ir.TensorType)
		return verify.WantType(op, op.Operands[0], tt.Elem)
	case "ratte.generate_into":
		// The buffer form produced by one-shot-bufferize.
		mt, ok := parent.Operands[0].Type.(ir.MemRefType)
		if !ok {
			return verify.Errf(op, "generate_into destination must be a memref")
		}
		return verify.WantType(op, op.Operands[0], mt.Elem)
	}
	return verify.Errf(op, "tensor.yield must be enclosed by tensor.generate")
}
