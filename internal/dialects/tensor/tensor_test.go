package tensor_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewReferenceInterpreter().Run(m, "main")
}

func wrapMain(body string) string {
	return `"builtin.module"() ({
  "func.func"() ({` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestEmptyWithDynamicExtents(t *testing.T) {
	res, err := run(t, wrapMain(`
    %n = "arith.constant"() {value = 3 : index} : () -> (index)
    %t = "tensor.empty"(%n) : (index) -> (tensor<?x2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %d0 = "tensor.dim"(%t, %i0) : (tensor<?x2xi64>, index) -> (index)
    %i1 = "arith.constant"() {value = 1 : index} : () -> (index)
    %d1 = "tensor.dim"(%t, %i1) : (tensor<?x2xi64>, index) -> (index)
    "vector.print"(%d0) : (index) -> ()
    "vector.print"(%d1) : (index) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "3\n2\n" {
		t.Errorf("dims = %q", res.Output)
	}
}

func TestEmptyNegativeExtentTraps(t *testing.T) {
	_, err := run(t, wrapMain(`
    %n = "arith.constant"() {value = -2 : index} : () -> (index)
    %t = "tensor.empty"(%n) : (index) -> (tensor<?xi64>)`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("negative extent should trap, got %v", err)
	}
}

func TestDimOutOfRangeTraps(t *testing.T) {
	_, err := run(t, wrapMain(`
    %c = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %i5 = "arith.constant"() {value = 5 : index} : () -> (index)
    %d = "tensor.dim"(%c, %i5) : (tensor<2xi64>, index) -> (index)`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("dim out of range should trap, got %v", err)
	}
}

func TestUndefIndexingIsUB(t *testing.T) {
	// Indexing a tensor with a not-well-defined index value is UB even
	// when the bits happen to be in bounds.
	_, err := run(t, wrapMain(`
    %e = "tensor.empty"() : () -> (tensor<2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %u = "tensor.extract"(%e, %i0) : (tensor<2xi64>, index) -> (i64)
    %ui = "arith.index_cast"(%u) : (i64) -> (index)
    %c = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %x = "tensor.extract"(%c, %ui) : (tensor<2xi64>, index) -> (i64)`))
	if err == nil || !interp.IsUB(err) {
		t.Errorf("undef index should be UB, got %v", err)
	}
}

func TestGenerateUsesEnclosingValues(t *testing.T) {
	res, err := run(t, wrapMain(`
    %k = "arith.constant"() {value = 10 : i64} : () -> (i64)
    %g = "tensor.generate"() ({
    ^bb0(%i: index):
      %x = "arith.index_cast"(%i) : (index) -> (i64)
      %y = "arith.addi"(%x, %k) : (i64, i64) -> (i64)
      "tensor.yield"(%y) : (i64) -> ()
    }) : () -> (tensor<3xi64>)
    "vector.print"(%g) : (tensor<3xi64>) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "( 10, 11, 12 )\n" {
		t.Errorf("generate = %q", res.Output)
	}
}

func TestInsertDoesNotMutateSource(t *testing.T) {
	res, err := run(t, wrapMain(`
    %c = "arith.constant"() {value = dense<[5, 6]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %v = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %c2 = "tensor.insert"(%v, %c, %i0) : (i64, tensor<2xi64>, index) -> (tensor<2xi64>)
    "vector.print"(%c) : (tensor<2xi64>) -> ()
    "vector.print"(%c2) : (tensor<2xi64>) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "( 5, 6 )\n( 9, 6 )\n" {
		t.Errorf("insert value semantics broken: %q", res.Output)
	}
}

func TestSpecRejectsBadGenerate(t *testing.T) {
	// Body must take rank-many index args.
	src := wrapMain(`
    %g = "tensor.generate"() ({
    ^bb0(%i: index, %j: index):
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      "tensor.yield"(%z) : (i64) -> ()
    }) : () -> (tensor<3xi64>)`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil ||
		!strings.Contains(err.Error(), "index arguments") {
		t.Errorf("want arg-count rejection, got %v", err)
	}

	// Yield type must match the element type.
	src = wrapMain(`
    %g = "tensor.generate"() ({
    ^bb0(%i: index):
      %z = "arith.constant"() {value = 0 : i32} : () -> (i32)
      "tensor.yield"(%z) : (i32) -> ()
    }) : () -> (tensor<3xi64>)`)
	m, err = ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
		t.Error("yield type mismatch must be rejected")
	}
}

func TestSpecRejectsBadEmpty(t *testing.T) {
	src := wrapMain(`
    %n = "arith.constant"() {value = 3 : index} : () -> (index)
    %t = "tensor.empty"(%n) : (index) -> (tensor<2x2xi64>)`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
		t.Error("extent operand for static shape must be rejected")
	}
}
