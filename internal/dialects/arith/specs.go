package arith

import (
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// Specs returns the static verification rules for the arith dialect.
func Specs() verify.Registry {
	reg := verify.Registry{}

	reg["arith.constant"] = verify.OpSpec{Check: checkConstant}

	sameTypeBinary := verify.OpSpec{Check: checkSameTypeBinary}
	for _, name := range []string{
		"arith.addi", "arith.subi", "arith.muli",
		"arith.andi", "arith.ori", "arith.xori",
		"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
		"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
		"arith.shli", "arith.shrsi", "arith.shrui",
		"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
	} {
		reg[name] = sameTypeBinary
	}

	reg["arith.cmpi"] = verify.OpSpec{Check: checkCmpi}
	reg["arith.select"] = verify.OpSpec{Check: checkSelect}

	extended := verify.OpSpec{Check: checkExtended}
	reg["arith.addui_extended"] = verify.OpSpec{Check: checkAdduiExtended}
	reg["arith.mulsi_extended"] = extended
	reg["arith.mului_extended"] = extended

	reg["arith.extsi"] = verify.OpSpec{Check: checkExt}
	reg["arith.extui"] = verify.OpSpec{Check: checkExt}
	reg["arith.trunci"] = verify.OpSpec{Check: checkTrunc}
	reg["arith.index_cast"] = verify.OpSpec{Check: checkIndexCast}
	reg["arith.index_castui"] = verify.OpSpec{Check: checkIndexCast}

	return reg
}

func checkConstant(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 0); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	switch v := op.Attrs.Get("value").(type) {
	case ir.IntegerAttr:
		if !ir.TypeEqual(v.Type, op.Results[0].Type) {
			return verify.Errf(op, "constant attribute type %s does not match result type %s",
				v.Type, op.Results[0].Type)
		}
		if !ir.IsIntegerOrIndex(op.Results[0].Type) {
			return verify.Errf(op, "integer constant must produce an integer or index value")
		}
		w, _ := ir.BitWidth(op.Results[0].Type)
		if _, isIdx := op.Results[0].Type.(ir.IndexType); !isIdx && w < 64 {
			// The attribute payload must be in range for the width.
			if v.Value > int64(rtval.MaxUnsigned(w)) || v.Value < rtval.MinSigned(w) {
				return verify.Errf(op, "constant %d does not fit in %s", v.Value, op.Results[0].Type)
			}
		}
		return nil
	case ir.DenseIntAttr:
		rt, ok := op.Results[0].Type.(ir.TensorType)
		if !ok {
			return verify.Errf(op, "dense constant must produce a tensor")
		}
		if !ir.TypeEqual(v.Type, rt) {
			return verify.Errf(op, "dense attribute type %s does not match result type %s", v.Type, rt)
		}
		if !rt.HasStaticShape() {
			return verify.Errf(op, "dense constant requires a static shape")
		}
		if !v.Splat && int64(len(v.Values)) != rt.NumElements() {
			return verify.Errf(op, "dense attribute has %d elements, type requires %d",
				len(v.Values), rt.NumElements())
		}
		return nil
	}
	return verify.Errf(op, "constant requires a value attribute")
}

func checkSameTypeBinary(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	if err := verify.WantScalarOperands(op); err != nil {
		return err
	}
	return verify.WantAllSameType(op, op.Operands[0], op.Operands[1], op.Results[0])
}

func checkCmpi(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	if err := verify.WantScalarOperands(op); err != nil {
		return err
	}
	if err := verify.WantAllSameType(op, op.Operands[0], op.Operands[1]); err != nil {
		return err
	}
	if err := verify.WantType(op, op.Results[0], ir.I1); err != nil {
		return err
	}
	p, ok := op.Attrs.IntValueOf("predicate")
	if !ok {
		return verify.Errf(op, "cmpi requires a predicate attribute")
	}
	if !rtval.CmpPredicate(p).Valid() {
		return verify.Errf(op, "invalid cmpi predicate %d", p)
	}
	return nil
}

func checkSelect(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 3); err != nil {
		return err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	if err := verify.WantType(op, op.Operands[0], ir.I1); err != nil {
		return err
	}
	return verify.WantAllSameType(op, op.Operands[1], op.Operands[2], op.Results[0])
}

func checkExtended(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	if err := verify.WantResults(op, 2); err != nil {
		return err
	}
	if err := verify.WantScalarOperands(op); err != nil {
		return err
	}
	return verify.WantAllSameType(op, op.Operands[0], op.Operands[1], op.Results[0], op.Results[1])
}

func checkAdduiExtended(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	if err := verify.WantResults(op, 2); err != nil {
		return err
	}
	if err := verify.WantScalarOperands(op); err != nil {
		return err
	}
	if err := verify.WantAllSameType(op, op.Operands[0], op.Operands[1], op.Results[0]); err != nil {
		return err
	}
	// The second result is the i1 overflow flag.
	return verify.WantType(op, op.Results[1], ir.I1)
}

func checkExt(c *verify.Checker, op *ir.Operation) error {
	from, to, err := checkCastShape(op)
	if err != nil {
		return err
	}
	fw, err := verify.WantIntegerType(op, from)
	if err != nil {
		return err
	}
	tw, err := verify.WantIntegerType(op, to)
	if err != nil {
		return err
	}
	if fw >= tw {
		return verify.Errf(op, "extension must widen: %s to %s", from, to)
	}
	return nil
}

func checkTrunc(c *verify.Checker, op *ir.Operation) error {
	from, to, err := checkCastShape(op)
	if err != nil {
		return err
	}
	fw, err := verify.WantIntegerType(op, from)
	if err != nil {
		return err
	}
	tw, err := verify.WantIntegerType(op, to)
	if err != nil {
		return err
	}
	if fw <= tw {
		return verify.Errf(op, "truncation must narrow: %s to %s", from, to)
	}
	return nil
}

func checkIndexCast(c *verify.Checker, op *ir.Operation) error {
	from, to, err := checkCastShape(op)
	if err != nil {
		return err
	}
	_, fromIdx := from.(ir.IndexType)
	_, toIdx := to.(ir.IndexType)
	_, fromInt := from.(ir.IntegerType)
	_, toInt := to.(ir.IntegerType)
	if (fromIdx && toInt) || (fromInt && toIdx) {
		return nil
	}
	return verify.Errf(op, "index_cast must convert between index and integer, got %s to %s", from, to)
}

func checkCastShape(op *ir.Operation) (from, to ir.Type, err error) {
	if err := verify.WantOperands(op, 1); err != nil {
		return nil, nil, err
	}
	if err := verify.WantResults(op, 1); err != nil {
		return nil, nil, err
	}
	return op.Operands[0].Type, op.Results[0].Type, nil
}
