// Package arith provides the semantics, static rules and metadata of
// the arith dialect: integer and index arithmetic over signless
// two's-complement values, following the LLVM-style semantics the Ratte
// work's specification fixes established (division by zero, signed
// overflow of the division family, and shifts past the bit width are
// undefined behaviour; plain add/sub/mul wrap).
package arith

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// Ops lists every arith operation Ratte supports, mirroring the paper's
// Appendix A.6 inventory.
var Ops = []string{
	"arith.constant",
	"arith.addi", "arith.subi", "arith.muli",
	"arith.andi", "arith.ori", "arith.xori",
	"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
	"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
	"arith.shli", "arith.shrsi", "arith.shrui",
	"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
	"arith.cmpi", "arith.select",
	"arith.addui_extended", "arith.mulsi_extended", "arith.mului_extended",
	"arith.extsi", "arith.extui", "arith.trunci",
	"arith.index_cast", "arith.index_castui",
}

// Semantics returns the interpreter kernels for the arith dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("arith")

	d.Register("arith.constant", constantKernel)

	// Each binary op registers its kernel and, under the same semantic
	// function, a fuse spec: the compiled engine's superinstruction pass
	// may then evaluate the op without the kernel, with identical
	// results and errors (fuse.go's FuseSpec contract).
	binPure := func(name string, f func(a, b rtval.Int) rtval.Int) {
		d.Register(name, func(ctx *interp.Context, op *ir.Operation) error {
			a, b, err := binaryOperands(ctx, op)
			if err != nil {
				return err
			}
			return ctx.Define(op.Results[0], rtval.Box(f(a, b)))
		})
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseBinPure, Pure: f})
	}
	binErr := func(name string, f func(a, b rtval.Int) (rtval.Int, error)) {
		d.Register(name, func(ctx *interp.Context, op *ir.Operation) error {
			a, b, err := binaryOperands(ctx, op)
			if err != nil {
				return err
			}
			r, err := f(a, b)
			if err != nil {
				return err
			}
			return ctx.Define(op.Results[0], rtval.Box(r))
		})
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseBinErr, Err: f})
	}

	binPure("arith.addi", rtval.Int.Add)
	binPure("arith.subi", rtval.Int.Sub)
	binPure("arith.muli", rtval.Int.Mul)
	binPure("arith.andi", rtval.Int.And)
	binPure("arith.ori", rtval.Int.Or)
	binPure("arith.xori", rtval.Int.Xor)
	binPure("arith.maxsi", rtval.Int.MaxS)
	binPure("arith.maxui", rtval.Int.MaxU)
	binPure("arith.minsi", rtval.Int.MinS)
	binPure("arith.minui", rtval.Int.MinU)

	binErr("arith.divsi", rtval.Int.DivS)
	binErr("arith.divui", rtval.Int.DivU)
	binErr("arith.remsi", rtval.Int.RemS)
	binErr("arith.remui", rtval.Int.RemU)
	binErr("arith.ceildivsi", rtval.Int.CeilDivS)
	binErr("arith.ceildivui", rtval.Int.CeilDivU)
	binErr("arith.floordivsi", rtval.Int.FloorDivS)
	binErr("arith.shli", rtval.Int.ShL)
	binErr("arith.shrsi", rtval.Int.ShRS)
	binErr("arith.shrui", rtval.Int.ShRU)

	d.Register("arith.cmpi", cmpiKernel)
	d.RegisterFusable("arith.cmpi", interp.FuseSpec{Kind: interp.FuseCmp, Cmp: bindCmpi})

	d.Register("arith.select", selectKernel)
	d.RegisterFusable("arith.select", interp.FuseSpec{Kind: interp.FuseSelect, Sel: fusedSelect})

	ext := func(name string, f func(a, b rtval.Int) (rtval.Int, rtval.Int)) {
		d.Register(name, extendedKernel(f))
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseExtended, Ext: f})
	}
	ext("arith.addui_extended", func(a, b rtval.Int) (rtval.Int, rtval.Int) {
		return a.AddUIExtended(b)
	})
	ext("arith.mulsi_extended", rtval.Int.MulSIExtended)
	ext("arith.mului_extended", rtval.Int.MulUIExtended)

	cast := func(name string, f func(a rtval.Int, to ir.Type) rtval.Int) {
		d.Register(name, castKernel(f))
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseCast, Cast: f})
	}
	cast("arith.extsi", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		return a.ExtS(w)
	})
	cast("arith.extui", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		return a.ExtU(w)
	})
	cast("arith.trunci", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		return a.Trunc(w)
	})
	cast("arith.index_cast", rtval.Int.IndexCast)
	cast("arith.index_castui", rtval.Int.IndexCastU)

	d.RegisterFusable("arith.constant", interp.FuseSpec{Kind: interp.FuseConst, Const: constValue})

	return d
}

// constValue extracts a scalar constant's value at compile time; dense
// or malformed constants decline, keeping constantKernel's diagnostics.
func constValue(op *ir.Operation) (rtval.Int, bool) {
	v, ok := op.Attrs.Get("value").(ir.IntegerAttr)
	if !ok {
		return rtval.Int{}, false
	}
	switch t := op.Results[0].Type.(type) {
	case ir.IntegerType:
		return rtval.NewInt(t.Width, v.Value), true
	case ir.IndexType:
		return rtval.NewIndex(v.Value), true
	}
	return rtval.Int{}, false
}

// bindCmpi binds cmpi's predicate attribute at compile time; a missing
// predicate declines so cmpiKernel raises its exact error.
func bindCmpi(op *ir.Operation) (func(a, b rtval.Int) (rtval.Int, error), bool) {
	p, ok := op.Attrs.IntValueOf("predicate")
	if !ok {
		return nil, false
	}
	pred := rtval.CmpPredicate(p)
	return func(a, b rtval.Int) (rtval.Int, error) { return a.Cmp(pred, b) }, true
}

// fusedSelect is selectKernel over already-read scalar operands: the
// definedness check fires after all three reads, exactly like the
// kernel's order.
func fusedSelect(cond, t, f rtval.Int) (rtval.Int, error) {
	if !cond.Defined() {
		return rtval.Int{}, &rtval.UBError{Op: "arith.select", Reason: "branching on a value that is not well-defined"}
	}
	if cond.IsTrue() {
		return t, nil
	}
	return f, nil
}

func binaryOperands(ctx *interp.Context, op *ir.Operation) (a, b rtval.Int, err error) {
	if len(op.Operands) != 2 || len(op.Results) != 1 {
		return rtval.Int{}, rtval.Int{}, fmt.Errorf("malformed binary arith op")
	}
	if a, err = ctx.GetInt(op.Operands[0]); err != nil {
		return
	}
	b, err = ctx.GetInt(op.Operands[1])
	return
}

func constantKernel(ctx *interp.Context, op *ir.Operation) error {
	attr := op.Attrs.Get("value")
	switch v := attr.(type) {
	case ir.IntegerAttr:
		var val rtval.Int
		switch t := op.Results[0].Type.(type) {
		case ir.IntegerType:
			val = rtval.NewInt(t.Width, v.Value)
		case ir.IndexType:
			val = rtval.NewIndex(v.Value)
		default:
			return fmt.Errorf("integer constant with non-scalar result type %s", t)
		}
		return ctx.Define(op.Results[0], rtval.Box(val))
	case ir.DenseIntAttr:
		t, err := rtval.FromAttr(v)
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], t)
	}
	return fmt.Errorf("constant requires an integer or dense value attribute")
}

func cmpiKernel(ctx *interp.Context, op *ir.Operation) error {
	a, b, err := binaryOperands(ctx, op)
	if err != nil {
		return err
	}
	p, ok := op.Attrs.IntValueOf("predicate")
	if !ok {
		return fmt.Errorf("cmpi requires a predicate attribute")
	}
	r, err := a.Cmp(rtval.CmpPredicate(p), b)
	if err != nil {
		return err
	}
	return ctx.Define(op.Results[0], rtval.Box(r))
}

func selectKernel(ctx *interp.Context, op *ir.Operation) error {
	if len(op.Operands) != 3 {
		return fmt.Errorf("select requires 3 operands")
	}
	cond, err := ctx.GetInt(op.Operands[0])
	if err != nil {
		return err
	}
	// Select works over any value type, including tensors (the paper's
	// parameter-interface interaction): both branches are evaluated
	// values already, so selection is a pure choice.
	t, err := ctx.Get(op.Operands[1])
	if err != nil {
		return err
	}
	f, err := ctx.Get(op.Operands[2])
	if err != nil {
		return err
	}
	if !cond.Defined() {
		return &rtval.UBError{Op: "arith.select", Reason: "branching on a value that is not well-defined"}
	}
	if cond.IsTrue() {
		return ctx.Define(op.Results[0], t)
	}
	return ctx.Define(op.Results[0], f)
}

func extendedKernel(f func(a, b rtval.Int) (rtval.Int, rtval.Int)) interp.Kernel {
	return func(ctx *interp.Context, op *ir.Operation) error {
		a, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		b, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		lo, hi := f(a, b)
		if err := ctx.Define(op.Results[0], rtval.Box(lo)); err != nil {
			return err
		}
		return ctx.Define(op.Results[1], rtval.Box(hi))
	}
}

func castKernel(f func(a rtval.Int, to ir.Type) rtval.Int) interp.Kernel {
	return func(ctx *interp.Context, op *ir.Operation) error {
		a, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], rtval.Box(f(a, op.Results[0].Type)))
	}
}
