package arith_test

import (
	"testing"
	"testing/quick"

	"ratte/internal/dialects/arith"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// ctxWith builds an evaluation context with the given i64 bindings.
func ctxWith(t *testing.T, vals map[string]int64) *interp.Context {
	t.Helper()
	ctx := interp.NewContext(interp.New(arith.Semantics()))
	ctx.PushScope(scoped.Standard)
	for id, v := range vals {
		if err := ctx.Define(ir.V(id, ir.I64), rtval.NewInt(64, v)); err != nil {
			t.Fatal(err)
		}
	}
	return ctx
}

func evalBinary(t *testing.T, name string, a, b int64) (rtval.Int, error) {
	t.Helper()
	ctx := ctxWith(t, map[string]int64{"a": a, "b": b})
	op := ir.NewOp(name)
	op.Operands = []ir.Value{ir.V("a", ir.I64), ir.V("b", ir.I64)}
	op.Results = []ir.Value{ir.V("r", ir.I64)}
	if err := ctx.Eval(op); err != nil {
		return rtval.Int{}, err
	}
	v, _ := ctx.Lookup("r")
	return v.(rtval.Int), nil
}

// TestEveryBinaryKernel evaluates each same-type binary op against a
// hand-computed table.
func TestEveryBinaryKernel(t *testing.T) {
	cases := []struct {
		op      string
		a, b    int64
		want    int64
		wantErr bool
	}{
		{"arith.addi", 40, 2, 42, false},
		{"arith.subi", 40, 2, 38, false},
		{"arith.muli", -6, 7, -42, false},
		{"arith.andi", 0b1100, 0b1010, 0b1000, false},
		{"arith.ori", 0b1100, 0b1010, 0b1110, false},
		{"arith.xori", 0b1100, 0b1010, 0b0110, false},
		{"arith.divsi", -7, 2, -3, false},
		{"arith.divsi", 7, 0, 0, true},
		{"arith.divui", -1, 2, 9223372036854775807, false}, // 2^64-1 / 2
		{"arith.remsi", -7, 2, -1, false},
		{"arith.remui", 7, 3, 1, false},
		{"arith.remui", 7, 0, 0, true},
		{"arith.ceildivsi", -7, 2, -3, false},
		{"arith.ceildivui", 7, 2, 4, false},
		{"arith.floordivsi", -7, 2, -4, false},
		{"arith.floordivsi", -9223372036854775808, -1, 0, true},
		{"arith.shli", 3, 2, 12, false},
		{"arith.shli", 1, 64, 0, true},
		{"arith.shrsi", -8, 1, -4, false},
		{"arith.shrui", -8, 1, 9223372036854775804, false},
		{"arith.maxsi", -3, 2, 2, false},
		{"arith.maxui", -3, 2, -3, false}, // -3 is huge unsigned
		{"arith.minsi", -3, 2, -3, false},
		{"arith.minui", -3, 2, 2, false},
	}
	for _, c := range cases {
		got, err := evalBinary(t, c.op, c.a, c.b)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s(%d, %d): expected error", c.op, c.a, c.b)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s(%d, %d): %v", c.op, c.a, c.b, err)
			continue
		}
		if got.Signed() != c.want {
			t.Errorf("%s(%d, %d) = %d, want %d", c.op, c.a, c.b, got.Signed(), c.want)
		}
	}
}

func TestConstantKernelTypes(t *testing.T) {
	ctx := interp.NewContext(interp.New(arith.Semantics()))
	ctx.PushScope(scoped.Standard)

	c := ir.NewOp("arith.constant")
	c.Attrs.Set("value", ir.IntAttr(-9, ir.Index))
	c.Results = []ir.Value{ir.V("i", ir.Index)}
	if err := ctx.Eval(c); err != nil {
		t.Fatal(err)
	}
	v, _ := ctx.Lookup("i")
	if v.(rtval.Int).Signed() != -9 || !v.(rtval.Int).IsIndex() {
		t.Errorf("index constant = %v", v)
	}

	d := ir.NewOp("arith.constant")
	d.Attrs.Set("value", ir.DenseAttr([]int64{1, 2}, ir.TensorOf([]int64{2}, ir.I32)))
	d.Results = []ir.Value{ir.V("t", ir.TensorOf([]int64{2}, ir.I32))}
	if err := ctx.Eval(d); err != nil {
		t.Fatal(err)
	}
	tv, _ := ctx.Lookup("t")
	if tv.(*rtval.Tensor).NumElements() != 2 {
		t.Errorf("dense constant = %v", tv)
	}

	bad := ir.NewOp("arith.constant")
	bad.Results = []ir.Value{ir.V("x", ir.I64)}
	if err := ctx.Eval(bad); err == nil {
		t.Error("constant without value attribute must fail")
	}
}

func TestCmpiAllPredicates(t *testing.T) {
	// a = -2 (huge unsigned), b = 3.
	preds := map[int64]bool{
		0: false, // eq
		1: true,  // ne
		2: true,  // slt
		3: true,  // sle
		4: false, // sgt
		5: false, // sge
		6: false, // ult
		7: false, // ule
		8: true,  // ugt
		9: true,  // uge
	}
	for p, want := range preds {
		ctx := ctxWith(t, map[string]int64{"a": -2, "b": 3})
		op := ir.NewOp("arith.cmpi")
		op.Operands = []ir.Value{ir.V("a", ir.I64), ir.V("b", ir.I64)}
		op.Attrs.Set("predicate", ir.IntAttr(p, ir.I64))
		op.Results = []ir.Value{ir.V("r", ir.I1)}
		if err := ctx.Eval(op); err != nil {
			t.Fatal(err)
		}
		v, _ := ctx.Lookup("r")
		if v.(rtval.Int).IsTrue() != want {
			t.Errorf("predicate %d: got %v, want %v", p, v.(rtval.Int).IsTrue(), want)
		}
	}
}

func TestSelectOnUndefCondIsUB(t *testing.T) {
	ctx := interp.NewContext(interp.New(arith.Semantics()))
	ctx.PushScope(scoped.Standard)
	if err := ctx.Define(ir.V("c", ir.I1), rtval.UndefInt(ir.I1)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Define(ir.V("a", ir.I64), rtval.NewInt(64, 1)); err != nil {
		t.Fatal(err)
	}
	op := ir.NewOp("arith.select")
	op.Operands = []ir.Value{ir.V("c", ir.I1), ir.V("a", ir.I64), ir.V("a", ir.I64)}
	op.Results = []ir.Value{ir.V("r", ir.I64)}
	err := ctx.Eval(op)
	if err == nil || !interp.IsUB(err) {
		t.Errorf("select on undef cond should be UB, got %v", err)
	}
}

// Property: for every width, the interpreter's addi/subi/muli agree
// with two's-complement arithmetic computed independently.
func TestBinaryKernelsMatchTwosComplement(t *testing.T) {
	in := interp.New(arith.Semantics())
	f := func(a, b int64, w8 uint8) bool {
		w := uint(w8%64) + 1
		tt := ir.I(w)
		ctx := interp.NewContext(in)
		ctx.PushScope(scoped.Standard)
		if err := ctx.Define(ir.V("a", tt), rtval.NewInt(w, a)); err != nil {
			return false
		}
		if err := ctx.Define(ir.V("b", tt), rtval.NewInt(w, b)); err != nil {
			return false
		}
		check := func(name string, want uint64) bool {
			op := ir.NewOp(name)
			op.Operands = []ir.Value{ir.V("a", tt), ir.V("b", tt)}
			op.Results = []ir.Value{ir.V("r_"+name, tt)}
			if err := ctx.Eval(op); err != nil {
				return false
			}
			v, _ := ctx.Lookup("r_" + name)
			return v.(rtval.Int).Unsigned() == want
		}
		mask := uint64(1)<<w - 1
		if w == 64 {
			mask = ^uint64(0)
		}
		ua, ub := uint64(a)&mask, uint64(b)&mask
		return check("arith.addi", (ua+ub)&mask) &&
			check("arith.subi", (ua-ub)&mask) &&
			check("arith.muli", (ua*ub)&mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpsInventoryHasKernels(t *testing.T) {
	d := arith.Semantics()
	for _, name := range arith.Ops {
		if _, ok := d.Kernels[name]; !ok {
			t.Errorf("no kernel for %s", name)
		}
	}
	if len(arith.Ops) != 31 {
		t.Errorf("arith inventory has %d ops", len(arith.Ops))
	}
	specs := arith.Specs()
	for _, name := range arith.Ops {
		if _, ok := specs[name]; !ok {
			t.Errorf("no spec for %s", name)
		}
	}
}
