// Package llvm provides Ratte's executable target dialect: the lowered
// form every tested compilation pipeline bottoms out in, standing in
// for the production stack's llvm dialect + mlir-cpu-runner.
//
// Unlike the reference semantics (which reject undefined behaviour
// eagerly), this dialect models what LLVM-compiled code does on real
// hardware:
//
//   - signed/unsigned division or remainder by zero traps (SIGFPE on
//     x86), as does INT_MIN / -1 (x86 idiv overflow);
//   - shifts past the bit width produce poison;
//   - arithmetic on poison propagates poison;
//   - printing poison prints *some* concrete garbage (deterministic
//     here, so differential runs are reproducible).
//
// This asymmetry is what makes miscompilations observable: a buggy
// lowering that introduces one of these conditions changes the printed
// output (or crashes), while the reference interpreter — running the
// original, UB-free program — prints the intended result.
package llvm

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// Ops lists the llvm-dialect operations.
var Ops = []string{
	"llvm.func", "llvm.return", "llvm.call",
	"llvm.mlir.constant",
	"llvm.add", "llvm.sub", "llvm.mul",
	"llvm.sdiv", "llvm.udiv", "llvm.srem", "llvm.urem",
	"llvm.and", "llvm.or", "llvm.xor",
	"llvm.shl", "llvm.lshr", "llvm.ashr",
	"llvm.icmp", "llvm.select",
	"llvm.trunc", "llvm.sext", "llvm.zext",
	"llvm.smulh", "llvm.umulh",
	"llvm.print",
}

// GarbageBits is the deterministic bit pattern "printed" for a poison
// value, simulating whatever the hardware register happened to hold.
const GarbageBits uint64 = 0xAAAAAAAAAAAAAAAA

// Garbage returns the deterministic stand-in value printed for poison
// of the given type.
func Garbage(t ir.Type) rtval.Int {
	// -0x5555555555555556 is the two's-complement reading of GarbageBits.
	const bits = -0x5555555555555556
	w, _ := ir.BitWidth(t)
	if _, isIdx := t.(ir.IndexType); isIdx {
		return rtval.NewIndex(bits)
	}
	return rtval.NewInt(w, bits)
}

// Semantics returns the executor kernels for the llvm target dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("llvm")

	d.Register("llvm.func", func(ctx *interp.Context, op *ir.Operation) error {
		return fmt.Errorf("nested functions are not supported")
	})

	d.Register("llvm.call", func(ctx *interp.Context, op *ir.Operation) error {
		callee, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr)
		if !ok {
			return fmt.Errorf("llvm.call requires a callee symbol attribute")
		}
		args := make([]rtval.Value, len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return err
			}
			args[i] = v
		}
		results, err := ctx.CallFunc(callee.Name, args)
		if err != nil {
			return err
		}
		for i, r := range op.Results {
			if err := ctx.Define(r, results[i]); err != nil {
				return err
			}
		}
		return nil
	})

	d.RegisterTerminator("llvm.return", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		vals := make([]rtval.Value, len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return interp.TermResult{}, err
			}
			vals[i] = v
		}
		return interp.TermResult{Exit: &interp.Exit{Kind: interp.ExitReturn, Values: vals}}, nil
	})

	d.Register("llvm.mlir.constant", func(ctx *interp.Context, op *ir.Operation) error {
		v, ok := op.Attrs.Get("value").(ir.IntegerAttr)
		if !ok {
			return fmt.Errorf("llvm.mlir.constant requires an integer value attribute")
		}
		switch t := op.Results[0].Type.(type) {
		case ir.IntegerType:
			return ctx.Define(op.Results[0], rtval.Box(rtval.NewInt(t.Width, v.Value)))
		case ir.IndexType:
			return ctx.Define(op.Results[0], rtval.Box(rtval.NewIndex(v.Value)))
		default:
			return fmt.Errorf("llvm.mlir.constant with unsupported type %s", t)
		}
	})
	d.RegisterFusable("llvm.mlir.constant", interp.FuseSpec{Kind: interp.FuseConst, Const: constValue})

	// Executor arithmetic fuses too: lowered modules are where the
	// campaign spends most of its execution budget. The fuse spec shares
	// the kernel's semantic closure, so poison and trap modelling is
	// identical either way.
	bin := func(name string, f func(a, b rtval.Int) (rtval.Int, error)) {
		d.Register(name, func(ctx *interp.Context, op *ir.Operation) error {
			a, err := ctx.GetInt(op.Operands[0])
			if err != nil {
				return err
			}
			b, err := ctx.GetInt(op.Operands[1])
			if err != nil {
				return err
			}
			r, err := f(a, b)
			if err != nil {
				return err
			}
			return ctx.Define(op.Results[0], rtval.Box(r))
		})
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseBinErr, Err: f})
	}

	bin("llvm.add", func(a, b rtval.Int) (rtval.Int, error) { return a.Add(b), nil })
	bin("llvm.sub", func(a, b rtval.Int) (rtval.Int, error) { return a.Sub(b), nil })
	bin("llvm.mul", func(a, b rtval.Int) (rtval.Int, error) { return a.Mul(b), nil })
	bin("llvm.and", func(a, b rtval.Int) (rtval.Int, error) { return a.And(b), nil })
	bin("llvm.or", func(a, b rtval.Int) (rtval.Int, error) { return a.Or(b), nil })
	bin("llvm.xor", func(a, b rtval.Int) (rtval.Int, error) { return a.Xor(b), nil })

	// Division family: hardware traps. Division by zero and signed
	// INT_MIN / -1 raise SIGFPE on x86; both are modelled as traps.
	bin("llvm.sdiv", func(a, b rtval.Int) (rtval.Int, error) {
		if b.IsZero() {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.sdiv", Reason: "integer division by zero (SIGFPE)"}
		}
		if a.Signed() == rtval.MinSigned(a.Width()) && b.Signed() == -1 {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.sdiv", Reason: "signed division overflow (SIGFPE)"}
		}
		if !a.Defined() || !b.Defined() {
			return poisonLike(a), nil
		}
		r, err := a.DivS(b)
		if err != nil {
			return rtval.Int{}, err
		}
		return r, nil
	})
	bin("llvm.udiv", func(a, b rtval.Int) (rtval.Int, error) {
		if b.IsZero() {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.udiv", Reason: "integer division by zero (SIGFPE)"}
		}
		if !a.Defined() || !b.Defined() {
			return poisonLike(a), nil
		}
		return a.DivU(b)
	})
	bin("llvm.srem", func(a, b rtval.Int) (rtval.Int, error) {
		if b.IsZero() {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.srem", Reason: "integer remainder by zero (SIGFPE)"}
		}
		if a.Signed() == rtval.MinSigned(a.Width()) && b.Signed() == -1 {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.srem", Reason: "signed remainder overflow (SIGFPE)"}
		}
		if !a.Defined() || !b.Defined() {
			return poisonLike(a), nil
		}
		return a.RemS(b)
	})
	bin("llvm.urem", func(a, b rtval.Int) (rtval.Int, error) {
		if b.IsZero() {
			return rtval.Int{}, &rtval.TrapError{Op: "llvm.urem", Reason: "integer remainder by zero (SIGFPE)"}
		}
		if !a.Defined() || !b.Defined() {
			return poisonLike(a), nil
		}
		return a.RemU(b)
	})

	// Shifts: past-width shifts produce poison (LLVM LangRef).
	shift := func(name string, f func(a, b rtval.Int) (rtval.Int, error)) {
		bin(name, func(a, b rtval.Int) (rtval.Int, error) {
			if b.Unsigned() >= uint64(a.Width()) {
				return poisonLike(a), nil
			}
			return f(a, b)
		})
	}
	shift("llvm.shl", rtval.Int.ShL)
	shift("llvm.lshr", rtval.Int.ShRU)
	shift("llvm.ashr", rtval.Int.ShRS)

	// High-half multiplies, standing in for the multi-word expansions
	// the production lowering uses for the extended-arithmetic ops.
	bin("llvm.smulh", func(a, b rtval.Int) (rtval.Int, error) {
		_, hi := a.MulSIExtended(b)
		return hi, nil
	})
	bin("llvm.umulh", func(a, b rtval.Int) (rtval.Int, error) {
		_, hi := a.MulUIExtended(b)
		return hi, nil
	})

	d.Register("llvm.icmp", func(ctx *interp.Context, op *ir.Operation) error {
		a, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		b, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		p, ok := op.Attrs.IntValueOf("predicate")
		if !ok {
			return fmt.Errorf("llvm.icmp requires a predicate attribute")
		}
		r, err := a.Cmp(rtval.CmpPredicate(p), b)
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], rtval.Box(r))
	})
	d.RegisterFusable("llvm.icmp", interp.FuseSpec{Kind: interp.FuseCmp, Cmp: bindIcmp})

	d.Register("llvm.select", func(ctx *interp.Context, op *ir.Operation) error {
		cond, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		t, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		f, err := ctx.GetInt(op.Operands[2])
		if err != nil {
			return err
		}
		if !cond.Defined() {
			return ctx.Define(op.Results[0], rtval.Box(poisonLike(t)))
		}
		return ctx.Define(op.Results[0], rtval.Box(cond.Select(t, f)))
	})
	d.RegisterFusable("llvm.select", interp.FuseSpec{Kind: interp.FuseSelect, Sel: fusedSelect})

	cast := func(name string, f func(a rtval.Int, to ir.Type) rtval.Int) {
		d.Register(name, func(ctx *interp.Context, op *ir.Operation) error {
			a, err := ctx.GetInt(op.Operands[0])
			if err != nil {
				return err
			}
			return ctx.Define(op.Results[0], rtval.Box(f(a, op.Results[0].Type)))
		})
		d.RegisterFusable(name, interp.FuseSpec{Kind: interp.FuseCast, Cast: f})
	}
	cast("llvm.trunc", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		return a.Trunc(w)
	})
	cast("llvm.sext", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		r := a.ExtS(w)
		if _, isIdx := to.(ir.IndexType); isIdx {
			r = r.IndexCast(ir.Index)
		}
		return r
	})
	cast("llvm.zext", func(a rtval.Int, to ir.Type) rtval.Int {
		w, _ := ir.BitWidth(to)
		r := a.ExtU(w)
		if _, isIdx := to.(ir.IndexType); isIdx {
			r = r.IndexCastU(ir.Index)
		}
		return r
	})

	d.Register("llvm.print", func(ctx *interp.Context, op *ir.Operation) error {
		v, err := ctx.Get(op.Operands[0])
		if err != nil {
			return err
		}
		if !v.Defined() {
			// Printing poison emits whatever bits the register held.
			ctx.PrintRaw(Garbage(op.Operands[0].Type).String())
			return nil
		}
		ctx.PrintRaw(v.String())
		return nil
	})

	return d
}

func poisonLike(a rtval.Int) rtval.Int {
	if a.IsIndex() {
		return rtval.UndefInt(ir.Index)
	}
	return rtval.UndefInt(ir.I(a.Width()))
}

// constValue extracts a scalar llvm.mlir.constant at compile time; a
// malformed constant declines so the kernel raises its exact error.
func constValue(op *ir.Operation) (rtval.Int, bool) {
	v, ok := op.Attrs.Get("value").(ir.IntegerAttr)
	if !ok {
		return rtval.Int{}, false
	}
	switch t := op.Results[0].Type.(type) {
	case ir.IntegerType:
		return rtval.NewInt(t.Width, v.Value), true
	case ir.IndexType:
		return rtval.NewIndex(v.Value), true
	}
	return rtval.Int{}, false
}

// bindIcmp binds llvm.icmp's predicate at compile time; missing
// predicates decline (the kernel reports the error).
func bindIcmp(op *ir.Operation) (func(a, b rtval.Int) (rtval.Int, error), bool) {
	p, ok := op.Attrs.IntValueOf("predicate")
	if !ok {
		return nil, false
	}
	pred := rtval.CmpPredicate(p)
	return func(a, b rtval.Int) (rtval.Int, error) { return a.Cmp(pred, b) }, true
}

// fusedSelect is llvm.select over already-read operands: an undefined
// condition yields poison of the true branch's shape (hardware select
// semantics), never an error.
func fusedSelect(cond, t, f rtval.Int) (rtval.Int, error) {
	if !cond.Defined() {
		return poisonLike(t), nil
	}
	return cond.Select(t, f), nil
}

// Specs returns the static rules for the llvm dialect. The target-level
// verifier is intentionally looser than the frontend one (the production
// llvm dialect accepts what earlier verification established), checking
// only structural arity.
func Specs() verify.Registry {
	reg := verify.Registry{}
	binary := verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		if err := verify.WantOperands(op, 2); err != nil {
			return err
		}
		return verify.WantResults(op, 1)
	}}
	for _, name := range []string{
		"llvm.add", "llvm.sub", "llvm.mul",
		"llvm.sdiv", "llvm.udiv", "llvm.srem", "llvm.urem",
		"llvm.and", "llvm.or", "llvm.xor",
		"llvm.shl", "llvm.lshr", "llvm.ashr",
		"llvm.smulh", "llvm.umulh",
	} {
		reg[name] = binary
	}
	reg["llvm.icmp"] = binary
	reg["llvm.mlir.constant"] = verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		if err := verify.WantOperands(op, 0); err != nil {
			return err
		}
		return verify.WantResults(op, 1)
	}}
	reg["llvm.select"] = verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		return verify.WantOperands(op, 3)
	}}
	unary := verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		if err := verify.WantOperands(op, 1); err != nil {
			return err
		}
		return verify.WantResults(op, 1)
	}}
	reg["llvm.trunc"] = unary
	reg["llvm.sext"] = unary
	reg["llvm.zext"] = unary
	reg["llvm.print"] = verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		return verify.WantOperands(op, 1)
	}}
	reg["llvm.func"] = verify.OpSpec{NumRegions: 1, IsolatedRegions: true}
	reg["llvm.return"] = verify.OpSpec{Terminator: true}
	reg["llvm.call"] = verify.OpSpec{Check: func(c *verify.Checker, op *ir.Operation) error {
		if _, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr); !ok {
			return verify.Errf(op, "llvm.call requires a callee symbol")
		}
		return nil
	}}
	return reg
}
