package llvm_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewExecutor().Run(m, "main")
}

func wrapLLVM(body string) string {
	return `"builtin.module"() ({
  "llvm.func"() ({` + body + `
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestSDivTrapsLikeHardware(t *testing.T) {
	// Division by zero traps (SIGFPE on x86).
	_, err := run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    %z = "llvm.mlir.constant"() {value = 0 : i64} : () -> (i64)
    %q = "llvm.sdiv"(%a, %z) : (i64, i64) -> (i64)`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("sdiv by zero should trap, got %v", err)
	}

	// INT_MIN / -1 also traps (x86 idiv overflow) — the mechanism
	// behind the paper's Figure 12 symptom.
	_, err = run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = -9223372036854775808 : i64} : () -> (i64)
    %m = "llvm.mlir.constant"() {value = -1 : i64} : () -> (i64)
    %q = "llvm.sdiv"(%a, %m) : (i64, i64) -> (i64)`))
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("sdiv overflow should trap, got %v", err)
	}

	for _, op := range []string{"llvm.udiv", "llvm.srem", "llvm.urem"} {
		_, err = run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    %z = "llvm.mlir.constant"() {value = 0 : i64} : () -> (i64)
    %q = "`+op+`"(%a, %z) : (i64, i64) -> (i64)`))
		if err == nil || !interp.IsTrap(err) {
			t.Errorf("%s by zero should trap, got %v", op, err)
		}
	}
}

func TestShiftPastWidthIsPoisonNotTrap(t *testing.T) {
	// A shift past the width produces poison; printing poison emits the
	// deterministic garbage stand-in rather than crashing.
	res, err := run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = 1 : i8} : () -> (i8)
    %s = "llvm.mlir.constant"() {value = 9 : i8} : () -> (i8)
    %q = "llvm.shl"(%a, %s) : (i8, i8) -> (i8)
    "llvm.print"(%q) : (i8) -> ()`))
	if err != nil {
		t.Fatalf("poison must not crash: %v", err)
	}
	if res.Output == "1\n" || res.Output == "" {
		t.Errorf("printing poison should print garbage, got %q", res.Output)
	}
}

func TestPoisonPropagatesThroughArithmetic(t *testing.T) {
	res, err := run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = 1 : i8} : () -> (i8)
    %s = "llvm.mlir.constant"() {value = 9 : i8} : () -> (i8)
    %p = "llvm.lshr"(%a, %s) : (i8, i8) -> (i8)
    %q = "llvm.add"(%p, %a) : (i8, i8) -> (i8)
    "llvm.print"(%q) : (i8) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	want := "-86\n" // the garbage pattern 0xAA as signed i8
	if res.Output != want {
		t.Errorf("poison print = %q, want %q", res.Output, want)
	}
}

func TestBranchOnPoisonTraps(t *testing.T) {
	src := `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    %a = "llvm.mlir.constant"() {value = 1 : i1} : () -> (i1)
    %s = "llvm.mlir.constant"() {value = 1 : i1} : () -> (i1)
    %p = "llvm.shl"(%a, %s) : (i1, i1) -> (i1)
    "cf.cond_br"(%p)[^bb1, ^bb2] : (i1) -> ()
  ^bb1:
    "llvm.return"() : () -> ()
  ^bb2:
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	_, err := run(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("branch on poison should trap, got %v", err)
	}
}

func TestHighMultiplyKernels(t *testing.T) {
	res, err := run(t, wrapLLVM(`
    %a = "llvm.mlir.constant"() {value = 200 : i8} : () -> (i8)
    %b = "llvm.mlir.constant"() {value = 100 : i8} : () -> (i8)
    %hu = "llvm.umulh"(%a, %b) : (i8, i8) -> (i8)
    %hs = "llvm.smulh"(%a, %b) : (i8, i8) -> (i8)
    "llvm.print"(%hu) : (i8) -> ()
    "llvm.print"(%hs) : (i8) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	// 200*100 = 20000 = 0x4E20: unsigned high = 0x4E = 78.
	// signed: (-56)*100 = -5600 = 0xEA20 two's complement: high = 0xEA = -22.
	if res.Output != "78\n-22\n" {
		t.Errorf("high multiplies = %q", res.Output)
	}
}

func TestControlFlowLoop(t *testing.T) {
	// A hand-lowered counting loop: sums 0..4 via cf blocks.
	src := `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    %zero = "llvm.mlir.constant"() {value = 0 : i64} : () -> (i64)
    %five = "llvm.mlir.constant"() {value = 5 : i64} : () -> (i64)
    %one = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    "cf.br"()[^head(%zero : i64, %zero : i64)] : () -> ()
  ^head(%i: i64, %acc: i64):
    %c = "llvm.icmp"(%i, %five) {predicate = 2 : i64} : (i64, i64) -> (i1)
    "cf.cond_br"(%c)[^body(%i : i64, %acc : i64), ^exit(%acc : i64)] : (i1) -> ()
  ^body(%i2: i64, %acc2: i64):
    %nacc = "llvm.add"(%acc2, %i2) : (i64, i64) -> (i64)
    %ni = "llvm.add"(%i2, %one) : (i64, i64) -> (i64)
    "cf.br"()[^head(%ni : i64, %nacc : i64)] : () -> ()
  ^exit(%res: i64):
    "llvm.print"(%res) : (i64) -> ()
    "llvm.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "10\n" {
		t.Errorf("loop sum = %q", res.Output)
	}
}

func TestMemrefRoundTrip(t *testing.T) {
	src := wrapLLVM(`
    %buf = "memref.alloc"() : () -> (memref<2x2xi64>)
    %v = "llvm.mlir.constant"() {value = 7 : i64} : () -> (i64)
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %i1 = "llvm.mlir.constant"() {value = 1 : index} : () -> (index)
    "memref.store"(%v, %buf, %i1, %i0) : (i64, memref<2x2xi64>, index, index) -> ()
    %r = "memref.load"(%buf, %i1, %i0) : (memref<2x2xi64>, index, index) -> (i64)
    "llvm.print"(%r) : (i64) -> ()
    "memref.dealloc"(%buf) : (memref<2x2xi64>) -> ()`)
	res, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "7\n" {
		t.Errorf("load = %q", res.Output)
	}
}

func TestMemrefOOBTraps(t *testing.T) {
	src := wrapLLVM(`
    %buf = "memref.alloc"() : () -> (memref<2xi64>)
    %i9 = "llvm.mlir.constant"() {value = 9 : index} : () -> (index)
    %r = "memref.load"(%buf, %i9) : (memref<2xi64>, index) -> (i64)`)
	_, err := run(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("OOB load should trap, got %v", err)
	}
}

func TestUseAfterFreeTraps(t *testing.T) {
	src := wrapLLVM(`
    %buf = "memref.alloc"() : () -> (memref<2xi64>)
    "memref.dealloc"(%buf) : (memref<2xi64>) -> ()
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %r = "memref.load"(%buf, %i0) : (memref<2xi64>, index) -> (i64)`)
	_, err := run(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("use after free should trap, got %v", err)
	}
}

func TestUninitialisedLoadPrintsGarbage(t *testing.T) {
	src := wrapLLVM(`
    %buf = "memref.alloc"() : () -> (memref<2xi64>)
    %i0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %r = "memref.load"(%buf, %i0) : (memref<2xi64>, index) -> (i64)
    "llvm.print"(%r) : (i64) -> ()`)
	res, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Output, "\n") || res.Output == "0\n" {
		t.Errorf("uninitialised load printed %q, want garbage", res.Output)
	}
}

func TestGarbageIsDeterministic(t *testing.T) {
	g1 := rtvalGarbage(ir.I64)
	g2 := rtvalGarbage(ir.I64)
	if !g1.Equal(g2) {
		t.Error("garbage must be deterministic for reproducible campaigns")
	}
}

func rtvalGarbage(t ir.Type) rtval.Int {
	m, err := ir.Parse(`"builtin.module"() ({
  "llvm.func"() ({
    %a = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    %s = "llvm.mlir.constant"() {value = 64 : i64} : () -> (i64)
    %p = "llvm.shl"(%a, %s) : (i64, i64) -> (i64)
    "llvm.return"(%p) : (i64) -> ()
  }) {sym_name = "main", function_type = () -> (i64)} : () -> ()
}) : () -> ()`)
	if err != nil {
		panic(err)
	}
	res, err := dialects.NewExecutor().Run(m, "main")
	if err != nil {
		panic(err)
	}
	// Returned poison keeps its undef flag; the *print* is what maps it
	// to garbage. For determinism we compare the undef values.
	return res.Returned[0].(rtval.Int)
}
