package dialects_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
)

// TestNoOverlapBetweenDialects: composing the full dialect set must not
// panic (no two dialects claim the same op) — exercised by building the
// interpreters and the merged spec registry.
func TestNoOverlapBetweenDialects(t *testing.T) {
	_ = dialects.NewReferenceInterpreter()
	_ = dialects.NewExecutor()
	_ = dialects.SourceSpecs()
	_ = dialects.AllSpecs()
}

// TestEveryOpHasSemanticsAndSpec: the inventory, the kernels and the
// static rules must agree op for op.
func TestEveryOpHasSemanticsAndSpec(t *testing.T) {
	specs := dialects.SourceSpecs()
	ref := dialects.NewReferenceInterpreter()
	for _, op := range dialects.SupportedSourceOps() {
		if _, ok := specs[op]; !ok {
			t.Errorf("no static rule for %s", op)
		}
		if op == "func.func" {
			continue // handled structurally by Run
		}
		if !ref.Supports(op) {
			t.Errorf("no kernel for %s", op)
		}
	}
}

// TestPaperInventoryCovered: every operation the paper's Appendix A.6
// lists as supported by the reference interpreter is present (modulo
// renames documented in DESIGN.md: tensor.constant is arith.constant
// with a dense payload; the fill op is linalg.fill; min/max are the
// current upstream spellings of the older maxsi/… family).
func TestPaperInventoryCovered(t *testing.T) {
	paper := []string{
		"arith.constant", "arith.ceildivui", "arith.ceildivsi", "arith.floordivsi",
		"arith.divui", "arith.divsi", "arith.remui", "arith.remsi",
		"arith.shli", "arith.shrsi", "arith.shrui", "arith.cmpi",
		"arith.addi", "arith.andi", "arith.maxsi", "arith.maxui",
		"arith.minsi", "arith.minui", "arith.muli", "arith.ori",
		"arith.subi", "arith.xori", "arith.addui_extended",
		"arith.mulsi_extended", "arith.mului_extended",
		"arith.extsi", "arith.extui", "arith.trunci",
		"arith.select", "arith.index_cast", "arith.index_castui",
		"func.func", "func.return", "func.call",
		"linalg.generic", "linalg.yield",
		"scf.yield", "scf.if",
		"tensor.cast", "tensor.extract", "tensor.insert",
		"tensor.dim", "tensor.empty", "tensor.yield",
		"vector.print",
	}
	have := map[string]bool{}
	for _, op := range dialects.SupportedSourceOps() {
		have[op] = true
	}
	for _, op := range paper {
		if !have[op] {
			t.Errorf("paper-listed op %s missing from the inventory", op)
		}
	}
	if len(paper) < 43 {
		t.Fatalf("test list shrank to %d", len(paper))
	}
}

// TestDialectPrefixesConsistent: each op lives in the dialect its name
// claims.
func TestDialectPrefixesConsistent(t *testing.T) {
	for _, op := range dialects.SupportedSourceOps() {
		dot := strings.IndexByte(op, '.')
		if dot <= 0 {
			t.Errorf("op %q has no dialect prefix", op)
		}
	}
}
