// Package dialects assembles the per-dialect semantics and static rules
// into the combinations Ratte uses: the source-level reference
// interpreter, the target-level executor, and the union of everything
// for mid-pipeline verification.
//
// This package is the composition point the paper's modularity story
// culminates in: adding a dialect means writing one new package with a
// Semantics() and a Specs() function and listing it here — no existing
// dialect changes.
package dialects

import (
	"sync"

	"ratte/internal/dialects/arith"
	"ratte/internal/dialects/cf"
	"ratte/internal/dialects/funcd"
	"ratte/internal/dialects/linalg"
	"ratte/internal/dialects/llvm"
	"ratte/internal/dialects/memref"
	"ratte/internal/dialects/scf"
	"ratte/internal/dialects/tensor"
	"ratte/internal/dialects/vector"
	"ratte/internal/interp"
	"ratte/internal/verify"
)

// Every composition below is immutable once built — dialect kernel
// bundles, composed interpreter registries and verifier spec registries
// are constructed exactly once (sync.OnceValue) and shared by all
// callers from then on. This is what makes interpreters and verifier
// runs cheap enough for the campaign hot loop: TestModule instantiates
// interpreters per configuration and the generator one per program, and
// none of those instantiations rebuilds a kernel or spec table.

var (
	sourceDialects = sync.OnceValue(func() []*interp.Dialect {
		return []*interp.Dialect{
			arith.Semantics(),
			funcd.Semantics(),
			scf.Semantics(),
			vector.Semantics(),
			tensor.Semantics(),
			linalg.Semantics(),
		}
	})
	targetDialects = sync.OnceValue(func() []*interp.Dialect {
		return []*interp.Dialect{
			llvm.Semantics(),
			cf.Semantics(),
			memref.Semantics(),
		}
	})
	sourceRegistry = sync.OnceValue(func() *interp.Registry {
		return interp.NewRegistry(sourceDialects()...)
	})
	executorRegistry = sync.OnceValue(func() *interp.Registry {
		all := append(append([]*interp.Dialect{}, sourceDialects()...), targetDialects()...)
		return interp.NewRegistry(all...)
	})
	sourceSpecs = sync.OnceValue(func() verify.Registry {
		return verify.Merge(
			arith.Specs(),
			funcd.Specs(),
			scf.Specs(),
			vector.Specs(),
			tensor.Specs(),
			linalg.Specs(),
		)
	})
	// Shared program caches for the compiled execution engine, one per
	// registry: difftest runs every generated module once per build
	// configuration plus the reference run, and each of those reuses
	// the compiled artifact instead of re-walking the module.
	sourceProgramCache = sync.OnceValue(func() *interp.ProgramCache {
		return interp.NewProgramCache(0)
	})
	executorProgramCache = sync.OnceValue(func() *interp.ProgramCache {
		return interp.NewProgramCache(0)
	})
	allSpecs = sync.OnceValue(func() verify.Registry {
		internal := verify.Registry{
			"ratte.generate_into": {NumRegions: 1},
		}
		return verify.Merge(
			sourceSpecs(),
			cf.Specs(),
			memref.Specs(),
			llvm.Specs(),
			internal,
		)
	})
)

// Source returns the dialect semantics of the source-level dialects
// (the ones Ratte's generators emit): arith, func, scf, vector, tensor,
// linalg. The slice is the caller's to extend (customdialect-style
// compositions append to it); the *interp.Dialect bundles themselves
// are shared and must not be mutated.
func Source() []*interp.Dialect {
	cached := sourceDialects()
	return append(make([]*interp.Dialect, 0, len(cached)), cached...)
}

// Target returns the dialect semantics of the lowered target level:
// llvm, cf and memref (plus func/vector for partially-lowered
// pipelines). The slice is a copy; the bundles are shared and must not
// be mutated.
func Target() []*interp.Dialect {
	cached := targetDialects()
	return append(make([]*interp.Dialect, 0, len(cached)), cached...)
}

// SourceRegistry returns the composed, shared kernel registry of the
// source dialects. Interpreters over it are cheap to instantiate and
// safe to use from concurrent workers (one interpreter per worker).
func SourceRegistry() *interp.Registry { return sourceRegistry() }

// ExecutorRegistry returns the composed, shared kernel registry of
// every dialect (source + target levels).
func ExecutorRegistry() *interp.Registry { return executorRegistry() }

// NewReferenceInterpreter builds the reference interpreter over the
// source dialects — the validated semantics the paper ships as an
// independent artifact. The underlying kernel registry is memoized, so
// this is cheap to call per program or per worker. It tree-walks: this
// is the interpreter whose Context also serves as the generator's
// incremental-semantics engine, where modules are evaluated exactly
// once and compilation would be wasted work.
func NewReferenceInterpreter() *interp.Interpreter {
	return sourceRegistry().NewInterpreter()
}

// NewCompiledReferenceInterpreter builds the reference interpreter with
// the compiled execution engine and the shared source-level program
// cache — for callers that run whole modules repeatedly (UB-free
// classification, corpus replay) rather than evaluating incrementally.
func NewCompiledReferenceInterpreter() *interp.Interpreter {
	in := sourceRegistry().NewInterpreter()
	in.Compiled = true
	in.Cache = sourceProgramCache()
	return in
}

// NewExecutor builds the executor for fully- or partially-lowered
// modules: every dialect is available, so pipelines may stop at any
// level (this mirrors mlir-cpu-runner accepting mixed modules as long
// as each op has a registered lowering or runtime implementation). The
// underlying kernel registry is memoized and the compiled execution
// engine is on by default, sharing one program cache across all
// executors — the difftest hot loop runs each lowered module through
// a compiled artifact instead of tree-walking it.
func NewExecutor() *interp.Interpreter {
	in := executorRegistry().NewInterpreter()
	in.Compiled = true
	in.Cache = executorProgramCache()
	return in
}

// SourceProgramCache returns the shared compiled-program cache of the
// source-level registry (the reference interpreter's). Exposed so
// telemetry can export its hit/miss/eviction counters and so the
// admission-policy tests can observe caching decisions.
func SourceProgramCache() *interp.ProgramCache { return sourceProgramCache() }

// ExecutorProgramCache returns the shared compiled-program cache of
// the full executor registry (the campaign hot loop's).
func ExecutorProgramCache() *interp.ProgramCache { return executorProgramCache() }

// NewTreeWalkingExecutor builds the executor without the compiled
// engine. The conformance harness uses it as the independent side of
// the interp-engine-agreement oracle; it is also the escape hatch if a
// compiled-engine defect ever needs to be ruled out in the field.
func NewTreeWalkingExecutor() *interp.Interpreter {
	return executorRegistry().NewInterpreter()
}

// SourceSpecs returns the static verification rules of the source
// dialects — the frontend verifier. The registry is memoized and
// shared: callers must treat it as read-only (verify.Merge copies, so
// composing over it is fine).
func SourceSpecs() verify.Registry {
	return sourceSpecs()
}

// AllSpecs returns the union of every dialect's rules — the verifier
// used between passes, where lowered and source ops coexist. It also
// registers the compiler-internal ratte.generate_into marker (the
// buffer form of tensor.generate between one-shot-bufferize and
// convert-linalg-to-loops). The registry is memoized and shared:
// callers must treat it as read-only.
func AllSpecs() verify.Registry {
	return allSpecs()
}

// SupportedSourceOps returns the names of every source-dialect op with
// both semantics and static rules — the paper's "43 operations across
// core dialects" inventory.
func SupportedSourceOps() []string {
	var ops []string
	ops = append(ops, arith.Ops...)
	ops = append(ops, funcd.Ops...)
	ops = append(ops, scf.Ops...)
	ops = append(ops, vector.Ops...)
	ops = append(ops, tensor.Ops...)
	ops = append(ops, linalg.Ops...)
	return ops
}
