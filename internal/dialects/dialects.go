// Package dialects assembles the per-dialect semantics and static rules
// into the combinations Ratte uses: the source-level reference
// interpreter, the target-level executor, and the union of everything
// for mid-pipeline verification.
//
// This package is the composition point the paper's modularity story
// culminates in: adding a dialect means writing one new package with a
// Semantics() and a Specs() function and listing it here — no existing
// dialect changes.
package dialects

import (
	"sync"

	"ratte/internal/dialects/arith"
	"ratte/internal/dialects/cf"
	"ratte/internal/dialects/funcd"
	"ratte/internal/dialects/linalg"
	"ratte/internal/dialects/llvm"
	"ratte/internal/dialects/memref"
	"ratte/internal/dialects/scf"
	"ratte/internal/dialects/tensor"
	"ratte/internal/dialects/vector"
	"ratte/internal/interp"
	"ratte/internal/verify"
)

// Every composition below is immutable once built — dialect kernel
// bundles, composed interpreter registries and verifier spec registries
// are constructed exactly once (sync.OnceValue) and shared by all
// callers from then on. This is what makes interpreters and verifier
// runs cheap enough for the campaign hot loop: TestModule instantiates
// interpreters per configuration and the generator one per program, and
// none of those instantiations rebuilds a kernel or spec table.

var (
	sourceDialects = sync.OnceValue(func() []*interp.Dialect {
		return []*interp.Dialect{
			arith.Semantics(),
			funcd.Semantics(),
			scf.Semantics(),
			vector.Semantics(),
			tensor.Semantics(),
			linalg.Semantics(),
		}
	})
	targetDialects = sync.OnceValue(func() []*interp.Dialect {
		return []*interp.Dialect{
			llvm.Semantics(),
			cf.Semantics(),
			memref.Semantics(),
		}
	})
	sourceRegistry = sync.OnceValue(func() *interp.Registry {
		return interp.NewRegistry(sourceDialects()...)
	})
	executorRegistry = sync.OnceValue(func() *interp.Registry {
		all := append(append([]*interp.Dialect{}, sourceDialects()...), targetDialects()...)
		return interp.NewRegistry(all...)
	})
	sourceSpecs = sync.OnceValue(func() verify.Registry {
		return verify.Merge(
			arith.Specs(),
			funcd.Specs(),
			scf.Specs(),
			vector.Specs(),
			tensor.Specs(),
			linalg.Specs(),
		)
	})
	allSpecs = sync.OnceValue(func() verify.Registry {
		internal := verify.Registry{
			"ratte.generate_into": {NumRegions: 1},
		}
		return verify.Merge(
			sourceSpecs(),
			cf.Specs(),
			memref.Specs(),
			llvm.Specs(),
			internal,
		)
	})
)

// Source returns the dialect semantics of the source-level dialects
// (the ones Ratte's generators emit): arith, func, scf, vector, tensor,
// linalg. The slice is the caller's to extend (customdialect-style
// compositions append to it); the *interp.Dialect bundles themselves
// are shared and must not be mutated.
func Source() []*interp.Dialect {
	cached := sourceDialects()
	return append(make([]*interp.Dialect, 0, len(cached)), cached...)
}

// Target returns the dialect semantics of the lowered target level:
// llvm, cf and memref (plus func/vector for partially-lowered
// pipelines). The slice is a copy; the bundles are shared and must not
// be mutated.
func Target() []*interp.Dialect {
	cached := targetDialects()
	return append(make([]*interp.Dialect, 0, len(cached)), cached...)
}

// SourceRegistry returns the composed, shared kernel registry of the
// source dialects. Interpreters over it are cheap to instantiate and
// safe to use from concurrent workers (one interpreter per worker).
func SourceRegistry() *interp.Registry { return sourceRegistry() }

// ExecutorRegistry returns the composed, shared kernel registry of
// every dialect (source + target levels).
func ExecutorRegistry() *interp.Registry { return executorRegistry() }

// NewReferenceInterpreter builds the reference interpreter over the
// source dialects — the validated semantics the paper ships as an
// independent artifact. The underlying kernel registry is memoized, so
// this is cheap to call per program or per worker.
func NewReferenceInterpreter() *interp.Interpreter {
	return sourceRegistry().NewInterpreter()
}

// NewExecutor builds the executor for fully- or partially-lowered
// modules: every dialect is available, so pipelines may stop at any
// level (this mirrors mlir-cpu-runner accepting mixed modules as long
// as each op has a registered lowering or runtime implementation). The
// underlying kernel registry is memoized, so this is cheap to call per
// run.
func NewExecutor() *interp.Interpreter {
	return executorRegistry().NewInterpreter()
}

// SourceSpecs returns the static verification rules of the source
// dialects — the frontend verifier. The registry is memoized and
// shared: callers must treat it as read-only (verify.Merge copies, so
// composing over it is fine).
func SourceSpecs() verify.Registry {
	return sourceSpecs()
}

// AllSpecs returns the union of every dialect's rules — the verifier
// used between passes, where lowered and source ops coexist. It also
// registers the compiler-internal ratte.generate_into marker (the
// buffer form of tensor.generate between one-shot-bufferize and
// convert-linalg-to-loops). The registry is memoized and shared:
// callers must treat it as read-only.
func AllSpecs() verify.Registry {
	return allSpecs()
}

// SupportedSourceOps returns the names of every source-dialect op with
// both semantics and static rules — the paper's "43 operations across
// core dialects" inventory.
func SupportedSourceOps() []string {
	var ops []string
	ops = append(ops, arith.Ops...)
	ops = append(ops, funcd.Ops...)
	ops = append(ops, scf.Ops...)
	ops = append(ops, vector.Ops...)
	ops = append(ops, tensor.Ops...)
	ops = append(ops, linalg.Ops...)
	return ops
}
