// Package dialects assembles the per-dialect semantics and static rules
// into the combinations Ratte uses: the source-level reference
// interpreter, the target-level executor, and the union of everything
// for mid-pipeline verification.
//
// This package is the composition point the paper's modularity story
// culminates in: adding a dialect means writing one new package with a
// Semantics() and a Specs() function and listing it here — no existing
// dialect changes.
package dialects

import (
	"ratte/internal/dialects/arith"
	"ratte/internal/dialects/cf"
	"ratte/internal/dialects/funcd"
	"ratte/internal/dialects/linalg"
	"ratte/internal/dialects/llvm"
	"ratte/internal/dialects/memref"
	"ratte/internal/dialects/scf"
	"ratte/internal/dialects/tensor"
	"ratte/internal/dialects/vector"
	"ratte/internal/interp"
	"ratte/internal/verify"
)

// Source returns the dialect semantics of the source-level dialects
// (the ones Ratte's generators emit): arith, func, scf, vector, tensor,
// linalg.
func Source() []*interp.Dialect {
	return []*interp.Dialect{
		arith.Semantics(),
		funcd.Semantics(),
		scf.Semantics(),
		vector.Semantics(),
		tensor.Semantics(),
		linalg.Semantics(),
	}
}

// Target returns the dialect semantics of the lowered target level:
// llvm, cf and memref (plus func/vector for partially-lowered
// pipelines).
func Target() []*interp.Dialect {
	return []*interp.Dialect{
		llvm.Semantics(),
		cf.Semantics(),
		memref.Semantics(),
	}
}

// NewReferenceInterpreter builds the reference interpreter over the
// source dialects — the validated semantics the paper ships as an
// independent artifact.
func NewReferenceInterpreter() *interp.Interpreter {
	return interp.New(Source()...)
}

// NewExecutor builds the executor for fully- or partially-lowered
// modules: every dialect is available, so pipelines may stop at any
// level (this mirrors mlir-cpu-runner accepting mixed modules as long
// as each op has a registered lowering or runtime implementation).
func NewExecutor() *interp.Interpreter {
	all := append(Source(), Target()...)
	return interp.New(all...)
}

// SourceSpecs returns the static verification rules of the source
// dialects — the frontend verifier.
func SourceSpecs() verify.Registry {
	return verify.Merge(
		arith.Specs(),
		funcd.Specs(),
		scf.Specs(),
		vector.Specs(),
		tensor.Specs(),
		linalg.Specs(),
	)
}

// AllSpecs returns the union of every dialect's rules — the verifier
// used between passes, where lowered and source ops coexist. It also
// registers the compiler-internal ratte.generate_into marker (the
// buffer form of tensor.generate between one-shot-bufferize and
// convert-linalg-to-loops).
func AllSpecs() verify.Registry {
	internal := verify.Registry{
		"ratte.generate_into": {NumRegions: 1},
	}
	return verify.Merge(
		SourceSpecs(),
		cf.Specs(),
		memref.Specs(),
		llvm.Specs(),
		internal,
	)
}

// SupportedSourceOps returns the names of every source-dialect op with
// both semantics and static rules — the paper's "43 operations across
// core dialects" inventory.
func SupportedSourceOps() []string {
	var ops []string
	ops = append(ops, arith.Ops...)
	ops = append(ops, funcd.Ops...)
	ops = append(ops, scf.Ops...)
	ops = append(ops, vector.Ops...)
	ops = append(ops, tensor.Ops...)
	ops = append(ops, linalg.Ops...)
	return ops
}
