package scf_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewReferenceInterpreter().Run(m, "main")
}

func wrapMain(body string) string {
	return `"builtin.module"() ({
  "func.func"() ({` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestIfTakesElseBranch(t *testing.T) {
	res, err := run(t, wrapMain(`
    %f = "arith.constant"() {value = 0 : i1} : () -> (i1)
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %r = "scf.if"(%f) ({
      "scf.yield"(%a) : (i64) -> ()
    }, {
      "scf.yield"(%b) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%r) : (i64) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "2\n" {
		t.Errorf("else branch = %q", res.Output)
	}
}

func TestUntakenBranchDoesNotExecute(t *testing.T) {
	// A division by zero in the non-taken region must not trigger.
	res, err := run(t, wrapMain(`
    %tr = "arith.constant"() {value = 1 : i1} : () -> (i1)
    %a = "arith.constant"() {value = 6 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %r = "scf.if"(%tr) ({
      "scf.yield"(%a) : (i64) -> ()
    }, {
      %q = "arith.divsi"(%a, %z) : (i64, i64) -> (i64)
      "scf.yield"(%q) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%r) : (i64) -> ()`))
	if err != nil {
		t.Fatalf("non-taken UB leaked: %v", err)
	}
	if res.Output != "6\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestIfOnUndefCondIsUB(t *testing.T) {
	_, err := run(t, wrapMain(`
    %e = "tensor.empty"() : () -> (tensor<1xi1>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %u = "tensor.extract"(%e, %i0) : (tensor<1xi1>, index) -> (i1)
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %r = "scf.if"(%u) ({
      "scf.yield"(%a) : (i64) -> ()
    }, {
      "scf.yield"(%a) : (i64) -> ()
    }) : (i1) -> (i64)`))
	if err == nil || !interp.IsUB(err) {
		t.Errorf("branch on undef must be UB, got %v", err)
	}
}

func TestForZeroTrips(t *testing.T) {
	res, err := run(t, wrapMain(`
    %lb = "arith.constant"() {value = 5 : index} : () -> (index)
    %ub = "arith.constant"() {value = 5 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %init = "arith.constant"() {value = 42 : i64} : () -> (i64)
    %r = "scf.for"(%lb, %ub, %st, %init) ({
    ^bb0(%iv: index, %acc: i64):
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      "scf.yield"(%z) : (i64) -> ()
    }) : (index, index, index, i64) -> (i64)
    "vector.print"(%r) : (i64) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42\n" {
		t.Errorf("zero-trip loop should pass through init, got %q", res.Output)
	}
}

func TestForNonPositiveStepIsUB(t *testing.T) {
	_, err := run(t, wrapMain(`
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 5 : index} : () -> (index)
    %st = "arith.constant"() {value = 0 : index} : () -> (index)
    "scf.for"(%lb, %ub, %st) ({
    ^bb0(%iv: index):
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()`))
	if err == nil || !interp.IsUB(err) {
		t.Errorf("zero step must be UB, got %v", err)
	}
}

func TestForSpecChecks(t *testing.T) {
	// Carried-value type mismatch between init and body arg.
	src := wrapMain(`
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 5 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %init = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %r = "scf.for"(%lb, %ub, %st, %init) ({
    ^bb0(%iv: index, %acc: i32):
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      "scf.yield"(%z) : (i64) -> ()
    }) : (index, index, index, i64) -> (i64)`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
		t.Error("carried-type mismatch must be rejected")
	}
}

func TestYieldOutsideScfRejected(t *testing.T) {
	src := wrapMain(`
    %a = "arith.constant"() {value = 0 : i64} : () -> (i64)
    "scf.yield"(%a) : (i64) -> ()`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
		t.Error("scf.yield at function level must be rejected")
	}
}
