// Package scf provides the semantics and static rules of the scf
// (structured control flow) dialect: scf.if, scf.for and scf.yield.
//
// scf.if demonstrates the paper's "Regions" interaction pattern: the
// parent operation treats its regions as black boxes, interacting with
// whatever dialects appear inside them only through execution and the
// yielded results.
package scf

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
	"ratte/internal/verify"
)

// Ops lists the scf-dialect operations.
var Ops = []string{"scf.if", "scf.for", "scf.yield"}

// Semantics returns the interpreter kernels for the scf dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("scf")

	d.Register("scf.if", func(ctx *interp.Context, op *ir.Operation) error {
		cond, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		if !cond.Defined() {
			return &rtval.UBError{Op: "scf.if", Reason: "branching on a value that is not well-defined"}
		}
		region := op.Regions[0]
		if !cond.IsTrue() {
			region = op.Regions[1]
		}
		exit, err := ctx.RunRegion(region, nil, scoped.Standard)
		if err != nil {
			return err
		}
		if exit.Kind != interp.ExitYield {
			return fmt.Errorf("scf.if region must end in scf.yield")
		}
		if len(exit.Values) != len(op.Results) {
			return fmt.Errorf("scf.if region yielded %d values, op declares %d", len(exit.Values), len(op.Results))
		}
		for i, r := range op.Results {
			if err := ctx.Define(r, exit.Values[i]); err != nil {
				return err
			}
		}
		return nil
	})

	d.Register("scf.for", func(ctx *interp.Context, op *ir.Operation) error {
		// Operands: lb, ub, step, init... (loop-carried values).
		lb, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		ub, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		step, err := ctx.GetInt(op.Operands[2])
		if err != nil {
			return err
		}
		if step.Signed() <= 0 {
			return &rtval.UBError{Op: "scf.for", Reason: "loop step must be positive"}
		}
		carried := make([]rtval.Value, len(op.Operands)-3)
		for i, operand := range op.Operands[3:] {
			v, err := ctx.Get(operand)
			if err != nil {
				return err
			}
			carried[i] = v
		}
		// One args buffer for the whole loop: RunRegion copies the
		// values into the body's bindings, so refilling it per
		// iteration is safe and keeps the hot loop allocation-free.
		args := make([]rtval.Value, 1+len(carried))
		for iv := lb.Signed(); iv < ub.Signed(); iv += step.Signed() {
			args[0] = rtval.Box(rtval.NewIndex(iv))
			copy(args[1:], carried)
			exit, err := ctx.RunRegion(op.Regions[0], args, scoped.Standard)
			if err != nil {
				return err
			}
			if exit.Kind != interp.ExitYield {
				return fmt.Errorf("scf.for body must end in scf.yield")
			}
			if len(exit.Values) != len(carried) {
				return fmt.Errorf("scf.for body yielded %d values, loop carries %d", len(exit.Values), len(carried))
			}
			carried = exit.Values
		}
		for i, r := range op.Results {
			if err := ctx.Define(r, carried[i]); err != nil {
				return err
			}
		}
		return nil
	})

	d.RegisterTerminator("scf.yield", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		// The per-depth reusable Exit keeps structured loops
		// allocation-free: scf.if and scf.for both consume the yielded
		// values before re-running any region at this depth.
		ex := ctx.YieldExit(len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return interp.TermResult{}, err
			}
			ex.Values[i] = v
		}
		return interp.TermResult{Exit: ex}, nil
	})
	d.RegisterFusable("scf.yield", interp.FuseSpec{Kind: interp.FuseYield})
	// scf.for follows the engine's counted-loop protocol; the closure
	// is the kernel's exact step validation.
	d.RegisterFusable("scf.for", interp.FuseSpec{Kind: interp.FuseFor, StepCheck: func(step rtval.Int) error {
		if step.Signed() <= 0 {
			return &rtval.UBError{Op: "scf.for", Reason: "loop step must be positive"}
		}
		return nil
	}})

	return d
}

// Specs returns the static rules for the scf dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"scf.if":    {NumRegions: 2, Check: checkIf},
		"scf.for":   {NumRegions: 1, Check: checkFor},
		"scf.yield": {Terminator: true, Check: checkYield},
	}
}

func checkIf(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 1); err != nil {
		return err
	}
	if err := verify.WantType(op, op.Operands[0], ir.I1); err != nil {
		return err
	}
	for i, r := range op.Regions {
		entry := r.Entry()
		if entry == nil {
			return verify.Errf(op, "scf.if region %d is empty", i)
		}
		if len(entry.Args) != 0 {
			return verify.Errf(op, "scf.if regions take no arguments")
		}
	}
	return nil
}

func checkFor(c *verify.Checker, op *ir.Operation) error {
	if len(op.Operands) < 3 {
		return verify.Errf(op, "scf.for requires lb, ub and step operands")
	}
	for i := 0; i < 3; i++ {
		if err := verify.WantType(op, op.Operands[i], ir.Index); err != nil {
			return err
		}
	}
	nCarried := len(op.Operands) - 3
	if len(op.Results) != nCarried {
		return verify.Errf(op, "scf.for carries %d values but declares %d results", nCarried, len(op.Results))
	}
	entry := op.Regions[0].Entry()
	if entry == nil {
		return verify.Errf(op, "scf.for body is empty")
	}
	if len(entry.Args) != 1+nCarried {
		return verify.Errf(op, "scf.for body must take the induction variable plus %d carried values", nCarried)
	}
	if err := verify.WantType(op, entry.Args[0], ir.Index); err != nil {
		return err
	}
	for i := 0; i < nCarried; i++ {
		if !ir.TypeEqual(entry.Args[1+i].Type, op.Operands[3+i].Type) {
			return verify.Errf(op, "carried value %d: body argument type %s does not match init type %s",
				i, entry.Args[1+i].Type, op.Operands[3+i].Type)
		}
		if !ir.TypeEqual(op.Results[i].Type, op.Operands[3+i].Type) {
			return verify.Errf(op, "carried value %d: result type %s does not match init type %s",
				i, op.Results[i].Type, op.Operands[3+i].Type)
		}
	}
	return nil
}

func checkYield(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantResults(op, 0); err != nil {
		return err
	}
	parent := c.Parent()
	if parent == nil {
		return verify.Errf(op, "scf.yield outside any region")
	}
	switch parent.Name {
	case "scf.if":
		if len(op.Operands) != len(parent.Results) {
			return verify.Errf(op, "yield of %d values, scf.if declares %d results",
				len(op.Operands), len(parent.Results))
		}
		for i, operand := range op.Operands {
			if !ir.TypeEqual(operand.Type, parent.Results[i].Type) {
				return verify.Errf(op, "yield operand %d has type %s, scf.if result is %s",
					i, operand.Type, parent.Results[i].Type)
			}
		}
	case "scf.for":
		nCarried := len(parent.Operands) - 3
		if len(op.Operands) != nCarried {
			return verify.Errf(op, "yield of %d values, scf.for carries %d",
				len(op.Operands), nCarried)
		}
		for i, operand := range op.Operands {
			if !ir.TypeEqual(operand.Type, parent.Operands[3+i].Type) {
				return verify.Errf(op, "yield operand %d has type %s, carried value is %s",
					i, operand.Type, parent.Operands[3+i].Type)
			}
		}
	default:
		return verify.Errf(op, "scf.yield must be enclosed by an scf operation, found %s", parent.Name)
	}
	return nil
}
