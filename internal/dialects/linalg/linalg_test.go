package linalg_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/dialects/linalg"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func run(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return dialects.NewReferenceInterpreter().Run(m, "main")
}

func wrapMain(body string) string {
	return `"builtin.module"() ({
  "func.func"() ({` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestGenericElementwiseNegate(t *testing.T) {
	res, err := run(t, wrapMain(`
    %a = "arith.constant"() {value = dense<[1, -2, 3]> : tensor<3xi64>} : () -> (tensor<3xi64>)
    %init = "tensor.empty"() : () -> (tensor<3xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i64, %o: i64):
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      %n = "arith.subi"(%z, %x) : (i64, i64) -> (i64)
      "linalg.yield"(%n) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
      iterator_types = ["parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<3xi64>, tensor<3xi64>) -> (tensor<3xi64>)
    "vector.print"(%r) : (tensor<3xi64>) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "( -1, 2, -3 )\n" {
		t.Errorf("negate = %q", res.Output)
	}
}

func TestGenericTransposeViaMaps(t *testing.T) {
	// out[i][j] = in[j][i]: a transpose expressed purely through the
	// indexing maps — the permutation subset the paper supports.
	res, err := run(t, wrapMain(`
    %a = "arith.constant"() {value = dense<[1, 2, 3, 4, 5, 6]> : tensor<2x3xi64>} : () -> (tensor<2x3xi64>)
    %init = "tensor.empty"() : () -> (tensor<3x2xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i64, %o: i64):
      "linalg.yield"(%x) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0, d1) -> (d1, d0)>, affine_map<(d0, d1) -> (d0, d1)>],
      iterator_types = ["parallel", "parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2x3xi64>, tensor<3x2xi64>) -> (tensor<3x2xi64>)
    "vector.print"(%r) : (tensor<3x2xi64>) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "( ( 1, 4 ), ( 2, 5 ), ( 3, 6 ) )\n" {
		t.Errorf("transpose = %q", res.Output)
	}
}

func TestGenericOutputFeedsAccumulator(t *testing.T) {
	// out starts at 100 everywhere and the body adds the input: the
	// destination-passing semantics of outs operands.
	res, err := run(t, wrapMain(`
    %a = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %h = "arith.constant"() {value = 100 : i64} : () -> (i64)
    %e = "tensor.empty"() : () -> (tensor<2xi64>)
    %init = "linalg.fill"(%h, %e) : (i64, tensor<2xi64>) -> (tensor<2xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i64, %acc: i64):
      %s = "arith.addi"(%acc, %x) : (i64, i64) -> (i64)
      "linalg.yield"(%s) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
      iterator_types = ["parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2xi64>, tensor<2xi64>) -> (tensor<2xi64>)
    "vector.print"(%r) : (tensor<2xi64>) -> ()`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "( 101, 102 )\n" {
		t.Errorf("accumulate = %q", res.Output)
	}
}

func TestShapeMismatchThroughMapsTraps(t *testing.T) {
	// Two operands claim different extents for the same domain dim at
	// run time (via a dynamically-shaped operand).
	src := wrapMain(`
    %n = "arith.constant"() {value = 2 : index} : () -> (index)
    %a = "tensor.empty"(%n) : (index) -> (tensor<?xi64>)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %af = "linalg.fill"(%z, %a) : (i64, tensor<?xi64>) -> (tensor<?xi64>)
    %b = "arith.constant"() {value = dense<[1, 2, 3]> : tensor<3xi64>} : () -> (tensor<3xi64>)
    %bc = "tensor.cast"(%b) : (tensor<3xi64>) -> (tensor<?xi64>)
    %init = "tensor.empty"(%n) : (index) -> (tensor<?xi64>)
    %r = "linalg.generic"(%af, %bc, %init) ({
    ^bb0(%x: i64, %y: i64, %o: i64):
      "linalg.yield"(%x) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
      iterator_types = ["parallel"],
      operand_segment_sizes = [2 : i64, 1 : i64]
    } : (tensor<?xi64>, tensor<?xi64>, tensor<?xi64>) -> (tensor<?xi64>)`)
	_, err := run(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Errorf("runtime extent mismatch should trap, got %v", err)
	}
}

func TestAttrAccessors(t *testing.T) {
	op := ir.NewOp("linalg.generic")
	op.Operands = []ir.Value{ir.V("a", ir.TensorOf([]int64{2}, ir.I64))}
	op.Attrs.Set("operand_segment_sizes", ir.ArrayAttrOf(ir.IntAttr(0, ir.I64), ir.IntAttr(1, ir.I64)))
	op.Attrs.Set("indexing_maps", ir.ArrayAttrOf(ir.IdentityMap(1)))
	op.Attrs.Set("iterator_types", ir.ArrayAttrOf(ir.StrAttr("parallel")))

	ins, outs, err := linalg.SegmentSizes(op)
	if err != nil || ins != 0 || outs != 1 {
		t.Errorf("segments = %d, %d, %v", ins, outs, err)
	}
	maps, err := linalg.IndexingMaps(op)
	if err != nil || len(maps) != 1 || !maps[0].IsPermutation() {
		t.Errorf("maps = %v, %v", maps, err)
	}
	its, err := linalg.IteratorTypes(op)
	if err != nil || its[0] != "parallel" {
		t.Errorf("iterators = %v, %v", its, err)
	}

	op.Attrs.Set("operand_segment_sizes", ir.ArrayAttrOf(ir.IntAttr(5, ir.I64), ir.IntAttr(1, ir.I64)))
	if _, _, err := linalg.SegmentSizes(op); err == nil {
		t.Error("segments not covering operands must error")
	}
	op.Attrs.Set("iterator_types", ir.ArrayAttrOf(ir.StrAttr("diagonal")))
	if _, err := linalg.IteratorTypes(op); err == nil {
		t.Error("bad iterator type must error")
	}
}

func TestSpecRejectsBodyArgMismatch(t *testing.T) {
	src := wrapMain(`
    %a = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %init = "tensor.empty"() : () -> (tensor<2xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i32, %o: i64):
      %c = "arith.constant"() {value = 0 : i64} : () -> (i64)
      "linalg.yield"(%c) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
      iterator_types = ["parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2xi64>, tensor<2xi64>) -> (tensor<2xi64>)`)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	err = verify.Module(m, dialects.SourceSpecs())
	if err == nil || !strings.Contains(err.Error(), "body argument") {
		t.Errorf("want body-arg rejection, got %v", err)
	}
}
