// Package linalg provides the semantics and static rules of the linalg
// dialect subset the paper supports: linalg.generic with
// permutation-based indexing maps (every other linalg operation is
// syntactic sugar over generic), linalg.fill, and linalg.yield.
//
// linalg.generic is the paper's flagship "Regions" interaction: the
// operation repeatedly calls its region — a black box possibly written
// in other dialects — once per point of the iteration domain, gathering
// input elements through the indexing maps and scattering the yielded
// values through the output map. It is also how Ratte exercises *loop*
// lowerings without generating loops: linalg.generic is lowered into
// scf.for nests by the compiler under test.
package linalg

import (
	"fmt"

	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
	"ratte/internal/verify"
)

// Ops lists the linalg-dialect operations.
var Ops = []string{"linalg.generic", "linalg.fill", "linalg.yield"}

// SegmentSizes reads the operand_segment_sizes attribute splitting an
// operation's operands into (ins, outs).
func SegmentSizes(op *ir.Operation) (ins, outs int, err error) {
	arr, ok := op.Attrs.Get("operand_segment_sizes").(ir.ArrayAttr)
	if !ok || len(arr.Elems) != 2 {
		return 0, 0, fmt.Errorf("%s requires operand_segment_sizes = [ins, outs]", op.Name)
	}
	a, ok1 := arr.Elems[0].(ir.IntegerAttr)
	b, ok2 := arr.Elems[1].(ir.IntegerAttr)
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("%s: malformed operand_segment_sizes", op.Name)
	}
	ins, outs = int(a.Value), int(b.Value)
	if ins < 0 || outs < 0 || ins+outs != len(op.Operands) {
		return 0, 0, fmt.Errorf("%s: operand_segment_sizes [%d, %d] does not cover %d operands",
			op.Name, ins, outs, len(op.Operands))
	}
	return ins, outs, nil
}

// IndexingMaps reads the indexing_maps attribute.
func IndexingMaps(op *ir.Operation) ([]ir.AffineMapAttr, error) {
	arr, ok := op.Attrs.Get("indexing_maps").(ir.ArrayAttr)
	if !ok {
		return nil, fmt.Errorf("linalg.generic requires an indexing_maps attribute")
	}
	maps := make([]ir.AffineMapAttr, len(arr.Elems))
	for i, e := range arr.Elems {
		m, ok := e.(ir.AffineMapAttr)
		if !ok {
			return nil, fmt.Errorf("indexing_maps[%d] is not an affine map", i)
		}
		maps[i] = m
	}
	return maps, nil
}

// IteratorTypes reads the iterator_types attribute.
func IteratorTypes(op *ir.Operation) ([]string, error) {
	arr, ok := op.Attrs.Get("iterator_types").(ir.ArrayAttr)
	if !ok {
		return nil, fmt.Errorf("linalg.generic requires an iterator_types attribute")
	}
	its := make([]string, len(arr.Elems))
	for i, e := range arr.Elems {
		s, ok := e.(ir.StringAttr)
		if !ok {
			return nil, fmt.Errorf("iterator_types[%d] is not a string", i)
		}
		if s.Value != "parallel" && s.Value != "reduction" {
			return nil, fmt.Errorf("iterator_types[%d] must be parallel or reduction, is %q", i, s.Value)
		}
		its[i] = s.Value
	}
	return its, nil
}

// Semantics returns the interpreter kernels for the linalg dialect.
func Semantics() *interp.Dialect {
	d := interp.NewDialect("linalg")

	d.Register("linalg.generic", genericKernel)

	d.Register("linalg.fill", func(ctx *interp.Context, op *ir.Operation) error {
		scalar, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		dest, err := ctx.GetTensor(op.Operands[1])
		if err != nil {
			return err
		}
		return ctx.Define(op.Results[0], rtval.NewTensor(dest.Shape, dest.Elem, scalar))
	})

	d.RegisterTerminator("linalg.yield", func(ctx *interp.Context, op *ir.Operation) (interp.TermResult, error) {
		vals := make([]rtval.Value, len(op.Operands))
		for i, operand := range op.Operands {
			v, err := ctx.Get(operand)
			if err != nil {
				return interp.TermResult{}, err
			}
			vals[i] = v
		}
		return interp.TermResult{Exit: &interp.Exit{Kind: interp.ExitYield, Values: vals}}, nil
	})

	return d
}

func genericKernel(ctx *interp.Context, op *ir.Operation) error {
	nIns, nOuts, err := SegmentSizes(op)
	if err != nil {
		return err
	}
	maps, err := IndexingMaps(op)
	if err != nil {
		return err
	}
	its, err := IteratorTypes(op)
	if err != nil {
		return err
	}
	if len(maps) != nIns+nOuts {
		return fmt.Errorf("linalg.generic has %d indexing maps for %d operands", len(maps), nIns+nOuts)
	}

	operands := make([]*rtval.Tensor, len(op.Operands))
	for i, o := range op.Operands {
		t, err := ctx.GetTensor(o)
		if err != nil {
			return err
		}
		operands[i] = t
	}

	// Infer the iteration-domain extents from operand shapes through the
	// (permutation) maps, and check consistency.
	nDims := len(its)
	extent := make([]int64, nDims)
	seen := make([]bool, nDims)
	for i, m := range maps {
		if m.NumDims != nDims {
			return fmt.Errorf("indexing map %d is over %d dims, iterator_types has %d", i, m.NumDims, nDims)
		}
		if len(m.Results) != len(operands[i].Shape) {
			return fmt.Errorf("indexing map %d has %d results for a rank-%d operand", i, len(m.Results), len(operands[i].Shape))
		}
		for j, dim := range m.Results {
			sz := operands[i].Shape[j]
			if seen[dim] && extent[dim] != sz {
				return &rtval.TrapError{Op: "linalg.generic", Reason: fmt.Sprintf("dim d%d inferred as both %d and %d", dim, extent[dim], sz)}
			}
			extent[dim], seen[dim] = sz, true
		}
	}
	for d := 0; d < nDims; d++ {
		if !seen[d] {
			return fmt.Errorf("iteration dim d%d is not constrained by any operand", d)
		}
	}

	// Output accumulators start from the outs operands (destination-
	// passing style).
	outs := make([]*rtval.Tensor, nOuts)
	for i := range outs {
		outs[i] = operands[nIns+i].Clone()
	}

	// Iterate the domain in row-major order (the order the production
	// lowering's loop nest uses).
	point := make([]int64, nDims)
	total := int64(1)
	for _, e := range extent {
		total *= e
	}
	for flat := int64(0); flat < total; flat++ {
		args := make([]rtval.Value, 0, nIns+nOuts)
		for i := 0; i < nIns; i++ {
			v, err := operands[i].At(applyMap(maps[i], point))
			if err != nil {
				return err
			}
			args = append(args, v)
		}
		for i := 0; i < nOuts; i++ {
			v, err := outs[i].At(applyMap(maps[nIns+i], point))
			if err != nil {
				return err
			}
			args = append(args, v)
		}
		exit, err := ctx.RunRegion(op.Regions[0], args, scoped.Standard)
		if err != nil {
			return err
		}
		if exit.Kind != interp.ExitYield || len(exit.Values) != nOuts {
			return fmt.Errorf("linalg.generic body must yield %d values", nOuts)
		}
		for i := 0; i < nOuts; i++ {
			elem, ok := exit.Values[i].(rtval.Int)
			if !ok {
				return fmt.Errorf("linalg.generic must yield scalars")
			}
			idx := applyMap(maps[nIns+i], point)
			nt, err := outs[i].Insert(idx, elem)
			if err != nil {
				return err
			}
			outs[i] = nt
		}
		// Advance the domain point in row-major order.
		for i := nDims - 1; i >= 0; i-- {
			point[i]++
			if point[i] < extent[i] {
				break
			}
			point[i] = 0
		}
	}

	for i, r := range op.Results {
		if err := ctx.Define(r, outs[i]); err != nil {
			return err
		}
	}
	return nil
}

func applyMap(m ir.AffineMapAttr, point []int64) []int64 {
	idx := make([]int64, len(m.Results))
	for i, d := range m.Results {
		idx[i] = point[d]
	}
	return idx
}

// Specs returns the static rules for the linalg dialect.
func Specs() verify.Registry {
	return verify.Registry{
		"linalg.generic": {NumRegions: 1, Check: checkGeneric},
		"linalg.fill":    {Check: checkFill},
		"linalg.yield":   {Terminator: true, Check: checkYield},
	}
}

// shapedElem returns the element type and shape of a tensor or memref
// type (linalg ops appear in tensor form before bufferisation and in
// memref form after).
func shapedElem(t ir.Type) (ir.Type, []int64, bool) {
	switch t := t.(type) {
	case ir.TensorType:
		return t.Elem, t.Shape, true
	case ir.MemRefType:
		return t.Elem, t.Shape, true
	}
	return nil, nil, false
}

func checkGeneric(c *verify.Checker, op *ir.Operation) error {
	nIns, nOuts, err := SegmentSizes(op)
	if err != nil {
		return verify.Errf(op, "%v", err)
	}
	if nOuts == 0 {
		return verify.Errf(op, "linalg.generic requires at least one output")
	}
	maps, err := IndexingMaps(op)
	if err != nil {
		return verify.Errf(op, "%v", err)
	}
	its, err := IteratorTypes(op)
	if err != nil {
		return verify.Errf(op, "%v", err)
	}
	if len(maps) != nIns+nOuts {
		return verify.Errf(op, "%d indexing maps for %d operands", len(maps), nIns+nOuts)
	}

	elemTypes := make([]ir.Type, 0, nIns+nOuts)
	shapes := make([][]int64, 0, nIns+nOuts)
	for i, o := range op.Operands {
		elem, shape, ok := shapedElem(o.Type)
		if !ok {
			return verify.Errf(op, "operand %d must be a tensor or memref, is %s", i, o.Type)
		}
		elemTypes = append(elemTypes, elem)
		shapes = append(shapes, shape)
		m := maps[i]
		if m.NumDims != len(its) {
			return verify.Errf(op, "indexing map %d is over %d dims, iterator_types has %d", i, m.NumDims, len(its))
		}
		// The paper's supported subset: permutation-based maps.
		if !m.IsPermutation() {
			return verify.Errf(op, "indexing map %d is not a permutation (unsupported by the permutation-based subset)", i)
		}
		if len(m.Results) != len(shape) {
			return verify.Errf(op, "indexing map %d has %d results for rank-%d operand", i, len(m.Results), len(shape))
		}
	}

	// Static shape consistency through the maps where extents are known.
	nDims := len(its)
	extent := make([]int64, nDims)
	for i := range extent {
		extent[i] = ir.DynamicSize
	}
	for i, m := range maps {
		for j, dim := range m.Results {
			sz := shapes[i][j]
			if sz == ir.DynamicSize {
				continue
			}
			if extent[dim] != ir.DynamicSize && extent[dim] != sz {
				return verify.Errf(op, "dim d%d statically inferred as both %d and %d", dim, extent[dim], sz)
			}
			extent[dim] = sz
		}
	}

	// Results mirror the outs operands in tensor form; the memref form
	// (post-bufferisation, destination-passing) has none.
	if len(op.Results) != 0 {
		if len(op.Results) != nOuts {
			return verify.Errf(op, "linalg.generic declares %d results for %d outputs", len(op.Results), nOuts)
		}
		for i, r := range op.Results {
			if !ir.TypeEqual(r.Type, op.Operands[nIns+i].Type) {
				return verify.Errf(op, "result %d type %s does not match output operand type %s",
					i, r.Type, op.Operands[nIns+i].Type)
			}
		}
	}

	// Region: one scalar block argument per operand, element-typed.
	entry := op.Regions[0].Entry()
	if entry == nil {
		return verify.Errf(op, "linalg.generic body is empty")
	}
	if len(entry.Args) != nIns+nOuts {
		return verify.Errf(op, "body must take %d scalar arguments, takes %d", nIns+nOuts, len(entry.Args))
	}
	for i, a := range entry.Args {
		if !ir.TypeEqual(a.Type, elemTypes[i]) {
			return verify.Errf(op, "body argument %d has type %s, operand element type is %s",
				i, a.Type, elemTypes[i])
		}
	}
	return nil
}

func checkFill(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantOperands(op, 2); err != nil {
		return err
	}
	elem, _, ok := shapedElem(op.Operands[1].Type)
	if !ok {
		return verify.Errf(op, "linalg.fill destination must be a tensor or memref")
	}
	if err := verify.WantType(op, op.Operands[0], elem); err != nil {
		return err
	}
	if len(op.Results) == 0 {
		// Memref (destination-passing) form writes in place.
		return nil
	}
	if err := verify.WantResults(op, 1); err != nil {
		return err
	}
	return verify.WantType(op, op.Results[0], op.Operands[1].Type)
}

func checkYield(c *verify.Checker, op *ir.Operation) error {
	if err := verify.WantResults(op, 0); err != nil {
		return err
	}
	parent := c.Parent()
	if parent == nil || parent.Name != "linalg.generic" {
		return verify.Errf(op, "linalg.yield must be enclosed by linalg.generic")
	}
	nIns, nOuts, err := SegmentSizes(parent)
	if err != nil {
		return verify.Errf(op, "%v", err)
	}
	if len(op.Operands) != nOuts {
		return verify.Errf(op, "yield of %d values, linalg.generic has %d outputs", len(op.Operands), nOuts)
	}
	for i, operand := range op.Operands {
		elem, _, ok := shapedElem(parent.Operands[nIns+i].Type)
		if !ok {
			return verify.Errf(op, "output operand %d is not shaped", i)
		}
		if !ir.TypeEqual(operand.Type, elem) {
			return verify.Errf(op, "yield operand %d has type %s, output element type is %s",
				i, operand.Type, elem)
		}
	}
	return nil
}
