package interp_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

// straightLineSrc builds a main of n chained arith ops and one print —
// the module shape the payoff tiering leaves to the tree walker.
func straightLineSrc(n int) string {
	var b strings.Builder
	b.WriteString(`"builtin.module"() ({
  "func.func"() ({
    %v0 = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %v1 = "arith.constant"() {value = 5 : i64} : () -> (i64)
`)
	for i := 2; i < n+2; i++ {
		op := [...]string{"arith.addi", "arith.muli", "arith.xori", "arith.subi"}[i%4]
		fmt.Fprintf(&b, "    %%v%d = %q(%%v%d, %%v%d) : (i64, i64) -> (i64)\n", i, op, i-1, i-2)
	}
	fmt.Fprintf(&b, `    "vector.print"(%%v%d) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`, n+1)
	return b.String()
}

// scfLoopSrc builds a main whose work is an iters-trip scf.for
// accumulating over the induction variable — structured control flow,
// the compiled engine's home turf.
func scfLoopSrc(iters int) string {
	return fmt.Sprintf(`"builtin.module"() ({
  "func.func"() ({
    %%lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %%ub = "arith.constant"() {value = %d : index} : () -> (index)
    %%st = "arith.constant"() {value = 1 : index} : () -> (index)
    %%init = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %%three = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %%r = "scf.for"(%%lb, %%ub, %%st, %%init) ({
    ^bb0(%%iv: index, %%acc: i64):
      %%i = "arith.index_cast"(%%iv) : (index) -> (i64)
      %%t = "arith.muli"(%%i, %%three) : (i64, i64) -> (i64)
      %%a = "arith.addi"(%%acc, %%t) : (i64, i64) -> (i64)
      "scf.yield"(%%a) : (i64) -> ()
    }) : (index, index, index, i64) -> (i64)
    "vector.print"(%%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`, iters)
}

// cfLoopSrc builds the same accumulation as an explicit CFG — the shape
// scf-to-cf lowering produces, where every iteration is a block-arg
// branch rather than a region re-entry.
func cfLoopSrc(iters int) string {
	return fmt.Sprintf(`"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    %%zero = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %%one = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %%three = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %%n = "arith.constant"() {value = %d : i64} : () -> (i64)
    "cf.br"()[^head(%%zero : i64, %%zero : i64)] : () -> ()
  ^head(%%acc: i64, %%i: i64):
    %%c = "arith.cmpi"(%%i, %%n) {predicate = 2 : i64} : (i64, i64) -> (i1)
    "cf.cond_br"(%%c)[^body(%%acc : i64, %%i : i64), ^exit(%%acc : i64)] : (i1) -> ()
  ^body(%%a: i64, %%j: i64):
    %%t = "arith.muli"(%%j, %%three) : (i64, i64) -> (i64)
    %%a2 = "arith.addi"(%%a, %%t) : (i64, i64) -> (i64)
    %%j2 = "arith.addi"(%%j, %%one) : (i64, i64) -> (i64)
    "cf.br"()[^head(%%a2 : i64, %%j2 : i64)] : () -> ()
  ^exit(%%r: i64):
    "vector.print"(%%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`, iters)
}

func mustParseB(b *testing.B, src string) *ir.Module {
	b.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	return m
}

func benchTree(b *testing.B, m *ir.Module) {
	in := dialects.NewTreeWalkingExecutor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run(m, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCompiled(b *testing.B, m *ir.Module) {
	in := dialects.NewTreeWalkingExecutor()
	prog := interp.Compile(dialects.ExecutorRegistry(), m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.RunProgram(prog, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpStraightLine: per-run cost on a 60-op straight line.
// The compiled numbers here exclude Compile itself (amortized via the
// program cache in real use); the tiering runs these modules on the
// tree walker precisely because one uncached compile costs more than
// one walk.
func BenchmarkInterpStraightLine(b *testing.B) {
	m := mustParseB(b, straightLineSrc(60))
	b.Run("tree", func(b *testing.B) { benchTree(b, m) })
	b.Run("compiled", func(b *testing.B) { benchCompiled(b, m) })
}

// BenchmarkInterpSCFLoop: a 2000-trip structured loop, the workload the
// compiled engine exists for — every iteration re-enters the body
// region, which the tree walker pays for in map churn and the engine
// in frame-slot clears.
func BenchmarkInterpSCFLoop(b *testing.B) {
	m := mustParseB(b, scfLoopSrc(2000))
	b.Run("tree", func(b *testing.B) { benchTree(b, m) })
	b.Run("compiled", func(b *testing.B) { benchCompiled(b, m) })
}

// BenchmarkInterpCFLoop: the same 2000 iterations as an explicit CFG
// with block-argument branches (the post-lowering shape).
func BenchmarkInterpCFLoop(b *testing.B) {
	m := mustParseB(b, cfLoopSrc(2000))
	b.Run("tree", func(b *testing.B) { benchTree(b, m) })
	b.Run("compiled", func(b *testing.B) { benchCompiled(b, m) })
}

// BenchmarkInterpCompile: the one-time cost of Compile itself, over the
// loop module (arena-allocated — a handful of allocations per module).
func BenchmarkInterpCompile(b *testing.B) {
	m := mustParseB(b, scfLoopSrc(2000))
	reg := dialects.ExecutorRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if interp.Compile(reg, m) == nil {
			b.Fatal("nil program")
		}
	}
}

// TestEmitInterpBench regenerates BENCH_interp.json, the
// machine-readable record of interpreter hot-path performance. Skipped
// unless RATTE_BENCH_JSON=1 (timing runs have no place in the ordinary
// suite):
//
//	RATTE_BENCH_JSON=1 go test -run TestEmitInterpBench -v ./internal/interp
func TestEmitInterpBench(t *testing.T) {
	if os.Getenv("RATTE_BENCH_JSON") != "1" {
		t.Skip("set RATTE_BENCH_JSON=1 to regenerate BENCH_interp.json")
	}
	workloads := []struct{ name, src string }{
		{"straight_line_60", straightLineSrc(60)},
		{"scf_loop_2000", scfLoopSrc(2000)},
		{"cf_loop_2000", cfLoopSrc(2000)},
	}
	record := map[string]any{
		"benchmark": "interp",
		"cpus":      runtime.NumCPU(),
	}
	results := map[string]any{}
	for _, w := range workloads {
		m, err := ir.Parse(w.src)
		if err != nil {
			t.Fatal(err)
		}
		tree := testing.Benchmark(func(b *testing.B) { benchTree(b, m) })
		comp := testing.Benchmark(func(b *testing.B) { benchCompiled(b, m) })
		speedup := float64(tree.NsPerOp()) / float64(comp.NsPerOp())
		results[w.name] = map[string]any{
			"tree":     map[string]any{"ns_per_op": tree.NsPerOp(), "allocs_per_op": tree.AllocsPerOp()},
			"compiled": map[string]any{"ns_per_op": comp.NsPerOp(), "allocs_per_op": comp.AllocsPerOp()},
			"speedup":  speedup,
		}
		t.Logf("%s: tree %d ns/op (%d allocs), compiled %d ns/op (%d allocs), %.2fx",
			w.name, tree.NsPerOp(), tree.AllocsPerOp(), comp.NsPerOp(), comp.AllocsPerOp(), speedup)
	}
	record["workloads"] = results
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_interp.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
