// Frames, pooling and the program cache: the allocation side of the
// compiled engine. A Frame is the flat []rtval.Value a compiled
// function executes over — one slot per binding the function can ever
// create, indexed by the slots Compile assigned. Frames are recycled
// per function (they are all the same size for a given function), and
// whole Contexts are recycled per RunProgram, so a steady-state
// compiled run allocates almost nothing beyond what kernels allocate
// for values.
package interp

import (
	"sync"
	"sync/atomic"
	"time"

	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// framePool recycles frames of one compiled function. Frames are
// returned cleared, so Get hands out an all-nil frame ("everything
// undefined") either way.
type framePool struct {
	pool sync.Pool
}

func (fp *framePool) init(numSlots int) {
	fp.pool.New = func() any {
		f := make([]rtval.Value, numSlots)
		return &f
	}
}

func (fp *framePool) get() *[]rtval.Value {
	return fp.pool.Get().(*[]rtval.Value)
}

func (fp *framePool) put(f *[]rtval.Value) {
	clear(*f)
	fp.pool.Put(f)
}

// ctxPool recycles whole evaluation contexts across RunProgram calls.
var ctxPool = sync.Pool{New: func() any { return new(Context) }}

// acquireContext readies a pooled context for one compiled run.
func acquireContext(in *Interpreter, p *CompiledProgram) *Context {
	ctx := ctxPool.Get().(*Context)
	ctx.in = in
	ctx.prog = p
	if ctx.buffers == nil {
		ctx.buffers = make(map[int64][]rtval.Int)
	}
	ctx.initLimits(in)
	return ctx
}

// releaseContext scrubs a context and returns it to the pool. The
// output bytes keep their capacity — that buffer regrowth is one of
// the tree walker's per-run costs the pool exists to shed.
func releaseContext(ctx *Context) {
	ctx.in = nil
	ctx.prog = nil
	ctx.fn = nil
	ctx.frame = nil
	ctx.cur = nil
	ctx.regionStack = ctx.regionStack[:0]
	ctx.isoFloor = 0
	ctx.out = ctx.out[:0]
	clear(ctx.buffers)
	ctx.nextBuffer = 0
	if ctx.spill != nil {
		clear(ctx.spill)
	}
	ctx.stepsLeft = 0
	ctx.maxCallDepth = 0
	ctx.callDepth = 0
	ctx.cancel = nil
	ctx.cancelCheckLeft = 0
	ctx.faults = nil
	// regs and argScratch keep their capacity (rtval.Int holds no
	// pointers, so stale entries retain nothing); fusedSteps resets per
	// acquisition. Yield scratch keeps its records but drops the values
	// they reference.
	ctx.fusedSteps = 0
	for _, ex := range ctx.yieldScratch {
		clear(ex.Values[:cap(ex.Values)])
	}
	ctxPool.Put(ctx)
}

// ProgramCache memoizes Compile results across runs. The difftest
// harness runs every generated program once per build configuration
// plus once under the reference semantics, and the conformance corpus
// replays modules repeatedly — each of those re-executions reuses the
// compiled artifact instead of re-walking the module.
//
// Keys pair the exact registry pointer with the module's printed form:
// registries are immutable and shared (package dialects memoizes them),
// and the printed text is the module's identity — structurally
// identical modules hit the same entry even when rebuilt at different
// addresses, which is exactly what the campaign's shared-prefix
// compilation produces. The cache is safe for concurrent use.
//
// Printing a module costs about as much as compiling it, and a fuzzing
// campaign runs every module once or twice — a cache that printed and
// retained each of those would be pure overhead, in both the printing
// work and the GC cost of every retained entry (an entry pins its whole
// module). A fingerprint admission counter fixes the economics: the
// first two sightings of a module's structural hash compile directly,
// paying neither the printed key nor the retention; only the third
// sighting — the point at which caching breaks even — takes the
// text-keyed path and earns a cache entry. Soundness is unaffected
// because the text stays the true key — a hash collision merely sends
// an unrelated module down the (correct, slower) printed path.
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[programKey]*CompiledProgram
	seen    map[seenKey]uint8
	hits    uint64
	misses  uint64
	// Always-on accounting beyond hit/miss: evictions, and the time
	// spent inside Compile on the miss paths. Timing only ever brackets
	// a compilation — a heavyweight, off-hot-path event — so keeping it
	// unconditional costs nothing measurable and lets telemetry export
	// cache behaviour without touching the run path.
	evictions    uint64
	compileNanos atomic.Int64
}

type programKey struct {
	registry *Registry
	text     string
}

// seenKey records one sighted module fingerprint per registry.
type seenKey struct {
	registry *Registry
	fp       uint64
}

// DefaultProgramCacheSize bounds a cache built with NewProgramCache(0).
const DefaultProgramCacheSize = 512

// NewProgramCache builds a cache holding at most max programs
// (DefaultProgramCacheSize if max <= 0). Eviction is arbitrary: the
// cache is a throughput device, not a correctness one.
func NewProgramCache(max int) *ProgramCache {
	if max <= 0 {
		max = DefaultProgramCacheSize
	}
	return &ProgramCache{
		max:     max,
		entries: make(map[programKey]*CompiledProgram),
		seen:    make(map[seenKey]uint8),
	}
}

// cacheAdmitAfter is how many sightings of a fingerprint compile
// directly before the text-keyed cache path takes over.
const cacheAdmitAfter = 2

// Get returns the compiled form of m over r, compiling on miss. A
// module whose fingerprint has few sightings compiles directly — no
// printed key, no cache insertion (campaign modules, run once per
// build configuration, never earn either). From the third sighting on,
// the module is printed (outside the lock) to form the exact key, and
// Compile also runs outside the lock, so concurrent misses may compile
// the same module twice; one result wins, both are valid.
func (c *ProgramCache) Get(r *Registry, m *ir.Module) *CompiledProgram {
	sk := seenKey{registry: r, fp: ir.Fingerprint(m)}
	c.mu.Lock()
	if n := c.seen[sk]; n < cacheAdmitAfter {
		// Bound the sighting set the blunt way: it is an admission
		// heuristic, so forgetting everything just re-classifies a few
		// repeats as first sightings.
		if n == 0 && len(c.seen) >= c.max*8 {
			clear(c.seen)
		}
		c.seen[sk] = n + 1
		c.misses++
		c.mu.Unlock()
		return c.timedCompile(r, m)
	}
	c.mu.Unlock()

	key := programKey{registry: r, text: ir.Print(m)}
	c.mu.Lock()
	if p, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()

	p := c.timedCompile(r, m)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok {
		c.hits++
		return prev
	}
	c.misses++
	if len(c.entries) >= c.max {
		for k := range c.entries {
			delete(c.entries, k)
			c.evictions++
			break
		}
	}
	c.entries[key] = p
	return p
}

// timedCompile is Compile with the cache's compile-time accounting.
func (c *ProgramCache) timedCompile(r *Registry, m *ir.Module) *CompiledProgram {
	start := time.Now()
	p := Compile(r, m)
	c.compileNanos.Add(int64(time.Since(start)))
	return p
}

// Stats reports cache hits, misses and current size.
func (c *ProgramCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// CacheStats is the full accounting snapshot of a ProgramCache.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	// CompileTime is the cumulative wall-clock spent inside Compile on
	// the cache's miss paths (admission-gated direct compiles included).
	CompileTime time.Duration
}

// StatsDetail returns the cache's full counters — the accessor the
// telemetry exporter and the admission-policy tests read. Safe for
// concurrent use.
func (c *ProgramCache) StatsDetail() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Size:        len(c.entries),
		CompileTime: time.Duration(c.compileNanos.Load()),
	}
}
