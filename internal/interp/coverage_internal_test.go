package interp

import (
	"testing"

	"ratte/internal/coverage"
)

// TestDisabledCoverOpAddsNoAllocs pins the dispatch-loop cost of the
// coverage hook when coverage is off: one nil check, no key lookup, no
// allocation. This is the same bar the telemetry hooks meet
// (TestDisabledMetricsAddNoAllocs).
func TestDisabledCoverOpAddsNoAllocs(t *testing.T) {
	ctx := NewContext(&Interpreter{})
	if n := testing.AllocsPerRun(200, func() {
		ctx.coverOp("arith.addi")
	}); n != 0 {
		t.Fatalf("disabled coverage hook allocated %.1f times per run, want 0", n)
	}
}

// TestEnabledCoverOpHotPathAddsNoAllocs pins the enabled steady state:
// once a site's slot exists, a hit is a lock-free map lookup plus a
// counter bump.
func TestEnabledCoverOpHotPathAddsNoAllocs(t *testing.T) {
	in := &Interpreter{Coverage: coverage.NewMap()}
	ctx := NewContext(in)
	ctx.coverOp("arith.addi") // warm the slot
	if n := testing.AllocsPerRun(200, func() {
		ctx.coverOp("arith.addi")
	}); n != 0 {
		t.Fatalf("enabled coverage hot path allocated %.1f times per run, want 0", n)
	}
}
