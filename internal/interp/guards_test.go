package interp_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

// TestStepLimitGuardsNonTermination: the executor bounds evaluation
// steps, so a hand-written infinite cf loop terminates with a trap
// rather than hanging the harness.
func TestStepLimitGuardsNonTermination(t *testing.T) {
	src := `"builtin.module"() ({
  "llvm.func"() ({
  ^bb0:
    "cf.br"()[^bb1] : () -> ()
  ^bb1:
    "cf.br"()[^bb1] : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := dialects.NewExecutor()
	in.MaxSteps = 10_000
	_, err = in.Run(m, "main")
	if err == nil || !interp.IsTrap(err) {
		t.Fatalf("infinite loop should hit the step limit, got %v", err)
	}
	if !strings.Contains(err.Error(), "step limit") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestTypedAccessorErrors: the context's typed getters reject wrong
// shapes with useful errors instead of panicking.
func TestTypedAccessorErrors(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[1]> : tensor<1xi64>} : () -> (tensor<1xi64>)
    %q = "arith.addi"(%t, %t) : (tensor<1xi64>, tensor<1xi64>) -> (tensor<1xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier would reject this (addi over tensors); run the
	// interpreter directly to exercise the dynamic accessor guard.
	_, err = dialects.NewReferenceInterpreter().Run(m, "main")
	if err == nil || !strings.Contains(err.Error(), "not a scalar integer") {
		t.Errorf("want scalar-accessor error, got %v", err)
	}
}

// TestUseAtWrongDeclaredType: dynamic type agreement between a use's
// claimed type and the binding's runtime type is enforced.
func TestUseAtWrongDeclaredType(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    "vector.print"(%a) : (i32) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dialects.NewReferenceInterpreter().Run(m, "main")
	if err == nil || !strings.Contains(err.Error(), "used at type") {
		t.Errorf("want declared-type error, got %v", err)
	}
}

// TestMissingKernelIsStructuredError: interpreting an op with no
// registered semantics reports which op, not a panic.
func TestMissingKernelIsStructuredError(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    "mystery.op"() : () -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dialects.NewReferenceInterpreter().Run(m, "main")
	if err == nil || !strings.Contains(err.Error(), "mystery.op") {
		t.Errorf("want missing-kernel error naming the op, got %v", err)
	}
}

// TestEvalErrorClassificationSurvivesWrapping: UB raised deep inside a
// nested region/call still classifies as UB at the top.
func TestEvalErrorClassificationSurvivesWrapping(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %r = "func.call"() {callee = @deep} : () -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %c = "arith.constant"() {value = 1 : i1} : () -> (i1)
    %r = "scf.if"(%c) ({
      %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      %q = "arith.divsi"(%a, %z) : (i64, i64) -> (i64)
      "scf.yield"(%q) : (i64) -> ()
    }, {
      %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
      "scf.yield"(%b) : (i64) -> ()
    }) : (i1) -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "deep", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dialects.NewReferenceInterpreter().Run(m, "main")
	if err == nil || !interp.IsUB(err) {
		t.Errorf("nested UB should classify as UB, got %v", err)
	}
}
