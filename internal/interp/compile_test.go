package interp_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

// runBoth executes one module under the tree walker and under the
// compiled engine (forced — interp.Compile + RunProgram bypasses the
// payoff tiering) with identical limits, returning both outcomes.
func runBoth(t *testing.T, src string, maxSteps, maxDepth int) (tree, compiled *interp.Result, treeErr, compErr error) {
	t.Helper()
	m := mustParse(t, src)

	tw := dialects.NewTreeWalkingExecutor()
	tw.MaxSteps = maxSteps
	tw.MaxCallDepth = maxDepth
	tree, treeErr = tw.Run(m, "main")

	ce := dialects.NewTreeWalkingExecutor()
	ce.MaxSteps = maxSteps
	ce.MaxCallDepth = maxDepth
	prog := interp.Compile(dialects.ExecutorRegistry(), m)
	compiled, compErr = ce.RunProgram(prog, "main")
	return tree, compiled, treeErr, compErr
}

// TestCompiledErrorFidelity pins the compiled engine to the tree
// walker's exact failure behavior: same error text, same UB/trap
// classification, for every runtime fault the engines can hit. The
// difftest harness compares engine results textually, so "almost the
// same error" would read as a miscompilation.
func TestCompiledErrorFidelity(t *testing.T) {
	wrap := func(body string) string {
		return `"builtin.module"() ({
  "func.func"() ({
` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	}
	cases := []struct {
		name     string
		src      string
		maxSteps int
		maxDepth int
		wantSub  string // substring the (identical) error must contain
		wantTrap bool
	}{
		{
			name: "step_limit",
			src: `"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    "cf.br"()[^loop] : () -> ()
  ^loop:
    "cf.br"()[^loop] : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`,
			maxSteps: 100,
			wantSub:  "step limit exceeded",
			wantTrap: true,
		},
		{
			name: "call_depth",
			src: `"builtin.module"() ({
  "func.func"() ({
    "func.call"() {callee = @main} : () -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`,
			maxDepth: 20,
			wantSub:  "call depth exceeded",
			wantTrap: true,
		},
		{
			name: "use_before_def",
			src: wrap(`    %s = "arith.addi"(%later, %later) : (i64, i64) -> (i64)
    %later = "arith.constant"() {value = 1 : i64} : () -> (i64)`),
			wantSub: "use of undefined value %later",
		},
		{
			name:    "unregistered_op",
			src:     wrap(`    "mystery.op"() : () -> ()`),
			wantSub: "no semantics registered for mystery.op",
		},
		{
			name: "unknown_branch_target",
			src: `"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    "cf.br"()[^nowhere] : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`,
			wantSub: "branch to unknown block ^nowhere",
		},
		{
			name: "block_arg_type_mismatch",
			src: `"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    %a = "arith.constant"() {value = 7 : i64} : () -> (i64)
    "cf.br"()[^merge(%a : i32)] : () -> ()
  ^merge(%x: i32):
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`,
			wantSub: "has runtime type i64 but is used at type i32",
		},
		{
			name:    "call_unknown_function",
			src:     wrap(`    "func.call"() {callee = @ghost} : () -> ()`),
			wantSub: "call to unknown function @ghost",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, _, treeErr, compErr := runBoth(t, tc.src, tc.maxSteps, tc.maxDepth)
			if treeErr == nil {
				t.Fatal("tree walker did not fail")
			}
			if compErr == nil {
				t.Fatalf("compiled engine did not fail (tree: %v)", treeErr)
			}
			if treeErr.Error() != compErr.Error() {
				t.Errorf("error text diverges:\n  tree:     %v\n  compiled: %v", treeErr, compErr)
			}
			if !strings.Contains(treeErr.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", treeErr, tc.wantSub)
			}
			if got := interp.IsTrap(compErr); got != tc.wantTrap {
				t.Errorf("IsTrap(compiled) = %v, want %v", got, tc.wantTrap)
			}
			if interp.IsTrap(treeErr) != interp.IsTrap(compErr) || interp.IsUB(treeErr) != interp.IsUB(compErr) {
				t.Error("UB/trap classification diverges between engines")
			}
		})
	}
}

// TestCompiledResultFidelity pins the success path: byte-identical
// Output and identical Returned values across engines, over straight
// lines, structured loops and lowered CFGs alike.
func TestCompiledResultFidelity(t *testing.T) {
	cases := []struct{ name, src string }{
		{"straight_line", straightLineSrc(24)},
		{"scf_loop", scfLoopSrc(100)},
		{"lowered_cf", cfLoopSrc(100)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tree, compiled, treeErr, compErr := runBoth(t, tc.src, 0, 0)
			if treeErr != nil || compErr != nil {
				t.Fatalf("tree err %v, compiled err %v", treeErr, compErr)
			}
			if tree.Output != compiled.Output {
				t.Errorf("output diverges:\n  tree:     %q\n  compiled: %q", tree.Output, compiled.Output)
			}
			if len(tree.Returned) != len(compiled.Returned) {
				t.Errorf("returned %d values vs %d", len(tree.Returned), len(compiled.Returned))
			}
		})
	}
}

// TestProgramCacheAdmission checks the fingerprint admission counter:
// the first sightings of a module compile directly (misses, no entry),
// and from the third on the text-keyed cache serves hits.
func TestProgramCacheAdmission(t *testing.T) {
	m := mustParse(t, straightLineSrc(8))
	reg := dialects.ExecutorRegistry()
	c := interp.NewProgramCache(0)
	for i := 0; i < 5; i++ {
		if c.Get(reg, m) == nil {
			t.Fatal("cache returned nil program")
		}
	}
	hits, misses, size := c.Stats()
	// Sightings 1 and 2 miss by design; sighting 3 prints, misses and
	// inserts; sightings 4 and 5 hit.
	if hits != 2 || misses != 3 || size != 1 {
		t.Errorf("hits=%d misses=%d size=%d, want 2/3/1", hits, misses, size)
	}
}

// TestFingerprintStability: the structural hash is a function of the
// module's printed identity — reparsing the printed form fingerprints
// the same, and a one-constant change fingerprints differently.
func TestFingerprintStability(t *testing.T) {
	m := mustParse(t, scfLoopSrc(10))
	fp := ir.Fingerprint(m)
	m2, err := ir.Parse(ir.Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := ir.Fingerprint(m2); fp2 != fp {
		t.Errorf("fingerprint not stable across print/parse: %x vs %x", fp, fp2)
	}
	m3 := mustParse(t, scfLoopSrc(11))
	if ir.Fingerprint(m3) == fp {
		t.Error("distinct modules share a fingerprint")
	}
}
