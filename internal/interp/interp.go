// Package interp is Ratte's composable interpreter framework: the Go
// analogue of the paper's effects-based embedding (§3.2).
//
// Each dialect contributes a set of semantic kernels — one per operation
// — registered into an Interpreter. This solves the same expression
// problem the paper solves with algebraic effects: a new dialect's
// semantics are added without touching any existing dialect, and an
// interpreter for a dialect combination is obtained by composing the
// dialects' kernel sets (the paper's handler composition).
//
// The Context passed to kernels is the "interpreter effects" layer of
// the paper's Figure 9: it provides assignment (Define/Get over a scoped
// environment), the function table (AddFunc/CallFunc), the writer
// (Print), error signalling (Go errors carrying UB/trap classification)
// and region execution. Regions are embedded as calls — a kernel
// receives its attached regions and executes them through
// Context.RunRegion with argument values, mirroring the paper's
// embedding of regions as functions from values to effect-ASTs
// (Table 1).
package interp

import (
	"context"
	"errors"
	"fmt"

	"ratte/internal/coverage"
	"ratte/internal/faultinject"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// covInterpOp is the interpreter's coverage site family: one site per
// executed op kind, shared by the tree walker, the compiled engine and
// every fused path (see docs/EXTENDING.md §9).
var covInterpOp = coverage.NewKeyed("interp/op")

// Kernel evaluates one non-terminator operation: reading operands from
// the context, computing, and defining result bindings.
type Kernel func(ctx *Context, op *ir.Operation) error

// TermResult is the outcome of a terminator kernel: either an Exit
// (leave the enclosing region) or a Branch (transfer to another block of
// the same region).
type TermResult struct {
	Exit   *Exit
	Branch *ir.Successor
}

// TerminatorKernel evaluates a block terminator.
type TerminatorKernel func(ctx *Context, op *ir.Operation) (TermResult, error)

// ExitKind classifies how control left a region.
type ExitKind int

const (
	// ExitYield terminates a region, producing the region's results
	// (scf.yield, linalg.yield, tensor.yield).
	ExitYield ExitKind = iota
	// ExitReturn terminates the enclosing function (func.return,
	// llvm.return).
	ExitReturn
)

// Exit carries region-leaving control flow and its values.
type Exit struct {
	Kind   ExitKind
	Values []rtval.Value
}

// Dialect is a bundle of kernels giving semantics to one dialect's
// operations. Dialects compose: an Interpreter is built from any set of
// dialects, and op names must not collide.
type Dialect struct {
	Name        string
	Kernels     map[string]Kernel
	Terminators map[string]TerminatorKernel
	// Fusable declares, per op, that the kernel is equivalent to one of
	// the fused evaluation shapes (see fuse.go). Fusion is dialect
	// knowledge registered alongside the kernel — the compiled engine
	// fuses only ops whose owning dialect vouched for them.
	Fusable map[string]FuseSpec
}

// NewDialect creates an empty dialect semantics bundle.
func NewDialect(name string) *Dialect {
	return &Dialect{
		Name:        name,
		Kernels:     make(map[string]Kernel),
		Terminators: make(map[string]TerminatorKernel),
		Fusable:     make(map[string]FuseSpec),
	}
}

// Register adds a kernel for the fully-qualified op name.
func (d *Dialect) Register(op string, k Kernel) { d.Kernels[op] = k }

// RegisterTerminator adds a terminator kernel.
func (d *Dialect) RegisterTerminator(op string, k TerminatorKernel) { d.Terminators[op] = k }

// RegisterFusable declares the op's kernel fusable under the given
// spec. The op must also have a kernel registered — fusion refines
// dispatch, it does not replace semantics.
func (d *Dialect) RegisterFusable(op string, spec FuseSpec) { d.Fusable[op] = spec }

// Registry is the composed, immutable kernel table of a dialect
// combination — the expensive part of building an interpreter. A
// Registry is built once (composing the dialects' kernel sets, the
// paper's handler composition) and may then be shared freely: it is
// never mutated after construction, so any number of goroutines can
// instantiate Interpreters over it concurrently at the cost of one
// small allocation each.
type Registry struct {
	kernels     map[string]Kernel
	terminators map[string]TerminatorKernel
	fusable     map[string]FuseSpec
}

// NewRegistry composes the kernel tables of the given dialects.
// Composing two dialects that define the same operation is a
// programming error and panics, as the composition would be ambiguous.
func NewRegistry(dialects ...*Dialect) *Registry {
	r := &Registry{
		kernels:     make(map[string]Kernel),
		terminators: make(map[string]TerminatorKernel),
		fusable:     make(map[string]FuseSpec),
	}
	for _, d := range dialects {
		for name, k := range d.Kernels {
			if _, dup := r.kernels[name]; dup {
				panic(fmt.Sprintf("interp: duplicate kernel for %s", name))
			}
			r.kernels[name] = k
		}
		for name, k := range d.Terminators {
			if _, dup := r.terminators[name]; dup {
				panic(fmt.Sprintf("interp: duplicate terminator for %s", name))
			}
			r.terminators[name] = k
		}
		// Fuse specs cannot collide: the kernel dup check above already
		// rejects two dialects defining the same op.
		for name, spec := range d.Fusable {
			r.fusable[name] = spec
		}
	}
	return r
}

// Supports reports whether the registry has semantics for op name.
func (r *Registry) Supports(name string) bool {
	_, k := r.kernels[name]
	_, t := r.terminators[name]
	return k || t
}

// SupportedOps returns the number of operations with registered
// semantics.
func (r *Registry) SupportedOps() int {
	return len(r.kernels) + len(r.terminators)
}

// NewInterpreter instantiates an interpreter over the shared registry.
// The instance is cheap (per-instance limits only; the kernel tables
// are shared), so callers may create one per evaluation — or per
// worker goroutine — without rebuilding any composition.
func (r *Registry) NewInterpreter() *Interpreter {
	return &Interpreter{registry: r}
}

// Interpreter evaluates modules using the composed kernels of its
// dialects. The kernel tables live in a shared immutable Registry;
// the Interpreter itself only carries per-instance evaluation limits,
// so instances are cheap to create. An Interpreter (via its Contexts)
// must not be used from multiple goroutines at once, but distinct
// Interpreters over the same Registry may run concurrently.
type Interpreter struct {
	registry *Registry

	// MaxSteps bounds the number of operations evaluated in one Run,
	// guarding against non-termination in lowered loop code. Zero means
	// the default (10 million).
	MaxSteps int

	// MaxCallDepth bounds function-call recursion. Zero means the
	// default (256).
	MaxCallDepth int

	// Compiled selects the compiled execution engine for Run: the
	// module is compiled (per-op closures, slot-indexed frames; see
	// compile.go) and executed, instead of tree-walked. Results are
	// byte-identical either way — the engines differ only in cost.
	Compiled bool

	// Cache, when non-nil with Compiled set, memoizes compiled
	// programs across Run calls (the difftest harness runs the same
	// module once per build configuration).
	Cache *ProgramCache

	// Ctx, when non-nil, is checked cooperatively during evaluation
	// (every cancelCheckInterval steps and at every function call);
	// when it is cancelled or its deadline passes, the run stops with
	// an error wrapping Ctx.Err(). This is the watchdog hook the
	// campaign engine uses to bound each program's wall-clock cost.
	Ctx context.Context

	// Faults, when non-nil, is the deterministic fault-injection layer
	// (sites interp/dispatch and interp/registry). Production runs
	// leave it nil and pay one nil check per dispatched operation.
	Faults *faultinject.Injector

	// Metrics, when non-nil, receives per-run execution counters
	// (runs, steps, engine choice). Reporting happens once per Run —
	// never per operation — so it is off the dispatch hot path; nil
	// costs one check per Run.
	Metrics *Metrics

	// Coverage, when non-nil, receives one semantic-coverage hit per
	// executed operation, keyed by op name (interp/op/<name>). Both
	// engines and every fused path report through the same family, so
	// counts are engine-independent. Observation-only; nil costs one
	// check per dispatched op.
	Coverage *coverage.Map
}

// cancelCheckInterval is how many evaluated operations pass between
// two looks at Ctx.Err(): frequent enough that a per-program deadline
// lands within microseconds, rare enough to stay off the profile.
const cancelCheckInterval = 1024

// New composes an interpreter from dialect semantics, building a fresh
// Registry. Callers instantiating interpreters repeatedly over the same
// dialect combination should build one Registry and use NewInterpreter.
func New(dialects ...*Dialect) *Interpreter {
	return NewRegistry(dialects...).NewInterpreter()
}

// Supports reports whether the interpreter has semantics for op name.
func (in *Interpreter) Supports(name string) bool {
	return in.registry.Supports(name)
}

// SupportedOps returns the number of operations with registered
// semantics.
func (in *Interpreter) SupportedOps() int {
	return in.registry.SupportedOps()
}

// Result is the outcome of interpreting a module.
type Result struct {
	// Output is everything printed (one line per vector.print).
	Output string
	// Returned holds the entry function's return values.
	Returned []rtval.Value
}

// EvalError wraps an error raised during evaluation with the operation
// that raised it. Use errors.As with *rtval.UBError or *rtval.TrapError
// to classify.
type EvalError struct {
	OpName string
	Err    error
}

func (e *EvalError) Error() string { return e.OpName + ": " + e.Err.Error() }
func (e *EvalError) Unwrap() error { return e.Err }

// IsUB reports whether err stems from undefined behaviour.
func IsUB(err error) bool {
	var ub *rtval.UBError
	return errors.As(err, &ub)
}

// IsTrap reports whether err stems from a deterministic runtime trap.
func IsTrap(err error) bool {
	var tr *rtval.TrapError
	return errors.As(err, &tr)
}

// Run interprets the module, calling the entry function (no arguments).
// All top-level functions are added to the function table first (the
// paper's AddFunc effect); the entry function's region is then executed
// in an isolated scope. With Compiled set, the module is compiled
// (through Cache, if one is attached) and executed by the compiled
// engine instead — same Result, either way. The engine tiers: a module
// that cannot repay its compilation (straight-line code, where every op
// executes at most once) is tree-walked even with Compiled set, because
// walking an op costs less than compiling it. Callers that want
// unconditional compilation (benchmarks, the engine-agreement oracle)
// use Compile and RunProgram directly.
func (in *Interpreter) Run(m *ir.Module, entry string) (*Result, error) {
	return in.RunArgs(m, entry, nil)
}

// RunArgs is Run with entry-function arguments — the batched-campaign
// entry point, where one module runs many times under different inputs.
// Tiering is identical to Run.
func (in *Interpreter) RunArgs(m *ir.Module, entry string, args []rtval.Value) (*Result, error) {
	if in.Compiled && compilationPays(m) {
		var p *CompiledProgram
		if in.Cache != nil {
			p = in.Cache.Get(in.registry, m)
		} else {
			p = Compile(in.registry, m)
		}
		return in.RunProgramArgs(p, entry, args)
	}
	ctx := NewContext(in)
	for _, op := range m.Body().Ops {
		switch op.Name {
		case "func.func", "llvm.func":
			if err := ctx.AddFunc(op); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("interp: unsupported top-level operation %s", op.Name)
		}
	}
	stepsBefore := ctx.stepsLeft
	vals, err := ctx.CallFunc(entry, args)
	if err != nil {
		return nil, err
	}
	in.Metrics.noteRun(stepsBefore-ctx.stepsLeft, 0, false)
	return &Result{Output: ctx.Output(), Returned: vals}, nil
}

// Context is the interpreter-effects layer threaded through kernels:
// scoped assignment, the function table, the output writer, buffer
// memory (for lowered code), and execution services for regions and
// calls.
type Context struct {
	in    *Interpreter
	env   *scoped.Table[rtval.Value]
	funcs map[string]*ir.Operation
	out   []byte

	// Buffers backs memref values in lowered programs.
	buffers    map[int64][]rtval.Int
	nextBuffer int64

	// Evaluation limits, resolved from the Interpreter once at context
	// construction so the hot loop pays a single counter compare.
	stepsLeft    int
	maxCallDepth int
	callDepth    int

	// Watchdog, fault-injection and coverage state, resolved from the
	// Interpreter at context construction.
	cancel          context.Context
	cancelCheckLeft int
	faults          *faultinject.Injector
	cover           *coverage.Map

	// Compiled-mode state (see compile.go / exec.go). prog non-nil
	// means this context executes a CompiledProgram: Get/Define resolve
	// through frame slots, RunRegion/CallFunc run compiled bodies.
	prog        *CompiledProgram
	fn          *compiledFunc
	frame       []rtval.Value
	cur         *compiledOp
	regionStack []*compiledRegion
	isoFloor    int
	branchArgs  []rtval.Value
	spill       map[string]rtval.Value

	// Fused-execution state (see fuse.go): the register file holding
	// unboxed intermediates, the unboxed block-argument transfer
	// buffer, and the count of steps that ran fused this evaluation
	// (reported once per run through Metrics).
	regs       []rtval.Int
	argScratch []rtval.Int
	fusedSteps int

	// Per-depth reusable ExitYield records (YieldExit) and the tree
	// walker's branch-argument scratch — both exist to keep region
	// loops allocation-free.
	yieldScratch   []*Exit
	treeBranchArgs []rtval.Value
}

// NewContext builds a fresh evaluation context for the interpreter.
func NewContext(in *Interpreter) *Context {
	ctx := &Context{
		in:      in,
		env:     scoped.New[rtval.Value](),
		funcs:   make(map[string]*ir.Operation),
		buffers: make(map[int64][]rtval.Int),
	}
	ctx.initLimits(in)
	return ctx
}

// initLimits resolves the interpreter's evaluation limits (applying the
// zero-means-default rule) once, so step() and CallFunc check plain
// counters instead of re-deriving the defaults per operation.
func (ctx *Context) initLimits(in *Interpreter) {
	ctx.stepsLeft = in.MaxSteps
	if ctx.stepsLeft == 0 {
		ctx.stepsLeft = 10_000_000
	}
	ctx.maxCallDepth = in.MaxCallDepth
	if ctx.maxCallDepth == 0 {
		ctx.maxCallDepth = 256
	}
	ctx.cancel = in.Ctx
	ctx.cancelCheckLeft = 1 // check on the first step: expired budgets fail fast
	ctx.faults = in.Faults
	ctx.cover = in.Coverage
	ctx.fusedSteps = 0
}

// coverOp records one executed-op coverage hit when coverage is on.
// Both engines call it at the same point — after the step charge, at
// the start of the op's dispatch — so counts are engine-independent.
func (ctx *Context) coverOp(name string) {
	if ctx.cover != nil {
		ctx.cover.Hit(covInterpOp.Site(name))
	}
}

// checkCancel is the cooperative cancellation look: cheap countdown,
// occasional Ctx.Err(). Callers gate on ctx.cancel != nil.
func (ctx *Context) checkCancel() error {
	ctx.cancelCheckLeft--
	if ctx.cancelCheckLeft > 0 {
		return nil
	}
	ctx.cancelCheckLeft = cancelCheckInterval
	if err := ctx.cancel.Err(); err != nil {
		return fmt.Errorf("interp: cancelled: %w", err)
	}
	return nil
}

// Output returns everything printed so far.
func (ctx *Context) Output() string { return string(ctx.out) }

// Print writes one line of oracle-visible output (the writer effect).
// Printing a value that is not well-defined is undefined behaviour: the
// observable output would be non-deterministic.
func (ctx *Context) Print(v rtval.Value) error {
	if !v.Defined() {
		return &rtval.UBError{Op: "vector.print", Reason: "printing a value that is not well-defined"}
	}
	ctx.out = append(ctx.out, v.String()...)
	ctx.out = append(ctx.out, '\n')
	return nil
}

// PrintRaw writes a line without the definedness check; the llvm
// executor uses it to model printing whatever bits the hardware holds.
func (ctx *Context) PrintRaw(s string) {
	ctx.out = append(ctx.out, s...)
	ctx.out = append(ctx.out, '\n')
}

// Get resolves an operand to its runtime value (the assignment effect's
// read side). The binding must exist and its runtime type must agree
// with the operand's claimed type (dynamic dims in the claimed type
// match any concrete extent).
func (ctx *Context) Get(v ir.Value) (rtval.Value, error) {
	if ctx.prog != nil {
		return ctx.getCompiled(v)
	}
	val, ok := ctx.env.Lookup(v.ID)
	if !ok {
		return nil, fmt.Errorf("interp: use of undefined value %%%s", v.ID)
	}
	if !typeCompatible(v.Type, val.Type()) {
		return nil, fmt.Errorf("interp: value %%%s has runtime type %s but is used at type %s",
			v.ID, val.Type(), v.Type)
	}
	return val, nil
}

// GetInt resolves an operand that must be a scalar integer or index.
func (ctx *Context) GetInt(v ir.Value) (rtval.Int, error) {
	val, err := ctx.Get(v)
	if err != nil {
		return rtval.Int{}, err
	}
	i, ok := val.(rtval.Int)
	if !ok {
		return rtval.Int{}, fmt.Errorf("interp: value %%%s is not a scalar integer", v.ID)
	}
	return i, nil
}

// GetTensor resolves an operand that must be a tensor.
func (ctx *Context) GetTensor(v ir.Value) (*rtval.Tensor, error) {
	val, err := ctx.Get(v)
	if err != nil {
		return nil, err
	}
	t, ok := val.(*rtval.Tensor)
	if !ok {
		return nil, fmt.Errorf("interp: value %%%s is not a tensor", v.ID)
	}
	return t, nil
}

// GetMemRef resolves an operand that must be a memref.
func (ctx *Context) GetMemRef(v ir.Value) (rtval.MemRef, error) {
	val, err := ctx.Get(v)
	if err != nil {
		return rtval.MemRef{}, err
	}
	m, ok := val.(rtval.MemRef)
	if !ok {
		return rtval.MemRef{}, fmt.Errorf("interp: value %%%s is not a memref", v.ID)
	}
	return m, nil
}

// Define binds a result value (the assignment effect's write side).
// Rebinding an existing identifier in the same scope is permitted:
// static SSA uniqueness is the verifier's job, and lowered loop code
// legitimately re-executes defining operations on back edges.
func (ctx *Context) Define(v ir.Value, val rtval.Value) error {
	if ctx.prog != nil {
		return ctx.defineCompiled(v, val)
	}
	if !typeCompatible(v.Type, val.Type()) {
		return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
			v.ID, val.Type(), v.Type)
	}
	ctx.env.Bind(v.ID, val)
	return nil
}

// AddFunc registers a function in the function table (paper Fig. 8).
func (ctx *Context) AddFunc(f *ir.Operation) error {
	name := ir.FuncSymbol(f)
	if name == "" {
		return fmt.Errorf("interp: function without sym_name")
	}
	if _, dup := ctx.funcs[name]; dup {
		return fmt.Errorf("interp: duplicate function @%s", name)
	}
	ctx.funcs[name] = f
	return nil
}

// Func looks up a registered function.
func (ctx *Context) Func(name string) (*ir.Operation, bool) {
	f, ok := ctx.funcs[name]
	return f, ok
}

// CallFunc invokes a registered function with arguments (paper Fig. 8's
// CallFunc effect): the function body runs in an IsolatedFromAbove
// scope and must leave via ExitReturn.
func (ctx *Context) CallFunc(name string, args []rtval.Value) ([]rtval.Value, error) {
	if ctx.prog != nil {
		return ctx.callCompiled(name, args)
	}
	if ctx.faults != nil {
		if err := ctx.faults.Point(faultinject.SiteInterpRegistry); err != nil {
			return nil, err
		}
	}
	f, ok := ctx.funcs[name]
	if !ok {
		return nil, fmt.Errorf("interp: call to unknown function @%s", name)
	}
	ft, err := ir.FuncType(f)
	if err != nil {
		return nil, err
	}
	if len(args) != len(ft.Inputs) {
		return nil, fmt.Errorf("interp: call @%s with %d args, want %d", name, len(args), len(ft.Inputs))
	}
	if ctx.callDepth >= ctx.maxCallDepth {
		return nil, &rtval.TrapError{Op: "func.call", Reason: "call depth exceeded (runaway recursion)"}
	}
	ctx.callDepth++
	defer func() { ctx.callDepth-- }()

	exit, err := ctx.RunRegion(f.Regions[0], args, scoped.IsolatedFromAbove)
	if err != nil {
		return nil, err
	}
	if exit == nil || exit.Kind != ExitReturn {
		return nil, fmt.Errorf("interp: function @%s did not return", name)
	}
	if len(exit.Values) != len(ft.Results) {
		return nil, fmt.Errorf("interp: function @%s returned %d values, want %d", name, len(exit.Values), len(ft.Results))
	}
	return exit.Values, nil
}

// RunRegion executes a region: the entry block receives args as its
// block arguments; blocks execute until a terminator exits the region
// or branches to a sibling block. The region body runs in a fresh scope
// of the given kind (Standard regions see enclosing bindings;
// IsolatedFromAbove regions do not).
func (ctx *Context) RunRegion(r *ir.Region, args []rtval.Value, kind scoped.ScopeType) (*Exit, error) {
	if ctx.prog != nil {
		// The region is almost always one of the current op's own (a
		// loop body on every iteration): a pointer scan over those
		// beats the program-wide map lookup.
		var cr *compiledRegion
		if cur := ctx.cur; cur != nil {
			for _, c := range cur.regions {
				if c.region == r {
					cr = c
					break
				}
			}
		}
		if cr == nil {
			cr = ctx.prog.regions[r]
		}
		if cr == nil {
			return nil, fmt.Errorf("interp: region has no blocks")
		}
		// The kernel resumes after this region returns and may read
		// more of its operands; restore its op as the current one.
		cur := ctx.cur
		exit, err := ctx.execRegion(cr, args, kind)
		ctx.cur = cur
		return exit, err
	}
	block := r.Entry()
	if block == nil {
		return nil, fmt.Errorf("interp: region has no blocks")
	}
	ctx.env.Push(kind)
	defer ctx.env.Pop()

	for {
		if len(block.Args) != len(args) {
			return nil, fmt.Errorf("interp: block ^%s expects %d arguments, got %d", block.Label, len(block.Args), len(args))
		}
		// Bind block arguments into the region scope; branching back to
		// a block simply re-binds them.
		for i, a := range block.Args {
			if err := ctx.Define(a, args[i]); err != nil {
				return nil, err
			}
		}
		exit, next, nextArgs, err := ctx.runBlockOps(block)
		if err != nil {
			return nil, err
		}
		if exit != nil {
			return exit, nil
		}
		nb := r.Block(next)
		if nb == nil {
			return nil, fmt.Errorf("interp: branch to unknown block ^%s", next)
		}
		block, args = nb, nextArgs
	}
}

// YieldExit returns a reusable ExitYield record sized for n values,
// scoped to the current region depth. Yield kernels use it to avoid
// allocating an Exit (and its values slice) per region execution — the
// dominant per-iteration cost of structured loops. Reuse is sound
// because a yield's Exit is consumed by the region-running kernel
// before that kernel re-runs any region at the same depth, and regions
// at different depths get distinct records.
func (ctx *Context) YieldExit(n int) *Exit {
	d := len(ctx.regionStack)
	if ctx.prog == nil {
		d = ctx.env.Depth()
	}
	return ctx.yieldExitAt(d, n)
}

// yieldExit is YieldExit for the fused-CFG machine (always compiled
// mode).
func (ctx *Context) yieldExit(n int) *Exit {
	return ctx.yieldExitAt(len(ctx.regionStack), n)
}

func (ctx *Context) yieldExitAt(d, n int) *Exit {
	for len(ctx.yieldScratch) <= d {
		ctx.yieldScratch = append(ctx.yieldScratch, new(Exit))
	}
	ex := ctx.yieldScratch[d]
	ex.Kind = ExitYield
	if cap(ex.Values) < n {
		ex.Values = make([]rtval.Value, n)
	}
	ex.Values = ex.Values[:n]
	return ex
}

func (ctx *Context) runBlockOps(block *ir.Block) (exit *Exit, next string, nextArgs []rtval.Value, err error) {
	for _, op := range block.Ops {
		if err := ctx.step(); err != nil {
			return nil, "", nil, err
		}
		ctx.coverOp(op.Name)
		if ctx.faults != nil {
			if err := ctx.faults.Point(faultinject.SiteInterpDispatch); err != nil {
				return nil, "", nil, &EvalError{OpName: op.Name, Err: err}
			}
		}
		if tk, ok := ctx.in.registry.terminators[op.Name]; ok {
			res, err := tk(ctx, op)
			if err != nil {
				return nil, "", nil, &EvalError{OpName: op.Name, Err: err}
			}
			switch {
			case res.Exit != nil:
				return res.Exit, "", nil, nil
			case res.Branch != nil:
				// The scratch is safe to reuse across branches: RunRegion
				// defines the values into the target block's bindings
				// before any op can branch again.
				if cap(ctx.treeBranchArgs) < len(res.Branch.Args) {
					ctx.treeBranchArgs = make([]rtval.Value, len(res.Branch.Args))
				}
				args := ctx.treeBranchArgs[:len(res.Branch.Args)]
				for i, a := range res.Branch.Args {
					v, err := ctx.Get(a)
					if err != nil {
						return nil, "", nil, &EvalError{OpName: op.Name, Err: err}
					}
					args[i] = v
				}
				return nil, res.Branch.Block, args, nil
			default:
				return nil, "", nil, fmt.Errorf("interp: terminator %s produced no control flow", op.Name)
			}
		}
		k, ok := ctx.in.registry.kernels[op.Name]
		if !ok {
			return nil, "", nil, fmt.Errorf("interp: no semantics registered for %s", op.Name)
		}
		if err := k(ctx, op); err != nil {
			return nil, "", nil, &EvalError{OpName: op.Name, Err: err}
		}
	}
	return nil, "", nil, fmt.Errorf("interp: block ^%s ended without a terminator", block.Label)
}

func (ctx *Context) step() error {
	if ctx.stepsLeft <= 0 {
		return &rtval.TrapError{Op: "interp", Reason: "step limit exceeded (non-terminating program?)"}
	}
	ctx.stepsLeft--
	if ctx.cancel != nil {
		return ctx.checkCancel()
	}
	return nil
}

// Eval evaluates a single non-terminator operation against the current
// environment. This is the incremental-semantics entry point (paper
// Definition 3.3): Ratte's generator calls Eval once per appended
// extension, keeping the concrete state of the partial program current.
func (ctx *Context) Eval(op *ir.Operation) error {
	if err := ctx.step(); err != nil {
		return err
	}
	ctx.coverOp(op.Name)
	k, ok := ctx.in.registry.kernels[op.Name]
	if !ok {
		return fmt.Errorf("interp: no semantics registered for %s", op.Name)
	}
	if err := k(ctx, op); err != nil {
		return &EvalError{OpName: op.Name, Err: err}
	}
	return nil
}

// PushScope opens a new environment scope; generators use this to track
// region-local values while constructing region bodies.
func (ctx *Context) PushScope(kind scoped.ScopeType) { ctx.env.Push(kind) }

// PopScope closes the innermost environment scope.
func (ctx *Context) PopScope() { ctx.env.Pop() }

// Lookup resolves a value ID to its runtime value through the visible
// scopes.
func (ctx *Context) Lookup(id string) (rtval.Value, bool) {
	if ctx.prog != nil {
		return ctx.lookupCompiled(id)
	}
	return ctx.env.Lookup(id)
}

// VisibleIDs returns the IDs visible from the innermost scope.
func (ctx *Context) VisibleIDs() []string { return ctx.env.VisibleKeys() }

// AllocBuffer allocates backing storage for a memref of the given shape
// and element type, with every cell initialised to undef.
func (ctx *Context) AllocBuffer(shape []int64, elem ir.Type) rtval.MemRef {
	m := rtval.MemRef{Handle: ctx.nextBuffer, Shape: append([]int64(nil), shape...), Elem: elem}
	ctx.nextBuffer++
	buf := make([]rtval.Int, m.NumElements())
	for i := range buf {
		buf[i] = rtval.UndefInt(elem)
	}
	ctx.buffers[m.Handle] = buf
	return m
}

// Buffer returns the backing storage of a memref.
func (ctx *Context) Buffer(m rtval.MemRef) ([]rtval.Int, error) {
	buf, ok := ctx.buffers[m.Handle]
	if !ok {
		return nil, &rtval.TrapError{Op: "memref", Reason: "use of deallocated or unknown buffer"}
	}
	return buf, nil
}

// FreeBuffer releases a buffer (memref.dealloc).
func (ctx *Context) FreeBuffer(m rtval.MemRef) {
	delete(ctx.buffers, m.Handle)
}

// typeCompatible reports whether a runtime type satisfies a declared
// (possibly dynamically-shaped) type.
func typeCompatible(declared, runtime ir.Type) bool {
	if ir.TypeEqual(declared, runtime) {
		return true
	}
	dt, ok1 := declared.(ir.TensorType)
	rt, ok2 := runtime.(ir.TensorType)
	if ok1 && ok2 {
		return shapeCompatible(dt.Shape, rt.Shape) && ir.TypeEqual(dt.Elem, rt.Elem)
	}
	dm, ok1 := declared.(ir.MemRefType)
	rm, ok2 := runtime.(ir.MemRefType)
	if ok1 && ok2 {
		return shapeCompatible(dm.Shape, rm.Shape) && ir.TypeEqual(dm.Elem, rm.Elem)
	}
	return false
}

func shapeCompatible(declared, runtime []int64) bool {
	if len(declared) != len(runtime) {
		return false
	}
	for i := range declared {
		if declared[i] != ir.DynamicSize && declared[i] != runtime[i] {
			return false
		}
	}
	return true
}
