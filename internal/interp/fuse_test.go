package interp_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/telemetry"
)

// TestFusedLoopBodiesDoNotAllocate is the superinstruction alloc guard:
// a 2000-trip loop, structured or CFG-shaped, must run in O(1)
// allocations once compiled — intermediates stay in registers and the
// iteration state in reused scratch, so per-iteration cost is
// allocation-free. The bound is the handful of per-run setup
// allocations (frame, scratch headers), NOT per-iteration: any fusion
// regression that reintroduces boxing shows up here as thousands.
func TestFusedLoopBodiesDoNotAllocate(t *testing.T) {
	for _, w := range []struct{ name, src string }{
		{"scf_loop_2000", scfLoopSrc(2000)},
		{"cf_loop_2000", cfLoopSrc(2000)},
	} {
		t.Run(w.name, func(t *testing.T) {
			m := mustParse(t, w.src)
			prog := interp.Compile(dialects.ExecutorRegistry(), m)
			in := dialects.NewTreeWalkingExecutor()
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := in.RunProgram(prog, "main"); err != nil {
					t.Fatal(err)
				}
			})
			// Measured steady state is 6 allocs/run; 8 leaves headroom
			// for runtime jitter without admitting per-iteration boxing.
			if allocs > 8 {
				t.Errorf("fused loop allocated %.1f per run, want <= 8", allocs)
			}
		})
	}
}

// TestFusionStatsReported pins the compile-time fusion census: the loop
// workloads fuse most of their ops (body blocks fuse whole), and
// disabling fusion zeroes every counter, so the telemetry observable
// actually distinguishes the two engines.
func TestFusionStatsReported(t *testing.T) {
	for _, w := range []struct{ name, src string }{
		{"scf_loop_2000", scfLoopSrc(2000)},
		{"cf_loop_2000", cfLoopSrc(2000)},
	} {
		t.Run(w.name, func(t *testing.T) {
			m := mustParse(t, w.src)
			fused := interp.Compile(dialects.ExecutorRegistry(), m)
			st := fused.FusionStats()
			if st.TotalOps == 0 || st.FusedOps == 0 || st.Blocks == 0 {
				t.Fatalf("fused program reports empty stats: %+v", st)
			}
			if r := st.Rate(); r <= 0.5 {
				t.Errorf("fusion rate = %.2f, want > 0.5 on a loop workload (stats %+v)", r, st)
			}

			plain := interp.CompileWith(dialects.ExecutorRegistry(), m,
				interp.CompileOptions{DisableFusion: true})
			if st := plain.FusionStats(); st.FusedOps != 0 || st.Runs != 0 || st.Blocks != 0 {
				t.Errorf("DisableFusion program reports fusion: %+v", st)
			}
		})
	}
}

// TestFusedStepsMetric checks the fusion-rate observable end to end: a
// fused loop run reports most of its steps through the FusedSteps
// counter, and an unfused run of the same module reports none.
func TestFusedStepsMetric(t *testing.T) {
	m := mustParse(t, scfLoopSrc(2000))

	fusedMet := interp.NewMetrics(telemetry.NewRegistry())
	in := dialects.NewTreeWalkingExecutor()
	in.Metrics = fusedMet
	if _, err := in.RunProgram(interp.Compile(dialects.ExecutorRegistry(), m), "main"); err != nil {
		t.Fatal(err)
	}
	steps, fusedSteps := fusedMet.Steps.Value(), fusedMet.FusedSteps.Value()
	if fusedSteps == 0 {
		t.Fatal("fused loop run reported 0 fused steps")
	}
	if fusedSteps*2 < steps {
		t.Errorf("fused steps %d < half of %d total on a loop workload", fusedSteps, steps)
	}

	plainMet := interp.NewMetrics(telemetry.NewRegistry())
	pin := dialects.NewTreeWalkingExecutor()
	pin.Metrics = plainMet
	prog := interp.CompileWith(dialects.ExecutorRegistry(), m, interp.CompileOptions{DisableFusion: true})
	if _, err := pin.RunProgram(prog, "main"); err != nil {
		t.Fatal(err)
	}
	if v := plainMet.FusedSteps.Value(); v != 0 {
		t.Errorf("DisableFusion run reported %d fused steps, want 0", v)
	}
}
