// Superinstruction fusion: the compiled engine's third tier. Compile
// (compile.go) already removed per-op map lookups and scoped-table
// walks; what remains on the hot path is one dynamic kernel dispatch
// per op and one interface boxing per SSA value written back to the
// frame. Fusion removes both for straight-line scalar code, at two
// granularities:
//
//   - Run fusion: a maximal run of fusable ops inside a block becomes
//     one fused micro-program executed over a register file of unboxed
//     rtval.Int locals.
//   - Block fusion: a block whose every op is fusable — terminator
//     included (the cf.br / cf.cond_br / scf.yield shapes) — executes
//     entirely in registers, and a branch to another fused block of
//     the same region transfers its arguments register-to-register.
//     Loop-carried values in lowered loops then never touch the frame:
//     zero boxing per iteration.
//
// A value some read outside the fused code can observe is still stored
// to its frame slot (through rtval.Box, so small values do not allocate
// either); store elision is decided function-wide — a slot skips its
// stores only when every textual read of it, anywhere in the function,
// is register-bound.
//
// Byte-identical semantics are preserved at fused-op granularity:
// every fused instruction (terminators included) still decrements the
// step budget, polls the cooperative-cancel watchdog, hits the
// fault-injection dispatch site, replicates the kernel's operand-read
// order and error strings (including the write-side Define check), and
// wraps errors in EvalError exactly like the dispatch loop. Ops whose
// kernels would reject them at run time (malformed arity, missing
// attributes, non-scalar shapes) are simply not fused, so the original
// kernel reproduces the original diagnostics. The
// interp-engine-agreement conformance oracle pins fused-on vs
// fused-off equality end to end.
//
// Which ops are fusable is dialect knowledge, not engine knowledge: a
// dialect registers a FuseSpec alongside each kernel (the same
// composability discipline the paper uses for semantics), and the
// fusion pass trusts only those registrations. A registry composed
// without fuse specs compiles exactly as before.
package interp

import (
	"fmt"

	"ratte/internal/faultinject"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// FuseKind classifies the structural shape of a fusable operation —
// how many operands it reads (in kernel order), how many results it
// defines, and which FuseSpec closure evaluates it.
type FuseKind int

const (
	// FuseNone marks an op that must stay on its kernel.
	FuseNone FuseKind = iota
	// FuseConst is a nullary constant; FuseSpec.Const extracts the
	// value at compile time (returning false keeps the kernel).
	FuseConst
	// FuseBinPure is a two-operand, one-result op that cannot fail
	// (FuseSpec.Pure).
	FuseBinPure
	// FuseBinErr is a two-operand, one-result op whose evaluation can
	// raise UB or a trap (FuseSpec.Err).
	FuseBinErr
	// FuseCmp is a two-operand, one-result op parameterised by an
	// attribute; FuseSpec.Cmp binds the attribute at compile time.
	FuseCmp
	// FuseSelect is a three-operand, one-result conditional choice
	// (FuseSpec.Sel). Only scalar-typed operands fuse.
	FuseSelect
	// FuseCast is a one-operand, one-result conversion to the declared
	// result type (FuseSpec.Cast).
	FuseCast
	// FuseExtended is a two-operand, two-result op (FuseSpec.Ext).
	FuseExtended
	// FuseBr is an unconditional single-successor branch terminator
	// (the cf.br shape): pure control transfer, no closure.
	FuseBr
	// FuseCondBr is a two-successor branch terminator choosing on one
	// scalar operand (the cf.cond_br shape); FuseSpec.CondBr evaluates
	// the choice.
	FuseCondBr
	// FuseYield is a region-yield terminator (the scf.yield shape): its
	// operands, in order, become the region's ExitYield values.
	FuseYield
	// FuseFor is a counted loop following the scf.for protocol
	// (operands lb, ub, step, carried inits; one single-block body
	// region taking the induction variable plus the carried values;
	// one result per carried value). When the body block fused with a
	// FuseYield terminator, the engine runs the whole loop natively:
	// carried values stay in registers across iterations, never boxed.
	// FuseSpec.StepCheck validates the step like the kernel would.
	FuseFor
)

// FuseSpec declares that an op's kernel is equivalent to one of the
// fused evaluation shapes. Exactly the closure matching Kind is used.
// The contract: for every input on which the kernel succeeds or fails,
// the closure must produce the same result values or the same error —
// fusion changes dispatch and storage, never semantics.
type FuseSpec struct {
	Kind FuseKind
	// Pure evaluates a FuseBinPure op.
	Pure func(a, b rtval.Int) rtval.Int
	// Err evaluates a FuseBinErr op.
	Err func(a, b rtval.Int) (rtval.Int, error)
	// Cast evaluates a FuseCast op against the declared result type.
	Cast func(a rtval.Int, to ir.Type) rtval.Int
	// Ext evaluates a FuseExtended op, returning both results in
	// definition order.
	Ext func(a, b rtval.Int) (rtval.Int, rtval.Int)
	// Sel evaluates a FuseSelect op after all three operands are read.
	Sel func(cond, t, f rtval.Int) (rtval.Int, error)
	// Const extracts a FuseConst op's value at compile time; returning
	// false leaves the op unfused (the kernel then reports whatever it
	// reports).
	Const func(op *ir.Operation) (rtval.Int, bool)
	// Cmp binds a FuseCmp op's attribute at compile time; returning
	// false leaves the op unfused.
	Cmp func(op *ir.Operation) (func(a, b rtval.Int) (rtval.Int, error), bool)
	// CondBr picks the successor index (0 or 1) for a FuseCondBr op,
	// or fails exactly like the terminator kernel would.
	CondBr func(cond rtval.Int) (int, error)
	// StepCheck validates a FuseFor op's loop step, failing exactly
	// like the kernel would.
	StepCheck func(step rtval.Int) error
}

// Runtime instruction kinds (the compile-time FuseKind collapses: cmp
// becomes a bound binErr closure).
const (
	fiConst uint8 = iota
	fiBinPure
	fiBinErr
	fiSelect
	fiCast
	fiExtended
)

// Fused terminator kinds.
const (
	ftBr uint8 = iota
	ftCondBr
	ftYield
)

// fusedSrc is one operand of a fused instruction: a register written
// earlier under the same register state (reg >= 0), or a frame read
// through the op's resolved operand metadata with full readMeta
// semantics.
type fusedSrc struct {
	reg  int32
	meta *operandMeta
}

// fusedInstr is one constituent op of a fused run or block: its
// evaluation closure, operand sources, and result destinations.
// Results always land in a register; store marks the subset that must
// also be written back to the frame (any value some read outside the
// fused code can observe).
type fusedInstr struct {
	op   *ir.Operation
	kind uint8

	pure  func(a, b rtval.Int) rtval.Int
	errf  func(a, b rtval.Int) (rtval.Int, error)
	castf func(a rtval.Int, to ir.Type) rtval.Int
	extf  func(a, b rtval.Int) (rtval.Int, rtval.Int)
	self  func(cond, t, f rtval.Int) (rtval.Int, error)
	cval  rtval.Int

	a, b, c fusedSrc

	res, res2     *operandMeta
	dst, dst2     int32
	store, store2 bool
}

// fusedRun is one superinstruction inside an otherwise unfused block:
// a maximal run of fusable ops executed back to back with
// intermediates in registers.
type fusedRun struct {
	instrs []fusedInstr
	nregs  int
}

// fusedEdge is one successor of a fused block's terminator. A non-nil
// target keeps execution inside the fused CFG, transferring arguments
// register-to-register; a nil target leaves it — arguments are boxed
// and handed back to the generic block loop.
type fusedEdge struct {
	target *fusedBlock
	cs     *compiledSucc
	args   []fusedSrc
}

// fusedBlock is one fully-fused block: its arguments live in
// registers, its ops are fused instructions, and its terminator is
// evaluated by the engine per the dialect's registered shape.
type fusedBlock struct {
	cb *compiledBlock
	// argRegs assigns one register per block argument; argStore marks
	// the arguments whose frame slots stay observable.
	argRegs  []int32
	argStore []bool
	instrs   []fusedInstr

	termOp   *ir.Operation
	termKind uint8
	cond     fusedSrc // ftCondBr: the choice operand
	condBr   func(cond rtval.Int) (int, error)
	yields   []fusedSrc  // ftYield: exit values, in order
	succs    []fusedEdge // ftBr: one edge; ftCondBr: two

	nregs int
}

// fusedFor is one natively-executed counted loop (the FuseFor shape):
// the op's resolved operand/result metadata plus its fused body block.
// Carried values live in the body's argument registers across
// iterations — the only boxing left is the final result defines.
type fusedFor struct {
	cop       *compiledOp
	body      *fusedBlock
	region    *compiledRegion
	stepCheck func(step rtval.Int) error
	lb, ub, step fusedSrc
	inits        []fusedSrc
}

// FusionStats summarises the fusion decisions recorded on a
// CompiledProgram: how many ops were compiled, how many of them landed
// inside fused units, and how many units were formed.
type FusionStats struct {
	TotalOps int
	FusedOps int
	// Runs counts fused units: straight-line runs plus whole blocks.
	Runs int
	// Blocks counts the subset of units that are whole fused blocks
	// (terminator included).
	Blocks int
}

// Rate returns the fraction of compiled ops inside fused units.
func (s FusionStats) Rate() float64 {
	if s.TotalOps == 0 {
		return 0
	}
	return float64(s.FusedOps) / float64(s.TotalOps)
}

// FusionStats reports the program's fusion decisions for telemetry.
func (p *CompiledProgram) FusionStats() FusionStats { return p.stats }

// fuseState is the per-function pass state: the function-wide read
// census (how many textual frame reads target each slot, and which
// slots appear in some shadow chain — a read through a chain can
// observe an outer slot only while an inner one is unwritten, so
// chained slots always keep their stores), the register-bound read
// census accumulated while building fused units, and the units
// awaiting their final store-flag assignment.
type fuseState struct {
	reads     []int32
	altRef    []bool
	regReads  []int32
	mustStore []bool
	runs      []*fusedRun
	fblocks   []*fusedBlock
}

func (st *fuseState) scanMeta(m *operandMeta) {
	if m.slot >= 0 && m.slot < len(st.reads) {
		st.reads[m.slot]++
	}
	for _, alt := range m.alts {
		if alt.Slot >= 0 && alt.Slot < len(st.altRef) {
			st.altRef[alt.Slot] = true
		}
	}
}

func (st *fuseState) scanRegion(cr *compiledRegion) {
	if cr == nil {
		return
	}
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		for oi := range cb.ops {
			cop := &cb.ops[oi]
			for i := range cop.operands {
				st.scanMeta(&cop.operands[i])
			}
			for si := range cop.succs {
				for i := range cop.succs[si].args {
					st.scanMeta(&cop.succs[si].args[i])
				}
			}
			for _, sub := range cop.regions {
				st.scanRegion(sub)
			}
		}
	}
}

// elidableSlot reports whether a fused writer may skip the slot's
// frame store: every textual read of the slot, function-wide, is
// register-bound, no shadow chain can observe it, and no in-unit read
// forced materialisation. Elided slots stay nil in the frame — which
// is exactly what any read that counted as register-bound will never
// see, because it reads the register.
func (st *fuseState) elidableSlot(slot int) bool {
	if slot < 0 || slot >= len(st.reads) {
		return false
	}
	if st.mustStore[slot] || st.altRef[slot] {
		return false
	}
	return st.reads[slot] == st.regReads[slot]
}

// fuseFunc runs the fusion pass over one compiled function. It must
// run after hoistChecks: operand metas are final by then.
func (p *CompiledProgram) fuseFunc(cf *compiledFunc) {
	if cf.body == nil {
		return
	}
	st := &fuseState{
		reads:     make([]int32, cf.numSlots),
		altRef:    make([]bool, cf.numSlots),
		regReads:  make([]int32, cf.numSlots),
		mustStore: make([]bool, cf.numSlots),
	}
	st.scanRegion(cf.body)
	p.fuseRegion(cf.body, st)

	// Store elision is decided only now, when every register binding in
	// the function has been counted.
	for _, run := range st.runs {
		setStores(run.instrs, st)
	}
	for _, fb := range st.fblocks {
		setStores(fb.instrs, st)
		for i := range fb.cb.args {
			fb.argStore[i] = !st.elidableSlot(fb.cb.args[i].slot)
		}
	}
}

func setStores(instrs []fusedInstr, st *fuseState) {
	for k := range instrs {
		ins := &instrs[k]
		ins.store = !st.elidableSlot(ins.res.slot)
		if ins.res2 != nil {
			ins.store2 = !st.elidableSlot(ins.res2.slot)
		}
	}
}

func (p *CompiledProgram) fuseRegion(cr *compiledRegion, st *fuseState) {
	if cr == nil {
		return
	}
	// Sub-regions fuse first: loop fusion (tryFuseFor) needs to see
	// the body region's fused form.
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		for oi := range cb.ops {
			for _, sub := range cb.ops[oi].regions {
				p.fuseRegion(sub, st)
			}
		}
	}
	// Then build every fully-fused block of this region, then link
	// their edges (a branch transfers in registers only when its target
	// fused too), then run-fuse the remaining blocks and attach loop
	// fusion to region ops living in them.
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		if fb := p.tryFuseWholeBlock(cb, st); fb != nil {
			cb.fblock = fb
			st.fblocks = append(st.fblocks, fb)
		}
	}
	for bi := range cr.blocks {
		if fb := cr.blocks[bi].fblock; fb != nil {
			p.linkEdges(cr, fb)
		}
	}
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		if cb.fblock == nil {
			p.fuseBlock(cb, st)
			for oi := range cb.ops {
				p.tryFuseFor(&cb.ops[oi])
			}
		}
	}
}

// tryFuseFor attaches native loop execution to an op following the
// FuseFor protocol whose single-block body fused with a yield
// terminator. Every structural property the kernel checks (or panics
// on) at run time is verified here; a mismatch declines so the kernel
// reproduces the behaviour.
func (p *CompiledProgram) tryFuseFor(cop *compiledOp) {
	if cop.kernel == nil || cop.term != nil || cop.fail != nil {
		return
	}
	op := cop.op
	spec, ok := p.registry.fusable[op.Name]
	if !ok || spec.Kind != FuseFor || spec.StepCheck == nil {
		return
	}
	if len(cop.regions) != 1 || len(op.Successors) != 0 || len(op.Operands) < 3 {
		return
	}
	n := len(op.Operands) - 3
	if len(op.Results) != n {
		return
	}
	// Bounds and carried values live in Int registers; results are
	// boxed back — all must be scalar.
	for _, v := range op.Operands {
		if !scalarType(v.Type) {
			return
		}
	}
	for _, v := range op.Results {
		if !scalarType(v.Type) {
			return
		}
	}
	cr := cop.regions[0]
	if cr == nil || len(cr.blocks) != 1 {
		return
	}
	fb := cr.blocks[0].fblock
	if fb == nil || fb.termKind != ftYield {
		return
	}
	if len(fb.cb.args) != 1+n || len(fb.yields) != n {
		return
	}
	ff := &fusedFor{cop: cop, body: fb, region: cr, stepCheck: spec.StepCheck}
	ff.lb = fusedSrc{reg: -1, meta: &cop.operands[0]}
	ff.ub = fusedSrc{reg: -1, meta: &cop.operands[1]}
	ff.step = fusedSrc{reg: -1, meta: &cop.operands[2]}
	ff.inits = make([]fusedSrc, n)
	for i := 0; i < n; i++ {
		ff.inits[i] = fusedSrc{reg: -1, meta: &cop.operands[3+i]}
	}
	cop.ffor = ff
	p.stats.FusedOps++
}

// fuseCand is one op's compile-time fusion decision: its runtime kind
// plus the bound evaluation closure.
type fuseCand struct {
	kind  uint8
	pure  func(a, b rtval.Int) rtval.Int
	errf  func(a, b rtval.Int) (rtval.Int, error)
	castf func(a rtval.Int, to ir.Type) rtval.Int
	extf  func(a, b rtval.Int) (rtval.Int, rtval.Int)
	self  func(cond, t, f rtval.Int) (rtval.Int, error)
	cval  rtval.Int
}

func scalarType(t ir.Type) bool {
	switch t.(type) {
	case ir.IntegerType, ir.IndexType:
		return true
	}
	return false
}

// fuseCandidate decides whether one compiled non-terminator op can
// join a fused unit. Anything the kernel would reject (or panic on) at
// run time is left unfused so the kernel path reproduces the exact
// behaviour.
func (p *CompiledProgram) fuseCandidate(cop *compiledOp) (fuseCand, bool) {
	var c fuseCand
	if cop.kernel == nil || cop.term != nil || cop.fail != nil {
		return c, false
	}
	op := cop.op
	if len(op.Regions) != 0 || len(op.Successors) != 0 {
		return c, false
	}
	spec, ok := p.registry.fusable[op.Name]
	if !ok {
		return c, false
	}
	switch spec.Kind {
	case FuseConst:
		if len(op.Results) != 1 || spec.Const == nil {
			return c, false
		}
		v, ok := spec.Const(op)
		if !ok {
			return c, false
		}
		c.kind, c.cval = fiConst, v
		return c, true
	case FuseBinPure:
		if len(op.Operands) != 2 || len(op.Results) != 1 || spec.Pure == nil {
			return c, false
		}
		c.kind, c.pure = fiBinPure, spec.Pure
		return c, true
	case FuseBinErr:
		if len(op.Operands) != 2 || len(op.Results) != 1 || spec.Err == nil {
			return c, false
		}
		c.kind, c.errf = fiBinErr, spec.Err
		return c, true
	case FuseCmp:
		if len(op.Operands) != 2 || len(op.Results) != 1 || spec.Cmp == nil {
			return c, false
		}
		f, ok := spec.Cmp(op)
		if !ok {
			return c, false
		}
		c.kind, c.errf = fiBinErr, f
		return c, true
	case FuseSelect:
		if len(op.Operands) != 3 || len(op.Results) != 1 || spec.Sel == nil {
			return c, false
		}
		// The fused reader materialises operands as unboxed Ints; only
		// scalar declared types guarantee that (select over tensors
		// stays on the kernel).
		if !scalarType(op.Operands[1].Type) || !scalarType(op.Operands[2].Type) {
			return c, false
		}
		c.kind, c.self = fiSelect, spec.Sel
		return c, true
	case FuseCast:
		if len(op.Operands) != 1 || len(op.Results) != 1 || spec.Cast == nil {
			return c, false
		}
		// Cast closures build a value of the declared result type;
		// non-scalar targets stay on the kernel (index_cast panics on
		// them, and the compiled engine must keep doing so).
		if !scalarType(op.Results[0].Type) {
			return c, false
		}
		c.kind, c.castf = fiCast, spec.Cast
		return c, true
	case FuseExtended:
		if len(op.Operands) != 2 || len(op.Results) != 2 || spec.Ext == nil {
			return c, false
		}
		c.kind, c.extf = fiExtended, spec.Ext
		return c, true
	}
	return c, false
}

// binder tracks, while lowering one fused unit, which slots currently
// have a register holding their value (and at what declared type), and
// allocates result registers.
type binder struct {
	st      *fuseState
	nreg    int32
	lastReg map[int]int32   // slot -> register of latest in-unit writer
	lastTyp map[int]ir.Type // slot -> that writer's declared type
}

func newBinder(st *fuseState) *binder {
	return &binder{st: st, lastReg: make(map[int]int32), lastTyp: make(map[int]ir.Type)}
}

// bind resolves one read: against the unit's register state when the
// slot's latest in-unit writer declared a TypeEqual type, else against
// the frame (with full readMeta semantics at run time).
func (b *binder) bind(m *operandMeta) fusedSrc {
	if m.slot >= 0 {
		if reg, ok := b.lastReg[m.slot]; ok {
			if ir.TypeEqual(b.lastTyp[m.slot], m.typ) {
				b.st.regReads[m.slot]++
				return fusedSrc{reg: reg}
			}
			// An in-unit read at a diverging declared type must go
			// through readMeta (its check may fire), so the write has
			// to be materialised in the frame.
			b.st.mustStore[m.slot] = true
		}
	}
	return fusedSrc{reg: -1, meta: m}
}

// define allocates the register a result (or block argument) lands in.
func (b *binder) define(slot int, typ ir.Type) int32 {
	reg := b.nreg
	b.nreg++
	b.lastReg[slot] = reg
	b.lastTyp[slot] = typ
	return reg
}

// lowerInstr fills one fusedInstr from a compiled op and its fusion
// decision, binding operands before allocating result registers (a
// self-referencing read sees the previous binding).
func (b *binder) lowerInstr(ins *fusedInstr, cop *compiledOp, cand *fuseCand) {
	ins.op = cop.op
	ins.kind = cand.kind
	ins.pure, ins.errf, ins.castf, ins.extf, ins.self = cand.pure, cand.errf, cand.castf, cand.extf, cand.self
	ins.cval = cand.cval
	switch cand.kind {
	case fiConst:
		// no operands
	case fiBinPure, fiBinErr, fiExtended:
		ins.a = b.bind(&cop.operands[0])
		ins.b = b.bind(&cop.operands[1])
	case fiSelect:
		ins.a = b.bind(&cop.operands[0])
		ins.b = b.bind(&cop.operands[1])
		ins.c = b.bind(&cop.operands[2])
	case fiCast:
		ins.a = b.bind(&cop.operands[0])
	}
	ins.res = &cop.results[0]
	ins.dst = b.define(ins.res.slot, ins.res.typ)
	if cand.kind == fiExtended {
		ins.res2 = &cop.results[1]
		ins.dst2 = b.define(ins.res2.slot, ins.res2.typ)
	}
}

// tryFuseWholeBlock builds a fusedBlock when every op of the block is
// fusable, terminator included, and every block argument is scalar
// (arguments live in Int registers). Edges are linked later
// (linkEdges), once all blocks of the region have decided.
func (p *CompiledProgram) tryFuseWholeBlock(cb *compiledBlock, st *fuseState) *fusedBlock {
	if len(cb.ops) == 0 {
		return nil
	}
	for i := range cb.args {
		if !scalarType(cb.args[i].typ) {
			return nil
		}
	}
	last := &cb.ops[len(cb.ops)-1]
	if last.term == nil || last.fail != nil {
		return nil
	}
	spec, ok := p.registry.fusable[last.op.Name]
	if !ok {
		return nil
	}
	var termKind uint8
	switch spec.Kind {
	case FuseBr:
		// The cf.br kernel rejects any other successor count; leave
		// malformed ops on it.
		if len(last.op.Successors) != 1 {
			return nil
		}
		termKind = ftBr
	case FuseCondBr:
		if len(last.op.Successors) != 2 || len(last.op.Operands) != 1 || spec.CondBr == nil {
			return nil
		}
		termKind = ftCondBr
	case FuseYield:
		if len(last.op.Successors) != 0 {
			return nil
		}
		// Yield values are materialised from registers or scalar frame
		// reads; non-scalar yields stay on the kernel.
		for _, v := range last.op.Operands {
			if !scalarType(v.Type) {
				return nil
			}
		}
		termKind = ftYield
	default:
		return nil
	}
	cands := make([]fuseCand, len(cb.ops)-1)
	for i := 0; i < len(cb.ops)-1; i++ {
		c, ok := p.fuseCandidate(&cb.ops[i])
		if !ok {
			return nil
		}
		cands[i] = c
	}

	fb := &fusedBlock{cb: cb, termOp: last.op, termKind: termKind}
	b := newBinder(st)
	fb.argRegs = make([]int32, len(cb.args))
	fb.argStore = make([]bool, len(cb.args))
	for i := range cb.args {
		fb.argRegs[i] = b.define(cb.args[i].slot, cb.args[i].typ)
	}
	fb.instrs = make([]fusedInstr, len(cb.ops)-1)
	for i := 0; i < len(cb.ops)-1; i++ {
		b.lowerInstr(&fb.instrs[i], &cb.ops[i], &cands[i])
	}
	switch termKind {
	case ftCondBr:
		fb.cond = b.bind(&last.operands[0])
		fb.condBr = spec.CondBr
	case ftYield:
		fb.yields = make([]fusedSrc, len(last.operands))
		for i := range last.operands {
			fb.yields[i] = b.bind(&last.operands[i])
		}
	}
	if termKind != ftYield {
		fb.succs = make([]fusedEdge, len(last.succs))
		for si := range last.succs {
			cs := &last.succs[si]
			args := make([]fusedSrc, len(cs.args))
			for i := range cs.args {
				args[i] = b.bind(&cs.args[i])
			}
			fb.succs[si] = fusedEdge{cs: cs, args: args}
		}
	}
	fb.nregs = int(b.nreg)
	if fb.nregs > p.maxRegs {
		p.maxRegs = fb.nregs
	}
	p.stats.FusedOps += len(cb.ops)
	p.stats.Runs++
	p.stats.Blocks++
	return fb
}

// linkEdges decides, per successor of a fused block, whether the
// branch stays inside the fused CFG. It may only when the target block
// fused too, the argument count matches its parameters (a mismatch
// must surface the generic loop's error), and every frame-sourced
// argument is scalar (register transfer materialises unboxed Ints).
func (p *CompiledProgram) linkEdges(cr *compiledRegion, fb *fusedBlock) {
	for si := range fb.succs {
		e := &fb.succs[si]
		if e.cs.blockIdx < 0 {
			continue
		}
		target := cr.blocks[e.cs.blockIdx].fblock
		if target == nil || len(e.args) != len(target.cb.args) {
			continue
		}
		scalarOK := true
		for i := range e.args {
			if e.args[i].reg < 0 && !scalarType(e.args[i].meta.typ) {
				scalarOK = false
				break
			}
		}
		if scalarOK {
			e.target = target
		}
	}
}

// fuseBlock finds maximal runs of fusable ops inside an otherwise
// unfused block and installs a fusedRun on each run's first op. Runs
// of one op keep normal dispatch — a one-instruction superinstruction
// saves nothing.
func (p *CompiledProgram) fuseBlock(cb *compiledBlock, st *fuseState) {
	var cands []fuseCand
	i := 0
	for i < len(cb.ops) {
		c, ok := p.fuseCandidate(&cb.ops[i])
		if !ok {
			i++
			continue
		}
		cands = append(cands[:0], c)
		j := i + 1
		for j < len(cb.ops) {
			c, ok := p.fuseCandidate(&cb.ops[j])
			if !ok {
				break
			}
			cands = append(cands, c)
			j++
		}
		if j-i >= 2 {
			p.buildRun(cb, i, j, cands, st)
		}
		i = j
	}
}

// buildRun lowers ops [lo, hi) of the block into one fused run.
func (p *CompiledProgram) buildRun(cb *compiledBlock, lo, hi int, cands []fuseCand, st *fuseState) {
	run := &fusedRun{instrs: make([]fusedInstr, hi-lo)}
	b := newBinder(st)
	for k := lo; k < hi; k++ {
		b.lowerInstr(&run.instrs[k-lo], &cb.ops[k], &cands[k-lo])
	}
	run.nregs = int(b.nreg)
	if run.nregs > p.maxRegs {
		p.maxRegs = run.nregs
	}
	cb.ops[lo].fused = run
	cb.ops[lo].fuseSkip = hi - lo - 1
	st.runs = append(st.runs, run)
	p.stats.FusedOps += hi - lo
	p.stats.Runs++
}

// execFused executes one fused run, accounting executed instructions
// into the context's fused-step counter.
func (ctx *Context) execFused(fr *fusedRun) error {
	regs := ctx.growRegs(fr.nregs)
	n, err := ctx.execInstrs(fr.instrs, regs)
	ctx.fusedSteps += n
	return err
}

// growRegs returns the context's register file with capacity for at
// least n registers (rtval.Int holds no pointers, so stale entries
// retain nothing across reuses).
func (ctx *Context) growRegs(n int) []rtval.Int {
	if cap(ctx.regs) < n {
		ctx.regs = make([]rtval.Int, n)
	}
	return ctx.regs[:cap(ctx.regs)]
}

// intScratch returns the context's reusable unboxed-argument buffer,
// used for block-argument transfer inside fused CFGs. Safe to reuse
// per transfer: values are committed to the target's registers (and
// observable frame slots) before the next transfer overwrites it.
func (ctx *Context) intScratch(n int) []rtval.Int {
	if cap(ctx.argScratch) < n {
		ctx.argScratch = make([]rtval.Int, n)
	}
	return ctx.argScratch[:n]
}

// fusedInt reads one fused operand that must be a scalar: a register,
// or a frame slot with the exact readMeta + GetInt semantics of the
// kernel path.
func (ctx *Context) fusedInt(regs []rtval.Int, s *fusedSrc) (rtval.Int, error) {
	if s.reg >= 0 {
		return regs[s.reg], nil
	}
	v, err := ctx.readMeta(s.meta)
	if err != nil {
		return rtval.Int{}, err
	}
	i, ok := v.(rtval.Int)
	if !ok {
		return rtval.Int{}, fmt.Errorf("interp: value %%%s is not a scalar integer", s.meta.id)
	}
	return i, nil
}

// fusedValue reads one fused operand as a boxed value (yield values
// and out-of-cluster branch arguments, where the kernel path uses the
// untyped Get): registers box through the intern table, frame sources
// keep readMeta's exact semantics.
func (ctx *Context) fusedValue(regs []rtval.Int, s *fusedSrc) (rtval.Value, error) {
	if s.reg >= 0 {
		return rtval.Box(regs[s.reg]), nil
	}
	return ctx.readMeta(s.meta)
}

// fusedDefine commits one result: the write-side type check always
// runs (same message as defineCompiled — it is what lets read checks
// hoist), the register always receives the unboxed value, and only
// observable slots pay the (interned) boxing of a frame store.
func (ctx *Context) fusedDefine(regs []rtval.Int, m *operandMeta, dst int32, store bool, r rtval.Int) error {
	if !typeCompatible(m.typ, r.Type()) {
		return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
			m.id, r.Type(), m.typ)
	}
	regs[dst] = r
	if store {
		ctx.frame[m.slot] = rtval.Box(r)
	}
	return nil
}

// fusedTick is the per-instruction bookkeeping every fused op pays,
// identical to the dispatch loop's: step budget, cancel poll, fault
// point (wrapped under the op's name like a kernel error would be).
func (ctx *Context) fusedTick(op *ir.Operation) error {
	if ctx.stepsLeft <= 0 {
		return &rtval.TrapError{Op: "interp", Reason: "step limit exceeded (non-terminating program?)"}
	}
	ctx.stepsLeft--
	if ctx.cancel != nil {
		if err := ctx.checkCancel(); err != nil {
			return err
		}
	}
	ctx.coverOp(op.Name)
	if ctx.faults != nil {
		if err := ctx.faults.Point(faultinject.SiteInterpDispatch); err != nil {
			return &EvalError{OpName: op.Name, Err: err}
		}
	}
	return nil
}

// execInstrs is the fused dispatch loop over one instruction slice,
// returning how many instructions were charged to the step budget.
// Every error is wrapped exactly as the dispatch loop would wrap the
// kernel's error.
func (ctx *Context) execInstrs(instrs []fusedInstr, regs []rtval.Int) (int, error) {
	steps := 0
	for ii := range instrs {
		ins := &instrs[ii]
		if err := ctx.fusedTick(ins.op); err != nil {
			return steps, err
		}
		steps++
		var r, r2 rtval.Int
		switch ins.kind {
		case fiConst:
			r = ins.cval
		case fiBinPure:
			a, err := ctx.fusedInt(regs, &ins.a)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			b, err := ctx.fusedInt(regs, &ins.b)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			r = ins.pure(a, b)
		case fiBinErr:
			a, err := ctx.fusedInt(regs, &ins.a)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			b, err := ctx.fusedInt(regs, &ins.b)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			r, err = ins.errf(a, b)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
		case fiSelect:
			cond, err := ctx.fusedInt(regs, &ins.a)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			t, err := ctx.fusedInt(regs, &ins.b)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			f, err := ctx.fusedInt(regs, &ins.c)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			r, err = ins.self(cond, t, f)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
		case fiCast:
			a, err := ctx.fusedInt(regs, &ins.a)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			r = ins.castf(a, ins.res.typ)
		case fiExtended:
			a, err := ctx.fusedInt(regs, &ins.a)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			b, err := ctx.fusedInt(regs, &ins.b)
			if err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
			r, r2 = ins.extf(a, b)
		}
		if err := ctx.fusedDefine(regs, ins.res, ins.dst, ins.store, r); err != nil {
			return steps, &EvalError{OpName: ins.op.Name, Err: err}
		}
		if ins.res2 != nil {
			if err := ctx.fusedDefine(regs, ins.res2, ins.dst2, ins.store2, r2); err != nil {
				return steps, &EvalError{OpName: ins.op.Name, Err: err}
			}
		}
	}
	return steps, nil
}

// execFusedFor runs one natively-fused counted loop. It mirrors the
// scf.for kernel step for step — bound reads in kernel order, the
// dialect's step check, carried-value reads, per-iteration region slot
// clearing and block-argument defines, per-op bookkeeping inside the
// body, result defines after the loop — but keeps the induction
// variable and every carried value in registers across iterations.
// Errors are returned exactly as the kernel would return them; the
// dispatch loop wraps them under the loop op's name, as it would wrap
// the kernel's.
func (ctx *Context) execFusedFor(ff *fusedFor) error {
	lb, err := ctx.fusedInt(nil, &ff.lb)
	if err != nil {
		return err
	}
	ub, err := ctx.fusedInt(nil, &ff.ub)
	if err != nil {
		return err
	}
	step, err := ctx.fusedInt(nil, &ff.step)
	if err != nil {
		return err
	}
	if err := ff.stepCheck(step); err != nil {
		return err
	}
	n := len(ff.inits)
	vals := ctx.intScratch(n)
	for i := range ff.inits {
		v, err := ctx.fusedInt(nil, &ff.inits[i])
		if err != nil {
			return err
		}
		vals[i] = v
	}

	fb := ff.body
	regs := ctx.growRegs(fb.nregs)
	for iv := lb.Signed(); iv < ub.Signed(); iv += step.Signed() {
		// Region re-entry: every local binding starts undefined, exactly
		// like execRegion's wholesale clear.
		clear(ctx.frame[ff.region.slotLo:ff.region.slotHi])

		ivv := rtval.NewIndex(iv)
		ab := &fb.cb.args[0]
		if ab.check && !typeCompatible(ab.typ, ivv.Type()) {
			return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
				ab.id, ivv.Type(), ab.typ)
		}
		regs[fb.argRegs[0]] = ivv
		if fb.argStore[0] {
			ctx.frame[ab.slot] = rtval.Box(ivv)
		}
		for i := 0; i < n; i++ {
			ab := &fb.cb.args[1+i]
			if ab.check && !typeCompatible(ab.typ, vals[i].Type()) {
				return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
					ab.id, vals[i].Type(), ab.typ)
			}
			regs[fb.argRegs[1+i]] = vals[i]
			if fb.argStore[1+i] {
				ctx.frame[ab.slot] = rtval.Box(vals[i])
			}
		}

		nsteps, err := ctx.execInstrs(fb.instrs, regs)
		ctx.fusedSteps += nsteps
		if err != nil {
			return err
		}
		if err := ctx.fusedTick(fb.termOp); err != nil {
			return err
		}
		ctx.fusedSteps++
		for i := range fb.yields {
			v, err := ctx.fusedInt(regs, &fb.yields[i])
			if err != nil {
				// The yield kernel's read error surfaces wrapped under the
				// yield op, then under the loop op — replicate the inner
				// wrap here (the dispatch loop adds the outer one).
				return &EvalError{OpName: fb.termOp.Name, Err: err}
			}
			vals[i] = v
		}
	}

	for i := range ff.cop.results {
		m := &ff.cop.results[i]
		if !typeCompatible(m.typ, vals[i].Type()) {
			return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
				m.id, vals[i].Type(), m.typ)
		}
		ctx.frame[m.slot] = rtval.Box(vals[i])
	}
	return nil
}

// execFusedCFG runs the fused-CFG machine starting at fb with the
// generic loop's boxed arguments. It returns handled=false — before
// any side effect — if an argument is not a scalar Int (the generic
// path then executes the block unfused; a fused block's checked scalar
// parameters make that unreachable in-tree, but the fallback keeps the
// contract unconditional). Otherwise it runs fused blocks,
// transferring registers across in-cluster edges, until the region
// yields (exit), control leaves the cluster (next block + boxed args),
// or an error surfaces — each exactly as the generic loop would have
// produced it.
func (ctx *Context) execFusedCFG(cr *compiledRegion, fb *fusedBlock, args []rtval.Value) (exit *Exit, next *compiledBlock, nextArgs []rtval.Value, handled bool, err error) {
	if len(fb.cb.args) != len(args) {
		return nil, nil, nil, true, fmt.Errorf("interp: block ^%s expects %d arguments, got %d", fb.cb.label, len(fb.cb.args), len(args))
	}
	ints := ctx.intScratch(len(args))
	for i, v := range args {
		iv, ok := v.(rtval.Int)
		if !ok {
			return nil, nil, nil, false, nil
		}
		ints[i] = iv
	}
	regs := ctx.growRegs(fb.nregs)
	for {
		// Commit block arguments: per-argument check in order (first
		// failure wins, like the generic loop), registers always, frame
		// only where observable.
		for i := range fb.cb.args {
			ab := &fb.cb.args[i]
			if ab.check && !typeCompatible(ab.typ, ints[i].Type()) {
				return nil, nil, nil, true, fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
					ab.id, ints[i].Type(), ab.typ)
			}
			regs[fb.argRegs[i]] = ints[i]
			if fb.argStore[i] {
				ctx.frame[ab.slot] = rtval.Box(ints[i])
			}
		}

		n, err := ctx.execInstrs(fb.instrs, regs)
		ctx.fusedSteps += n
		if err != nil {
			return nil, nil, nil, true, err
		}

		// Terminator: same per-op bookkeeping as any dispatched op,
		// then the fused control transfer.
		if err := ctx.fusedTick(fb.termOp); err != nil {
			return nil, nil, nil, true, err
		}
		ctx.fusedSteps++

		var edge *fusedEdge
		switch fb.termKind {
		case ftYield:
			ex := ctx.yieldExit(len(fb.yields))
			for i := range fb.yields {
				v, err := ctx.fusedValue(regs, &fb.yields[i])
				if err != nil {
					return nil, nil, nil, true, &EvalError{OpName: fb.termOp.Name, Err: err}
				}
				ex.Values[i] = v
			}
			return ex, nil, nil, true, nil
		case ftBr:
			edge = &fb.succs[0]
		case ftCondBr:
			cond, err := ctx.fusedInt(regs, &fb.cond)
			if err != nil {
				return nil, nil, nil, true, &EvalError{OpName: fb.termOp.Name, Err: err}
			}
			idx, err := fb.condBr(cond)
			if err != nil {
				return nil, nil, nil, true, &EvalError{OpName: fb.termOp.Name, Err: err}
			}
			edge = &fb.succs[idx]
		}

		if t := edge.target; t != nil {
			// Register-to-register transfer: read every argument first
			// (sources may live in the very registers the target's
			// parameters are about to overwrite), then loop.
			ints = ctx.intScratch(len(edge.args))
			for i := range edge.args {
				iv, err := ctx.fusedInt(regs, &edge.args[i])
				if err != nil {
					return nil, nil, nil, true, &EvalError{OpName: fb.termOp.Name, Err: err}
				}
				ints[i] = iv
			}
			fb = t
			regs = ctx.growRegs(fb.nregs)
			continue
		}

		// Leaving the cluster: box the arguments into the branch
		// scratch and hand control back to the generic loop (which
		// copies them into the target's frame slots before any further
		// branch can reuse the scratch).
		cs := edge.cs
		if cap(ctx.branchArgs) < len(edge.args) {
			ctx.branchArgs = make([]rtval.Value, len(edge.args))
		}
		out := ctx.branchArgs[:len(edge.args)]
		for i := range edge.args {
			v, err := ctx.fusedValue(regs, &edge.args[i])
			if err != nil {
				return nil, nil, nil, true, &EvalError{OpName: fb.termOp.Name, Err: err}
			}
			out[i] = v
		}
		if cs.blockIdx < 0 {
			return nil, nil, nil, true, fmt.Errorf("interp: branch to unknown block ^%s", cs.succ.Block)
		}
		return nil, &cr.blocks[cs.blockIdx], out, true, nil
	}
}
