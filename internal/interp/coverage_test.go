package interp_test

import (
	"reflect"
	"testing"

	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/interp"
)

// runWithCoverage executes src on a fresh executor, optionally compiled
// and optionally with a coverage map attached, returning the output and
// the coverage summary.
func runWithCoverage(t *testing.T, src string, compiled, withCov bool) (string, map[string]uint64) {
	t.Helper()
	m := mustParse(t, src)
	var ex *interp.Interpreter
	if compiled {
		ex = dialects.NewExecutor()
	} else {
		ex = dialects.NewTreeWalkingExecutor()
	}
	var cov *coverage.Map
	if withCov {
		cov = coverage.NewMap()
		ex.Coverage = cov
	}
	res, err := ex.Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	return res.Output, cov.Summary()
}

// TestCoverageCountsExecutedOps checks that the executed-op family
// counts every dispatched operation under interp/op/<name>, with
// engine-independent counts: the tree walker and the compiled engine
// (whose scf.for here runs natively fused) report identical summaries.
func TestCoverageCountsExecutedOps(t *testing.T) {
	src := scfLoopSrc(10)
	outTree, covTree := runWithCoverage(t, src, false, true)
	outComp, covComp := runWithCoverage(t, src, true, true)

	if outTree != outComp {
		t.Fatalf("engine outputs differ: tree=%q compiled=%q", outTree, outComp)
	}
	if covTree == nil || len(covTree) == 0 {
		t.Fatal("tree-walk coverage summary is empty")
	}
	if !reflect.DeepEqual(covTree, covComp) {
		t.Fatalf("engine coverage disagrees:\ntree:     %v\ncompiled: %v", covTree, covComp)
	}
	// The 10-trip loop body dispatches its adds once per iteration; the
	// loop op itself dispatches once.
	if got := covTree["interp/op/arith.addi"]; got != 10 {
		t.Errorf("interp/op/arith.addi = %d, want 10", got)
	}
	if got := covTree["interp/op/scf.for"]; got != 1 {
		t.Errorf("interp/op/scf.for = %d, want 1", got)
	}
}

// TestCoverageDoesNotPerturbResults checks observation-only: the same
// program yields byte-identical output with coverage on and off, on
// both engines.
func TestCoverageDoesNotPerturbResults(t *testing.T) {
	for _, src := range []string{straightLineSrc(8), scfLoopSrc(7)} {
		for _, compiled := range []bool{false, true} {
			outOff, _ := runWithCoverage(t, src, compiled, false)
			outOn, cov := runWithCoverage(t, src, compiled, true)
			if outOff != outOn {
				t.Errorf("compiled=%v: coverage changed output: off=%q on=%q", compiled, outOff, outOn)
			}
			if len(cov) == 0 {
				t.Errorf("compiled=%v: coverage-on run reported no sites", compiled)
			}
		}
	}
}
