package interp_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/telemetry"
)

// TestProgramCacheStatsDetail pins the PR-3 admission policy as seen
// through the full-stats accessor: the first two sightings of a module
// compile directly (misses, no entry), the third misses and inserts,
// and later sightings hit — with every compile accounted in
// CompileTime and no evictions.
func TestProgramCacheStatsDetail(t *testing.T) {
	m := mustParse(t, straightLineSrc(8))
	reg := dialects.ExecutorRegistry()
	c := interp.NewProgramCache(0)
	for i := 0; i < 5; i++ {
		if c.Get(reg, m) == nil {
			t.Fatal("cache returned nil program")
		}
	}
	st := c.StatsDetail()
	if st.Hits != 2 || st.Misses != 3 || st.Size != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want hits=2 misses=3 size=1 evictions=0", st)
	}
	// Three compiles happened (sightings 1-3); their time is accounted.
	if st.CompileTime <= 0 {
		t.Errorf("compile time = %v, want > 0", st.CompileTime)
	}
	// StatsDetail and the legacy Stats agree.
	h, mi, sz := c.Stats()
	if h != st.Hits || mi != st.Misses || sz != st.Size {
		t.Errorf("Stats() = %d/%d/%d disagrees with StatsDetail %+v", h, mi, sz, st)
	}
}

// TestProgramCacheEvictionsCounted fills a 1-entry cache with two
// admitted modules and checks the eviction shows up in the stats.
func TestProgramCacheEvictionsCounted(t *testing.T) {
	m1 := mustParse(t, straightLineSrc(8))
	m2 := mustParse(t, straightLineSrc(9))
	reg := dialects.ExecutorRegistry()
	c := interp.NewProgramCache(1)
	for i := 0; i < 3; i++ { // admit and insert m1
		c.Get(reg, m1)
	}
	for i := 0; i < 3; i++ { // admit m2; its insertion evicts m1
		c.Get(reg, m2)
	}
	st := c.StatsDetail()
	if st.Evictions != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want evictions=1 size=1", st)
	}
}

// TestRegisterProgramCacheMetrics checks the cache counters surface as
// labelled gauges whose exported values match StatsDetail.
func TestRegisterProgramCacheMetrics(t *testing.T) {
	m := mustParse(t, straightLineSrc(8))
	dreg := dialects.ExecutorRegistry()
	c := interp.NewProgramCache(0)
	for i := 0; i < 4; i++ {
		c.Get(dreg, m)
	}

	reg := telemetry.NewRegistry()
	interp.RegisterProgramCacheMetrics(reg, "test", c)
	snap := reg.Snapshot()
	st := c.StatsDetail()
	want := map[string]int64{
		`ratte_interp_program_cache_hits{cache="test"}`:      int64(st.Hits),
		`ratte_interp_program_cache_misses{cache="test"}`:    int64(st.Misses),
		`ratte_interp_program_cache_evictions{cache="test"}`: int64(st.Evictions),
		`ratte_interp_program_cache_size{cache="test"}`:      int64(st.Size),
	}
	for series, v := range want {
		got, ok := snap[series]
		if !ok {
			t.Errorf("series %s missing from snapshot", series)
			continue
		}
		if got.(int64) != v {
			t.Errorf("%s = %v, want %d", series, got, v)
		}
	}
	if ct := snap[`ratte_interp_program_cache_compile_ns{cache="test"}`]; ct.(int64) <= 0 {
		t.Errorf("compile_ns = %v, want > 0", ct)
	}
	// Nil registry and nil cache registrations are no-ops.
	interp.RegisterProgramCacheMetrics(nil, "x", c)
	interp.RegisterProgramCacheMetrics(reg, "y", nil)
	if _, ok := reg.Snapshot()[`ratte_interp_program_cache_hits{cache="y"}`]; ok {
		t.Error("nil cache registered gauges")
	}
}

// TestInterpreterMetricsCount checks the per-run counters: a tree-walk
// run reports Runs and Steps, a compiled run additionally reports
// CompiledRuns, and values reflect actual work.
func TestInterpreterMetricsCount(t *testing.T) {
	m := mustParse(t, straightLineSrc(8))
	reg := telemetry.NewRegistry()
	met := interp.NewMetrics(reg)

	tw := dialects.NewTreeWalkingExecutor()
	tw.Metrics = met
	if _, err := tw.Run(m, "main"); err != nil {
		t.Fatal(err)
	}
	if met.Runs.Value() != 1 || met.CompiledRuns.Value() != 0 {
		t.Fatalf("after tree run: runs=%d compiled=%d, want 1/0",
			met.Runs.Value(), met.CompiledRuns.Value())
	}
	steps := met.Steps.Value()
	if steps == 0 {
		t.Fatal("tree run reported 0 steps")
	}

	ce := dialects.NewTreeWalkingExecutor()
	ce.Metrics = met
	prog := interp.Compile(dialects.ExecutorRegistry(), m)
	if _, err := ce.RunProgram(prog, "main"); err != nil {
		t.Fatal(err)
	}
	if met.Runs.Value() != 2 || met.CompiledRuns.Value() != 1 {
		t.Fatalf("after compiled run: runs=%d compiled=%d, want 2/1",
			met.Runs.Value(), met.CompiledRuns.Value())
	}
	if met.Steps.Value() <= steps {
		t.Fatal("compiled run reported no steps")
	}
}

// TestDisabledMetricsAddNoAllocs is the alloc guard: an interpreter
// with telemetry disabled (nil Metrics) allocates exactly as much per
// compiled run as one with telemetry enabled — instrument updates are
// atomic adds, never allocations — so leaving instrumentation in the
// hot path is free.
func TestDisabledMetricsAddNoAllocs(t *testing.T) {
	m := mustParse(t, straightLineSrc(8))
	prog := interp.Compile(dialects.ExecutorRegistry(), m)

	off := dialects.NewTreeWalkingExecutor()
	on := dialects.NewTreeWalkingExecutor()
	on.Metrics = interp.NewMetrics(telemetry.NewRegistry())

	run := func(in *interp.Interpreter) func() {
		return func() {
			if _, err := in.RunProgram(prog, "main"); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocsOff := testing.AllocsPerRun(50, run(off))
	allocsOn := testing.AllocsPerRun(50, run(on))
	if allocsOn != allocsOff {
		t.Errorf("enabled metrics changed allocations: off=%.1f on=%.1f", allocsOff, allocsOn)
	}

	// The nil-instrument API itself is alloc-free.
	var nm *interp.Metrics
	var nc *telemetry.Counter
	if a := testing.AllocsPerRun(100, func() {
		nc.Inc()
		nc.Add(3)
		_ = nm
	}); a != 0 {
		t.Errorf("nil instrument calls allocated %.1f per run", a)
	}
}
