package interp_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func runRef(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	return dialects.NewReferenceInterpreter().Run(mustParse(t, src), "main")
}

func mustRun(t *testing.T, src string) *interp.Result {
	t.Helper()
	res, err := runRef(t, src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// The paper's Figure 2 program: computes mulsi_extended(-1, -1) on i1.
// The reference semantics must print low = -1 (bit 1) and high = 0: the
// full signed product of -1 x -1 is +1 = 0b01.
func TestFigure2ReferenceSemantics(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "-1\n0\n" {
		t.Errorf("output = %q, want %q", res.Output, "-1\n0\n")
	}
}

func TestArithPrograms(t *testing.T) {
	cases := []struct {
		name, body string
		want       []string // printed lines
	}{
		{
			name: "add_mul",
			body: `
    %a = "arith.constant"() {value = 6 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %s = "arith.addi"(%a, %b) : (i64, i64) -> (i64)
    %p = "arith.muli"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%s) : (i64) -> ()
    "vector.print"(%p) : (i64) -> ()`,
			want: []string{"13", "42"},
		},
		{
			name: "wraparound_i8",
			body: `
    %a = "arith.constant"() {value = 127 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 1 : i8} : () -> (i8)
    %s = "arith.addi"(%a, %b) : (i8, i8) -> (i8)
    "vector.print"(%s) : (i8) -> ()`,
			want: []string{"-128"},
		},
		{
			name: "cmp_select",
			body: `
    %a = "arith.constant"() {value = -3 : i32} : () -> (i32)
    %b = "arith.constant"() {value = 5 : i32} : () -> (i32)
    %c = "arith.cmpi"(%a, %b) {predicate = 2 : i64} : (i32, i32) -> (i1)
    %m = "arith.select"(%c, %a, %b) : (i1, i32, i32) -> (i32)
    "vector.print"(%c) : (i1) -> ()
    "vector.print"(%m) : (i32) -> ()`,
			want: []string{"-1", "-3"},
		},
		{
			name: "shifts_and_bits",
			body: `
    %a = "arith.constant"() {value = -8 : i16} : () -> (i16)
    %two = "arith.constant"() {value = 2 : i16} : () -> (i16)
    %sh = "arith.shrsi"(%a, %two) : (i16, i16) -> (i16)
    %shu = "arith.shrui"(%a, %two) : (i16, i16) -> (i16)
    %an = "arith.andi"(%a, %two) : (i16, i16) -> (i16)
    "vector.print"(%sh) : (i16) -> ()
    "vector.print"(%shu) : (i16) -> ()
    "vector.print"(%an) : (i16) -> ()`,
			want: []string{"-2", "16382", "0"},
		},
		{
			name: "index_casts",
			body: `
    %a = "arith.constant"() {value = -1 : i8} : () -> (i8)
    %i = "arith.index_cast"(%a) : (i8) -> (index)
    %u = "arith.index_castui"(%a) : (i8) -> (index)
    "vector.print"(%i) : (index) -> ()
    "vector.print"(%u) : (index) -> ()`,
			want: []string{"-1", "255"},
		},
		{
			name: "extended_arith",
			body: `
    %a = "arith.constant"() {value = 200 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 100 : i8} : () -> (i8)
    %s, %o = "arith.addui_extended"(%a, %b) : (i8, i8) -> (i8, i1)
    %lo, %hi = "arith.mului_extended"(%a, %b) : (i8, i8) -> (i8, i8)
    "vector.print"(%s) : (i8) -> ()
    "vector.print"(%o) : (i1) -> ()
    "vector.print"(%lo) : (i8) -> ()
    "vector.print"(%hi) : (i8) -> ()`,
			// 200+100 = 300 = 44 mod 256, overflow. 200*100 = 20000 =
			// 0x4E20: lo 0x20 = 32, hi 0x4E = 78.
			want: []string{"44", "-1", "32", "78"},
		},
		{
			name: "rounded_divisions",
			body: `
    %a = "arith.constant"() {value = -7 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %f = "arith.floordivsi"(%a, %b) : (i64, i64) -> (i64)
    %c = "arith.ceildivsi"(%a, %b) : (i64, i64) -> (i64)
    %d = "arith.divsi"(%a, %b) : (i64, i64) -> (i64)
    %r = "arith.remsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%f) : (i64) -> ()
    "vector.print"(%c) : (i64) -> ()
    "vector.print"(%d) : (i64) -> ()
    "vector.print"(%r) : (i64) -> ()`,
			want: []string{"-4", "-3", "-3", "-1"},
		},
		{
			name: "minmax",
			body: `
    %a = "arith.constant"() {value = -1 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 3 : i8} : () -> (i8)
    %mins = "arith.minsi"(%a, %b) : (i8, i8) -> (i8)
    %maxu = "arith.maxui"(%a, %b) : (i8, i8) -> (i8)
    "vector.print"(%mins) : (i8) -> ()
    "vector.print"(%maxu) : (i8) -> ()`,
			want: []string{"-1", "-1"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := `"builtin.module"() ({
  "func.func"() ({` + c.body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
			res := mustRun(t, src)
			want := strings.Join(c.want, "\n") + "\n"
			if res.Output != want {
				t.Errorf("output = %q, want %q", res.Output, want)
			}
		})
	}
}

func TestUBDetection(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"div_by_zero", `
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %q = "arith.divsi"(%a, %z) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()`},
		{"signed_overflow", `
    %a = "arith.constant"() {value = -9223372036854775808 : i64} : () -> (i64)
    %b = "arith.constant"() {value = -1 : i64} : () -> (i64)
    %q = "arith.divsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()`},
		{"shift_past_width", `
    %a = "arith.constant"() {value = 1 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 9 : i8} : () -> (i8)
    %q = "arith.shli"(%a, %b) : (i8, i8) -> (i8)
    "vector.print"(%q) : (i8) -> ()`},
		{"print_undef", `
    %t = "tensor.empty"() : () -> (tensor<2xi64>)
    %i = "arith.constant"() {value = 0 : index} : () -> (index)
    %e = "tensor.extract"(%t, %i) : (tensor<2xi64>, index) -> (i64)
    "vector.print"(%e) : (i64) -> ()`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := `"builtin.module"() ({
  "func.func"() ({` + c.body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
			_, err := runRef(t, src)
			if err == nil {
				t.Fatal("expected UB error")
			}
			if !interp.IsUB(err) {
				t.Fatalf("expected UB classification, got %v", err)
			}
		})
	}
}

func TestTrapDetection(t *testing.T) {
	// Out-of-bounds tensor.extract: Figure 4's fourth undesirable
	// behaviour.
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = dense<[1, 2, 3]> : tensor<3xi64>} : () -> (tensor<3xi64>)
    %i = "arith.constant"() {value = 9 : index} : () -> (index)
    %e = "tensor.extract"(%c, %i) : (tensor<3xi64>, index) -> (i64)
    "vector.print"(%e) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	_, err := runRef(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Fatalf("expected trap, got %v", err)
	}
}

func TestScfIf(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = 1 : i1} : () -> (i1)
    %a = "arith.constant"() {value = 10 : i64} : () -> (i64)
    %r = "scf.if"(%c) ({
      %x = "arith.addi"(%a, %a) : (i64, i64) -> (i64)
      "scf.yield"(%x) : (i64) -> ()
    }, {
      "scf.yield"(%a) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "20\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestScfForAccumulates(t *testing.T) {
	// sum = 0; for i in [0, 5): sum += 2  =>  10
	src := `"builtin.module"() ({
  "func.func"() ({
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 5 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %init = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %two = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %r = "scf.for"(%lb, %ub, %st, %init) ({
    ^bb0(%iv: index, %acc: i64):
      %n = "arith.addi"(%acc, %two) : (i64, i64) -> (i64)
      "scf.yield"(%n) : (i64) -> ()
    }) : (index, index, index, i64) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "10\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestTensorOps(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %i1 = "arith.constant"() {value = 1 : index} : () -> (index)
    %v = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %t2 = "tensor.insert"(%v, %c, %i1, %i0) : (i64, tensor<2x2xi64>, index, index) -> (tensor<2x2xi64>)
    %e = "tensor.extract"(%t2, %i1, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %old = "tensor.extract"(%c, %i1, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %d = "tensor.dim"(%c, %i1) : (tensor<2x2xi64>, index) -> (index)
    "vector.print"(%e) : (i64) -> ()
    "vector.print"(%old) : (i64) -> ()
    "vector.print"(%d) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "9\n3\n2\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestTensorCastAndGenerate(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n = "arith.constant"() {value = 3 : index} : () -> (index)
    %g = "tensor.generate"(%n) ({
    ^bb0(%i: index):
      %x = "arith.index_cast"(%i) : (index) -> (i64)
      %two = "arith.constant"() {value = 2 : i64} : () -> (i64)
      %y = "arith.muli"(%x, %two) : (i64, i64) -> (i64)
      "tensor.yield"(%y) : (i64) -> ()
    }) : (index) -> (tensor<?xi64>)
    %cc = "tensor.cast"(%g) : (tensor<?xi64>) -> (tensor<3xi64>)
    "vector.print"(%cc) : (tensor<3xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "( 0, 2, 4 )\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestTensorCastFailureTraps(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n = "arith.constant"() {value = 2 : index} : () -> (index)
    %t = "tensor.empty"(%n) : (index) -> (tensor<?xi64>)
    %c = "tensor.cast"(%t) : (tensor<?xi64>) -> (tensor<3xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	_, err := runRef(t, src)
	if err == nil || !interp.IsTrap(err) {
		t.Fatalf("expected trap, got %v", err)
	}
}

func TestLinalgFillAndGeneric(t *testing.T) {
	// out[i][j] = a[i][j] + b[j][i] over 2x2, with b read transposed.
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %b = "arith.constant"() {value = dense<[10, 20, 30, 40]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %init = "tensor.empty"() : () -> (tensor<2x2xi64>)
    %out = "linalg.fill"(%z, %init) : (i64, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    %r = "linalg.generic"(%a, %b, %out) ({
    ^bb0(%x: i64, %y: i64, %acc: i64):
      %s = "arith.addi"(%x, %y) : (i64, i64) -> (i64)
      "linalg.yield"(%s) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d1, d0)>, affine_map<(d0, d1) -> (d0, d1)>],
      iterator_types = ["parallel", "parallel"],
      operand_segment_sizes = [2 : i64, 1 : i64]
    } : (tensor<2x2xi64>, tensor<2x2xi64>, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    "vector.print"(%r) : (tensor<2x2xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	// a + b^T = [[1+10, 2+30], [3+20, 4+40]]
	if res.Output != "( ( 11, 32 ), ( 23, 44 ) )\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestLinalgReduction(t *testing.T) {
	// Reduction over d0: out[0] accumulates… modelled as a 1-d parallel,
	// 1-d... use matvec-style: out[i] = sum_j a[i][j] via reduction on d1.
	// With permutation-only maps, reductions need the output map to also
	// be a permutation, so model a "running" reduction into a same-shape
	// accumulator instead: acc[i][j] = acc[i][j] + a[i][j].
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %c7 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %init = "tensor.empty"() : () -> (tensor<2x2xi64>)
    %acc0 = "linalg.fill"(%c7, %init) : (i64, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    %r = "linalg.generic"(%a, %acc0) ({
    ^bb0(%x: i64, %acc: i64):
      %s = "arith.addi"(%acc, %x) : (i64, i64) -> (i64)
      "linalg.yield"(%s) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>],
      iterator_types = ["parallel", "parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2x2xi64>, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    "vector.print"(%r) : (tensor<2x2xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "( ( 8, 9 ), ( 10, 11 ) )\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestFunctionCallsAndScoping(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 20 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 22 : i64} : () -> (i64)
    %r = "func.call"(%a, %b) {callee = @add} : (i64, i64) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%x: i64, %y: i64):
    %s = "arith.addi"(%x, %y) : (i64, i64) -> (i64)
    "func.return"(%s) : (i64) -> ()
  }) {sym_name = "add", function_type = (i64, i64) -> (i64)} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if res.Output != "42\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %r = "func.call"() {callee = @main} : () -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	_, err := dialects.NewReferenceInterpreter().Run(mustParse(t, src), "main")
	if err == nil || !interp.IsTrap(err) {
		t.Fatalf("expected recursion trap, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n = "arith.constant"() {value = 4 : index} : () -> (index)
    %g = "tensor.generate"(%n) ({
    ^bb0(%i: index):
      %x = "arith.index_cast"(%i) : (index) -> (i64)
      "tensor.yield"(%x) : (i64) -> ()
    }) : (index) -> (tensor<?xi64>)
    "vector.print"(%g) : (tensor<?xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	first := mustRun(t, src).Output
	for i := 0; i < 5; i++ {
		if got := mustRun(t, src).Output; got != first {
			t.Fatalf("non-deterministic interpretation: %q vs %q", got, first)
		}
	}
}

func TestRunRejectsUnknownEntry(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if _, err := dialects.NewReferenceInterpreter().Run(mustParse(t, src), "nope"); err == nil {
		t.Error("unknown entry should error")
	}
}

func TestReturnedValues(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 5 : i64} : () -> (i64)
    "func.return"(%a) : (i64) -> ()
  }) {sym_name = "main", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	res := mustRun(t, src)
	if len(res.Returned) != 1 {
		t.Fatalf("returned %d values", len(res.Returned))
	}
	if v := res.Returned[0].(rtval.Int); v.Signed() != 5 {
		t.Errorf("returned %d", v.Signed())
	}
}

func TestSupportedOpsInventory(t *testing.T) {
	// The paper reports 43 supported operations across the core
	// dialects; our inventory must cover at least those.
	ops := dialects.SupportedSourceOps()
	if len(ops) < 43 {
		t.Errorf("only %d source ops supported, paper lists 43", len(ops))
	}
	ref := dialects.NewReferenceInterpreter()
	for _, op := range ops {
		if op == "func.func" {
			continue // handled structurally
		}
		if !ref.Supports(op) {
			t.Errorf("no kernel registered for %s", op)
		}
	}
}

func TestDuplicateKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("composing overlapping dialects should panic")
		}
	}()
	d1 := interp.NewDialect("a")
	d1.Register("x.y", func(*interp.Context, *ir.Operation) error { return nil })
	d2 := interp.NewDialect("b")
	d2.Register("x.y", func(*interp.Context, *ir.Operation) error { return nil })
	interp.New(d1, d2)
}
