// Execution telemetry: optional counters an Interpreter feeds as it
// runs. The instrumentation points are per-run, never per-op — a run
// increments a run counter and adds the steps it consumed, both single
// atomic adds — so an enabled registry costs the same allocations as a
// disabled one on the interpret hot path (the alloc guard in
// telemetry_test.go pins both at equal).
package interp

import (
	"ratte/internal/telemetry"
)

// Metrics is the set of execution counters an Interpreter reports
// into. Any field may be nil (nil instruments are no-ops), and a nil
// *Metrics disables reporting entirely — the interpreter then pays one
// nil check per Run.
type Metrics struct {
	// Runs counts completed evaluations (tree-walked or compiled).
	Runs *telemetry.Counter
	// CompiledRuns counts the subset executed by the compiled engine.
	CompiledRuns *telemetry.Counter
	// Steps accumulates operations evaluated across all runs.
	Steps *telemetry.Counter
	// FusedSteps accumulates the subset of Steps executed inside fused
	// superinstruction runs (see fuse.go) — the fusion rate observable.
	FusedSteps *telemetry.Counter
}

// NewMetrics builds interpreter metrics registered under the standard
// series names. A nil registry yields nil (reporting disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Runs:         reg.Counter("ratte_interp_runs_total", "completed module evaluations"),
		CompiledRuns: reg.Counter("ratte_interp_compiled_runs_total", "evaluations executed by the compiled engine"),
		Steps:        reg.Counter("ratte_interp_steps_total", "operations evaluated"),
		FusedSteps:   reg.Counter("ratte_interp_fused_steps_total", "operations evaluated inside fused superinstructions"),
	}
}

// noteRun records one completed evaluation that consumed the given
// number of steps, fusedSteps of which ran inside fused runs.
func (m *Metrics) noteRun(steps, fusedSteps int, compiled bool) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	if compiled {
		m.CompiledRuns.Inc()
	}
	if steps > 0 {
		m.Steps.Add(uint64(steps))
	}
	if fusedSteps > 0 {
		m.FusedSteps.Add(uint64(fusedSteps))
	}
}

// RegisterProgramCacheMetrics exposes a program cache's counters as
// callback gauges under the given cache label ("source", "executor").
// Zero hot-path cost: the cache's own always-on counters are read at
// export time. Nil registry or cache is a no-op.
func RegisterProgramCacheMetrics(reg *telemetry.Registry, label string, c *ProgramCache) {
	if reg == nil || c == nil {
		return
	}
	l := `cache="` + label + `"`
	reg.GaugeFuncWith("ratte_interp_program_cache_hits", l, "program cache hits",
		func() int64 { return int64(c.StatsDetail().Hits) })
	reg.GaugeFuncWith("ratte_interp_program_cache_misses", l, "program cache misses",
		func() int64 { return int64(c.StatsDetail().Misses) })
	reg.GaugeFuncWith("ratte_interp_program_cache_evictions", l, "program cache evictions",
		func() int64 { return int64(c.StatsDetail().Evictions) })
	reg.GaugeFuncWith("ratte_interp_program_cache_size", l, "cached compiled programs",
		func() int64 { return int64(c.StatsDetail().Size) })
	reg.GaugeFuncWith("ratte_interp_program_cache_compile_ns", l, "nanoseconds spent compiling on cache misses",
		func() int64 { return c.StatsDetail().CompileTime.Nanoseconds() })
}
