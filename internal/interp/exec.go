// Execution of compiled programs. The loop here is the tree walker's
// Run/RunRegion/runBlockOps with every string-keyed lookup replaced by
// the indices Compile resolved: kernels come out of the compiledOp,
// operands out of frame slots, branch targets out of block indices.
// Error strings, wrapping, and the order checks fire in are replicated
// exactly — byte-identical Results are part of the engine's contract
// and are enforced by the interp-engine-agreement conformance oracle.
package interp

import (
	"fmt"

	"ratte/internal/faultinject"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// RunProgram executes a compiled program, calling the entry function
// with no arguments — the compiled counterpart of Interpreter.Run. The
// interpreter's limits (MaxSteps, MaxCallDepth) apply per call.
func (in *Interpreter) RunProgram(p *CompiledProgram, entry string) (*Result, error) {
	return in.RunProgramArgs(p, entry, nil)
}

// RunProgramArgs is RunProgram with entry-function arguments: the
// batched-campaign hot path, where one compile is amortised over a
// whole mutation family of per-seed inputs.
func (in *Interpreter) RunProgramArgs(p *CompiledProgram, entry string, args []rtval.Value) (*Result, error) {
	if p.setupErr != nil {
		return nil, p.setupErr
	}
	ctx := acquireContext(in, p)
	stepsBefore := ctx.stepsLeft
	vals, err := ctx.callCompiled(entry, args)
	if err != nil {
		releaseContext(ctx)
		return nil, err
	}
	res := &Result{Output: string(ctx.out), Returned: vals}
	in.Metrics.noteRun(stepsBefore-ctx.stepsLeft, ctx.fusedSteps, true)
	releaseContext(ctx)
	return res, nil
}

// callCompiled is CallFunc for compiled mode: same checks, same error
// strings, same order — but the function body runs over a pooled frame
// instead of a pushed IsolatedFromAbove scope.
func (ctx *Context) callCompiled(name string, args []rtval.Value) ([]rtval.Value, error) {
	if ctx.faults != nil {
		if err := ctx.faults.Point(faultinject.SiteInterpRegistry); err != nil {
			return nil, err
		}
	}
	cf, ok := ctx.prog.funcs[name]
	if !ok {
		return nil, fmt.Errorf("interp: call to unknown function @%s", name)
	}
	if cf.ftErr != nil {
		return nil, cf.ftErr
	}
	if len(args) != len(cf.ft.Inputs) {
		return nil, fmt.Errorf("interp: call @%s with %d args, want %d", name, len(args), len(cf.ft.Inputs))
	}
	if ctx.callDepth >= ctx.maxCallDepth {
		return nil, &rtval.TrapError{Op: "func.call", Reason: "call depth exceeded (runaway recursion)"}
	}
	ctx.callDepth++

	oldFn, oldFrame, oldCur := ctx.fn, ctx.frame, ctx.cur
	oldIso, oldStack := ctx.isoFloor, len(ctx.regionStack)
	fp := cf.frames.get()
	ctx.fn, ctx.frame, ctx.cur, ctx.isoFloor = cf, *fp, nil, 0

	exit, err := ctx.execRegion(cf.body, args, scoped.IsolatedFromAbove)

	cf.frames.put(fp)
	ctx.fn, ctx.frame, ctx.cur = oldFn, oldFrame, oldCur
	ctx.isoFloor, ctx.regionStack = oldIso, ctx.regionStack[:oldStack]
	ctx.callDepth--

	if err != nil {
		return nil, err
	}
	if exit == nil || exit.Kind != ExitReturn {
		return nil, fmt.Errorf("interp: function @%s did not return", name)
	}
	if len(exit.Values) != len(cf.ft.Results) {
		return nil, fmt.Errorf("interp: function @%s returned %d values, want %d", name, len(exit.Values), len(cf.ft.Results))
	}
	return exit.Values, nil
}

// execRegion is RunRegion for compiled mode. Entering a region clears
// the slots it owns — the compiled equivalent of pushing a fresh scope:
// every local binding starts undefined, including on loop re-entry.
// Entering IsolatedFromAbove raises the depth floor so reads resolved
// to outer slots report "use of undefined value", matching what the
// scoped table's barrier would make Lookup do.
func (ctx *Context) execRegion(cr *compiledRegion, args []rtval.Value, kind scoped.ScopeType) (*Exit, error) {
	if cr == nil || len(cr.blocks) == 0 {
		return nil, fmt.Errorf("interp: region has no blocks")
	}
	oldIso := ctx.isoFloor
	if kind == scoped.IsolatedFromAbove {
		ctx.isoFloor = cr.depth
	}
	ctx.regionStack = append(ctx.regionStack, cr)
	clear(ctx.frame[cr.slotLo:cr.slotHi])

	exit, err := ctx.execBlocks(cr, args)

	ctx.regionStack = ctx.regionStack[:len(ctx.regionStack)-1]
	ctx.isoFloor = oldIso
	return exit, err
}

// execBlocks runs the region's blocks from the entry block until an
// exit, mirroring RunRegion's loop over runBlockOps.
func (ctx *Context) execBlocks(cr *compiledRegion, args []rtval.Value) (*Exit, error) {
	block := &cr.blocks[0]
	frame := ctx.frame
blocks:
	for {
		if fb := block.fblock; fb != nil {
			// Fully-fused block: the fused-CFG machine binds arguments,
			// runs the ops and the terminator, and follows in-cluster
			// branches itself. handled=false (an argument was not a
			// scalar Int — unreachable in-tree) falls through to the
			// generic path below, before any side effect.
			exit, nb, nargs, handled, err := ctx.execFusedCFG(cr, fb, args)
			if handled {
				if err != nil {
					return nil, err
				}
				if exit != nil {
					return exit, nil
				}
				block, args = nb, nargs
				continue blocks
			}
		}
		if len(block.args) != len(args) {
			return nil, fmt.Errorf("interp: block ^%s expects %d arguments, got %d", block.label, len(block.args), len(args))
		}
		for i := range block.args {
			ab := &block.args[i]
			if ab.check && !typeCompatible(ab.typ, args[i].Type()) {
				return nil, fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
					ab.id, args[i].Type(), ab.typ)
			}
			frame[ab.slot] = args[i]
		}
		for oi := 0; oi < len(block.ops); oi++ {
			cop := &block.ops[oi]
			if cop.fused != nil {
				// One dispatch for the whole superinstruction; execFused
				// does the per-op step/cancel/fault bookkeeping itself.
				if err := ctx.execFused(cop.fused); err != nil {
					return nil, err
				}
				oi += cop.fuseSkip
				continue
			}
			if ctx.stepsLeft <= 0 {
				return nil, &rtval.TrapError{Op: "interp", Reason: "step limit exceeded (non-terminating program?)"}
			}
			ctx.stepsLeft--
			if ctx.cancel != nil {
				if err := ctx.checkCancel(); err != nil {
					return nil, err
				}
			}
			ctx.coverOp(cop.op.Name)
			if ctx.faults != nil {
				if err := ctx.faults.Point(faultinject.SiteInterpDispatch); err != nil {
					return nil, &EvalError{OpName: cop.op.Name, Err: err}
				}
			}
			if cop.term != nil {
				ctx.cur = cop
				res, err := cop.term(ctx, cop.op)
				if err != nil {
					return nil, &EvalError{OpName: cop.op.Name, Err: err}
				}
				switch {
				case res.Exit != nil:
					return res.Exit, nil
				case res.Branch != nil:
					cs := cop.matchSucc(res.Branch)
					if cs == nil {
						// The kernel returned a successor that is not one
						// of the op's own: resolve it dynamically the way
						// the tree walker would.
						nargs, err := ctx.dynamicBranchArgs(cop, res.Branch)
						if err != nil {
							return nil, err
						}
						nb := cr.findBlock(res.Branch.Block)
						if nb == nil {
							return nil, fmt.Errorf("interp: branch to unknown block ^%s", res.Branch.Block)
						}
						block, args = nb, nargs
						continue blocks
					}
					if cap(ctx.branchArgs) < len(cs.args) {
						ctx.branchArgs = make([]rtval.Value, len(cs.args))
					}
					// The scratch is safe to reuse across branches: its
					// values are copied into frame slots at the top of the
					// next iteration, before any op can branch again.
					nargs := ctx.branchArgs[:len(cs.args)]
					for i := range cs.args {
						v, err := ctx.readMeta(&cs.args[i])
						if err != nil {
							return nil, &EvalError{OpName: cop.op.Name, Err: err}
						}
						nargs[i] = v
					}
					if cs.blockIdx < 0 {
						return nil, fmt.Errorf("interp: branch to unknown block ^%s", cs.succ.Block)
					}
					block, args = &cr.blocks[cs.blockIdx], nargs
					continue blocks
				default:
					return nil, fmt.Errorf("interp: terminator %s produced no control flow", cop.op.Name)
				}
			}
			if cop.fail != nil {
				return nil, cop.fail
			}
			ctx.cur = cop
			if cop.ffor != nil {
				// Natively-fused loop: replaces the kernel, errors wrapped
				// exactly as the kernel's would be.
				if err := ctx.execFusedFor(cop.ffor); err != nil {
					return nil, &EvalError{OpName: cop.op.Name, Err: err}
				}
				continue
			}
			if err := cop.kernel(ctx, cop.op); err != nil {
				return nil, &EvalError{OpName: cop.op.Name, Err: err}
			}
		}
		return nil, fmt.Errorf("interp: block ^%s ended without a terminator", block.label)
	}
}

// matchSucc maps the successor pointer a terminator kernel returned
// back to its compiled record. Kernels return &op.Successors[i], so
// pointer identity resolves in one or two compares.
func (cop *compiledOp) matchSucc(s *ir.Successor) *compiledSucc {
	for j := range cop.succs {
		if cop.succs[j].succ == s {
			return &cop.succs[j]
		}
	}
	return nil
}

// findBlock resolves a block label like Region.Block (first match).
func (cr *compiledRegion) findBlock(label string) *compiledBlock {
	for i := range cr.blocks {
		if cr.blocks[i].label == label {
			return &cr.blocks[i]
		}
	}
	return nil
}

// dynamicBranchArgs evaluates a fabricated successor's arguments
// through the general Get path (EvalError-wrapped like the tree
// walker's branch-argument reads).
func (ctx *Context) dynamicBranchArgs(cop *compiledOp, s *ir.Successor) ([]rtval.Value, error) {
	args := make([]rtval.Value, len(s.Args))
	for i, a := range s.Args {
		v, err := ctx.Get(a)
		if err != nil {
			return nil, &EvalError{OpName: cop.op.Name, Err: err}
		}
		args[i] = v
	}
	return args, nil
}

// getCompiled is Get for compiled mode: find the operand's metadata on
// the current op (ids share backing storage with the kernel's ir.Value,
// so the compare hits the pointer fast path), then read its slot.
func (ctx *Context) getCompiled(v ir.Value) (rtval.Value, error) {
	if cur := ctx.cur; cur != nil {
		for i := range cur.operands {
			m := &cur.operands[i]
			if m.id == v.ID {
				if cur.ambig && !ir.TypeEqual(m.typ, v.Type) {
					continue
				}
				return ctx.readMeta(m)
			}
		}
	}
	return ctx.getSlow(v)
}

// readMeta reads one resolved use from the frame, emulating the tree
// walker's Lookup+typeCompatible: a slot below the isolation floor or
// never written this entry is "use of undefined value"; an unwritten
// inner slot falls through its shadow chain to outer bindings.
func (ctx *Context) readMeta(m *operandMeta) (rtval.Value, error) {
	if m.slot < 0 || m.depth < ctx.isoFloor {
		return nil, fmt.Errorf("interp: use of undefined value %%%s", m.id)
	}
	val := ctx.frame[m.slot]
	if val == nil {
		for _, alt := range m.alts {
			if alt.Depth < ctx.isoFloor {
				break
			}
			if w := ctx.frame[alt.Slot]; w != nil {
				val = w
				break
			}
		}
		if val == nil {
			return nil, fmt.Errorf("interp: use of undefined value %%%s", m.id)
		}
	}
	if m.check && !typeCompatible(m.typ, val.Type()) {
		return nil, fmt.Errorf("interp: value %%%s has runtime type %s but is used at type %s",
			m.id, val.Type(), m.typ)
	}
	return val, nil
}

// getSlow handles reads of values that are not operands of the current
// op — nothing in-tree does this, but the contract must hold for any
// kernel: emulate the dynamic scoped lookup over the live region stack.
func (ctx *Context) getSlow(v ir.Value) (rtval.Value, error) {
	val, ok := ctx.lookupCompiled(v.ID)
	if !ok {
		return nil, fmt.Errorf("interp: use of undefined value %%%s", v.ID)
	}
	if !typeCompatible(v.Type, val.Type()) {
		return nil, fmt.Errorf("interp: value %%%s has runtime type %s but is used at type %s",
			v.ID, val.Type(), v.Type)
	}
	return val, nil
}

// lookupCompiled emulates Table.Lookup over the live region stack:
// innermost-out, skipping unwritten slots, stopping at the isolation
// floor, with spilled (fabricated) bindings as the outermost layer.
// Each region is scanned linearly over its compiled blocks — this is
// the slow path nothing in-tree reaches, and dropping the per-region
// id map it used to consult pays off on every Compile.
func (ctx *Context) lookupCompiled(id string) (rtval.Value, bool) {
	for i := len(ctx.regionStack) - 1; i >= 0; i-- {
		cr := ctx.regionStack[i]
		if cr.depth < ctx.isoFloor {
			break
		}
		if slot, ok := cr.slotOf(id); ok {
			if v := ctx.frame[slot]; v != nil {
				return v, true
			}
		}
	}
	if ctx.spill != nil {
		if v, ok := ctx.spill[id]; ok {
			return v, true
		}
	}
	return nil, false
}

// slotOf finds the slot a region-owned id was allocated. Any textual
// occurrence gives the right answer: the slot table dedups ids within
// a region, so every bind site of one id shares one slot.
func (cr *compiledRegion) slotOf(id string) (int, bool) {
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		for i := range cb.args {
			if cb.args[i].id == id {
				return cb.args[i].slot, true
			}
		}
		for oi := range cb.ops {
			results := cb.ops[oi].results
			for i := range results {
				if results[i].id == id {
					return results[i].slot, true
				}
			}
		}
	}
	return 0, false
}

// defineCompiled is Define for compiled mode: results resolve to their
// pre-assigned slots; the write-side type check always runs (it is what
// lets read-side checks hoist).
func (ctx *Context) defineCompiled(v ir.Value, val rtval.Value) error {
	if cur := ctx.cur; cur != nil {
		for i := range cur.results {
			m := &cur.results[i]
			if m.id == v.ID {
				if !typeCompatible(m.typ, val.Type()) {
					return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
						m.id, val.Type(), m.typ)
				}
				ctx.frame[m.slot] = val
				return nil
			}
		}
	}
	return ctx.defineSlow(v, val)
}

// defineSlow accepts bindings for values that are not results of the
// current op (again: nothing in-tree, but the contract must hold). They
// go to a spill map so later reads can still find them.
func (ctx *Context) defineSlow(v ir.Value, val rtval.Value) error {
	if !typeCompatible(v.Type, val.Type()) {
		return fmt.Errorf("interp: defining %%%s: runtime type %s does not satisfy declared type %s",
			v.ID, val.Type(), v.Type)
	}
	if ctx.spill == nil {
		ctx.spill = make(map[string]rtval.Value)
	}
	ctx.spill[v.ID] = val
	return nil
}
