// Compiled execution engine: the ahead-of-time companion of the tree
// walker in interp.go.
//
// The tree walker pays three per-step costs that are invariant across
// runs of the same module: kernel dispatch through a string-keyed map,
// operand resolution through a string-keyed scoped environment, and
// operand/result type-compatibility checks whose outcome is fully
// determined by declared types. Ratte fixes the kernel set per dialect
// combination when the Registry is composed (the paper's handler
// composition), and a module's SSA structure is fixed at parse time —
// so all three costs can be paid once, in Compile, and amortised over
// every subsequent execution (the difftest oracle runs each program
// once per build configuration, plus the UB-free reference run).
//
// Compile walks each function once and emits a CompiledProgram:
//
//   - each op carries its kernel (or terminator kernel) pointer — no
//     map lookup per step;
//   - each SSA id is resolved to an integer slot in a flat per-call
//     Frame ([]rtval.Value) — no scoped-map lookup per operand;
//   - operand type checks are dropped where every possible writer of
//     the slot has the same declared type as the use (the check could
//     never fire);
//   - branch targets are resolved to block indices.
//
// The engine executes through the same Context type and the same
// kernels as the tree walker: kernels still call ctx.Get / ctx.Define /
// ctx.RunRegion, and those entry points dispatch on the context's mode.
// That is what makes byte-identical Results tractable — the semantics
// (kernels) are shared, only the environment plumbing differs — and it
// is checked end-to-end by the interp-engine-agreement conformance
// oracle.
//
// Soundness of static slot resolution rests on one discipline of the
// effects layer: bindings are only ever written in the innermost scope
// (Table.Bind), so which binding a use sees is a lexical question. Two
// dynamic behaviours still need runtime emulation: a pre-allocated slot
// that has not been written this entry reads as nil (matching "use of
// undefined value"), with shadow chains falling through to outer
// bindings exactly like Table.Lookup; and a kernel entering a region
// IsolatedFromAbove hides outer slots via a depth floor check.
package interp

import (
	"fmt"

	"ratte/internal/ir"
	"ratte/internal/scoped"
)

// CompiledProgram is a module compiled against one Registry: every
// function's regions walked once, kernels resolved, ids slotted. It is
// immutable after Compile and safe for concurrent RunProgram calls
// (each run gets its own Context and Frame).
type CompiledProgram struct {
	registry *Registry
	opts     CompileOptions
	// setupErr replays, at RunProgram time, the error the tree walker's
	// Run would raise while building the function table (unsupported
	// top-level op, missing sym_name, duplicate function).
	setupErr error
	funcs    map[string]*compiledFunc
	// regions maps every region in the module to its compiled form, for
	// the RunRegion dispatch (kernels hand us *ir.Region pointers).
	regions map[*ir.Region]*compiledRegion
	// Fusion accounting (see fuse.go): maxRegs sizes the per-context
	// register file; stats records the fusion decisions for telemetry.
	maxRegs int
	stats   FusionStats
}

// Registry returns the registry the program was compiled against.
func (p *CompiledProgram) Registry() *Registry { return p.registry }

// compiledFunc is one function: its compiled body plus everything
// CallFunc needs pre-resolved (function type, frame size) and a pool of
// frames sized for it.
type compiledFunc struct {
	op       *ir.Operation
	name     string
	ft       ir.FunctionType
	ftErr    error
	numSlots int
	body     *compiledRegion
	frames   framePool
}

// compiledRegion is one region: its blocks compiled, the contiguous
// slot range its own bindings occupy (cleared wholesale on entry, so a
// re-entered region — an scf.for body on its next iteration — starts
// with every local binding undefined, exactly like a fresh Table
// scope), and its scope depth for the isolation floor check.
type compiledRegion struct {
	region *ir.Region
	depth  int
	slotLo int
	slotHi int
	blocks []compiledBlock
}

// compiledBlock is one block: arg binding records plus compiled ops.
// fblock, when set, is the block's fully-fused form (every op fusable,
// terminator included — see fuse.go); the generic loop enters it
// instead of dispatching ops.
type compiledBlock struct {
	label  string
	args   []argBind
	ops    []compiledOp
	fblock *fusedBlock
}

// argBind binds one incoming value to a block argument's slot; check
// records whether the Define-side type check can fire (it cannot when
// every branch feeding the block passes a value already validated at a
// TypeEqual declared type).
type argBind struct {
	id    string
	typ   ir.Type
	slot  int
	check bool
}

// operandMeta is one resolved value use (op operand or successor
// argument): the slot (and scope depth) a runtime Lookup would find,
// plus the shadow chain for pre-allocated-but-unwritten inner slots.
// check records whether the read-side type check can fire. slot < 0
// means the id can never be bound on this path (the tree walker would
// report "use of undefined value"); the slow path preserves that.
type operandMeta struct {
	id    string
	typ   ir.Type
	slot  int
	depth int
	alts  []scoped.SlotRef
	check bool
}

// compiledSucc is one branch target: the successor record the
// terminator kernel returns by pointer (&op.Successors[i]), its
// resolved block index (-1 if the label does not exist — the tree
// walker only discovers that after evaluating the branch args, so we
// must too), and the branch-argument reads.
type compiledSucc struct {
	succ     *ir.Successor
	blockIdx int
	args     []operandMeta
}

// compiledOp is one operation, everything about its execution
// pre-resolved. Exactly one of kernel / term / fail is set; fail is
// returned only if the op is actually reached, preserving the tree
// walker's semantics for unregistered ops in dead code.
type compiledOp struct {
	op     *ir.Operation
	kernel Kernel
	term   TerminatorKernel
	fail   error
	// ambig is set when two operands share an id at different declared
	// types; Get must then match on type as well as id.
	ambig    bool
	operands []operandMeta
	results  []operandMeta
	regions  []*compiledRegion
	succs    []compiledSucc
	// fused, when set, replaces this op and the next fuseSkip ops of
	// its block with one superinstruction (see fuse.go). The original
	// records stay in place so slotOf and successor resolution are
	// unaffected; only the dispatch loop consults fused. ffor, when
	// set, replaces this op's kernel with the native fused loop.
	fused    *fusedRun
	fuseSkip int
	ffor     *fusedFor
}

// compilationPays reports whether compiling the module can recoup its
// cost: compilation is profitable exactly when some op executes more
// than once, so the per-step savings multiply. That happens with a
// region-looping construct (scf loops; linalg.generic and
// tensor.generate run their region once per element) or a CFG
// back-edge (a successor targeting its own or an earlier block — how
// lowered loops look). A module without either executes each op at
// most once — calls included, since each call site runs its callee's
// straight-line body once — and walking an op costs strictly less than
// compiling it. So the fuzzing campaign's arith-heavy programs stay on
// the walker while loop-carrying ones take the engine. The scan
// allocates nothing and visits each op once.
func compilationPays(m *ir.Module) bool {
	for _, f := range m.Body().Ops {
		for _, r := range f.Regions {
			if regionPays(r) {
				return true
			}
		}
	}
	return false
}

func regionPays(r *ir.Region) bool {
	for bi, b := range r.Blocks {
		for _, op := range b.Ops {
			switch op.Name {
			case "scf.for", "scf.while", "linalg.generic", "tensor.generate":
				return true
			}
			for si := range op.Successors {
				// Back-edge test under first-label-wins resolution: if the
				// label's first match is this block or an earlier one, the
				// branch can re-execute ops.
				label := op.Successors[si].Block
				for ti := 0; ti <= bi && ti < len(r.Blocks); ti++ {
					if r.Blocks[ti].Label == label {
						return true
					}
				}
			}
			for _, sub := range op.Regions {
				if regionPays(sub) {
					return true
				}
			}
		}
	}
	return false
}

// CompileOptions tunes compilation. The zero value is the default
// configuration (fusion enabled).
type CompileOptions struct {
	// DisableFusion turns superinstruction fusion off, compiling every
	// op to its own dispatch record. The engine-agreement oracle uses
	// it to pin fused and unfused execution byte-identical.
	DisableFusion bool
}

// Compile walks the module once and builds its compiled form over the
// given registry, with default options. Compile never fails: structural
// errors the tree walker would raise at run time (unsupported top-level
// ops, missing kernels, unknown branch targets) are captured and
// replayed with identical messages when — and only when — execution
// would reach them.
func Compile(r *Registry, m *ir.Module) *CompiledProgram {
	return CompileWith(r, m, CompileOptions{})
}

// CompileWith is Compile with explicit options.
func CompileWith(r *Registry, m *ir.Module, opts CompileOptions) *CompiledProgram {
	p := &CompiledProgram{
		registry: r,
		opts:     opts,
		funcs:    make(map[string]*compiledFunc),
		regions:  make(map[*ir.Region]*compiledRegion),
	}
	for _, op := range m.Body().Ops {
		switch op.Name {
		case "func.func", "llvm.func":
			name := ir.FuncSymbol(op)
			if name == "" {
				p.setupErr = fmt.Errorf("interp: function without sym_name")
				return p
			}
			if _, dup := p.funcs[name]; dup {
				p.setupErr = fmt.Errorf("interp: duplicate function @%s", name)
				return p
			}
			p.funcs[name] = p.compileFunc(op, name)
		default:
			p.setupErr = fmt.Errorf("interp: unsupported top-level operation %s", op.Name)
			return p
		}
	}
	return p
}

// slotWriters accumulates, per slot, the declared types of everything
// that can write it (op results and block-argument binds). A slot whose
// writers all agree on one declared type lets reads at that same type
// skip the runtime compatibility check.
type slotWriters struct {
	types []ir.Type // uniform declared type per slot; nil once conflicting
	seen  []bool
}

func (w *slotWriters) record(slot int, t ir.Type) {
	for slot >= len(w.types) {
		w.types = append(w.types, nil)
		w.seen = append(w.seen, false)
	}
	if !w.seen[slot] {
		w.types[slot], w.seen[slot] = t, true
		return
	}
	if w.types[slot] != nil && !ir.TypeEqual(w.types[slot], t) {
		w.types[slot] = nil
	}
}

func (w *slotWriters) uniform(slot int) ir.Type {
	if slot < 0 || slot >= len(w.types) {
		return nil
	}
	return w.types[slot]
}

// arenaSizes counts, ahead of compilation, every record a function's
// compiled form will need. Compile runs once per module execution in a
// fuzzing campaign (programs are run once per build configuration, then
// discarded), so its allocation volume is GC pressure on the whole
// campaign; bulk-allocating each record kind once and carving shrinks a
// compile from hundreds of allocations to about a dozen.
type arenaSizes struct {
	regions    int // compiledRegion records
	opRegions  int // entries of compiledOp.regions pointer slices
	blocks     int
	ops        int
	args       int // argBind records
	metas      int // operandMeta records (operands + results + succ args)
	succs      int
}

func countRegion(r *ir.Region, n *arenaSizes) {
	n.regions++
	n.blocks += len(r.Blocks)
	for _, b := range r.Blocks {
		n.args += len(b.Args)
		n.ops += len(b.Ops)
		for _, op := range b.Ops {
			n.metas += len(op.Operands) + len(op.Results)
			n.succs += len(op.Successors)
			for i := range op.Successors {
				n.metas += len(op.Successors[i].Args)
			}
			n.opRegions += len(op.Regions)
			for _, sub := range op.Regions {
				countRegion(sub, n)
			}
		}
	}
}

// compileArena is the carved storage. take slices keep exact capacity,
// so an accidental append cannot bleed into a neighbour's records.
type compileArena struct {
	regions    []compiledRegion
	regionPtrs []*compiledRegion
	blocks     []compiledBlock
	ops        []compiledOp
	args       []argBind
	metas      []operandMeta
	succs      []compiledSucc
}

func newCompileArena(n arenaSizes) *compileArena {
	return &compileArena{
		regions:    make([]compiledRegion, n.regions),
		regionPtrs: make([]*compiledRegion, n.opRegions),
		blocks:     make([]compiledBlock, n.blocks),
		ops:        make([]compiledOp, n.ops),
		args:       make([]argBind, n.args),
		metas:      make([]operandMeta, n.metas),
		succs:      make([]compiledSucc, n.succs),
	}
}

func (a *compileArena) region() *compiledRegion {
	cr := &a.regions[0]
	a.regions = a.regions[1:]
	return cr
}

func (a *compileArena) takeRegionPtrs(n int) []*compiledRegion {
	s := a.regionPtrs[:n:n]
	a.regionPtrs = a.regionPtrs[n:]
	return s
}

func (a *compileArena) takeBlocks(n int) []compiledBlock {
	s := a.blocks[:n:n]
	a.blocks = a.blocks[n:]
	return s
}

func (a *compileArena) takeOps(n int) []compiledOp {
	s := a.ops[:n:n]
	a.ops = a.ops[n:]
	return s
}

func (a *compileArena) takeArgs(n int) []argBind {
	s := a.args[:n:n]
	a.args = a.args[n:]
	return s
}

func (a *compileArena) takeMetas(n int) []operandMeta {
	s := a.metas[:n:n]
	a.metas = a.metas[n:]
	return s
}

func (a *compileArena) takeSuccs(n int) []compiledSucc {
	s := a.succs[:n:n]
	a.succs = a.succs[n:]
	return s
}

func (p *CompiledProgram) compileFunc(f *ir.Operation, name string) *compiledFunc {
	cf := &compiledFunc{op: f, name: name}
	cf.ft, cf.ftErr = ir.FuncType(f)
	if len(f.Regions) == 0 {
		return cf
	}
	var n arenaSizes
	countRegion(f.Regions[0], &n)
	a := newCompileArena(n)
	st := scoped.NewSlotTable()
	w := &slotWriters{}
	cf.body = p.compileRegion(f.Regions[0], st, w, a)
	cf.numSlots = st.NumSlots()
	cf.frames.init(cf.numSlots)
	hoistChecks(cf.body, w)
	// Fusion runs last: it consumes the final operand metas (checks
	// hoisted) and the full slot count for its read analysis.
	if !p.opts.DisableFusion {
		p.fuseFunc(cf)
	}
	return cf
}

// compileRegion compiles one region in the current slot-table context.
// All bindings the region can ever create (block arguments and op
// results, across every block) are allocated up front in one contiguous
// range; operand uses then resolve against the full table. Runtime nil
// checks make the up-front allocation sound: a slot the dynamic
// execution has not written yet reads as undefined, and shadow chains
// fall through to outer bindings, exactly matching Table.Lookup at any
// point of a dynamic execution order.
func (p *CompiledProgram) compileRegion(r *ir.Region, st *scoped.SlotTable, w *slotWriters, a *compileArena) *compiledRegion {
	cr := a.region()
	cr.region, cr.depth = r, st.Depth()
	p.regions[r] = cr
	// The compile-time scope kind is always Standard: in-tree kernels
	// only ever run attached regions Standard, and function-level
	// isolation is handled by per-function frames. A kernel that does
	// pass IsolatedFromAbove at run time is handled by the execution
	// engine's depth floor, not by resolution.
	st.Push(scoped.Standard)
	cr.slotLo = st.Next()
	for _, b := range r.Blocks {
		for _, a := range b.Args {
			st.Alloc(a.ID)
		}
		for _, op := range b.Ops {
			for _, res := range op.Results {
				st.Alloc(res.ID)
			}
		}
	}
	cr.slotHi = st.Next()

	cr.blocks = a.takeBlocks(len(r.Blocks))
	for bi, b := range r.Blocks {
		cb := &cr.blocks[bi]
		cb.label = b.Label
		cb.args = a.takeArgs(len(b.Args))
		for i, arg := range b.Args {
			ref, _ := st.Resolve(arg.ID) // always the slot allocated above
			w.record(ref.Slot, arg.Type)
			cb.args[i] = argBind{id: arg.ID, typ: arg.Type, slot: ref.Slot, check: true}
		}
		cb.ops = a.takeOps(len(b.Ops))
		for i, op := range b.Ops {
			p.compileOp(&cb.ops[i], op, st, w, a)
		}
		for i := range cb.ops {
			for j := range cb.ops[i].succs {
				s := &cb.ops[i].succs[j]
				s.blockIdx = -1
				// First label wins, matching Region.Block's linear scan;
				// block counts are small enough that a map would cost
				// more to build than the scans it saves.
				for k := range r.Blocks {
					if r.Blocks[k].Label == s.succ.Block {
						s.blockIdx = k
						break
					}
				}
			}
		}
	}
	st.Pop()
	return cr
}

func (p *CompiledProgram) compileOp(cop *compiledOp, op *ir.Operation, st *scoped.SlotTable, w *slotWriters, a *compileArena) {
	cop.op = op
	p.stats.TotalOps++
	if tk, ok := p.registry.terminators[op.Name]; ok {
		cop.term = tk
	} else if k, ok := p.registry.kernels[op.Name]; ok {
		cop.kernel = k
	} else {
		cop.fail = fmt.Errorf("interp: no semantics registered for %s", op.Name)
	}

	cop.operands = a.takeMetas(len(op.Operands))
	for i, v := range op.Operands {
		cop.operands[i] = resolveUse(v, st)
		for j := 0; j < i; j++ {
			if cop.operands[j].id == v.ID && !ir.TypeEqual(cop.operands[j].typ, v.Type) {
				cop.ambig = true
			}
		}
	}
	cop.results = a.takeMetas(len(op.Results))
	for i, v := range op.Results {
		ref, _ := st.Resolve(v.ID) // pre-allocated in the region pre-pass
		cop.results[i] = operandMeta{id: v.ID, typ: v.Type, slot: ref.Slot, depth: ref.Depth, check: true}
		w.record(ref.Slot, v.Type)
	}
	cop.succs = a.takeSuccs(len(op.Successors))
	for si := range op.Successors {
		s := &op.Successors[si]
		cs := &cop.succs[si]
		cs.succ, cs.blockIdx = s, -1
		cs.args = a.takeMetas(len(s.Args))
		for i, v := range s.Args {
			cs.args[i] = resolveUse(v, st)
		}
	}
	cop.regions = a.takeRegionPtrs(len(op.Regions))
	for i, sub := range op.Regions {
		cop.regions[i] = p.compileRegion(sub, st, w, a)
	}
}

// resolveUse resolves one value use to its slot, shadow chain included.
// ResolveShadowed returns nil for the (overwhelmingly common) case of
// an unshadowed id, so resolving a use allocates nothing.
func resolveUse(v ir.Value, st *scoped.SlotTable) operandMeta {
	m := operandMeta{id: v.ID, typ: v.Type, slot: -1, check: true}
	if ref, ok := st.Resolve(v.ID); ok {
		m.slot, m.depth = ref.Slot, ref.Depth
		m.alts = st.ResolveShadowed(v.ID, ref.Depth)
	}
	return m
}

// hoistChecks drops read-side type checks that can never fire: the use
// resolves to exactly one slot (no shadow chain), every writer of that
// slot declares one type, and the use's declared type equals it — then
// any value the runtime check would see already passed the write-side
// check against the same type. Block-argument binds for non-entry
// blocks are hoisted the same way when every branch feeding the block
// hands over a value validated at a TypeEqual type (the entry block
// also receives kernel-supplied region arguments, which nothing has
// validated, so its binds keep the check).
func hoistChecks(cr *compiledRegion, w *slotWriters) {
	if cr == nil {
		return
	}
	// argsChecked[i] stays true while every compiled branch to block i
	// passes args whose declared types match the block's arg types.
	argsChecked := make([]bool, len(cr.blocks))
	for i := range argsChecked {
		argsChecked[i] = true
	}
	for bi := range cr.blocks {
		cb := &cr.blocks[bi]
		for oi := range cb.ops {
			cop := &cb.ops[oi]
			for i := range cop.operands {
				hoistUse(&cop.operands[i], w)
			}
			for si := range cop.succs {
				cs := &cop.succs[si]
				for i := range cs.args {
					hoistUse(&cs.args[i], w)
				}
				if cs.blockIdx < 0 {
					continue
				}
				target := &cr.blocks[cs.blockIdx]
				if len(cs.args) != len(target.args) {
					argsChecked[cs.blockIdx] = false
					continue
				}
				for i := range cs.args {
					if !ir.TypeEqual(cs.args[i].typ, target.args[i].typ) {
						argsChecked[cs.blockIdx] = false
						break
					}
				}
			}
			for _, sub := range cop.regions {
				hoistChecks(sub, w)
			}
		}
	}
	// The entry block is reachable from region entry with arbitrary
	// kernel-supplied arguments; only branch-fed blocks may hoist.
	for bi := 1; bi < len(cr.blocks); bi++ {
		if !argsChecked[bi] {
			continue
		}
		for i := range cr.blocks[bi].args {
			cr.blocks[bi].args[i].check = false
		}
	}
}

func hoistUse(m *operandMeta, w *slotWriters) {
	if m.slot < 0 || len(m.alts) > 0 {
		return
	}
	if u := w.uniform(m.slot); u != nil && ir.TypeEqual(m.typ, u) {
		m.check = false
	}
}
