package verify

import (
	"ratte/internal/ir"
)

// WantOperands checks the operand count.
func WantOperands(op *ir.Operation, n int) error {
	if len(op.Operands) != n {
		return Errf(op, "expected %d operands, found %d", n, len(op.Operands))
	}
	return nil
}

// WantResults checks the result count.
func WantResults(op *ir.Operation, n int) error {
	if len(op.Results) != n {
		return Errf(op, "expected %d results, found %d", n, len(op.Results))
	}
	return nil
}

// WantScalarOperands checks that every operand is an integer or index
// type (the arith scalar domain).
func WantScalarOperands(op *ir.Operation) error {
	for _, o := range op.Operands {
		if !ir.IsIntegerOrIndex(o.Type) {
			return Errf(op, "operand %%%s must have integer or index type, has %s", o.ID, o.Type)
		}
	}
	return nil
}

// WantAllSameType checks that the listed values share one type.
func WantAllSameType(op *ir.Operation, vals ...ir.Value) error {
	for i := 1; i < len(vals); i++ {
		if !ir.TypeEqual(vals[0].Type, vals[i].Type) {
			return Errf(op, "type mismatch: %%%s is %s but %%%s is %s",
				vals[0].ID, vals[0].Type, vals[i].ID, vals[i].Type)
		}
	}
	return nil
}

// WantType checks that v has exactly type t.
func WantType(op *ir.Operation, v ir.Value, t ir.Type) error {
	if !ir.TypeEqual(v.Type, t) {
		return Errf(op, "%%%s must have type %s, has %s", v.ID, t, v.Type)
	}
	return nil
}

// WantIntegerType checks that t is a (non-index) integer type and
// returns its width.
func WantIntegerType(op *ir.Operation, t ir.Type) (uint, error) {
	it, ok := t.(ir.IntegerType)
	if !ok {
		return 0, Errf(op, "expected an integer type, found %s", t)
	}
	return it.Width, nil
}
