package verify_test

import (
	"strings"
	"testing"
)

func TestSuccessorArgTypeMismatch(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1):
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    "cf.cond_br"(%c)[^bb1(%a : i32), ^bb2] : (i1) -> ()
  ^bb1(%x: i32):
    "func.return"() : () -> ()
  ^bb2:
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = (i1) -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "forwarded at type") {
		t.Errorf("want successor-type error, got %v", err)
	}
}

func TestSuccessorUndefinedValue(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1):
    "cf.cond_br"(%c)[^bb1(%ghost : i64), ^bb2] : (i1) -> ()
  ^bb1(%x: i64):
    "func.return"() : () -> ()
  ^bb2:
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = (i1) -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "undefined value") {
		t.Errorf("want undefined-value error, got %v", err)
	}
}

func TestDuplicateBlockLabels(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    "func.return"() : () -> ()
  ^bb0:
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "duplicate block label") {
		t.Errorf("want duplicate-label error, got %v", err)
	}
}

func TestWrongRegionCount(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = 1 : i1} : () -> (i1)
    %r = "scf.if"(%c) ({
      %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
      "scf.yield"(%a) : (i64) -> ()
    }) : (i1) -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "regions") {
		t.Errorf("want region-count error, got %v", err)
	}
}
