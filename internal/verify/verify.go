// Package verify implements Ratte's static verifier for IR modules: the
// checks a production MLIR verifier performs before passes run.
//
// Like the interpreter, the verifier is composable: each dialect
// registers an OpSpec per operation (operand/result/attribute rules plus
// structural properties), and a Registry for a dialect combination is
// the union of the dialects' specs. The driver enforces the
// dialect-agnostic rules itself: SSA identifier uniqueness within a
// scope, definition-before-use, declared-type consistency, terminator
// placement, and function-symbol coherence — the first two classes of
// undesirable behaviour of the paper's Figure 4.
//
// One deliberate simplification relative to production MLIR: values are
// scoped per *region*, not per dominance relation, so a use in a later
// block of the same region may see a definition from an earlier block
// without a dominance proof. Ratte's generators emit single-block
// regions and its lowering passes only create blocks whose uses follow
// their definitions, so the relaxation is unobservable in this
// pipeline; it is noted here for anyone feeding hand-written IR.
package verify

import (
	"fmt"

	"ratte/internal/ir"
	"ratte/internal/scoped"
)

// OpCheck validates one operation's dialect-specific static rules.
type OpCheck func(c *Checker, op *ir.Operation) error

// OpSpec describes the static structure of one operation.
type OpSpec struct {
	// Check performs dialect-specific validation; may be nil.
	Check OpCheck
	// Terminator marks ops that must appear only in block-final
	// position (and are the only ops allowed there).
	Terminator bool
	// IsolatedRegions marks ops whose attached regions cannot see
	// enclosing SSA values (func.func and friends).
	IsolatedRegions bool
	// NumRegions is the required number of attached regions.
	NumRegions int
}

// Registry maps fully-qualified op names to their specs.
type Registry map[string]OpSpec

// Merge combines registries, panicking on duplicates (two dialects must
// not claim the same op).
func Merge(regs ...Registry) Registry {
	out := make(Registry)
	for _, r := range regs {
		for name, spec := range r {
			if _, dup := out[name]; dup {
				panic(fmt.Sprintf("verify: duplicate op spec for %s", name))
			}
			out[name] = spec
		}
	}
	return out
}

// Error is a verification failure, carrying the offending operation
// name. A module failing verification corresponds to the compiler
// frontend rejecting the program.
type Error struct {
	OpName string
	Reason string
}

func (e *Error) Error() string {
	if e.OpName == "" {
		return "verify: " + e.Reason
	}
	return "verify: " + e.OpName + ": " + e.Reason
}

// Errf builds a verification error for op.
func Errf(op *ir.Operation, format string, args ...any) error {
	name := ""
	if op != nil {
		name = op.Name
	}
	return &Error{OpName: name, Reason: fmt.Sprintf(format, args...)}
}

// Checker carries verification state through the walk.
type Checker struct {
	reg   Registry
	env   *scoped.Table[ir.Type]
	funcs map[string]ir.FunctionType

	// parents is the stack of region-holding operations enclosing the
	// current position; the innermost is last.
	parents []*ir.Operation
	// funcResults is the result signature of the innermost enclosing
	// function, for checking func.return.
	funcResults []ir.Type
}

// FuncSignature returns the declared type of the function named sym.
func (c *Checker) FuncSignature(sym string) (ir.FunctionType, bool) {
	ft, ok := c.funcs[sym]
	return ft, ok
}

// EnclosingFuncResults returns the result types of the innermost
// function.
func (c *Checker) EnclosingFuncResults() []ir.Type { return c.funcResults }

// Parent returns the innermost enclosing region-holding operation
// (nil at top level).
func (c *Checker) Parent() *ir.Operation {
	if len(c.parents) == 0 {
		return nil
	}
	return c.parents[len(c.parents)-1]
}

// Module verifies a whole module against the registry.
func Module(m *ir.Module, reg Registry) error {
	c := &Checker{
		reg:   reg,
		env:   scoped.New[ir.Type](),
		funcs: make(map[string]ir.FunctionType),
	}
	// Pass 1: collect function symbols so forward calls resolve.
	for _, op := range m.Body().Ops {
		if op.Name != "func.func" && op.Name != "llvm.func" {
			return Errf(op, "only functions may appear at module top level")
		}
		sym := ir.FuncSymbol(op)
		if sym == "" {
			return Errf(op, "function requires a sym_name attribute")
		}
		ft, err := ir.FuncType(op)
		if err != nil {
			return Errf(op, "%v", err)
		}
		if _, dup := c.funcs[sym]; dup {
			return Errf(op, "duplicate function symbol @%s", sym)
		}
		c.funcs[sym] = ft
	}
	// Pass 2: verify each function.
	for _, op := range m.Body().Ops {
		if err := c.checkOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) checkOp(op *ir.Operation) error {
	spec, known := c.reg[op.Name]
	if !known {
		return Errf(op, "unknown operation (no registered dialect spec)")
	}

	// Operands: visible and used at their defining type.
	for _, operand := range op.Operands {
		defType, ok := c.env.Lookup(operand.ID)
		if !ok {
			return Errf(op, "use of undefined value %%%s", operand.ID)
		}
		if !ir.TypeEqual(defType, operand.Type) {
			return Errf(op, "value %%%s has type %s but is used at type %s",
				operand.ID, defType, operand.Type)
		}
	}
	// Successor arguments are uses too.
	for _, s := range op.Successors {
		for _, a := range s.Args {
			defType, ok := c.env.Lookup(a.ID)
			if !ok {
				return Errf(op, "use of undefined value %%%s in successor ^%s", a.ID, s.Block)
			}
			if !ir.TypeEqual(defType, a.Type) {
				return Errf(op, "successor value %%%s has type %s but is forwarded at type %s",
					a.ID, defType, a.Type)
			}
		}
	}

	// Results: fresh IDs in the current scope.
	for _, r := range op.Results {
		if err := c.env.Define(r.ID, r.Type); err != nil {
			return Errf(op, "result %%%s redefines an existing value in this scope", r.ID)
		}
	}

	if spec.NumRegions != len(op.Regions) {
		return Errf(op, "expected %d regions, found %d", spec.NumRegions, len(op.Regions))
	}

	if spec.Check != nil {
		if err := spec.Check(c, op); err != nil {
			return err
		}
	}

	// Regions.
	if len(op.Regions) > 0 {
		kind := scoped.Standard
		if spec.IsolatedRegions {
			kind = scoped.IsolatedFromAbove
		}
		savedResults := c.funcResults
		if op.Name == "func.func" || op.Name == "llvm.func" {
			ft, err := ir.FuncType(op)
			if err != nil {
				return Errf(op, "%v", err)
			}
			c.funcResults = ft.Results
		}
		c.parents = append(c.parents, op)
		for _, r := range op.Regions {
			if err := c.checkRegion(r, kind); err != nil {
				return err
			}
		}
		c.parents = c.parents[:len(c.parents)-1]
		c.funcResults = savedResults
	}
	return nil
}

func (c *Checker) checkRegion(r *ir.Region, kind scoped.ScopeType) error {
	if len(r.Blocks) == 0 {
		return &Error{Reason: "region must have at least one block"}
	}
	c.env.Push(kind)
	defer c.env.Pop()

	labels := make(map[string]bool)
	for _, b := range r.Blocks {
		if labels[b.Label] {
			return &Error{Reason: fmt.Sprintf("duplicate block label ^%s", b.Label)}
		}
		labels[b.Label] = true
	}

	for _, b := range r.Blocks {
		for _, a := range b.Args {
			if err := c.env.Define(a.ID, a.Type); err != nil {
				return &Error{Reason: fmt.Sprintf("block argument %%%s redefines an existing value", a.ID)}
			}
		}
		if len(b.Ops) == 0 {
			return &Error{Reason: fmt.Sprintf("block ^%s is empty (missing terminator)", b.Label)}
		}
		for i, op := range b.Ops {
			spec, known := c.reg[op.Name]
			if !known {
				return Errf(op, "unknown operation (no registered dialect spec)")
			}
			last := i == len(b.Ops)-1
			if last && !spec.Terminator {
				return Errf(op, "block ^%s must end with a terminator", b.Label)
			}
			if !last && spec.Terminator {
				return Errf(op, "terminator in non-final position of block ^%s", b.Label)
			}
			// Successor labels must exist within this region.
			for _, s := range op.Successors {
				if !labels[s.Block] {
					return Errf(op, "branch to unknown block ^%s", s.Block)
				}
			}
			if err := c.checkOp(op); err != nil {
				return err
			}
		}
	}
	return nil
}
