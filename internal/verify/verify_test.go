package verify_test

import (
	"strings"
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

func check(t *testing.T, src string) error {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return verify.Module(m, dialects.AllSpecs())
}

func wrapMain(body string) string {
	return `"builtin.module"() ({
  "func.func"() ({` + body + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
}

func TestAcceptsValidProgram(t *testing.T) {
	src := wrapMain(`
    %a = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %s = "arith.addi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%s) : (i64) -> ()`)
	if err := check(t, src); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

// Figure 4, case 1: reuse of an SSA ID within a scope.
func TestRejectsIDReuse(t *testing.T) {
	src := wrapMain(`
    %x = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %x = "arith.constant"() {value = 4 : i64} : () -> (i64)`)
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "redefines") {
		t.Errorf("want redefinition error, got %v", err)
	}
}

// Figure 4, case 2: mismatched operand types.
func TestRejectsTypeMismatch(t *testing.T) {
	src := wrapMain(`
    %0 = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 7 : i32} : () -> (i32)
    %2 = "arith.addi"(%0, %1) : (i64, i32) -> (i32)`)
	err := check(t, src)
	if err == nil {
		t.Fatal("mixed-width addi must be rejected")
	}
}

func TestRejectsUseAtWrongType(t *testing.T) {
	// %0 is defined as i64 but used claiming i32.
	src := wrapMain(`
    %0 = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %1 = "arith.constant"() {value = 7 : i32} : () -> (i32)
    %2 = "arith.addi"(%0, %1) : (i32, i32) -> (i32)`)
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "used at type") {
		t.Errorf("want used-at-type error, got %v", err)
	}
}

func TestRejectsUseOfUndefinedValue(t *testing.T) {
	src := wrapMain(`
    %1 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %2 = "arith.addi"(%1, %ghost) : (i64, i64) -> (i64)`)
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "undefined value") {
		t.Errorf("want undefined-value error, got %v", err)
	}
}

func TestRejectsUnknownOp(t *testing.T) {
	src := wrapMain(`
    "mystery.op"() : () -> ()`)
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("want unknown-op error, got %v", err)
	}
}

func TestRejectsMissingTerminator(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 3 : i64} : () -> (i64)
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("want terminator error, got %v", err)
	}
}

func TestRejectsMidBlockTerminator(t *testing.T) {
	src := wrapMain(`
    "func.return"() : () -> ()
    %a = "arith.constant"() {value = 3 : i64} : () -> (i64)
    "vector.print"(%a) : (i64) -> ()`)
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "non-final") {
		t.Errorf("want non-final terminator error, got %v", err)
	}
}

func TestRejectsBadReturnArity(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> (i64)} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil {
		t.Error("return arity mismatch must be rejected")
	}
}

func TestCallSignatureChecks(t *testing.T) {
	good := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %r = "func.call"(%a) {callee = @f} : (i64) -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%x: i64):
    "func.return"(%x) : (i64) -> ()
  }) {sym_name = "f", function_type = (i64) -> (i64)} : () -> ()
}) : () -> ()`
	if err := check(t, good); err != nil {
		t.Errorf("valid call rejected: %v", err)
	}

	for name, bad := range map[string]string{
		"unknown_callee": `%r = "func.call"() {callee = @ghost} : () -> (i64)`,
		"wrong_arity":    `%r = "func.call"() {callee = @f} : () -> (i64)`,
	} {
		src := `"builtin.module"() ({
  "func.func"() ({
    ` + bad + `
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%x: i64):
    "func.return"(%x) : (i64) -> ()
  }) {sym_name = "f", function_type = (i64) -> (i64)} : () -> ()
}) : () -> ()`
		if err := check(t, src); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
}

func TestRejectsDuplicateFunctions(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("want duplicate-function error, got %v", err)
	}
}

func TestIsolatedFromAboveEnforced(t *testing.T) {
	// A nested func.func cannot appear, but isolation is also checked
	// through the generic scope machinery: a linalg.generic region CAN
	// see enclosing values (Standard), which must be accepted.
	src := wrapMain(`
    %k = "arith.constant"() {value = 5 : i64} : () -> (i64)
    %a = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %init = "tensor.empty"() : () -> (tensor<2xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i64, %o: i64):
      %s = "arith.addi"(%x, %k) : (i64, i64) -> (i64)
      "linalg.yield"(%s) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
      iterator_types = ["parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2xi64>, tensor<2xi64>) -> (tensor<2xi64>)`)
	if err := check(t, src); err != nil {
		t.Errorf("standard region must see enclosing values: %v", err)
	}
}

func TestRejectsEscapeFromIsolatedRegion(t *testing.T) {
	// A function body referencing a value of another function's scope.
	src := `"builtin.module"() ({
  "func.func"() ({
    %secret = "arith.constant"() {value = 1 : i64} : () -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "a", function_type = () -> ()} : () -> ()
  "func.func"() ({
    "vector.print"(%secret) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if err := check(t, src); err == nil {
		t.Error("cross-function value use must be rejected")
	}
}

func TestLinalgChecks(t *testing.T) {
	base := func(maps, iters, segs string) string {
		return wrapMain(`
    %a = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %init = "tensor.empty"() : () -> (tensor<2x2xi64>)
    %r = "linalg.generic"(%a, %init) ({
    ^bb0(%x: i64, %o: i64):
      "linalg.yield"(%x) : (i64) -> ()
    }) {
      indexing_maps = ` + maps + `,
      iterator_types = ` + iters + `,
      operand_segment_sizes = ` + segs + `
    } : (tensor<2x2xi64>, tensor<2x2xi64>) -> (tensor<2x2xi64>)`)
	}
	valid := base(
		`[affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d1, d0)>]`,
		`["parallel", "parallel"]`, `[1 : i64, 1 : i64]`)
	if err := check(t, valid); err != nil {
		t.Errorf("valid generic rejected: %v", err)
	}

	nonPerm := base(
		`[affine_map<(d0, d1) -> (d0, d0)>, affine_map<(d0, d1) -> (d0, d1)>]`,
		`["parallel", "parallel"]`, `[1 : i64, 1 : i64]`)
	if err := check(t, nonPerm); err == nil {
		t.Error("non-permutation map must be rejected")
	}

	badIter := base(
		`[affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>]`,
		`["parallel", "spiral"]`, `[1 : i64, 1 : i64]`)
	if err := check(t, badIter); err == nil {
		t.Error("bad iterator type must be rejected")
	}

	badSegs := base(
		`[affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>]`,
		`["parallel", "parallel"]`, `[2 : i64, 1 : i64]`)
	if err := check(t, badSegs); err == nil {
		t.Error("bad segment sizes must be rejected")
	}
}

func TestTensorChecks(t *testing.T) {
	// Wrong index count.
	src := wrapMain(`
    %c = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %i = "arith.constant"() {value = 0 : index} : () -> (index)
    %e = "tensor.extract"(%c, %i) : (tensor<2x2xi64>, index) -> (i64)`)
	if err := check(t, src); err == nil {
		t.Error("under-indexed extract must be rejected")
	}

	// Provably-incompatible cast.
	src = wrapMain(`
    %c = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %x = "tensor.cast"(%c) : (tensor<2xi64>) -> (tensor<3xi64>)`)
	if err := check(t, src); err == nil {
		t.Error("statically-incompatible cast must be rejected")
	}

	// Element type change.
	src = wrapMain(`
    %c = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %x = "tensor.cast"(%c) : (tensor<2xi64>) -> (tensor<2xi32>)`)
	if err := check(t, src); err == nil {
		t.Error("element-type-changing cast must be rejected")
	}
}

func TestArithAttrChecks(t *testing.T) {
	// Constant out of range for width.
	src := wrapMain(`
    %c = "arith.constant"() {value = 300 : i8} : () -> (i8)`)
	if err := check(t, src); err == nil {
		t.Error("out-of-range constant must be rejected")
	}

	// Invalid cmpi predicate.
	src = wrapMain(`
    %a = "arith.constant"() {value = 1 : i8} : () -> (i8)
    %c = "arith.cmpi"(%a, %a) {predicate = 99 : i64} : (i8, i8) -> (i1)`)
	if err := check(t, src); err == nil {
		t.Error("invalid predicate must be rejected")
	}

	// Narrowing "extension".
	src = wrapMain(`
    %a = "arith.constant"() {value = 1 : i32} : () -> (i32)
    %b = "arith.extsi"(%a) : (i32) -> (i8)`)
	if err := check(t, src); err == nil {
		t.Error("narrowing extsi must be rejected")
	}

	// index_cast between two integers.
	src = wrapMain(`
    %a = "arith.constant"() {value = 1 : i32} : () -> (i32)
    %b = "arith.index_cast"(%a) : (i32) -> (i64)`)
	if err := check(t, src); err == nil {
		t.Error("integer-to-integer index_cast must be rejected")
	}
}

func TestScfChecks(t *testing.T) {
	// Yield type mismatch with scf.if result.
	src := wrapMain(`
    %c = "arith.constant"() {value = 1 : i1} : () -> (i1)
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 1 : i32} : () -> (i32)
    %r = "scf.if"(%c) ({
      "scf.yield"(%a) : (i64) -> ()
    }, {
      "scf.yield"(%b) : (i32) -> ()
    }) : (i1) -> (i64)`)
	if err := check(t, src); err == nil {
		t.Error("yield type mismatch must be rejected")
	}

	// Non-i1 condition.
	src = wrapMain(`
    %c = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %r = "scf.if"(%c) ({
      %x = "arith.constant"() {value = 1 : i64} : () -> (i64)
      "scf.yield"(%x) : (i64) -> ()
    }, {
      %y = "arith.constant"() {value = 2 : i64} : () -> (i64)
      "scf.yield"(%y) : (i64) -> ()
    }) : (i64) -> (i64)`)
	if err := check(t, src); err == nil {
		t.Error("non-i1 scf.if condition must be rejected")
	}
}

func TestCfChecks(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1):
    "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
  ^bb1:
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    "func.return"(%a) : (i64) -> ()
  ^bb2:
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    "func.return"(%b) : (i64) -> ()
  }) {sym_name = "main", function_type = (i1) -> (i64)} : () -> ()
}) : () -> ()`
	if err := check(t, src); err != nil {
		t.Errorf("valid cf rejected: %v", err)
	}

	bad := strings.Replace(src, "^bb2]", "^nowhere]", 1)
	if err := check(t, bad); err == nil {
		t.Error("branch to unknown block must be rejected")
	}
}

func TestRejectsNonFuncTopLevel(t *testing.T) {
	src := `"builtin.module"() ({
  %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
}) : () -> ()`
	if err := check(t, src); err == nil {
		t.Error("top-level non-function op must be rejected")
	}
}
