// Package fleet turns the single-process campaign engines into a
// coordinator/worker fleet: one coordinator partitions a campaign's
// seed-index space into contiguous shards and leases them over HTTP to
// any number of worker processes, each of which runs its shard through
// difftest.RunCampaignRange and posts the resulting verdict stream
// back in one gzip'd JSONL body. The coordinator splices completed
// shards back into seed order, so the merged report (and journal) is
// byte-identical to a single-process serial run of the same
// configuration — the fleet changes wall-clock time, never results.
//
// The protocol reuses the substrate the journal already defined:
//
//   - Registration sends the campaign's config fingerprint — the exact
//     JSON header a journal stores on line 1 (difftest.CampaignFingerprint).
//     A worker whose preset, size, seed, bug set, fault schedule,
//     family size or plan-set fingerprint differs is rejected with 409
//     before it can contribute a single verdict.
//   - Shard results are the journal's line format: one JSON Verdict
//     per line, gzip'd. A shard upload is literally a journal fragment.
//
// Crash tolerance is lease-based: a shard lease expires unless the
// worker completes it or heartbeats, and an expired shard returns to
// the pending queue under a new epoch for re-issue. Verdicts depend
// only on (config, seed), so a late duplicate result from a presumed-
// dead worker is byte-identical to the re-issued one and is discarded
// without affecting the merge.
package fleet

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"ratte/internal/difftest"
)

// Wire paths of the fleet protocol.
const (
	pathRegister  = "/fleet/register"
	pathLease     = "/fleet/lease"
	pathHeartbeat = "/fleet/heartbeat"
	pathResult    = "/fleet/result"
)

// fleetTokenHeader carries the fleet's shared secret on every protocol
// request when the coordinator is started with a -fleet-token.
const fleetTokenHeader = "X-Ratte-Fleet-Token"

// registerRequest is a worker's hello: its campaign fingerprint (the
// journal header JSON) and a free-form host tag for dashboards.
type registerRequest struct {
	Fingerprint json.RawMessage `json:"fingerprint"`
	Host        string          `json:"host,omitempty"`
}

// registerResponse assigns the worker its identity and tells it the
// campaign dimensions its flags could not know (the program count is
// deliberately outside the fingerprint, exactly as it is outside the
// journal header).
type registerResponse struct {
	WorkerID string `json:"worker_id"`
	Programs int    `json:"programs"`
	Shards   int    `json:"shards"`
	// LeaseTTLMillis is the lease expiry budget; workers heartbeat at a
	// fraction of it while a shard runs.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// leaseRequest asks for a shard.
type leaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// ShardLease is one leased unit of work: the half-open seed-index
// range [First, First+Count) of the campaign. Epoch identifies the
// issue: a re-issued shard carries a higher epoch, and heartbeats from
// the stale holder report the lease lost.
type ShardLease struct {
	ID    int   `json:"id"`
	First int   `json:"first"`
	Count int   `json:"count"`
	Epoch int64 `json:"epoch"`
}

// leaseResponse carries a shard, a wait hint (everything is leased but
// the campaign is unfinished), or the campaign-done signal.
type leaseResponse struct {
	Done        bool        `json:"done,omitempty"`
	RetryMillis int64       `json:"retry_ms,omitempty"`
	Shard       *ShardLease `json:"shard,omitempty"`
}

// heartbeatRequest renews a shard lease mid-run.
type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	ShardID  int    `json:"shard_id"`
	Epoch    int64  `json:"epoch"`
}

// heartbeatResponse tells the worker whether it still holds the lease;
// a lost lease means the shard was re-issued and the worker should
// abandon it (its result would be discarded as a duplicate anyway).
type heartbeatResponse struct {
	Lost bool `json:"lost,omitempty"`
}

// resultResponse acknowledges a shard upload. Accepted is false for
// duplicates (the shard was already completed, typically by a re-issue
// racing a slow worker); Done tells the worker the whole campaign is
// finished so it can exit without another lease round.
type resultResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done,omitempty"`
}

// shardSnapshot is the observability sidecar of one shard upload: the
// worker's per-shard telemetry counters and semantic-coverage union,
// plus its current spool depth. It rides as an optional first line of
// the gzip'd upload body, identified by the marker field — a body
// without one decodes exactly as before, so old spools replay clean.
// The coordinator merges a snapshot only when it accepts the upload
// (the shard's pending→done transition), which is what makes the merge
// idempotent under spool-replayed duplicates: exactly one snapshot per
// shard is ever counted.
type shardSnapshot struct {
	Marker int    `json:"ratte_shard_snapshot"`
	Shard  int    `json:"shard"`
	Epoch  int64  `json:"epoch"`
	Worker string `json:"worker,omitempty"`
	// Counters is the shard's telemetry delta keyed by Prometheus
	// series (`name` or `name{labels}`) — the output of
	// telemetry.Registry.Counters on the shard's private registry.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Coverage is the shard's semantic-coverage union (site → hits).
	Coverage map[string]uint64 `json:"coverage,omitempty"`
	// SpoolDepth is the worker's unacknowledged spool entry count at
	// upload time (including this shard's own entry when spooled).
	SpoolDepth int `json:"spool_depth"`
}

// encodeVerdicts renders verdicts as gzip'd JSONL — one journal line
// per verdict, the campaign journal's exact line format.
func encodeVerdicts(vs []difftest.Verdict) ([]byte, error) {
	return encodeShard(vs, nil)
}

// encodeShard renders one shard upload body: the optional snapshot
// line followed by one journal line per verdict, gzip'd.
func encodeShard(vs []difftest.Verdict, snap *shardSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if snap != nil {
		line, err := json.Marshal(snap)
		if err != nil {
			return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
		}
		zw.Write(line)
		zw.Write([]byte{'\n'})
	}
	for _, v := range vs {
		line, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("fleet: encode verdict: %w", err)
		}
		zw.Write(line)
		zw.Write([]byte{'\n'})
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("fleet: encode verdicts: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeVerdicts reads a gzip'd JSONL verdict stream, discarding any
// snapshot line.
func decodeVerdicts(r io.Reader) ([]difftest.Verdict, error) {
	vs, _, err := decodeShard(r)
	return vs, err
}

// decodeShard reads one shard upload body: verdicts plus the snapshot,
// when the first line carries the snapshot marker (nil otherwise — a
// verdict line's "seed"/"kind" fields never set the marker, so
// pre-snapshot bodies decode unchanged).
func decodeShard(r io.Reader) ([]difftest.Verdict, *shardSnapshot, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: decode verdicts: %w", err)
	}
	defer zr.Close()
	var out []difftest.Verdict
	var snap *shardSnapshot
	first := true
	sc := bufio.NewScanner(zr)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var probe shardSnapshot
			if err := json.Unmarshal(line, &probe); err == nil && probe.Marker != 0 {
				snap = &probe
				continue
			}
		}
		var v difftest.Verdict
		if err := json.Unmarshal(line, &v); err != nil {
			return nil, nil, fmt.Errorf("fleet: decode verdict line: %w", err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("fleet: decode verdicts: %w", err)
	}
	return out, snap, nil
}
