// End-to-end chaos tests: a real localhost fleet under seeded network
// faults and a coordinator kill + restart mid-campaign, with the
// merged report compared byte for byte against the serial engine —
// the determinism-under-failure contract the fleet-chaos conformance
// oracle pins continuously.
package fleet_test

import (
	"context"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/fleet"
)

// TestFleetCoordinatorRestart kills the coordinator mid-campaign and
// restarts it on the same address over the same journal and ledger.
// The workers ride out the outage (upload/lease retries, 403-triggered
// re-registration), the restarted coordinator re-admits them, and the
// merged report is byte-identical to the uninterrupted serial run.
func TestFleetCoordinatorRestart(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset: "ariths", Programs: 30, Size: 14, Seed: 97,
		Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
	}
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jpath := filepath.Join(dir, "fleet.jsonl")
	lpath := jpath + ".ledger"
	jcfg := cfg
	j, err := difftest.CreateJournal(jpath, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	jcfg.Journal = j
	const token = "chaos-secret"
	cc := fleet.CoordinatorConfig{
		Campaign: jcfg, ShardSize: 3, LeaseTTL: 500 * time.Millisecond,
		LedgerPath: lpath, Token: token,
	}
	coord, err := fleet.NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := coord.Addr()

	var wg sync.WaitGroup
	const workers = 2
	stats := make([]fleet.WorkerStats, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator:   "http://" + addr,
				Campaign:      cfg,
				Workers:       1,
				Token:         token,
				UploadRetries: 10,
				LeaseRetries:  60,
				SpoolPath:     filepath.Join(dir, "worker"+string(rune('a'+i))+".spool"),
				Logf:          t.Logf,
			})
		}(i)
	}

	// Let the fleet make real progress, then pull the plug.
	deadline := time.Now().Add(time.Minute)
	for coord.Merged() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleet made no progress before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := coord.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same journal, same ledger, same address.
	j2, resumed, err := difftest.OpenJournalForResume(jpath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Journal = j2
	rcfg.Resumed = resumed
	cc.Campaign = rcfg
	cc.ResumeLedger = true
	coord2, err := fleet.NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	var startErr error
	for i := 0; i < 100; i++ {
		if startErr = coord2.Start(addr); startErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if startErr != nil {
		t.Fatalf("restart on %s: %v", addr, startErr)
	}
	defer coord2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := coord2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord2.DrainWorkers(10 * time.Second)
	wg.Wait()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v (stats %+v)", i, werr, stats[i])
		}
	}
	if d := difftest.DiffVerdicts(want.Verdicts, res.Verdicts); d != "" {
		t.Fatalf("post-restart fleet verdicts differ from serial: %s", d)
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("post-restart fleet report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
	}

	// The journal on disk is the uninterrupted run's too.
	j3, all, err := difftest.OpenJournalForResume(jpath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(all) != cfg.Programs {
		t.Fatalf("journal holds %d verdicts after restart run, want %d", len(all), cfg.Programs)
	}
}

// TestFleetChaosNetworkFaults runs the fleet with every wire path
// behind seeded fault-injecting transports — refused connections,
// delays, 5xx, torn request and response bodies, duplicated
// deliveries — and still requires the serial run's exact report.
func TestFleetChaosNetworkFaults(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset: "ariths", Programs: 24, Size: 14, Seed: 97,
		Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
	}
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Campaign: cfg, ShardSize: 4, LeaseTTL: time.Second, Token: "chaos",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var wg sync.WaitGroup
	const workers = 2
	transports := make([]*faultinject.Transport, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		transports[i] = faultinject.NewTransport(faultinject.NetSpec{
			Seed:      int64(1000 + i),
			Rate:      0.2,
			MaxFaults: 25,
			Delay:     time.Millisecond,
		}, nil)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator:   "http://" + coord.Addr(),
				Campaign:      cfg,
				Workers:       1,
				Token:         "chaos",
				UploadRetries: 12,
				LeaseRetries:  60,
				Client:        &http.Client{Timeout: 30 * time.Second, Transport: transports[i]},
				Logf:          t.Logf,
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord.DrainWorkers(10 * time.Second)
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d under faults: %v (fired %v)", i, werr, transports[i].Fired())
		}
	}
	var fired int
	for _, tr := range transports {
		fired += tr.Hits()
	}
	if fired == 0 {
		t.Fatal("no network faults fired; the chaos run exercised nothing")
	}
	t.Logf("network faults fired: %d", fired)
	if d := difftest.DiffVerdicts(want.Verdicts, res.Verdicts); d != "" {
		t.Fatalf("chaos fleet verdicts differ from serial: %s", d)
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("chaos fleet report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
	}
}
