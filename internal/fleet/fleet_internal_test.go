// White-box tests of the fleet protocol mechanics: lease expiry and
// re-issue, duplicate-result discard, the verdict codec, and the
// drain-to-resumable-journal path. The end-to-end coordinator/worker
// determinism tests live in e2e_test.go.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
)

func testCampaign(programs int) difftest.CampaignConfig {
	return difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: programs,
		Size:     14,
		Seed:     97,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
}

// post drives one handler directly — no network — and decodes the
// JSON response into out (when the status is 200 and out is non-nil).
func post(t *testing.T, handler func(w *httptest.ResponseRecorder, body []byte), body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	handler(w, data)
	if w.Code == 200 && out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decode response: %v (%s)", err, w.Body.String())
		}
	}
	return w.Code
}

func register(t *testing.T, c *Coordinator) string {
	t.Helper()
	fp, err := difftest.CampaignFingerprint(c.camp)
	if err != nil {
		t.Fatal(err)
	}
	var resp registerResponse
	code := post(t, func(w *httptest.ResponseRecorder, body []byte) {
		c.handleRegister(w, httptest.NewRequest("POST", pathRegister, bytes.NewReader(body)))
	}, registerRequest{Fingerprint: fp}, &resp)
	if code != 200 {
		t.Fatalf("register: status %d", code)
	}
	return resp.WorkerID
}

func lease(t *testing.T, c *Coordinator, workerID string) leaseResponse {
	t.Helper()
	var resp leaseResponse
	code := post(t, func(w *httptest.ResponseRecorder, body []byte) {
		c.handleLease(w, httptest.NewRequest("POST", pathLease, bytes.NewReader(body)))
	}, leaseRequest{WorkerID: workerID}, &resp)
	if code != 200 {
		t.Fatalf("lease: status %d", code)
	}
	return resp
}

func heartbeat(t *testing.T, c *Coordinator, workerID string, shardID int, epoch int64) heartbeatResponse {
	t.Helper()
	var resp heartbeatResponse
	code := post(t, func(w *httptest.ResponseRecorder, body []byte) {
		c.handleHeartbeat(w, httptest.NewRequest("POST", pathHeartbeat, bytes.NewReader(body)))
	}, heartbeatRequest{WorkerID: workerID, ShardID: shardID, Epoch: epoch}, &resp)
	if code != 200 {
		t.Fatalf("heartbeat: status %d", code)
	}
	return resp
}

// uploadShard runs the shard's seed range for real and posts the
// verdicts, returning the coordinator's response and HTTP status.
func uploadShard(t *testing.T, c *Coordinator, workerID string, s ShardLease) (resultResponse, int) {
	t.Helper()
	vs, err := difftest.RunCampaignRange(context.Background(), c.camp, s.First, s.Count, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeVerdicts(vs)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", pathResult+"?shard="+jsonInt(s.ID)+"&worker="+workerID, bytes.NewReader(body))
	w := httptest.NewRecorder()
	c.handleResult(w, req)
	var resp resultResponse
	if w.Code == 200 {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, w.Code
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestVerdictCodecRoundTrip: the gzip JSONL codec preserves every
// verdict field the merge depends on.
func TestVerdictCodecRoundTrip(t *testing.T) {
	cfg := testCampaign(10)
	want, err := difftest.RunCampaignRange(context.Background(), cfg, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeVerdicts(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeVerdicts(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffVerdicts(want, got); d != "" {
		t.Fatalf("codec round trip changed verdicts: %s", d)
	}
}

// TestLeaseExpiryReissue: a shard whose holder goes silent past the
// lease TTL is re-issued to the next worker under a higher epoch, the
// stale holder's heartbeat reports the lease lost, and the late
// duplicate result is discarded — while the merged campaign still
// completes with exactly the serial run's report.
func TestLeaseExpiryReissue(t *testing.T) {
	cfg := testCampaign(8)
	c, err := NewCoordinator(CoordinatorConfig{
		Campaign: cfg, ShardSize: 4, LeaseTTL: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	w2 := register(t, c)

	// w1 takes shard 0 and "crashes": no heartbeat, no result.
	l1 := lease(t, c, w1)
	if l1.Shard == nil || l1.Shard.ID != 0 {
		t.Fatalf("w1 lease: got %+v, want shard 0", l1)
	}
	time.Sleep(50 * time.Millisecond) // past the TTL

	// w2's lease sweeps the expired shard and takes it back over.
	l2 := lease(t, c, w2)
	if l2.Shard == nil || l2.Shard.ID != 0 {
		t.Fatalf("w2 lease after expiry: got %+v, want shard 0 re-issued", l2)
	}
	if l2.Shard.Epoch <= l1.Shard.Epoch {
		t.Fatalf("re-issued epoch %d not above original %d", l2.Shard.Epoch, l1.Shard.Epoch)
	}
	if got := c.reissued.Value(); got != 1 {
		t.Fatalf("reissued counter = %d, want 1", got)
	}

	// The presumed-dead w1 heartbeats its stale epoch: lease lost.
	if hb := heartbeat(t, c, w1, l1.Shard.ID, l1.Shard.Epoch); !hb.Lost {
		t.Fatal("stale-epoch heartbeat should report the lease lost")
	}
	// w2's heartbeat on the live epoch keeps it.
	if hb := heartbeat(t, c, w2, l2.Shard.ID, l2.Shard.Epoch); hb.Lost {
		t.Fatal("live-epoch heartbeat should hold the lease")
	}

	// w2 completes the re-issued shard; w1's late duplicate is discarded.
	if resp, code := uploadShard(t, c, w2, *l2.Shard); code != 200 || !resp.Accepted {
		t.Fatalf("w2 upload: code %d accepted %v", code, resp.Accepted)
	}
	if resp, code := uploadShard(t, c, w1, *l1.Shard); code != 200 || resp.Accepted {
		t.Fatalf("late duplicate upload: code %d accepted %v, want discarded", code, resp.Accepted)
	}
	if got := c.duplicates.Value(); got != 1 {
		t.Fatalf("duplicates counter = %d, want 1", got)
	}

	// Finish the campaign and check the merge against serial.
	l3 := lease(t, c, w2)
	if l3.Shard == nil || l3.Shard.ID != 1 {
		t.Fatalf("second shard lease: got %+v", l3)
	}
	resp, _ := uploadShard(t, c, w2, *l3.Shard)
	if !resp.Accepted || !resp.Done {
		t.Fatalf("final upload: %+v, want accepted and done", resp)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("merged report differs from serial after re-issue:\n--- serial\n%s--- fleet\n%s", a, b)
	}
}

// TestDrainWritesResumableJournal: cancelling Wait mid-campaign
// freezes the merge at the contiguous prefix, every merged verdict is
// already journaled, and resuming that journal lands on the
// uninterrupted run's exact report — the coordinator SIGINT contract.
func TestDrainWritesResumableJournal(t *testing.T) {
	cfg := testCampaign(12)
	fresh, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	jcfg := cfg
	j, err := difftest.CreateJournal(path, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	jcfg.Journal = j
	c, err := NewCoordinator(CoordinatorConfig{Campaign: jcfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	l := lease(t, c, w1)
	if resp, code := uploadShard(t, c, w1, *l.Shard); code != 200 || !resp.Accepted {
		t.Fatalf("upload: code %d resp %+v", code, resp)
	}

	// "SIGINT": cancel Wait. The partial result is the merged prefix.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := c.Wait(ctx)
	if err == nil {
		t.Fatal("cancelled Wait returned no error")
	}
	if len(partial.Verdicts) != 4 {
		t.Fatalf("partial result has %d verdicts, want the 4 merged", len(partial.Verdicts))
	}
	// Draining: a late shard result is refused and the worker told done.
	l2 := lease(t, c, w1)
	if !l2.Done {
		t.Fatalf("lease while draining: %+v, want done", l2)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: the journal holds exactly the merged prefix, and a second
	// fleet run over it finishes to the uninterrupted report.
	j2, resumed, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 4 {
		t.Fatalf("journal resumed %d verdicts, want 4", len(resumed))
	}
	rcfg := cfg
	rcfg.Journal = j2
	rcfg.Resumed = resumed
	c2, err := NewCoordinator(CoordinatorConfig{Campaign: rcfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := register(t, c2)
	for {
		l := lease(t, c2, w)
		if l.Done {
			break
		}
		if l.Shard == nil {
			t.Fatal("resumed coordinator idle with shards outstanding")
		}
		if l.Shard.ID == 0 {
			t.Fatal("resumed coordinator re-leased the journaled shard")
		}
		if resp, code := uploadShard(t, c2, w, *l.Shard); code != 200 || !resp.Accepted {
			t.Fatalf("resume upload: code %d resp %+v", code, resp)
		}
	}
	res, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffVerdicts(fresh.Verdicts, res.Verdicts); d != "" {
		t.Fatalf("resumed fleet verdicts differ from fresh: %s", d)
	}
	if a, b := difftest.ReportText(fresh), difftest.ReportText(res); a != b {
		t.Fatalf("resumed fleet report differs from fresh:\n--- fresh\n%s--- resumed\n%s", a, b)
	}
}

// TestShardValidation: a result whose verdict stream does not match
// the shard's exact seed range is rejected, not merged.
func TestShardValidation(t *testing.T) {
	cfg := testCampaign(8)
	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	l := lease(t, c, w1)

	// Wrong count.
	vs, err := difftest.RunCampaignRange(context.Background(), cfg, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := encodeVerdicts(vs)
	rec := httptest.NewRecorder()
	c.handleResult(rec, httptest.NewRequest("POST", pathResult+"?shard=0&worker="+w1, bytes.NewReader(body)))
	if rec.Code == 200 {
		t.Fatal("short verdict stream accepted")
	}

	// Wrong seeds (shard 1's verdicts posted as shard 0).
	vs, err = difftest.RunCampaignRange(context.Background(), cfg, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = encodeVerdicts(vs)
	rec = httptest.NewRecorder()
	c.handleResult(rec, httptest.NewRequest("POST", pathResult+"?shard=0&worker="+w1, bytes.NewReader(body)))
	if rec.Code == 200 {
		t.Fatal("mis-seeded verdict stream accepted")
	}

	// The shard is still completable by the honest path.
	if resp, code := uploadShard(t, c, w1, *l.Shard); code != 200 || !resp.Accepted {
		t.Fatalf("honest upload after rejections: code %d resp %+v", code, resp)
	}
}

// TestFamilyShardAlignment: auto shard sizing in family mode lands on
// family-boundary multiples, so workers never split a mutation family.
func TestFamilyShardAlignment(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset: "ariths", Programs: 30, Size: 12, Seed: 1,
		FamilySize: 4, Batched: true,
	}
	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.shards {
		if s.first%4 != 0 {
			t.Fatalf("shard %d starts at %d, not family-aligned", s.id, s.first)
		}
		if s.count%4 != 0 && s.first+s.count != cfg.Programs {
			t.Fatalf("shard %d count %d not family-aligned", s.id, s.count)
		}
	}
}

// TestStopAtFirstRejected: the fleet cannot honour StopAtFirst's
// early-exit semantics deterministically, so it refuses upfront.
func TestStopAtFirstRejected(t *testing.T) {
	cfg := testCampaign(8)
	cfg.StopAtFirst = true
	if _, err := NewCoordinator(CoordinatorConfig{Campaign: cfg}); err == nil {
		t.Fatal("StopAtFirst coordinator built, want refusal")
	}
}
