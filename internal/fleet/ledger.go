// The coordinator's shard ledger: an append-only JSONL record of the
// fleet control plane's state transitions — worker admissions, lease
// grants, shard completions and splice offsets — kept alongside the
// campaign journal. The journal makes the campaign's *data* durable
// (the verdicts); the ledger makes the *control plane* durable: a
// coordinator restarted with -serve -resume rebuilds its shard queue
// under the recorded partitioning and resumes its epoch and worker-id
// counters strictly above every value it ever issued, so leases
// granted before the crash can never be confused with post-restart
// ones.
//
// The ledger is advisory where the journal is authoritative: shard
// done-ness on recovery comes from the journal's verdicts (the ledger
// stores none), and a missing or torn ledger only costs re-derived
// state, never correctness. Like the journal, a torn final line — the
// crash the ledger exists to survive — is recovered by truncating to
// the last intact line.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ledgerVersion guards the on-disk format.
const ledgerVersion = 1

// ledgerHeader is line 1: the campaign fingerprint (the same JSON the
// registration handshake checks) plus the shard partitioning, which
// must be stable across restarts for shard ids to keep their meaning.
type ledgerHeader struct {
	Version     int             `json:"ratte_fleet_ledger"`
	Fingerprint json.RawMessage `json:"fingerprint"`
	ShardSize   int             `json:"shard_size"`
	Programs    int             `json:"programs"`
}

// ledgerEntry is one event line; exactly one field is set.
type ledgerEntry struct {
	Worker *ledgerWorker `json:"worker,omitempty"`
	Grant  *ledgerGrant  `json:"grant,omitempty"`
	Done   *ledgerDone   `json:"done,omitempty"`
	Splice *ledgerSplice `json:"splice,omitempty"`
}

// ledgerWorker records one worker admission.
type ledgerWorker struct {
	ID   string `json:"id"`
	Host string `json:"host,omitempty"`
}

// ledgerGrant records one lease issue (or re-issue, at a higher epoch).
type ledgerGrant struct {
	Shard  int    `json:"shard"`
	Epoch  int64  `json:"epoch"`
	Worker string `json:"worker"`
}

// ledgerDone records one accepted shard result.
type ledgerDone struct {
	Shard    int   `json:"shard"`
	Epoch    int64 `json:"epoch"`
	Verdicts int   `json:"verdicts"`
}

// ledgerSplice records the merge frontier advancing past a shard;
// Seeds is the cumulative merged seed count afterwards — the journal
// offset a recovery can cross-check against the journal's own line
// count.
type ledgerSplice struct {
	Shard int `json:"shard"`
	Seeds int `json:"seeds"`
}

// ledgerState is what a recovery derives from replaying a ledger.
type ledgerState struct {
	shardSize  int
	programs   int
	nextEpoch  int64 // max epoch ever granted
	nextWorker int   // max worker number ever admitted
	// done maps shard id -> true for shards the ledger saw spliced;
	// advisory (the journal is authoritative), used for cross-checks.
	done map[int]bool
}

// ledger is an open shard ledger accepting event appends. Not safe for
// concurrent use; the coordinator appends under its own mutex.
type ledger struct {
	f    *os.File
	path string
}

// createLedger starts a fresh ledger at path, truncating any existing
// file, and writes the partitioning header.
func createLedger(path string, fingerprint []byte, shardSize, programs int) (*ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	l := &ledger{f: f, path: path}
	hdr := ledgerHeader{
		Version:     ledgerVersion,
		Fingerprint: json.RawMessage(fingerprint),
		ShardSize:   shardSize,
		Programs:    programs,
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	if err := l.writeLine(line); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// openLedgerForResume replays the ledger at path, validates its
// fingerprint against the campaign's, truncates any torn tail, and
// returns the ledger reopened for appending together with the
// recovered control-plane state.
func openLedgerForResume(path string, fingerprint []byte) (*ledger, *ledgerState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("fleet: ledger: %s is empty", path)
	}

	var hdr ledgerHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("fleet: ledger: %s: bad header: %w", path, err)
	}
	if hdr.Version != ledgerVersion {
		return nil, nil, fmt.Errorf("fleet: ledger: %s has version %d, want %d", path, hdr.Version, ledgerVersion)
	}
	if string(hdr.Fingerprint) != string(fingerprint) {
		return nil, nil, fmt.Errorf("fleet: ledger: %s was recorded under a different campaign config", path)
	}

	st := &ledgerState{
		shardSize: hdr.ShardSize,
		programs:  hdr.Programs,
		done:      make(map[int]bool),
	}
	goodBytes := len(lines[0]) + 1
	for _, line := range lines[1:] {
		var e ledgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn tail: everything before it stands; truncate below so
			// post-recovery appends land on an intact line boundary.
			break
		}
		switch {
		case e.Worker != nil:
			if n, err := strconv.Atoi(strings.TrimPrefix(e.Worker.ID, "w")); err == nil && n > st.nextWorker {
				st.nextWorker = n
			}
		case e.Grant != nil:
			if e.Grant.Epoch > st.nextEpoch {
				st.nextEpoch = e.Grant.Epoch
			}
		case e.Splice != nil:
			st.done[e.Splice.Shard] = true
		}
		goodBytes += len(line) + 1
	}
	if goodBytes < len(data) {
		if err := os.Truncate(path, int64(goodBytes)); err != nil {
			return nil, nil, fmt.Errorf("fleet: ledger: recover: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: ledger: %w", err)
	}
	return &ledger{f: f, path: path}, st, nil
}

// append records one event. Like the journal, the line is handed to
// the kernel in a single Write call, so a crash can tear at most the
// final line.
func (l *ledger) append(e ledgerEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	return l.writeLine(line)
}

func (l *ledger) writeLine(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	return nil
}

// Close flushes and closes the ledger file.
func (l *ledger) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("fleet: ledger: %w", err)
	}
	return nil
}
