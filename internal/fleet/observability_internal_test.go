// White-box tests of the fleet observability plane: the shard-snapshot
// codec (including pre-snapshot back-compat), the dedup-by-accept
// snapshot merge, and the series-key parser.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"ratte/internal/difftest"
)

// uploadShardSnap posts the shard's real verdicts with an attached
// snapshot, returning the coordinator's response and HTTP status.
func uploadShardSnap(t *testing.T, c *Coordinator, workerID string, s ShardLease, snap *shardSnapshot) (resultResponse, int) {
	t.Helper()
	vs, err := difftest.RunCampaignRange(context.Background(), c.camp, s.First, s.Count, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeShard(vs, snap)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", pathResult+"?shard="+jsonInt(s.ID)+"&worker="+workerID, bytes.NewReader(body))
	w := httptest.NewRecorder()
	c.handleResult(w, req)
	var resp resultResponse
	if w.Code == 200 {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, w.Code
}

// TestShardSnapshotCodecRoundTrip: a body led by a snapshot line
// decodes into verdicts plus the snapshot; a body without one (the
// pre-snapshot wire format, and every old spool entry) decodes into
// verdicts and a nil snapshot.
func TestShardSnapshotCodecRoundTrip(t *testing.T) {
	cfg := testCampaign(8)
	want, err := difftest.RunCampaignRange(context.Background(), cfg, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := &shardSnapshot{
		Marker: 1, Shard: 3, Epoch: 7, Worker: "w2",
		Counters:   map[string]uint64{"a_total": 4, `b_total{k="v"}`: 2},
		Coverage:   map[string]uint64{"gen/op/add": 9, "interp/op/mul": 1},
		SpoolDepth: 5,
	}
	body, err := encodeShard(want, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSnap, err := decodeShard(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if gotSnap == nil || !reflect.DeepEqual(gotSnap, snap) {
		t.Fatalf("snapshot round trip: got %+v, want %+v", gotSnap, snap)
	}
	if len(got) != len(want) {
		t.Fatalf("verdict count: got %d, want %d", len(got), len(want))
	}

	// Back-compat: a snapshot-free body (old workers, old spools).
	plain, err := encodeVerdicts(want)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSnap, err = decodeShard(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if gotSnap != nil {
		t.Fatalf("snapshot-free body decoded a snapshot: %+v", gotSnap)
	}
	if len(got) != len(want) {
		t.Fatalf("verdict count: got %d, want %d", len(got), len(want))
	}
}

// TestSplitSeries: the inverse of the registry's series rendering.
func TestSplitSeries(t *testing.T) {
	cases := []struct{ in, name, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{k="v"}`, "x_total", `k="v"`},
		// A '{' inside a label value splits at the first brace (the
		// registry never renders one before the label block) and only the
		// final '}' is trimmed.
		{`x_total{k="v",q="{w}"}`, "x_total", `k="v",q="{w}"`},
	}
	for _, tc := range cases {
		name, labels := splitSeries(tc.in)
		if name != tc.name || labels != tc.labels {
			t.Errorf("splitSeries(%q) = (%q, %q), want (%q, %q)", tc.in, name, labels, tc.name, tc.labels)
		}
	}
}

// TestSnapshotMergeIdempotent: a duplicate shard upload — the spool-
// replay case — must not re-count its snapshot. The merged counters and
// coverage after a replayed duplicate are byte-for-byte the counters
// after single delivery.
func TestSnapshotMergeIdempotent(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(10), ShardSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	l1 := lease(t, c, w1)
	snap := &shardSnapshot{
		Marker: 1, Shard: l1.Shard.ID, Epoch: l1.Shard.Epoch, Worker: w1,
		Counters:   map[string]uint64{"ratte_campaign_verdicts_total": 5, `ratte_detections_total{oracle="NC"}`: 1},
		Coverage:   map[string]uint64{"gen/op/add": 7, "compiler/pass/cse": 3},
		SpoolDepth: 2,
	}
	if resp, code := uploadShardSnap(t, c, w1, *l1.Shard, snap); code != 200 || !resp.Accepted {
		t.Fatalf("first upload: code %d accepted %v", code, resp.Accepted)
	}
	once := c.reg.Counters()
	if once["ratte_campaign_verdicts_total"] != 5 {
		t.Fatalf("merged counter = %d, want 5", once["ratte_campaign_verdicts_total"])
	}
	if once[`ratte_coverage_hits_total{site="gen/op/add"}`] != 7 {
		t.Fatalf("merged coverage counter = %d, want 7", once[`ratte_coverage_hits_total{site="gen/op/add"}`])
	}
	c.mu.Lock()
	ws := c.workers[w1]
	shards, verdicts, depth := ws.shards, ws.verdicts, ws.spoolDepth
	c.mu.Unlock()
	if shards != 1 || verdicts != 5 || depth != 2 {
		t.Fatalf("worker accounting after accept: shards %d verdicts %d spool %d", shards, verdicts, depth)
	}

	// Replay the exact same body (what a restarted worker's spool does).
	if resp, code := uploadShardSnap(t, c, w1, *l1.Shard, snap); code != 200 || resp.Accepted {
		t.Fatalf("duplicate upload: code %d accepted %v, want rejected", code, resp.Accepted)
	}
	twice := c.reg.Counters()
	// The coordinator's own duplicate tally moves — that is the point —
	// but every snapshot-merged series must be untouched.
	skip := "ratte_fleet_results_duplicate_total"
	delete(once, skip)
	delete(twice, skip)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("duplicate upload changed merged counters:\nonce:  %v\ntwice: %v", once, twice)
	}
	c.mu.Lock()
	ws = c.workers[w1]
	shards, verdicts = ws.shards, ws.verdicts
	c.mu.Unlock()
	if shards != 1 || verdicts != 5 {
		t.Fatalf("duplicate upload changed worker accounting: shards %d verdicts %d", shards, verdicts)
	}
	if c.duplicates.Value() != 1 {
		t.Fatalf("duplicates counter = %d, want 1", c.duplicates.Value())
	}
}
