// The fleet worker: register, lease, run, heartbeat, upload, repeat.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ratte/internal/difftest"
)

// WorkerConfig configures one fleet worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:7777".
	Coordinator string
	// Campaign is the worker's local campaign configuration; its
	// fingerprint must match the coordinator's or registration is
	// rejected. Programs is overwritten by the coordinator's value at
	// registration (it is outside the fingerprint, like the journal).
	Campaign difftest.CampaignConfig
	// Workers is the in-process pipeline parallelism each shard runs
	// with (<=1 = serial).
	Workers int
	// Host is a free-form tag reported at registration (defaults to the
	// process hostname).
	Host string
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client

	// RegisterRetries bounds the initial-registration retry loop
	// covering the coordinator-still-starting race (default 20 attempts
	// at 250ms). A 409 config mismatch fails immediately regardless.
	RegisterRetries int
}

// WorkerStats summarizes one worker's run for logs and tests.
type WorkerStats struct {
	WorkerID       string
	Shards         int // shards completed and accepted
	Verdicts       int // verdicts uploaded in accepted shards
	LostLeases     int // shards abandoned after a heartbeat reported the lease lost
	DuplicateDrops int // completed shards the coordinator discarded as duplicates
}

// RunWorker runs the worker loop until the coordinator reports the
// campaign done, ctx is cancelled, or a non-retryable error occurs.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	w := &worker{cfg: cfg}
	if w.cfg.Client == nil {
		w.cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.cfg.Logf == nil {
		w.cfg.Logf = func(string, ...any) {}
	}
	if w.cfg.Host == "" {
		w.cfg.Host, _ = os.Hostname()
	}
	if w.cfg.RegisterRetries <= 0 {
		w.cfg.RegisterRetries = 20
	}
	return w.run(ctx)
}

type worker struct {
	cfg   WorkerConfig
	stats WorkerStats
	ttl   time.Duration
}

func (w *worker) run(ctx context.Context) (WorkerStats, error) {
	reg, err := w.register(ctx)
	if err != nil {
		return w.stats, err
	}
	w.stats.WorkerID = reg.WorkerID
	w.ttl = time.Duration(reg.LeaseTTLMillis) * time.Millisecond
	if w.ttl <= 0 {
		w.ttl = DefaultLeaseTTL
	}
	// The program count lives outside the fingerprint; adopt the
	// coordinator's so shard-range validation sees the real bounds.
	w.cfg.Campaign.Programs = reg.Programs
	w.cfg.Logf("fleet worker %s: registered (%d programs, %d shards, lease %v)",
		reg.WorkerID, reg.Programs, reg.Shards, w.ttl)

	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		lease, err := w.lease(ctx)
		if err != nil {
			return w.stats, err
		}
		switch {
		case lease.Done:
			w.cfg.Logf("fleet worker %s: campaign done (%d shards, %d verdicts)",
				w.stats.WorkerID, w.stats.Shards, w.stats.Verdicts)
			return w.stats, nil
		case lease.Shard == nil:
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = defaultRetryMillis * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return w.stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		done, err := w.runShard(ctx, *lease.Shard)
		if err != nil {
			return w.stats, err
		}
		if done {
			w.cfg.Logf("fleet worker %s: campaign done (%d shards, %d verdicts)",
				w.stats.WorkerID, w.stats.Shards, w.stats.Verdicts)
			return w.stats, nil
		}
	}
}

// register announces the worker, retrying connection errors to cover
// the worker-before-coordinator startup race. A rejection (HTTP 409,
// mismatched campaign fingerprint) fails immediately.
func (w *worker) register(ctx context.Context) (*registerResponse, error) {
	fp, err := difftest.CampaignFingerprint(w.cfg.Campaign)
	if err != nil {
		return nil, err
	}
	req := registerRequest{Fingerprint: fp, Host: w.cfg.Host}
	var lastErr error
	for attempt := 0; attempt < w.cfg.RegisterRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(250 * time.Millisecond):
			}
		}
		var resp registerResponse
		status, err := w.postJSON(ctx, pathRegister, req, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			return &resp, nil
		case status == http.StatusConflict:
			return nil, fmt.Errorf("fleet: registration rejected: %w", err)
		default:
			lastErr = err
		}
	}
	return nil, fmt.Errorf("fleet: register: coordinator unreachable: %w", lastErr)
}

// lease asks for the next shard.
func (w *worker) lease(ctx context.Context) (*leaseResponse, error) {
	var resp leaseResponse
	status, err := w.postJSON(ctx, pathLease, leaseRequest{WorkerID: w.stats.WorkerID}, &resp)
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("fleet: lease: %w", err)
	}
	return &resp, nil
}

// runShard executes one leased shard with a heartbeat goroutine
// renewing the lease at a third of the TTL. A heartbeat that reports
// the lease lost cancels the shard's context: the coordinator has
// re-issued the shard, so finishing it would only produce a duplicate.
// The returned bool is the coordinator's campaign-done signal from the
// upload acknowledgement, which saves the final lease round trip.
func (w *worker) runShard(ctx context.Context, lease ShardLease) (bool, error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(w.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
			}
			var resp heartbeatResponse
			status, err := w.postJSON(shardCtx, pathHeartbeat, heartbeatRequest{
				WorkerID: w.stats.WorkerID, ShardID: lease.ID, Epoch: lease.Epoch,
			}, &resp)
			if err == nil && status == http.StatusOK && resp.Lost {
				close(lost)
				cancel()
				return
			}
			// Transient heartbeat errors are ignored: the lease has a
			// whole TTL of slack and the result upload is authoritative.
		}
	}()

	vs, runErr := difftest.RunCampaignRange(shardCtx, w.cfg.Campaign, lease.First, lease.Count, w.cfg.Workers)
	cancel()
	<-hbDone
	select {
	case <-lost:
		w.stats.LostLeases++
		w.cfg.Logf("fleet worker %s: shard %d lease lost, abandoning", w.stats.WorkerID, lease.ID)
		return false, nil
	default:
	}
	if runErr != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, fmt.Errorf("fleet: shard %d: %w", lease.ID, runErr)
	}
	return w.upload(ctx, lease, vs)
}

// upload posts the shard's verdict stream — one gzip'd JSONL body —
// retrying transient failures while the lease epoch still stands. The
// returned bool relays the coordinator's campaign-done signal.
func (w *worker) upload(ctx context.Context, lease ShardLease, vs []difftest.Verdict) (bool, error) {
	body, err := encodeVerdicts(vs)
	if err != nil {
		return false, err
	}
	url := fmt.Sprintf("%s%s?shard=%d&worker=%s", w.cfg.Coordinator, pathResult, lease.ID, w.stats.WorkerID)
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set("Content-Encoding", "gzip")
		httpResp, err := w.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
		httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("fleet: shard %d upload rejected: %s: %s",
				lease.ID, httpResp.Status, bytes.TrimSpace(data))
		}
		var resp resultResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return false, fmt.Errorf("fleet: shard %d upload response: %w", lease.ID, err)
		}
		if resp.Accepted {
			w.stats.Shards++
			w.stats.Verdicts += len(vs)
			w.cfg.Logf("fleet worker %s: shard %d done (%d verdicts)", w.stats.WorkerID, lease.ID, len(vs))
		} else {
			w.stats.DuplicateDrops++
			w.cfg.Logf("fleet worker %s: shard %d already complete, discarded", w.stats.WorkerID, lease.ID)
		}
		return resp.Done, nil
	}
	return false, fmt.Errorf("fleet: shard %d upload: %w", lease.ID, lastErr)
}

// postJSON posts a JSON body and decodes a JSON response. The returned
// status is 0 on transport errors; on non-200 statuses err carries the
// response body.
func (w *worker) postJSON(ctx context.Context, path string, body, into any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decode %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
