// The fleet worker: register, lease, run, heartbeat, upload, repeat —
// with every wire interaction hardened for a lossy network and a
// killable coordinator. Uploads and leases retry transport errors and
// 5xx responses under bounded exponential backoff with deterministic
// jitter; a lease rejected 403 (the coordinator restarted and forgot
// this worker) triggers re-registration through the normal fingerprint
// handshake; and with a spool configured, every completed shard is
// durable on local disk before its upload is attempted, so neither a
// dropped connection nor the worker's own death loses work.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"time"

	"ratte/internal/difftest"
	"ratte/internal/telemetry"
)

// Worker retry defaults.
const (
	// defaultUploadRetries bounds the shard-upload retry loop.
	defaultUploadRetries = 5
	// defaultLeaseRetries bounds consecutive failed lease attempts; with
	// backoff this rides out roughly twenty seconds of coordinator
	// downtime, comfortably covering a kill + restart.
	defaultLeaseRetries = 12
	// retryBase / retryCap bound the exponential backoff between
	// retried requests.
	retryBase = 100 * time.Millisecond
	retryCap  = 2 * time.Second
)

// WorkerConfig configures one fleet worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:7777".
	Coordinator string
	// Campaign is the worker's local campaign configuration; its
	// fingerprint must match the coordinator's or registration is
	// rejected. Programs is overwritten by the coordinator's value at
	// registration (it is outside the fingerprint, like the journal).
	Campaign difftest.CampaignConfig
	// Workers is the in-process pipeline parallelism each shard runs
	// with (<=1 = serial).
	Workers int
	// Host is a free-form tag reported at registration (defaults to the
	// process hostname).
	Host string
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Token is the fleet's shared secret, sent on every request when
	// non-empty; must match the coordinator's -fleet-token.
	Token string

	// RegisterRetries bounds the initial-registration retry loop
	// covering the coordinator-still-starting race (default 20 attempts
	// at 250ms). A 409 config mismatch (or 401 bad token) fails
	// immediately regardless.
	RegisterRetries int
	// UploadRetries bounds one shard upload's attempts (default 5).
	// Transport errors and 5xx responses are retried under backoff;
	// other non-200 statuses are permanent.
	UploadRetries int
	// LeaseRetries bounds consecutive failed lease attempts before the
	// worker gives up (default 12). A 403 does not count: it means the
	// coordinator restarted, and the worker re-registers instead.
	LeaseRetries int
	// SpoolPath, when non-empty, spools every completed shard to an
	// append-only JSONL file before its upload is attempted, and
	// re-uploads unacknowledged entries (idempotently) at startup
	// before leasing new work.
	SpoolPath string
	// EventLogPath, when non-empty, appends the worker's lifecycle
	// events (register, lease, upload, lost-lease, ...) as JSONL
	// records keyed by the fleet-wide campaign id, correlating this
	// worker's log with the coordinator's.
	EventLogPath string
}

// WorkerStats summarizes one worker's run for logs and tests.
type WorkerStats struct {
	WorkerID       string
	Shards         int // shards completed and accepted
	Verdicts       int // verdicts uploaded in accepted shards
	LostLeases     int // shards abandoned after a heartbeat reported the lease lost
	DuplicateDrops int // completed shards the coordinator discarded as duplicates
	Registrations  int // registrations performed (>1 = re-admitted after a coordinator restart)
	UploadRetried  int // upload attempts retried after a transient failure
	SpoolReplayed  int // spool entries re-uploaded before leasing began
}

// RunWorker runs the worker loop until the coordinator reports the
// campaign done, ctx is cancelled, or a non-retryable error occurs.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	w := &worker{cfg: cfg}
	if w.cfg.Client == nil {
		w.cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.cfg.Logf == nil {
		w.cfg.Logf = func(string, ...any) {}
	}
	if w.cfg.Host == "" {
		w.cfg.Host, _ = os.Hostname()
	}
	if w.cfg.RegisterRetries <= 0 {
		w.cfg.RegisterRetries = 20
	}
	if w.cfg.UploadRetries <= 0 {
		w.cfg.UploadRetries = defaultUploadRetries
	}
	if w.cfg.LeaseRetries <= 0 {
		w.cfg.LeaseRetries = defaultLeaseRetries
	}
	return w.run(ctx)
}

type worker struct {
	cfg     WorkerConfig
	stats   WorkerStats
	ttl     time.Duration
	fp      []byte
	spool   *spool
	pending []spoolEntry
	// depth tracks the unacknowledged spool entry count, reported in
	// every shard snapshot.
	depth  int
	events *eventLog
}

// errPermanentUpload marks an upload rejection no retry can cure.
var errPermanentUpload = errors.New("fleet: upload permanently rejected")

func (w *worker) run(ctx context.Context) (WorkerStats, error) {
	fp, err := difftest.CampaignFingerprint(w.cfg.Campaign)
	if err != nil {
		return w.stats, err
	}
	w.fp = fp
	if w.cfg.EventLogPath != "" {
		ev, err := openEventLog(w.cfg.EventLogPath, "worker", fp)
		if err != nil {
			return w.stats, err
		}
		w.events = ev
		defer ev.Close() //nolint:errcheck // shutdown
	}
	if w.cfg.SpoolPath != "" {
		sp, pending, err := openSpool(w.cfg.SpoolPath, fp)
		if err != nil {
			return w.stats, err
		}
		w.spool, w.pending = sp, pending
		w.depth = len(pending)
		defer sp.Close() //nolint:errcheck // shutdown
	}
	if err := w.register(ctx); err != nil {
		return w.stats, err
	}
	if err := w.replaySpool(ctx); err != nil {
		return w.stats, err
	}

	leaseFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		lease, status, err := w.lease(ctx)
		if err != nil {
			if status == http.StatusForbidden {
				// The coordinator restarted and no longer knows this
				// worker; re-admit through the normal handshake under a
				// fresh worker id.
				w.cfg.Logf("fleet worker %s: lease rejected (coordinator restarted?), re-registering",
					w.stats.WorkerID)
				if err := w.register(ctx); err != nil {
					return w.stats, err
				}
				continue
			}
			leaseFails++
			if leaseFails >= w.cfg.LeaseRetries {
				return w.stats, err
			}
			w.cfg.Logf("fleet worker %s: lease attempt %d failed, retrying: %v",
				w.stats.WorkerID, leaseFails, err)
			select {
			case <-ctx.Done():
				return w.stats, ctx.Err()
			case <-time.After(retryDelay("lease", leaseFails)):
			}
			continue
		}
		leaseFails = 0
		switch {
		case lease.Done:
			w.cfg.Logf("fleet worker %s: campaign done (%d shards, %d verdicts)",
				w.stats.WorkerID, w.stats.Shards, w.stats.Verdicts)
			w.events.emit("done", w.stats.WorkerID, -1, 0,
				fmt.Sprintf("%d shards, %d verdicts", w.stats.Shards, w.stats.Verdicts))
			return w.stats, nil
		case lease.Shard == nil:
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = defaultRetryMillis * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return w.stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		done, err := w.runShard(ctx, *lease.Shard)
		if err != nil {
			return w.stats, err
		}
		if done {
			w.cfg.Logf("fleet worker %s: campaign done (%d shards, %d verdicts)",
				w.stats.WorkerID, w.stats.Shards, w.stats.Verdicts)
			w.events.emit("done", w.stats.WorkerID, -1, 0,
				fmt.Sprintf("%d shards, %d verdicts", w.stats.Shards, w.stats.Verdicts))
			return w.stats, nil
		}
	}
}

// register announces the worker, retrying connection errors to cover
// the worker-before-coordinator startup race (and, on re-registration,
// a coordinator restart still in progress). A rejection — HTTP 409
// mismatched campaign fingerprint, or 401 bad fleet token — fails
// immediately.
func (w *worker) register(ctx context.Context) error {
	req := registerRequest{Fingerprint: w.fp, Host: w.cfg.Host}
	var lastErr error
	for attempt := 0; attempt < w.cfg.RegisterRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(250 * time.Millisecond):
			}
		}
		var resp registerResponse
		status, err := w.postJSON(ctx, pathRegister, req, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			w.stats.WorkerID = resp.WorkerID
			w.stats.Registrations++
			w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			if w.ttl <= 0 {
				w.ttl = DefaultLeaseTTL
			}
			// The program count lives outside the fingerprint; adopt the
			// coordinator's so shard-range validation sees the real bounds.
			w.cfg.Campaign.Programs = resp.Programs
			w.cfg.Logf("fleet worker %s: registered (%d programs, %d shards, lease %v)",
				resp.WorkerID, resp.Programs, resp.Shards, w.ttl)
			w.events.emit("register", resp.WorkerID, -1, 0,
				fmt.Sprintf("%d programs, %d shards", resp.Programs, resp.Shards))
			return nil
		case status == http.StatusConflict || status == http.StatusUnauthorized:
			return fmt.Errorf("fleet: registration rejected: %w", err)
		default:
			lastErr = err
		}
	}
	return fmt.Errorf("fleet: register: coordinator unreachable: %w", lastErr)
}

// replaySpool re-uploads every unacknowledged spool entry before any
// new work is leased. Uploads are idempotent (the coordinator discards
// shards it already holds), so a replay is a no-op or the delivery
// that was lost. A permanently rejected entry is dropped with a log —
// its shard simply re-runs under a fresh lease.
func (w *worker) replaySpool(ctx context.Context) error {
	for _, e := range w.pending {
		accepted, _, err := w.uploadBody(ctx, e.Shard, e.Epoch, e.Body)
		if err != nil {
			if errors.Is(err, errPermanentUpload) {
				w.cfg.Logf("fleet worker %s: spooled shard %d rejected, dropping: %v",
					w.stats.WorkerID, e.Shard, err)
				w.spool.markUploaded(e.Shard, e.Epoch) //nolint:errcheck // advisory mark
				w.depth--
				continue
			}
			return fmt.Errorf("fleet: spool replay: %w", err)
		}
		w.stats.SpoolReplayed++
		if accepted {
			w.stats.Shards++
			w.stats.Verdicts += e.Count
			w.cfg.Logf("fleet worker %s: spooled shard %d re-uploaded (%d verdicts)",
				w.stats.WorkerID, e.Shard, e.Count)
			w.events.emit("spool-replay", w.stats.WorkerID, e.Shard, e.Epoch,
				fmt.Sprintf("%d verdicts re-uploaded", e.Count))
		} else {
			w.stats.DuplicateDrops++
			w.cfg.Logf("fleet worker %s: spooled shard %d already complete, discarded",
				w.stats.WorkerID, e.Shard)
			w.events.emit("spool-replay-duplicate", w.stats.WorkerID, e.Shard, e.Epoch, "")
		}
		if err := w.spool.markUploaded(e.Shard, e.Epoch); err != nil {
			return err
		}
		w.depth--
	}
	w.pending = nil
	return nil
}

// lease asks for the next shard. The returned status lets the caller
// distinguish a 403 (unknown worker — re-register) from transient
// failures (retry under backoff).
func (w *worker) lease(ctx context.Context) (*leaseResponse, int, error) {
	var resp leaseResponse
	status, err := w.postJSON(ctx, pathLease, leaseRequest{WorkerID: w.stats.WorkerID}, &resp)
	if err != nil || status != http.StatusOK {
		return nil, status, fmt.Errorf("fleet: lease: %w", err)
	}
	return &resp, status, nil
}

// runShard executes one leased shard with a heartbeat goroutine
// renewing the lease at a third of the TTL. A heartbeat that reports
// the lease lost cancels the shard's context: the coordinator has
// re-issued the shard, so finishing it would only produce a duplicate.
// The returned bool is the coordinator's campaign-done signal from the
// upload acknowledgement, which saves the final lease round trip.
//
// Each shard runs under a fresh private telemetry registry (and, when
// the campaign carries coverage, a fresh coverage accumulator), so the
// counters and coverage union at the end of the run are exactly the
// shard's delta — the snapshot the upload attaches for the coordinator
// to merge fleet-wide.
func (w *worker) runShard(ctx context.Context, lease ShardLease) (bool, error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(w.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
			}
			var resp heartbeatResponse
			status, err := w.postJSON(shardCtx, pathHeartbeat, heartbeatRequest{
				WorkerID: w.stats.WorkerID, ShardID: lease.ID, Epoch: lease.Epoch,
			}, &resp)
			if err == nil && status == http.StatusOK && resp.Lost {
				close(lost)
				cancel()
				return
			}
			// Transient heartbeat errors are ignored: the lease has a
			// whole TTL of slack and the result upload is authoritative.
		}
	}()

	w.events.emit("shard-start", w.stats.WorkerID, lease.ID, lease.Epoch,
		fmt.Sprintf("seeds [%d,%d)", lease.First, lease.First+lease.Count))
	camp := w.cfg.Campaign
	reg := telemetry.NewRegistry()
	camp.Telemetry = difftest.NewCampaignTelemetry(reg)
	var cov *difftest.CampaignCoverage
	if w.cfg.Campaign.Coverage != nil {
		cov = difftest.NewCampaignCoverage(nil)
	}
	camp.Coverage = cov
	vs, runErr := difftest.RunCampaignRange(shardCtx, camp, lease.First, lease.Count, w.cfg.Workers)
	cancel()
	<-hbDone
	select {
	case <-lost:
		w.stats.LostLeases++
		w.cfg.Logf("fleet worker %s: shard %d lease lost, abandoning", w.stats.WorkerID, lease.ID)
		w.events.emit("lost-lease", w.stats.WorkerID, lease.ID, lease.Epoch, "")
		return false, nil
	default:
	}
	if runErr != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, fmt.Errorf("fleet: shard %d: %w", lease.ID, runErr)
	}
	return w.upload(ctx, lease, vs, reg, cov)
}

// upload spools (when configured) and posts the shard's verdict stream
// — one gzip'd JSONL body, led by the shard's telemetry+coverage
// snapshot line. The spool append happens before the first attempt, so
// the completed shard survives the worker's own death from this point
// on — snapshot included, since the spool stores the exact body; the
// acknowledgement mark lands only after the coordinator accepted (or
// duplicate-discarded) the shard. The returned bool relays the
// coordinator's campaign-done signal.
func (w *worker) upload(ctx context.Context, lease ShardLease, vs []difftest.Verdict,
	reg *telemetry.Registry, cov *difftest.CampaignCoverage) (bool, error) {
	depth := w.depth
	if w.spool != nil {
		depth++ // this shard's own entry is about to join the spool
	}
	snap := &shardSnapshot{
		Marker:     1,
		Shard:      lease.ID,
		Epoch:      lease.Epoch,
		Worker:     w.stats.WorkerID,
		Counters:   reg.Counters(),
		Coverage:   cov.Summary(),
		SpoolDepth: depth,
	}
	body, err := encodeShard(vs, snap)
	if err != nil {
		return false, err
	}
	if w.spool != nil {
		e := spoolEntry{Shard: lease.ID, Epoch: lease.Epoch, First: lease.First, Count: lease.Count, Body: body}
		if err := w.spool.add(e); err != nil {
			return false, err
		}
		w.depth++
	}
	accepted, done, err := w.uploadBody(ctx, lease.ID, lease.Epoch, body)
	if err != nil {
		// The spool entry (if any) stays unacknowledged: a restarted
		// worker replays it before leasing new work.
		return false, err
	}
	if w.spool != nil {
		if err := w.spool.markUploaded(lease.ID, lease.Epoch); err != nil {
			return false, err
		}
		w.depth--
	}
	if accepted {
		w.stats.Shards++
		w.stats.Verdicts += len(vs)
		w.cfg.Logf("fleet worker %s: shard %d done (%d verdicts)", w.stats.WorkerID, lease.ID, len(vs))
		w.events.emit("upload", w.stats.WorkerID, lease.ID, lease.Epoch,
			fmt.Sprintf("%d verdicts accepted", len(vs)))
	} else {
		w.stats.DuplicateDrops++
		w.cfg.Logf("fleet worker %s: shard %d already complete, discarded", w.stats.WorkerID, lease.ID)
		w.events.emit("upload-duplicate", w.stats.WorkerID, lease.ID, lease.Epoch, "")
	}
	return done, nil
}

// uploadBody posts one encoded shard body under bounded exponential
// backoff with deterministic jitter. Transport errors, 5xx responses
// and torn response bodies are retried (re-sends are idempotent: the
// coordinator keys acceptance on the shard's done-state); any other
// non-200 status is errPermanentUpload. Every retry is logged with the
// shard id and its cause.
func (w *worker) uploadBody(ctx context.Context, shardID int, epoch int64, body []byte) (accepted, done bool, err error) {
	url := fmt.Sprintf("%s%s?shard=%d&worker=%s&epoch=%d",
		w.cfg.Coordinator, pathResult, shardID, w.stats.WorkerID, epoch)
	var lastErr error
	for attempt := 0; attempt < w.cfg.UploadRetries; attempt++ {
		if attempt > 0 {
			w.stats.UploadRetried++
			w.cfg.Logf("fleet worker %s: shard %d upload retry %d: %v",
				w.stats.WorkerID, shardID, attempt, lastErr)
			select {
			case <-ctx.Done():
				return false, false, ctx.Err()
			case <-time.After(retryDelay(fmt.Sprintf("upload/%d/%d", shardID, epoch), attempt)):
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if rerr != nil {
			return false, false, rerr
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set("Content-Encoding", "gzip")
		if w.cfg.Token != "" {
			req.Header.Set(fleetTokenHeader, w.cfg.Token)
		}
		httpResp, derr := w.cfg.Client.Do(req)
		if derr != nil {
			lastErr = derr
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
		httpResp.Body.Close()
		switch {
		case httpResp.StatusCode == http.StatusOK:
			var resp resultResponse
			if jerr := json.Unmarshal(data, &resp); jerr != nil {
				// Torn response body: the upload may or may not have
				// landed; re-sending is safe either way.
				lastErr = fmt.Errorf("fleet: shard %d upload response: %w", shardID, jerr)
				continue
			}
			return resp.Accepted, resp.Done, nil
		case httpResp.StatusCode >= 500:
			lastErr = fmt.Errorf("fleet: shard %d upload: %s: %s",
				shardID, httpResp.Status, bytes.TrimSpace(data))
			continue
		default:
			return false, false, fmt.Errorf("%w: shard %d: %s: %s",
				errPermanentUpload, shardID, httpResp.Status, bytes.TrimSpace(data))
		}
	}
	return false, false, fmt.Errorf("fleet: shard %d upload: attempts exhausted: %w", shardID, lastErr)
}

// retryDelay is the backoff before retry number attempt (1-based):
// retryBase doubling per attempt, capped at retryCap, plus a
// deterministic jitter in [0, base/2] drawn by hashing (key, attempt)
// — no global randomness, so a seeded chaos run reproduces its timing
// decisions.
func retryDelay(key string, attempt int) time.Duration {
	base := retryBase
	for i := 1; i < attempt && base < retryCap; i++ {
		base *= 2
	}
	if base > retryCap {
		base = retryCap
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	return base + time.Duration(h.Sum64()%uint64(base/2+1))
}

// postJSON posts a JSON body and decodes a JSON response. The returned
// status is 0 on transport errors; on non-200 statuses err carries the
// response body.
func (w *worker) postJSON(ctx context.Context, path string, body, into any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Token != "" {
		req.Header.Set(fleetTokenHeader, w.cfg.Token)
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decode %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
