// The fleet coordinator: shard partitioning, HTTP lease service,
// crash-tolerant re-issue, and the deterministic seed-order merge.
package fleet

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/telemetry"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is how long a worker may hold a shard without
	// completing it or heartbeating before the shard is re-issued.
	DefaultLeaseTTL = 15 * time.Second
	// defaultRetryMillis is the wait hint handed to workers when every
	// pending shard is leased out.
	defaultRetryMillis = 250
	// maxShardSize bounds auto-sized shards: big enough to amortize one
	// POST per shard, small enough that losing a worker forfeits little.
	maxShardSize = 256
	// defaultMaxUploadBytes caps one shard result body; anything larger
	// is a protocol violation (or an attack), not a campaign.
	defaultMaxUploadBytes = 1 << 30
	// maxControlBytes caps the small JSON control bodies (register,
	// lease, heartbeat).
	maxControlBytes = 1 << 20
	// serverReadTimeout bounds how long one request may take to arrive
	// in full — a stalled or byte-dripping client cannot pin a handler
	// past it.
	serverReadTimeout = 2 * time.Minute
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// Campaign is the full campaign to distribute. Its Journal (if any)
	// receives the merged verdict stream in seed order; its Resumed map
	// (if any) splices previously journaled verdicts in at their seeds,
	// exactly as the single-process engines do. StopAtFirst is not
	// supported (a fleet campaign always runs its full seed space).
	Campaign difftest.CampaignConfig
	// ShardSize is the seed-index range leased per request (0 = auto:
	// Programs/16 clamped to [1, 256], rounded up to a mutation-family
	// multiple in family mode).
	ShardSize int
	// LeaseTTL is the shard lease budget (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Registry receives the fleet gauges and is served at the
	// coordinator's /metrics (a fresh private registry when nil).
	Registry *telemetry.Registry
	// Token, when non-empty, is the fleet's shared secret: every
	// protocol request must carry it (workers send it automatically)
	// or is rejected with 401. The dashboard endpoints stay open.
	Token string
	// LedgerPath, when non-empty, persists the control plane's state
	// transitions (admissions, grants, completions, splices) to an
	// append-only shard ledger — the coordinator half of crash
	// recovery, alongside the campaign journal.
	LedgerPath string
	// ResumeLedger recovers coordinator state from an existing ledger
	// at LedgerPath: the shard partitioning is pinned to the recorded
	// one and the epoch/worker-id counters resume above every value
	// the pre-crash coordinator issued. A missing ledger file falls
	// back to a fresh one (recovery then rests on the journal alone).
	ResumeLedger bool
	// MaxUploadBytes caps one shard result body (0 = 1 GiB).
	MaxUploadBytes int64
	// EventLogPath, when non-empty, appends the coordinator's lifecycle
	// events (start, register, grant, reissue, result, splice, done) as
	// JSONL records keyed by the fleet-wide campaign id — the file a
	// worker's event log correlates with.
	EventLogPath string
}

// shardState is a shard's lifecycle position.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shard is one partition of the campaign's seed-index space.
type shard struct {
	id    int
	first int
	count int

	state   shardState
	epoch   int64
	holder  string
	expires time.Time
	// granted is when the shard's current lease was issued; zero for
	// shards never leased by this coordinator (resumed, or completed
	// by a spool replay). The lease→splice latency histogram observes
	// only shards with a grant.
	granted time.Time
	// verdicts is the completed shard's verdict stream, in seed order;
	// shards fully covered by the resume map are born done with their
	// recorded verdicts. Cleared once spliced into the merge.
	verdicts []difftest.Verdict
	// resumed marks a born-done shard: its verdicts are already in the
	// journal, so the merge must not append them again.
	resumed bool
}

// workerState tracks one registered worker.
type workerState struct {
	id        string
	host      string
	firstSeen time.Time
	lastSeen  time.Time
	toldDone  bool
	// shards/verdicts count this worker's accepted uploads; spoolDepth
	// is the worker's last snapshot-reported unacknowledged spool size.
	shards     int
	verdicts   int
	spoolDepth int
}

// Coordinator runs the fleet's control plane. Create with
// NewCoordinator, bind with Start, block on Wait.
type Coordinator struct {
	camp        difftest.CampaignConfig
	shardSize   int
	leaseTTL    time.Duration
	fingerprint string
	reg         *telemetry.Registry
	token       string
	maxUpload   int64

	srv *http.Server
	ln  net.Listener

	mu         sync.Mutex
	shards     []*shard
	pending    []int // shard ids awaiting (re-)issue, lowest first
	nextSplice int   // shards[:nextSplice] are merged
	merged     []difftest.Verdict
	workers    map[string]*workerState
	nextWorker int
	nextEpoch  int64
	draining   bool
	journalErr error
	start      time.Time
	led        *ledger
	ledBroken  bool
	// seenDet / dupDet back the detection-dedup gauges: detections
	// keyed by (oracle, program fingerprint) across all merged shards.
	seenDet map[string]struct{}
	dupDet  int64

	doneOnce sync.Once
	done     chan struct{}

	// cov is the campaign coverage accumulator handed in via
	// CampaignConfig.Coverage, folded from verdict summaries at splice
	// time (nil when the campaign runs without coverage). It is moved
	// off the config copy so Wait's AssembleResult does not fold the
	// same summaries a second time.
	cov *difftest.CampaignCoverage
	// covCurve is the coverage growth curve: one point per splice,
	// rendered by /status.
	covCurve []CoveragePoint
	// covVec is the fleet-wide per-site hit counter, fed from accepted
	// shard snapshots (workers report coverage off-registry, so their
	// snapshot Counters never include these series themselves).
	covVec  *telemetry.CounterVec
	events  *eventLog
	ledPath string

	verdictsTotal *telemetry.Counter
	reissued      *telemetry.Counter
	duplicates    *telemetry.Counter
	rejected      *telemetry.Counter
	authRejected  *telemetry.Counter
	oversize      *telemetry.Counter
	tornUploads   *telemetry.Counter
	ledgerErrs    *telemetry.Counter
	shardLatency  *telemetry.Histogram
}

// NewCoordinator partitions the campaign into shards and prepares the
// control plane. The campaign's verdict-relevant configuration is
// fingerprinted once; workers registering with a different fingerprint
// are rejected.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	camp := cfg.Campaign
	if camp.Programs <= 0 {
		return nil, errors.New("fleet: campaign has no programs")
	}
	if camp.StopAtFirst {
		return nil, errors.New("fleet: StopAtFirst is not supported in fleet mode")
	}
	// Stage telemetry is a worker-side concern: the coordinator never
	// runs pipeline stages, and the merge feeds no span recorder.
	camp.Telemetry = nil
	// Coverage moves off the config copy: the coordinator folds verdict
	// summaries into it at splice time, so leaving it on the config
	// would make Wait's AssembleResult double-count the union.
	cov := camp.Coverage
	camp.Coverage = nil
	fp, err := difftest.CampaignFingerprint(camp)
	if err != nil {
		return nil, err
	}

	// Recover the control plane from the shard ledger before sizing
	// anything: a restarted coordinator must partition exactly as its
	// predecessor did for shard ids (and in-flight worker leases) to
	// keep their meaning.
	var led *ledger
	var lst *ledgerState
	if cfg.LedgerPath != "" && cfg.ResumeLedger {
		if _, statErr := os.Stat(cfg.LedgerPath); statErr == nil {
			led, lst, err = openLedgerForResume(cfg.LedgerPath, fp)
			if err != nil {
				return nil, err
			}
		}
	}

	size := cfg.ShardSize
	if lst != nil {
		size = lst.shardSize
	} else {
		if size <= 0 {
			size = camp.Programs / 16
			if size < 1 {
				size = 1
			}
			if size > maxShardSize {
				size = maxShardSize
			}
		}
		if camp.FamilySize > 1 {
			// Align shards to mutation-family boundaries: a family's base
			// program is generated from its first seed, so a family split
			// across shards would change which program its members test.
			if rem := size % camp.FamilySize; rem != 0 {
				size += camp.FamilySize - rem
			}
		}
	}

	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	maxUpload := cfg.MaxUploadBytes
	if maxUpload <= 0 {
		maxUpload = defaultMaxUploadBytes
	}

	c := &Coordinator{
		camp:        camp,
		shardSize:   size,
		leaseTTL:    ttl,
		fingerprint: string(fp),
		reg:         reg,
		token:       cfg.Token,
		maxUpload:   maxUpload,
		cov:         cov,
		ledPath:     cfg.LedgerPath,
		workers:     make(map[string]*workerState),
		seenDet:     make(map[string]struct{}),
		done:        make(chan struct{}),
		start:       time.Now(),
	}
	if cfg.EventLogPath != "" {
		ev, everr := openEventLog(cfg.EventLogPath, "coordinator", fp)
		if everr != nil {
			return nil, everr
		}
		c.events = ev
	}
	if lst != nil {
		// Epoch and worker-id counters resume strictly above every value
		// the pre-crash coordinator issued, so a stale pre-crash lease
		// can never alias a post-restart one.
		c.nextEpoch, c.nextWorker = lst.nextEpoch, lst.nextWorker
	}
	for first := 0; first < camp.Programs; first += size {
		count := size
		if first+count > camp.Programs {
			count = camp.Programs - first
		}
		s := &shard{id: len(c.shards), first: first, count: count}
		if vs, ok := resumedShard(&camp, first, count); ok {
			s.state, s.verdicts, s.resumed = shardDone, vs, true
		} else {
			c.pending = append(c.pending, s.id)
		}
		c.shards = append(c.shards, s)
	}
	if cfg.LedgerPath != "" && led == nil {
		led, err = createLedger(cfg.LedgerPath, fp, size, camp.Programs)
		if err != nil {
			return nil, err
		}
	}
	c.led = led
	c.registerMetrics()
	// Resumed detections re-enter the dedup gauges, so a restarted
	// coordinator reports the same unique/duplicate split an
	// uninterrupted one would.
	for _, s := range c.shards {
		if !s.resumed {
			continue
		}
		for _, v := range s.verdicts {
			if v.Kind == difftest.VerdictDetection {
				c.countDetection(detectionKey(&c.camp, v))
			}
		}
	}
	c.events.emit("start", "", -1, 0,
		fmt.Sprintf("%d programs, %d shards of %d", camp.Programs, len(c.shards), size))
	c.mu.Lock()
	c.splice()
	c.mu.Unlock()
	return c, nil
}

// CoveragePoint is one sample of the campaign's coverage growth curve:
// after Seeds merged seeds, the union held Sites distinct sites. The
// coordinator records one point per spliced shard; /status renders the
// curve.
type CoveragePoint struct {
	Seeds int `json:"seeds"`
	Sites int `json:"sites"`
}

// Coverage returns the campaign coverage accumulator the coordinator
// folds merged verdict summaries into (nil when the campaign runs
// without coverage).
func (c *Coordinator) Coverage() *difftest.CampaignCoverage { return c.cov }

// splitSeries splits a Prometheus series key (`name` or
// `name{labels}`) back into its name and pre-rendered label string —
// the inverse of the rendering telemetry.Registry.Counters uses.
func splitSeries(s string) (name, labels string) {
	i := strings.IndexByte(s, '{')
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSuffix(s[i+1:], "}")
}

// applySnapshot merges one accepted shard's observability sidecar into
// the coordinator: the worker's per-shard telemetry delta is added
// series-by-series to the coordinator registry, the shard's coverage
// union feeds the fleet-wide per-site counter vec, and the worker's
// spool depth is recorded. Called under c.mu, and only from the upload
// that transitions the shard pending→done — so a spool-replayed
// duplicate body can never double-count.
func (c *Coordinator) applySnapshot(snap *shardSnapshot, ws *workerState) {
	if snap == nil {
		return
	}
	if ws != nil {
		ws.spoolDepth = snap.SpoolDepth
	}
	for key, n := range snap.Counters {
		if n == 0 {
			continue
		}
		name, labels := splitSeries(key)
		c.reg.CounterWith(name, labels,
			"merged from accepted worker shard snapshots").Add(n)
	}
	for site, n := range snap.Coverage {
		if n == 0 {
			continue
		}
		c.covVec.Add(site, n)
	}
}

// detectionKey is the cross-shard dedup key of one detection verdict:
// the oracle joined with the detected program's ir.Fingerprint. Plan
// mode records the fingerprint in the verdict; elsewhere the program
// is regenerated from its seed (cheap, and detections are rare). In
// family mode the seed regenerates the family's unmutated program —
// a deliberate approximation: the gauges are telemetry, the merged
// report is untouched either way.
func detectionKey(camp *difftest.CampaignConfig, v difftest.Verdict) string {
	fpr := v.Program
	if fpr == 0 {
		if p, err := gen.Generate(gen.Config{Preset: camp.Preset, Size: camp.Size, Seed: v.Seed}); err == nil {
			fpr = ir.Fingerprint(p.Module)
		} else {
			fpr = uint64(v.Seed)
		}
	}
	return fmt.Sprintf("%s/%016x", v.Oracle, fpr)
}

// countDetection folds one detection key into the dedup gauges.
// Callers outside NewCoordinator hold c.mu.
func (c *Coordinator) countDetection(key string) {
	if _, seen := c.seenDet[key]; seen {
		c.dupDet++
		return
	}
	c.seenDet[key] = struct{}{}
}

// ledgerAppend records one control-plane event, degrading (once, with
// a counter) instead of failing the campaign when the ledger cannot be
// written: the journal, not the ledger, is authoritative for results.
// Called under c.mu.
func (c *Coordinator) ledgerAppend(e ledgerEntry) {
	if c.led == nil || c.ledBroken {
		return
	}
	if err := c.led.append(e); err != nil {
		c.ledBroken = true
		c.ledgerErrs.Inc()
	}
}

// resumedShard returns the shard's verdicts from the campaign's resume
// map when every seed of the range is already verdicted. A partially
// resumed shard re-runs whole: verdicts depend only on (config, seed),
// so the re-run reproduces the journaled prefix exactly.
func resumedShard(camp *difftest.CampaignConfig, first, count int) ([]difftest.Verdict, bool) {
	if len(camp.Resumed) < count {
		return nil, false
	}
	vs := make([]difftest.Verdict, 0, count)
	for i := 0; i < count; i++ {
		v, ok := camp.Resumed[camp.Seed+int64(first+i)]
		if !ok {
			return nil, false
		}
		vs = append(vs, v)
	}
	return vs, true
}

// registerMetrics exposes the fleet gauges on the coordinator's
// registry: live workers, shard queue states, merged-verdict count and
// the aggregate campaign throughput.
func (c *Coordinator) registerMetrics() {
	c.verdictsTotal = c.reg.Counter("ratte_fleet_verdicts_total",
		"verdicts received from accepted shard results")
	c.reissued = c.reg.Counter("ratte_fleet_shards_reissued_total",
		"shard leases that expired and were re-issued")
	c.duplicates = c.reg.Counter("ratte_fleet_results_duplicate_total",
		"shard results discarded because the shard was already complete")
	c.rejected = c.reg.Counter("ratte_fleet_registrations_rejected_total",
		"worker registrations rejected for a mismatched campaign fingerprint")
	c.authRejected = c.reg.Counter("ratte_fleet_auth_rejected_total",
		"requests rejected for a missing or mismatched fleet token")
	c.oversize = c.reg.Counter("ratte_fleet_requests_oversize_total",
		"requests rejected for exceeding the body-size cap")
	c.tornUploads = c.reg.Counter("ratte_fleet_uploads_torn_total",
		"shard uploads rejected as undecodable (torn gzip or corrupt JSONL)")
	c.ledgerErrs = c.reg.Counter("ratte_fleet_ledger_errors_total",
		"shard-ledger append failures (the ledger degrades, the campaign continues)")
	c.shardLatency = c.reg.Histogram("ratte_fleet_shard_latency_ns",
		"end-to-end shard latency from lease grant to merge splice")
	c.reg.GaugeFunc("ratte_fleet_spool_depth",
		"unacknowledged worker spool entries, summed over last-reported snapshots",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			var n int64
			for _, w := range c.workers {
				n += int64(w.spoolDepth)
			}
			return n
		})
	c.reg.GaugeFunc("ratte_fleet_ledger_bytes",
		"size of the shard ledger file on disk (0 without a ledger)",
		func() int64 {
			if c.ledPath == "" {
				return 0
			}
			st, err := os.Stat(c.ledPath)
			if err != nil {
				return 0
			}
			return st.Size()
		})
	c.covVec = c.reg.CounterVec("ratte_coverage_hits_total", "site",
		"semantic-coverage hits per site, merged from accepted worker shard snapshots")
	if c.cov != nil {
		c.reg.GaugeFunc("ratte_fleet_coverage_sites",
			"distinct semantic-coverage sites in the merged campaign union",
			func() int64 { return int64(c.cov.Sites()) })
		c.reg.GaugeFunc("ratte_fleet_coverage_hits",
			"total semantic-coverage hits in the merged campaign union",
			func() int64 { return int64(c.cov.Total()) })
	}
	c.reg.GaugeFunc("ratte_fleet_detections_unique",
		"distinct merged detections, keyed by (oracle, program ir.Fingerprint) across shards",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.seenDet))
		})
	c.reg.GaugeFunc("ratte_fleet_detections_duplicate",
		"merged detections whose (oracle, program ir.Fingerprint) was already seen in another shard",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.dupDet
		})
	counts := func(st shardState) int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		var n int64
		for _, s := range c.shards {
			if s.state == st {
				n++
			}
		}
		return n
	}
	c.reg.GaugeFunc("ratte_fleet_shards_pending", "shards awaiting a lease",
		func() int64 { return counts(shardPending) })
	c.reg.GaugeFunc("ratte_fleet_shards_leased", "shards currently leased to workers",
		func() int64 { return counts(shardLeased) })
	c.reg.GaugeFunc("ratte_fleet_shards_done", "shards completed (merged or awaiting merge)",
		func() int64 { return counts(shardDone) })
	c.reg.GaugeFunc("ratte_fleet_workers_live", "workers seen within two lease TTLs",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			cutoff := time.Now().Add(-2 * c.leaseTTL)
			var n int64
			for _, w := range c.workers {
				if w.lastSeen.After(cutoff) {
					n++
				}
			}
			return n
		})
	c.reg.GaugeFunc("ratte_fleet_workers_registered", "workers ever registered",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.workers))
		})
	c.reg.GaugeFunc("ratte_fleet_programs_total", "campaign seed-space size",
		func() int64 { return int64(c.camp.Programs) })
	c.reg.GaugeFunc("ratte_fleet_programs_per_sec", "aggregate merged throughput since start",
		func() int64 {
			elapsed := time.Since(c.start).Seconds()
			if elapsed <= 0 {
				return 0
			}
			return int64(float64(c.verdictsTotal.Value()) / elapsed)
		})
}

// Start binds the coordinator's HTTP service to addr (host:port; port
// 0 picks a free port). The mux serves the fleet protocol plus the
// fleet dashboard: Prometheus /metrics and JSON /debug/vars over the
// coordinator's registry.
func (c *Coordinator) Start(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc(pathRegister, c.requireToken(c.handleRegister))
	mux.HandleFunc(pathLease, c.requireToken(c.handleLease))
	mux.HandleFunc(pathHeartbeat, c.requireToken(c.handleHeartbeat))
	mux.HandleFunc(pathResult, c.requireToken(c.handleResult))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		c.reg.WriteJSON(w) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/status", c.handleStatus)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	c.ln = ln
	c.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       serverReadTimeout,
	}
	go c.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// requireToken gates a fleet protocol handler behind the shared fleet
// secret when one is configured. The dashboard endpoints (/metrics,
// /debug/vars) are deliberately not gated.
func (c *Coordinator) requireToken(h http.HandlerFunc) http.HandlerFunc {
	if c.token == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := r.Header.Get(fleetTokenHeader)
		if subtle.ConstantTimeCompare([]byte(got), []byte(c.token)) != 1 {
			c.authRejected.Inc()
			http.Error(w, "fleet: missing or invalid fleet token", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

// Addr returns the bound listen address (useful with port 0).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Registry returns the coordinator's metrics registry (the one behind
// its /metrics endpoint).
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// Wait blocks until every shard is merged or ctx is cancelled, and
// returns the campaign result assembled from the merged verdict
// stream. On cancellation the coordinator freezes: it stops leasing
// shards and discards late results, so the returned partial result
// covers exactly the contiguous merged prefix — every verdict of which
// is already in the journal — and the run is resumable. A completed
// merge renders (via difftest.ReportText) byte-identical to a
// single-process serial run of the same campaign.
func (c *Coordinator) Wait(ctx context.Context) (*difftest.CampaignResult, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
	}
	c.mu.Lock()
	c.draining = true
	complete := c.nextSplice == len(c.shards)
	merged := c.merged
	jerr := c.journalErr
	c.mu.Unlock()

	res := difftest.AssembleResult(c.camp, merged)
	switch {
	case jerr != nil:
		return res, fmt.Errorf("fleet: journal: %w", jerr)
	case !complete:
		return res, ctx.Err()
	}
	return res, nil
}

// DrainWorkers waits (up to timeout) until every registered worker has
// been told the campaign is done — workers poll the lease endpoint
// while idle, so after a completed campaign this converges within one
// retry interval. It lets a caller keep the control plane up just long
// enough for a clean fleet-wide shutdown before Close.
func (c *Coordinator) DrainWorkers(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		drained := true
		for _, w := range c.workers {
			if !w.toldDone {
				drained = false
				break
			}
		}
		c.mu.Unlock()
		if drained {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Merged reports how many seeds are spliced into the merge so far.
func (c *Coordinator) Merged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.merged)
}

// Close shuts the control plane down.
func (c *Coordinator) Close() error {
	c.closeLedger()
	c.events.Close() //nolint:errcheck // advisory log
	if c.srv == nil {
		return nil
	}
	return c.srv.Close()
}

// Kill simulates a coordinator crash for chaos tests: the control
// plane stops without draining — no done signals are sent, late
// results are not refused, the merge is simply abandoned wherever it
// stands. In-flight handlers get a short grace period to finish their
// journal/ledger appends (a handler that completed its splice before
// the crash is exactly a crash that happened a moment later), then
// the listener and every connection are torn down. The campaign is
// recovered by a new coordinator over the same journal and ledger.
func (c *Coordinator) Kill() error {
	defer c.closeLedger()
	defer c.events.Close() //nolint:errcheck // advisory log
	if c.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	c.srv.Shutdown(ctx) //nolint:errcheck // best-effort grace, Close is authoritative
	return c.srv.Close()
}

// closeLedger closes the shard ledger exactly once, under c.mu so it
// cannot race an in-flight handler's append.
func (c *Coordinator) closeLedger() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.led != nil {
		c.led.Close() //nolint:errcheck // shutdown; the ledger is advisory
		c.led = nil
	}
}

// ProgressLine renders a one-line fleet status for the -progress
// ticker: merged seeds, shard queue states, live workers, throughput.
func (c *Coordinator) ProgressLine() string {
	c.mu.Lock()
	var pending, leased, doneShards int
	for _, s := range c.shards {
		switch s.state {
		case shardPending:
			pending++
		case shardLeased:
			leased++
		case shardDone:
			doneShards++
		}
	}
	mergedSeeds := len(c.merged)
	cutoff := time.Now().Add(-2 * c.leaseTTL)
	var live int
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			live++
		}
	}
	c.mu.Unlock()
	elapsed := time.Since(c.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(mergedSeeds) / elapsed
	}
	return fmt.Sprintf("fleet: %d/%d merged | shards %d done %d leased %d pending | %d workers | %.1f/sec",
		mergedSeeds, c.camp.Programs, doneShards, leased, pending, live, rate)
}

// handleRegister admits a worker — or rejects it with 409 when its
// campaign fingerprint differs from the coordinator's, the same check
// a journal resume applies to a mismatched config.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := c.readJSON(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if string(req.Fingerprint) != c.fingerprint {
		c.rejected.Inc()
		http.Error(w, fmt.Sprintf("fleet: campaign config mismatch: worker %s, coordinator %s",
			req.Fingerprint, c.fingerprint), http.StatusConflict)
		return
	}
	c.mu.Lock()
	c.nextWorker++
	id := "w" + strconv.Itoa(c.nextWorker)
	host := req.Host
	if host == "" {
		host = r.RemoteAddr
	}
	now := time.Now()
	c.workers[id] = &workerState{id: id, host: host, firstSeen: now, lastSeen: now}
	c.ledgerAppend(ledgerEntry{Worker: &ledgerWorker{ID: id, Host: host}})
	shards := len(c.shards)
	c.mu.Unlock()
	c.events.emit("register", id, -1, 0, host)
	writeJSON(w, registerResponse{
		WorkerID:       id,
		Programs:       c.camp.Programs,
		Shards:         shards,
		LeaseTTLMillis: c.leaseTTL.Milliseconds(),
	})
}

// handleLease issues the lowest pending shard, re-queueing expired
// leases first. With nothing pending but shards still leased out it
// hands back a retry hint; once the campaign is merged (or the
// coordinator is draining) it reports done.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := c.readJSON(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		http.Error(w, "fleet: unknown worker (register first)", http.StatusForbidden)
		return
	}
	ws.lastSeen = time.Now()
	if c.draining || c.nextSplice == len(c.shards) {
		ws.toldDone = true
		writeJSON(w, leaseResponse{Done: true})
		return
	}
	c.sweepExpired()
	// Skip queue entries completed out of band (a spool replay can
	// finish a shard that was never leased by this coordinator).
	var s *shard
	for len(c.pending) > 0 {
		id := c.pending[0]
		c.pending = c.pending[1:]
		if c.shards[id].state == shardPending {
			s = c.shards[id]
			break
		}
	}
	if s == nil {
		writeJSON(w, leaseResponse{RetryMillis: defaultRetryMillis})
		return
	}
	c.nextEpoch++
	s.state, s.epoch, s.holder = shardLeased, c.nextEpoch, req.WorkerID
	s.granted = time.Now()
	s.expires = s.granted.Add(c.leaseTTL)
	c.ledgerAppend(ledgerEntry{Grant: &ledgerGrant{Shard: s.id, Epoch: s.epoch, Worker: req.WorkerID}})
	c.events.emit("grant", req.WorkerID, s.id, s.epoch,
		fmt.Sprintf("seeds [%d,%d)", s.first, s.first+s.count))
	writeJSON(w, leaseResponse{Shard: &ShardLease{
		ID: s.id, First: s.first, Count: s.count, Epoch: s.epoch,
	}})
}

// sweepExpired re-queues every leased shard whose lease has expired.
// Called under c.mu from the lease path — idle workers poll leases at
// the retry interval, so expiry is detected promptly without a
// dedicated timer goroutine.
func (c *Coordinator) sweepExpired() {
	now := time.Now()
	for _, s := range c.shards {
		if s.state == shardLeased && now.After(s.expires) {
			c.events.emit("reissue", s.holder, s.id, s.epoch, "lease expired")
			s.state, s.holder = shardPending, ""
			c.pending = append(c.pending, s.id)
			c.reissued.Inc()
		}
	}
	// Lowest shard first keeps the merge frontier moving.
	for i := 1; i < len(c.pending); i++ {
		for j := i; j > 0 && c.pending[j] < c.pending[j-1]; j-- {
			c.pending[j], c.pending[j-1] = c.pending[j-1], c.pending[j]
		}
	}
}

// handleHeartbeat renews a running shard's lease.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := c.readJSON(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws := c.workers[req.WorkerID]; ws != nil {
		ws.lastSeen = time.Now()
	}
	if req.ShardID < 0 || req.ShardID >= len(c.shards) {
		writeJSON(w, heartbeatResponse{Lost: true})
		return
	}
	s := c.shards[req.ShardID]
	if s.state != shardLeased || s.epoch != req.Epoch || s.holder != req.WorkerID {
		writeJSON(w, heartbeatResponse{Lost: true})
		return
	}
	s.expires = time.Now().Add(c.leaseTTL)
	writeJSON(w, heartbeatResponse{})
}

// handleResult ingests one completed shard: a gzip'd JSONL verdict
// stream, validated against the shard's exact seed range, then merged.
// Duplicates (a late worker returning a shard a re-issue already
// completed) are discarded — verdicts depend only on (config, seed),
// so whichever upload arrives first is byte-identical to any other.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shardID, err := strconv.Atoi(q.Get("shard"))
	workerID := q.Get("worker")
	if err != nil || workerID == "" {
		http.Error(w, "fleet: result needs shard and worker query params", http.StatusBadRequest)
		return
	}
	// epoch is advisory (spool replays may carry a superseded one); the
	// shard's done-state, not the epoch, is what makes uploads idempotent.
	epoch, _ := strconv.ParseInt(q.Get("epoch"), 10, 64) //nolint:errcheck // optional param
	body := http.MaxBytesReader(w, r.Body, c.maxUpload)
	defer body.Close()
	vs, snap, err := decodeShard(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.oversize.Inc()
			http.Error(w, "fleet: shard result exceeds the upload size cap", http.StatusRequestEntityTooLarge)
			return
		}
		// A torn upload (connection dropped mid-gzip, corrupt JSONL)
		// leaves the lease exactly as it was: the shard re-arrives whole
		// or the lease expires and is re-issued.
		c.tornUploads.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Detection dedup keys may regenerate the detected program from its
	// seed; compute them before taking the coordinator lock.
	var detKeys []string
	for _, v := range vs {
		if v.Kind == difftest.VerdictDetection {
			detKeys = append(detKeys, detectionKey(&c.camp, v))
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if ws := c.workers[workerID]; ws != nil {
		ws.lastSeen = time.Now()
	}
	if c.draining {
		// The campaign completed or was cancelled: the merge is frozen
		// and the journal may already be closed. Tell the worker to stop
		// — and record it, since the worker exits on this flag without
		// another lease round.
		if ws := c.workers[workerID]; ws != nil {
			ws.toldDone = true
		}
		writeJSON(w, resultResponse{Accepted: false, Done: true})
		return
	}
	if shardID < 0 || shardID >= len(c.shards) {
		http.Error(w, "fleet: unknown shard", http.StatusBadRequest)
		return
	}
	s := c.shards[shardID]
	if s.state == shardDone {
		c.duplicates.Inc()
		c.events.emit("duplicate", workerID, shardID, epoch, "shard already complete")
		dupDone := c.nextSplice == len(c.shards)
		if ws := c.workers[workerID]; ws != nil && dupDone {
			// The worker exits on this Done flag without another lease
			// round; record that so DrainWorkers converges.
			ws.toldDone = true
		}
		writeJSON(w, resultResponse{Accepted: false, Done: dupDone})
		return
	}
	if len(vs) != s.count {
		http.Error(w, fmt.Sprintf("fleet: shard %d result has %d verdicts, want %d",
			shardID, len(vs), s.count), http.StatusBadRequest)
		return
	}
	for i := range vs {
		if want := c.camp.Seed + int64(s.first+i); vs[i].Seed != want {
			http.Error(w, fmt.Sprintf("fleet: shard %d verdict %d has seed %d, want %d",
				shardID, i, vs[i].Seed, want), http.StatusBadRequest)
			return
		}
	}
	s.state, s.verdicts, s.holder = shardDone, vs, ""
	c.verdictsTotal.Add(uint64(len(vs)))
	ws := c.workers[workerID]
	if ws != nil {
		ws.shards++
		ws.verdicts += len(vs)
	}
	// The snapshot merges exactly here — on the pending→done transition
	// — so replayed duplicate uploads (rejected above) never re-count.
	c.applySnapshot(snap, ws)
	for _, k := range detKeys {
		c.countDetection(k)
	}
	if epoch == 0 {
		epoch = s.epoch
	}
	c.events.emit("result", workerID, shardID, epoch,
		fmt.Sprintf("%d verdicts", len(vs)))
	c.ledgerAppend(ledgerEntry{Done: &ledgerDone{Shard: shardID, Epoch: epoch, Verdicts: len(vs)}})
	c.splice()
	done := c.nextSplice == len(c.shards)
	if c.journalErr != nil {
		// Unblock Wait so the caller sees the journal failure; the
		// partial merge up to the failed append remains valid.
		c.doneOnce.Do(func() { close(c.done) })
	}
	if ws := c.workers[workerID]; ws != nil && done {
		ws.toldDone = true
	}
	writeJSON(w, resultResponse{Accepted: true, Done: done})
}

// splice advances the merge frontier: completed shards are appended to
// the merged verdict stream — and the journal — strictly in shard
// (hence seed) order. Verdicts already present from a resumed journal
// are merged but not re-appended, mirroring the single-process resume
// path. Called under c.mu.
func (c *Coordinator) splice() {
	for c.nextSplice < len(c.shards) {
		s := c.shards[c.nextSplice]
		if s.state != shardDone {
			return
		}
		c.merged = append(c.merged, s.verdicts...)
		// The union folds from sequenced verdict summaries — the same
		// source the single-process engines fold from — so resumed shards
		// (whose verdicts carry their journaled summaries) reconstruct it
		// exactly, snapshots or not.
		for _, v := range s.verdicts {
			c.cov.AddSummary(v.Coverage)
		}
		if c.camp.Journal != nil && !s.resumed && c.journalErr == nil {
			for _, v := range s.verdicts {
				if _, ok := c.camp.Resumed[v.Seed]; ok {
					continue
				}
				if err := c.camp.Journal.Append(v); err != nil {
					c.journalErr = err
					break
				}
			}
		}
		s.verdicts = nil
		c.nextSplice++
		if !s.granted.IsZero() {
			c.shardLatency.ObserveDuration(time.Since(s.granted))
		}
		if c.cov != nil {
			c.covCurve = append(c.covCurve, CoveragePoint{Seeds: len(c.merged), Sites: c.cov.Sites()})
		}
		c.ledgerAppend(ledgerEntry{Splice: &ledgerSplice{Shard: s.id, Seeds: len(c.merged)}})
		c.events.emit("splice", "", s.id, s.epoch,
			fmt.Sprintf("%d/%d seeds merged", len(c.merged), c.camp.Programs))
	}
	c.doneOnce.Do(func() {
		c.events.emit("done", "", -1, 0,
			fmt.Sprintf("%d seeds merged", len(c.merged)))
		close(c.done)
	})
}

// readJSON decodes a small JSON control body (register, lease,
// heartbeat), capped at maxControlBytes.
func (c *Coordinator) readJSON(w http.ResponseWriter, r *http.Request, into any) error {
	body := http.MaxBytesReader(w, r.Body, maxControlBytes)
	defer body.Close()
	dec := json.NewDecoder(body)
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.oversize.Inc()
		}
		return fmt.Errorf("fleet: bad request body: %w", err)
	}
	return nil
}

// writeJSON encodes a response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response write
}
