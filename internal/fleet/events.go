// The fleet event log: an append-only JSONL stream of control-plane
// lifecycle events, written by the coordinator and workers alike. Every
// record carries the campaign id (a short hash of the campaign
// fingerprint) plus whatever of worker/shard/epoch the event concerns,
// so one grep correlates a shard's grant on the coordinator with its
// run and upload on the worker — across process restarts, since a
// recovered coordinator (or a re-registered worker) appends to the same
// file under the same campaign id.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"
)

// fleetEvent is one JSONL record of the event log.
type fleetEvent struct {
	// Time is the wall-clock timestamp, RFC3339Nano. Events are
	// observability, not state: replays never read this file.
	Time string `json:"ts"`
	// Campaign is the campaign id: a 16-hex-digit FNV-1a hash of the
	// campaign fingerprint, identical on every process of the fleet.
	Campaign string `json:"campaign"`
	// Role is "coordinator" or "worker".
	Role string `json:"role"`
	// Event names the lifecycle transition (start, register, grant,
	// reissue, result, duplicate, splice, done, lease, shard-start,
	// upload, lost-lease, spool-replay, ...).
	Event string `json:"event"`
	// Worker is the worker id the event concerns, when any.
	Worker string `json:"worker,omitempty"`
	// Shard and Epoch identify the lease the event concerns; Shard is
	// a pointer because shard 0 is a real shard.
	Shard *int  `json:"shard,omitempty"`
	Epoch int64 `json:"epoch,omitempty"`
	// Detail is free-form context (counts, errors, addresses).
	Detail string `json:"detail,omitempty"`
}

// campaignID derives the fleet-wide campaign id from the campaign
// fingerprint (the journal header JSON).
func campaignID(fingerprint []byte) string {
	h := fnv.New64a()
	h.Write(fingerprint)
	return fmt.Sprintf("%016x", h.Sum64())
}

// eventLog is an open fleet event log. Safe for concurrent emitters;
// a nil *eventLog discards everything.
type eventLog struct {
	mu       sync.Mutex
	f        *os.File
	campaign string
	role     string
}

// openEventLog opens (creating or appending) the event log at path for
// the given role and campaign fingerprint.
func openEventLog(path, role string, fingerprint []byte) (*eventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: event log: %w", err)
	}
	return &eventLog{f: f, campaign: campaignID(fingerprint), role: role}, nil
}

// emit appends one event. shard < 0 means the event concerns no shard.
// Write errors are swallowed: the event log is observability, never a
// reason to fail a campaign.
func (l *eventLog) emit(event, worker string, shard int, epoch int64, detail string) {
	if l == nil {
		return
	}
	e := fleetEvent{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Campaign: l.campaign,
		Role:     l.role,
		Event:    event,
		Worker:   worker,
		Epoch:    epoch,
		Detail:   detail,
	}
	if shard >= 0 {
		e.Shard = &shard
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	l.f.Write(append(line, '\n')) //nolint:errcheck // advisory log
}

// Close closes the log; subsequent emits are discarded.
func (l *eventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
