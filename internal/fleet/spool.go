// The worker's upload spool: an append-only JSONL file that makes a
// completed shard durable on the worker before — and while — its
// upload is in flight. A shard that ran for minutes must not be lost
// to a coordinator restart, a flaky link, or the worker's own crash:
// the verdict stream is spooled first, the upload retries against the
// spool entry, and a restarted worker (same -spool path) re-uploads
// every un-acknowledged entry before leasing new work. Uploads are
// idempotent — the coordinator discards a shard it already holds — so
// replaying the spool after a mid-body disconnect can only ever be a
// no-op or the delivery that was lost.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// spoolVersion guards the on-disk format.
const spoolVersion = 1

// spoolHeader is line 1: the campaign fingerprint, so a spool recorded
// under one campaign is never replayed into another.
type spoolHeader struct {
	Version     int             `json:"ratte_fleet_spool"`
	Fingerprint json.RawMessage `json:"fingerprint"`
}

// spoolRecord is one line after the header; exactly one field is set.
type spoolRecord struct {
	Entry    *spoolEntry `json:"entry,omitempty"`
	Uploaded *spoolMark  `json:"uploaded,omitempty"`
}

// spoolEntry is one completed shard awaiting acknowledgement: the
// lease identity plus the exact gzip'd JSONL body the upload sends
// (JSON base64-encodes Body).
type spoolEntry struct {
	Shard int    `json:"shard"`
	Epoch int64  `json:"epoch"`
	First int    `json:"first"`
	Count int    `json:"count"`
	Body  []byte `json:"body"`
}

// spoolMark acknowledges an entry: the coordinator accepted the shard
// (or discarded it as a duplicate — equally final).
type spoolMark struct {
	Shard int   `json:"shard"`
	Epoch int64 `json:"epoch"`
}

// spool is an open upload spool. Not safe for concurrent use; the
// worker appends from its single shard loop.
type spool struct {
	f    *os.File
	path string
}

// openSpool opens (or creates) the spool at path for the campaign
// identified by fingerprint and returns the entries still awaiting
// acknowledgement, oldest first. A torn final line — the worker
// crashed mid-append — is truncated away; the shard it described is
// simply re-leased and re-run, which is always safe. A spool recorded
// under a different campaign fingerprint is refused.
func openSpool(path string, fingerprint []byte) (*spool, []spoolEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || (err == nil && len(data) == 0) {
		f, cerr := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if cerr != nil {
			return nil, nil, fmt.Errorf("fleet: spool: %w", cerr)
		}
		s := &spool{f: f, path: path}
		line, merr := json.Marshal(spoolHeader{Version: spoolVersion, Fingerprint: json.RawMessage(fingerprint)})
		if merr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fleet: spool: %w", merr)
		}
		if werr := s.writeLine(line); werr != nil {
			f.Close()
			return nil, nil, werr
		}
		return s, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: spool: %w", err)
	}

	lines := bytes.Split(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	var hdr spoolHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("fleet: spool: %s: bad header: %w", path, err)
	}
	if hdr.Version != spoolVersion {
		return nil, nil, fmt.Errorf("fleet: spool: %s has version %d, want %d", path, hdr.Version, spoolVersion)
	}
	if string(hdr.Fingerprint) != string(fingerprint) {
		return nil, nil, fmt.Errorf("fleet: spool: %s was recorded under a different campaign config", path)
	}

	type key struct {
		shard int
		epoch int64
	}
	var order []key
	entries := make(map[key]spoolEntry)
	goodBytes := len(lines[0]) + 1
	for _, line := range lines[1:] {
		var r spoolRecord
		if err := json.Unmarshal(line, &r); err != nil {
			break // torn tail; truncate below
		}
		switch {
		case r.Entry != nil:
			k := key{r.Entry.Shard, r.Entry.Epoch}
			if _, seen := entries[k]; !seen {
				order = append(order, k)
			}
			entries[k] = *r.Entry
		case r.Uploaded != nil:
			delete(entries, key{r.Uploaded.Shard, r.Uploaded.Epoch})
		}
		goodBytes += len(line) + 1
	}
	if goodBytes < len(data) {
		if err := os.Truncate(path, int64(goodBytes)); err != nil {
			return nil, nil, fmt.Errorf("fleet: spool: recover: %w", err)
		}
	}

	var pending []spoolEntry
	for _, k := range order {
		if e, ok := entries[k]; ok {
			pending = append(pending, e)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: spool: %w", err)
	}
	return &spool{f: f, path: path}, pending, nil
}

// add spools one completed shard before its upload is attempted.
func (s *spool) add(e spoolEntry) error {
	line, err := json.Marshal(spoolRecord{Entry: &e})
	if err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return s.writeLine(line)
}

// markUploaded acknowledges an entry after the coordinator accepted
// (or duplicate-discarded) it, so a later replay skips it.
func (s *spool) markUploaded(shard int, epoch int64) error {
	line, err := json.Marshal(spoolRecord{Uploaded: &spoolMark{Shard: shard, Epoch: epoch}})
	if err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return s.writeLine(line)
}

func (s *spool) writeLine(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return nil
}

// Close flushes and closes the spool file.
func (s *spool) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return nil
}
