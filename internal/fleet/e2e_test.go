// End-to-end fleet tests: a real coordinator and real workers over
// localhost HTTP, with the merged report compared byte for byte
// against the single-process serial engine — in classic, plan-fuzzing
// and batched family modes, and under injected worker loss.
package fleet_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/fleet"
)

// runFleet drives camp through a coordinator and n workers and returns
// the merged result.
func runFleet(t *testing.T, camp difftest.CampaignConfig, n int, cc fleet.CoordinatorConfig) *difftest.CampaignResult {
	t.Helper()
	cc.Campaign = camp
	coord, err := fleet.NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator: "http://" + coord.Addr(),
				Campaign:    camp,
				Workers:     1,
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord.DrainWorkers(5 * time.Second)
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return res
}

// TestFleetMatchesSerial is the tentpole contract: for the same
// configuration, the fleet's merged report is byte-identical to the
// single-process serial run — across classic campaigns, plan fuzzing
// (-fuzz-pipelines) and batched mutation families (-batched).
func TestFleetMatchesSerial(t *testing.T) {
	plans, err := compiler.SamplePlans("ariths", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  difftest.CampaignConfig
	}{
		{"classic", difftest.CampaignConfig{
			Preset: "ariths", Programs: 30, Size: 14, Seed: 97,
			Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
		}},
		{"plans", difftest.CampaignConfig{
			Preset: "ariths", Programs: 12, Size: 14, Seed: 200,
			Bugs: bugs.Only(bugs.RemoveDeadValuesCall), Plans: plans,
		}},
		{"batched-family", difftest.CampaignConfig{
			Preset: "ariths", Programs: 16, Size: 14, Seed: 97,
			FamilySize: 4, Batched: true,
			Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := difftest.RunCampaign(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runFleet(t, tc.cfg, 2, fleet.CoordinatorConfig{ShardSize: 5})
			if d := difftest.DiffVerdicts(want.Verdicts, got.Verdicts); d != "" {
				t.Fatalf("fleet verdicts differ from serial: %s", d)
			}
			if a, b := difftest.ReportText(want), difftest.ReportText(got); a != b {
				t.Fatalf("fleet report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
			}
		})
	}
}

// TestFleetSurvivesWorkerLoss: a worker that dies mid-campaign (its
// context cancelled between shards) leaves the fleet's output
// untouched — the expired shard is re-issued and the merged report
// still matches the serial run byte for byte.
func TestFleetSurvivesWorkerLoss(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset: "ariths", Programs: 24, Size: 14, Seed: 97,
		Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
	}
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Campaign: cfg, ShardSize: 4, LeaseTTL: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url := "http://" + coord.Addr()

	// The doomed worker is killed shortly after it starts taking work.
	doomedCtx, kill := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.RunWorker(doomedCtx, fleet.WorkerConfig{ //nolint:errcheck // killed deliberately
			Coordinator: url, Campaign: cfg, Workers: 1,
		})
	}()
	time.Sleep(50 * time.Millisecond)
	kill()

	// The survivor finishes everything, including the re-issued shard.
	wg.Add(1)
	var survivorErr error
	go func() {
		defer wg.Done()
		_, survivorErr = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
			Coordinator: url, Campaign: cfg, Workers: 1,
		})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord.DrainWorkers(5 * time.Second)
	wg.Wait()
	if survivorErr != nil {
		t.Fatalf("survivor worker: %v", survivorErr)
	}
	if d := difftest.DiffVerdicts(want.Verdicts, res.Verdicts); d != "" {
		t.Fatalf("post-loss fleet verdicts differ from serial: %s", d)
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("post-loss fleet report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
	}
}

// TestFleetRejectsMismatchedWorker: a worker whose campaign flags
// differ in any verdict-relevant way is refused at registration.
func TestFleetRejectsMismatchedWorker(t *testing.T) {
	cfg := difftest.CampaignConfig{Preset: "ariths", Programs: 8, Size: 14, Seed: 97}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{Campaign: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	bad := cfg
	bad.Size = 20
	_, err = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
		Coordinator: "http://" + coord.Addr(),
		Campaign:    bad,
		Workers:     1,
	})
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("mismatched worker got %v, want registration rejection", err)
	}
}
