// White-box tests of the chaos-hardening machinery: torn uploads, the
// shard ledger, the worker upload spool, fleet-token auth, detection
// dedup, and ledger-pinned coordinator recovery. The end-to-end
// kill/restart and network-fault tests live in chaos_e2e_test.go.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
)

// TestTornUploadLeavesLeaseAndJournal: a shard result truncated
// mid-gzip is rejected without touching the lease or the journal — no
// partial splice, no state change — and the honest re-upload then
// lands normally. This is the wire picture of a worker dying (or a
// connection dropping) mid-upload.
func TestTornUploadLeavesLeaseAndJournal(t *testing.T) {
	cfg := testCampaign(8)
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	jcfg := cfg
	j, err := difftest.CreateJournal(path, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	jcfg.Journal = j
	c, err := NewCoordinator(CoordinatorConfig{Campaign: jcfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	l := lease(t, c, w1)
	if l.Shard == nil {
		t.Fatal("no shard leased")
	}
	vs, err := difftest.RunCampaignRange(context.Background(), c.camp, l.Shard.First, l.Shard.Count, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeVerdicts(vs)
	if err != nil {
		t.Fatal(err)
	}
	linesBefore, bytesBefore := j.Written()

	rec := httptest.NewRecorder()
	c.handleResult(rec, httptest.NewRequest("POST",
		pathResult+"?shard=0&worker="+w1, bytes.NewReader(body[:len(body)/2])))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("torn upload: status %d, want 400", rec.Code)
	}
	if got := c.tornUploads.Value(); got != 1 {
		t.Fatalf("tornUploads counter = %d, want 1", got)
	}
	c.mu.Lock()
	state, epoch := c.shards[0].state, c.shards[0].epoch
	c.mu.Unlock()
	if state != shardLeased || epoch != l.Shard.Epoch {
		t.Fatalf("torn upload disturbed the lease: state %v epoch %d, want leased at %d",
			state, epoch, l.Shard.Epoch)
	}
	if lines, b := j.Written(); lines != linesBefore || b != bytesBefore {
		t.Fatalf("torn upload touched the journal: %d lines %d bytes, was %d/%d",
			lines, b, linesBefore, bytesBefore)
	}

	// The honest upload of the same shard still lands.
	rec = httptest.NewRecorder()
	c.handleResult(rec, httptest.NewRequest("POST",
		pathResult+"?shard=0&worker="+w1, bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("honest upload after torn one: status %d: %s", rec.Code, rec.Body.String())
	}
	if lines, _ := j.Written(); lines != linesBefore+int64(len(vs)) {
		t.Fatalf("journal has %d lines after accepted shard, want %d", lines, linesBefore+int64(len(vs)))
	}
}

// TestLedgerRoundTrip: create, append, close, replay — the recovered
// state carries the partitioning and the counters above every issued
// value; a torn final line is truncated away and appends continue.
func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ledger")
	fp := []byte(`{"cfg":1}`)
	l, err := createLedger(path, fp, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	events := []ledgerEntry{
		{Worker: &ledgerWorker{ID: "w1", Host: "h"}},
		{Grant: &ledgerGrant{Shard: 0, Epoch: 1, Worker: "w1"}},
		{Done: &ledgerDone{Shard: 0, Epoch: 1, Verdicts: 4}},
		{Splice: &ledgerSplice{Shard: 0, Seeds: 4}},
		{Worker: &ledgerWorker{ID: "w2"}},
		{Grant: &ledgerGrant{Shard: 1, Epoch: 2, Worker: "w2"}},
	}
	for _, e := range events {
		if err := l.append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: half a JSON line, as a crash mid-append leaves it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"grant":{"sha`)
	f.Close()

	l2, st, err := openLedgerForResume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if st.shardSize != 4 || st.programs != 16 {
		t.Fatalf("recovered partitioning %d/%d, want 4/16", st.shardSize, st.programs)
	}
	if st.nextEpoch != 2 || st.nextWorker != 2 {
		t.Fatalf("recovered counters epoch=%d worker=%d, want 2/2", st.nextEpoch, st.nextWorker)
	}
	if !st.done[0] || st.done[1] {
		t.Fatalf("recovered splice set %v, want shard 0 only", st.done)
	}
	// Post-recovery appends land on an intact line boundary.
	if err := l2.append(ledgerEntry{Grant: &ledgerGrant{Shard: 1, Epoch: 3, Worker: "w2"}}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, err := openLedgerForResume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if st2.nextEpoch != 3 {
		t.Fatalf("post-recovery append lost: nextEpoch %d, want 3", st2.nextEpoch)
	}

	// A ledger from a different campaign is refused.
	if _, _, err := openLedgerForResume(path, []byte(`{"cfg":2}`)); err == nil {
		t.Fatal("mismatched-fingerprint ledger accepted")
	}
}

// TestSpoolRoundTrip: unacknowledged entries survive a close/reopen
// byte for byte, acknowledged ones do not, a torn tail is recovered,
// and a spool from another campaign is refused.
func TestSpoolRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.spool")
	fp := []byte(`{"cfg":1}`)
	s, pending, err := openSpool(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh spool has %d pending entries", len(pending))
	}
	e1 := spoolEntry{Shard: 0, Epoch: 1, First: 0, Count: 4, Body: []byte("gzip-one")}
	e2 := spoolEntry{Shard: 1, Epoch: 2, First: 4, Count: 4, Body: []byte("gzip-two")}
	if err := s.add(e1); err != nil {
		t.Fatal(err)
	}
	if err := s.add(e2); err != nil {
		t.Fatal(err)
	}
	if err := s.markUploaded(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail as a worker crash mid-append would.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"entry":{"shard":9`)
	f.Close()

	s2, pending, err := openSpool(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(pending) != 1 {
		t.Fatalf("reopened spool has %d pending entries, want 1", len(pending))
	}
	got := pending[0]
	if got.Shard != 1 || got.Epoch != 2 || got.First != 4 || got.Count != 4 || !bytes.Equal(got.Body, e2.Body) {
		t.Fatalf("pending entry corrupted: %+v", got)
	}

	if _, _, err := openSpool(path, []byte(`{"cfg":2}`)); err == nil {
		t.Fatal("mismatched-fingerprint spool accepted")
	}
}

// TestFleetTokenAuth: with a token configured, protocol requests
// without it (or with the wrong one) are rejected 401 and counted;
// the right token passes through to the handler.
func TestFleetTokenAuth(t *testing.T) {
	cfg := testCampaign(4)
	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Token: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	h := c.requireToken(c.handleLease)
	body, _ := json.Marshal(leaseRequest{WorkerID: "nobody"})

	send := func(token string) int {
		req := httptest.NewRequest("POST", pathLease, bytes.NewReader(body))
		if token != "" {
			req.Header.Set(fleetTokenHeader, token)
		}
		rec := httptest.NewRecorder()
		h(rec, req)
		return rec.Code
	}
	if code := send(""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless request: status %d, want 401", code)
	}
	if code := send("wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token request: status %d, want 401", code)
	}
	if got := c.authRejected.Value(); got != 2 {
		t.Fatalf("authRejected counter = %d, want 2", got)
	}
	// The right token reaches the handler (403: unknown worker — auth
	// passed, registration is a separate concern).
	if code := send("hunter2"); code != http.StatusForbidden {
		t.Fatalf("authed request: status %d, want 403 from the handler", code)
	}
}

// TestDetectionDedupGauges: merged detections feed the
// (oracle, fingerprint)-keyed dedup gauges — every detection of a
// completed campaign is counted exactly once as unique or duplicate,
// and both gauges are exported on /metrics.
func TestDetectionDedupGauges(t *testing.T) {
	cfg := testCampaign(8)
	cfg.Bugs = bugs.All()
	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c)
	for {
		l := lease(t, c, w1)
		if l.Done {
			break
		}
		if l.Shard == nil {
			t.Fatal("coordinator idle with shards outstanding")
		}
		if resp, code := uploadShard(t, c, w1, *l.Shard); code != 200 || !resp.Accepted {
			t.Fatalf("upload: code %d resp %+v", code, resp)
		}
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var detections int
	for _, v := range res.Verdicts {
		if v.Kind == difftest.VerdictDetection {
			detections++
		}
	}
	if detections == 0 {
		t.Fatal("campaign produced no detections; the dedup gauges are untested")
	}
	c.mu.Lock()
	unique, dup := len(c.seenDet), c.dupDet
	c.mu.Unlock()
	if unique+int(dup) != detections {
		t.Fatalf("dedup gauges count %d unique + %d duplicate, want %d total detections",
			unique, dup, detections)
	}
	// A repeated key is a duplicate, not a second unique.
	c.mu.Lock()
	before := len(c.seenDet)
	c.countDetection("difftest/ariths/0000000000000001")
	c.countDetection("difftest/ariths/0000000000000001")
	unique, dup = len(c.seenDet), c.dupDet
	c.mu.Unlock()
	if unique != before+1 || dup != 1 {
		t.Fatalf("repeated key: %d unique (+%d) and %d duplicates, want +1/1", unique, unique-before, dup)
	}
	var buf bytes.Buffer
	if err := c.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ratte_fleet_detections_unique", "ratte_fleet_detections_duplicate"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("/metrics output missing %s", name)
		}
	}
}

// TestCoordinatorLedgerPinsPartitioning: a coordinator resumed over a
// ledger partitions exactly as its predecessor did — even against a
// conflicting ShardSize flag — resumes its counters strictly above
// every issued value, and finishes to the serial report.
func TestCoordinatorLedgerPinsPartitioning(t *testing.T) {
	cfg := testCampaign(12)
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "fleet.jsonl")
	lpath := filepath.Join(dir, "fleet.ledger")

	jcfg := cfg
	j, err := difftest.CreateJournal(jpath, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	jcfg.Journal = j
	c1, err := NewCoordinator(CoordinatorConfig{Campaign: jcfg, ShardSize: 4, LedgerPath: lpath})
	if err != nil {
		t.Fatal(err)
	}
	w1 := register(t, c1)
	l := lease(t, c1, w1)
	if resp, code := uploadShard(t, c1, w1, *l.Shard); code != 200 || !resp.Accepted {
		t.Fatalf("upload: code %d resp %+v", code, resp)
	}
	maxEpoch := l.Shard.Epoch
	if err := c1.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := difftest.OpenJournalForResume(jpath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 4 {
		t.Fatalf("journal resumed %d verdicts, want 4", len(resumed))
	}
	rcfg := cfg
	rcfg.Journal = j2
	rcfg.Resumed = resumed
	// A conflicting ShardSize must lose to the ledger's recorded one.
	c2, err := NewCoordinator(CoordinatorConfig{
		Campaign: rcfg, ShardSize: 5, LedgerPath: lpath, ResumeLedger: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c2.shardSize != 4 {
		t.Fatalf("resumed shard size %d, want the ledger's 4", c2.shardSize)
	}
	if c2.nextEpoch < maxEpoch {
		t.Fatalf("resumed nextEpoch %d below issued epoch %d", c2.nextEpoch, maxEpoch)
	}
	if c2.nextWorker < 1 {
		t.Fatalf("resumed nextWorker %d, want >= 1", c2.nextWorker)
	}
	w2 := register(t, c2)
	if w2 == w1 {
		t.Fatalf("resumed coordinator re-issued worker id %s", w2)
	}
	for {
		l := lease(t, c2, w2)
		if l.Done {
			break
		}
		if l.Shard == nil {
			t.Fatal("resumed coordinator idle with shards outstanding")
		}
		if l.Shard.ID == 0 {
			t.Fatal("resumed coordinator re-leased the journaled shard")
		}
		if l.Shard.Epoch <= maxEpoch {
			t.Fatalf("resumed lease epoch %d not above pre-crash %d", l.Shard.Epoch, maxEpoch)
		}
		if resp, code := uploadShard(t, c2, w2, *l.Shard); code != 200 || !resp.Accepted {
			t.Fatalf("resume upload: code %d resp %+v", code, resp)
		}
	}
	res, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("ledger-resumed report differs from serial:\n--- serial\n%s--- resumed\n%s", a, b)
	}
}

// TestWorkerSpoolReplay: a worker restarted with a spool holding an
// unacknowledged shard re-uploads it before leasing new work — the
// delivery a crash-before-ack lost — and the campaign still finishes
// to the serial report with no seed run twice by this worker.
func TestWorkerSpoolReplay(t *testing.T) {
	cfg := testCampaign(8)
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The "previous life" of the worker: shard 0 completed and spooled,
	// but the acknowledgement never landed.
	fp, err := difftest.CampaignFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := difftest.RunCampaignRange(context.Background(), cfg, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeVerdicts(vs)
	if err != nil {
		t.Fatal(err)
	}
	spoolPath := filepath.Join(t.TempDir(), "worker.spool")
	sp, _, err := openSpool(spoolPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.add(spoolEntry{Shard: 0, Epoch: 7, First: 0, Count: 4, Body: body}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: "http://" + c.Addr(),
		Campaign:    cfg,
		Workers:     1,
		SpoolPath:   spoolPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpoolReplayed != 1 {
		t.Fatalf("worker replayed %d spool entries, want 1", stats.SpoolReplayed)
	}
	if stats.Shards != 2 || stats.Verdicts != 8 {
		t.Fatalf("worker stats %+v, want 2 shards / 8 verdicts (replay + lease)", stats)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
		t.Fatalf("spool-replay report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
	}

	// The replay was acknowledged: a second restart has nothing pending.
	sp2, pending, err := openSpool(spoolPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if len(pending) != 0 {
		t.Fatalf("spool still holds %d entries after acknowledged replay", len(pending))
	}
}
