// End-to-end fleet observability tests: a real coordinator and real
// workers over localhost HTTP, with the merged coverage union compared
// against the serial engine's, the snapshot-merged counters compared
// against a serial campaign's registry, and the /status and /metrics
// dashboards scraped like a monitoring system would.
package fleet_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/fleet"
	"ratte/internal/telemetry"
)

// TestFleetCoverageObservability is the observability tentpole's
// contract in one scenario: the fleet's merged coverage union is
// exactly the serial engine's, the coordinator's snapshot-merged
// campaign counters are exactly a serial run's, the merged report is
// byte-identical (coverage stays observation-only through the fleet
// path), and the /status + /metrics + event-log surfaces describe the
// run truthfully.
func TestFleetCoverageObservability(t *testing.T) {
	base := difftest.CampaignConfig{
		Preset: "ariths", Programs: 30, Size: 14, Seed: 97,
		Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
	}

	// Serial reference, instrumented the same way.
	serialCfg := base
	serialCov := difftest.NewCampaignCoverage(nil)
	serialCfg.Coverage = serialCov
	serialReg := telemetry.NewRegistry()
	serialCfg.Telemetry = difftest.NewCampaignTelemetry(serialReg)
	want, err := difftest.RunCampaign(serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet run: coverage on, event logs for both roles into one file.
	events := filepath.Join(t.TempDir(), "fleet-events.jsonl")
	fleetCfg := base
	fleetCov := difftest.NewCampaignCoverage(nil)
	fleetCfg.Coverage = fleetCov
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Campaign: fleetCfg, ShardSize: 5, EventLogPath: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator:  "http://" + coord.Addr(),
				Campaign:     fleetCfg,
				Workers:      1,
				EventLogPath: events,
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Coverage is observation-only through the fleet path too.
	if a, b := difftest.ReportText(want), difftest.ReportText(got); a != b {
		t.Fatalf("fleet report differs from serial:\n--- serial\n%s--- fleet\n%s", a, b)
	}
	// The merged union is exactly the serial union.
	if !reflect.DeepEqual(serialCov.Summary(), fleetCov.Summary()) {
		t.Fatalf("fleet coverage union differs from serial:\nserial: %v\nfleet:  %v",
			serialCov.Summary(), fleetCov.Summary())
	}
	if coord.Coverage() != fleetCov {
		t.Fatal("Coordinator.Coverage() is not the configured accumulator")
	}
	if fleetCov.Sites() == 0 {
		t.Fatal("fleet campaign observed no coverage sites")
	}

	// Snapshot-merged campaign counters equal the serial run's: the
	// per-shard worker deltas sum to the whole, and are counted exactly
	// once each.
	merged := coord.Registry().Counters()
	for series, n := range serialReg.Counters() {
		if n == 0 || !strings.HasPrefix(series, "ratte_campaign_") {
			continue
		}
		if merged[series] != n {
			t.Errorf("merged counter %s = %d, serial = %d", series, merged[series], n)
		}
	}
	// The fleet-wide per-site counters are the union, series for series.
	var hitSum uint64
	for series, n := range merged {
		if rest, ok := strings.CutPrefix(series, `ratte_coverage_hits_total{site="`); ok {
			site := strings.TrimSuffix(rest, `"}`)
			if wantN := serialCov.Summary()[site]; wantN != n {
				t.Errorf("site %s: fleet %d, serial %d", site, n, wantN)
			}
			hitSum += n
		}
	}
	if hitSum != fleetCov.Total() {
		t.Errorf("per-site counter sum %d != union total %d", hitSum, fleetCov.Total())
	}

	// /status JSON.
	var st fleet.Status
	resp, err := http.Get("http://" + coord.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Merged != base.Programs {
		t.Errorf("/status merged = %d, want %d", st.Merged, base.Programs)
	}
	if st.ShardsDone != 6 {
		t.Errorf("/status shards done = %d, want 6", st.ShardsDone)
	}
	if len(st.Workers) == 0 {
		t.Error("/status lists no workers")
	}
	if st.CoverageSites != fleetCov.Sites() {
		t.Errorf("/status coverage sites = %d, want %d", st.CoverageSites, fleetCov.Sites())
	}
	if len(st.Curve) != 6 || st.Curve[len(st.Curve)-1].Seeds != base.Programs {
		t.Errorf("/status coverage curve = %v, want 6 points ending at %d seeds", st.Curve, base.Programs)
	}
	var wv int
	for _, w := range st.Workers {
		wv += w.Verdicts
	}
	if wv != base.Programs {
		t.Errorf("/status worker verdicts sum to %d, want %d", wv, base.Programs)
	}

	// /status HTML dashboard.
	resp, err = http.Get("http://" + coord.Addr() + "/status?format=html")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "<table>") || !strings.Contains(string(page), "coverage:") {
		t.Errorf("/status html missing dashboard content:\n%s", page)
	}

	// /metrics exposition carries the fleet gauges and merged series.
	resp, err = http.Get("http://" + coord.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ratte_fleet_verdicts_total 30",
		"ratte_fleet_coverage_sites",
		"ratte_fleet_spool_depth",
		"ratte_fleet_ledger_bytes",
		"ratte_fleet_shard_latency_ns_count 6",
		`ratte_coverage_hits_total{site="`,
		"ratte_campaign_seeds_done_total 30",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	coord.DrainWorkers(5 * time.Second)
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	// The shared event log correlates both roles under one campaign id.
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var campaigns, roles, kinds = map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e struct {
			Campaign string `json:"campaign"`
			Role     string `json:"role"`
			Event    string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event log line %q: %v", line, err)
		}
		campaigns[e.Campaign] = true
		roles[e.Role] = true
		kinds[e.Event] = true
	}
	if len(campaigns) != 1 {
		t.Errorf("event log spans %d campaign ids, want 1", len(campaigns))
	}
	if !roles["coordinator"] || !roles["worker"] {
		t.Errorf("event log roles = %v, want both coordinator and worker", roles)
	}
	for _, k := range []string{"start", "register", "grant", "shard-start", "upload", "result", "splice", "done"} {
		if !kinds[k] {
			t.Errorf("event log missing %q events (have %v)", k, kinds)
		}
	}
}

// TestFleetStatusWithoutCoverage: a coverage-free campaign serves a
// /status document with the coverage block simply absent — no nil
// dereference, no phantom sites.
func TestFleetStatusWithoutCoverage(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset: "ariths", Programs: 8, Size: 14, Seed: 97,
		Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{Campaign: cfg, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.RunWorker(context.Background(), fleet.WorkerConfig{ //nolint:errcheck // drained below
			Coordinator: "http://" + coord.Addr(), Campaign: cfg, Workers: 1,
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var st fleet.Status
	resp, err := http.Get("http://" + coord.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.CoverageSites != 0 || st.CoverageHits != 0 || len(st.Curve) != 0 {
		t.Errorf("coverage-free /status reports coverage: %+v", st)
	}
	if st.Merged != cfg.Programs {
		t.Errorf("/status merged = %d, want %d", st.Merged, cfg.Programs)
	}
	coord.DrainWorkers(5 * time.Second)
	wg.Wait()
}
