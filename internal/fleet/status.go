// The fleet status endpoint: one JSON document (or a minimal HTML
// dashboard) describing the campaign's live shape — shard queue,
// per-worker liveness and throughput, and the coverage growth curve.
// Status is observability over the same state the gauges export; it is
// never consulted by the protocol.
package fleet

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Status is the /status document.
type Status struct {
	// Campaign is the fleet-wide campaign id (the event log's key).
	Campaign string `json:"campaign"`
	Programs int    `json:"programs"`
	Merged   int    `json:"merged"`
	// UptimeSeconds is the coordinator's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RatePerSec is aggregate merged throughput since start.
	RatePerSec float64 `json:"rate_per_sec"`

	ShardsPending int `json:"shards_pending"`
	ShardsLeased  int `json:"shards_leased"`
	ShardsDone    int `json:"shards_done"`

	Workers []WorkerStatus `json:"workers"`

	// CoverageSites/CoverageHits describe the merged campaign coverage
	// union; Curve is one point per spliced shard. All zero/empty when
	// the campaign runs without coverage.
	CoverageSites int             `json:"coverage_sites,omitempty"`
	CoverageHits  uint64          `json:"coverage_hits,omitempty"`
	Curve         []CoveragePoint `json:"coverage_curve,omitempty"`
}

// WorkerStatus is one worker's row in the /status document.
type WorkerStatus struct {
	ID   string `json:"id"`
	Host string `json:"host"`
	// Live is whether the worker was seen within two lease TTLs.
	Live         bool    `json:"live"`
	LastSeenSecs float64 `json:"last_seen_seconds_ago"`
	// Shards/Verdicts count the worker's accepted uploads; RatePerSec
	// is its accepted-verdict throughput since registration.
	Shards     int     `json:"shards"`
	Verdicts   int     `json:"verdicts"`
	RatePerSec float64 `json:"rate_per_sec"`
	// SpoolDepth is the worker's last snapshot-reported unacknowledged
	// spool size.
	SpoolDepth int `json:"spool_depth"`
}

// status assembles the document under c.mu.
func (c *Coordinator) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := Status{
		Campaign:      campaignID([]byte(c.fingerprint)),
		Programs:      c.camp.Programs,
		Merged:        len(c.merged),
		UptimeSeconds: now.Sub(c.start).Seconds(),
	}
	if st.UptimeSeconds > 0 {
		st.RatePerSec = float64(len(c.merged)) / st.UptimeSeconds
	}
	for _, s := range c.shards {
		switch s.state {
		case shardPending:
			st.ShardsPending++
		case shardLeased:
			st.ShardsLeased++
		case shardDone:
			st.ShardsDone++
		}
	}
	cutoff := now.Add(-2 * c.leaseTTL)
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID:           w.id,
			Host:         w.host,
			Live:         w.lastSeen.After(cutoff),
			LastSeenSecs: now.Sub(w.lastSeen).Seconds(),
			Shards:       w.shards,
			Verdicts:     w.verdicts,
			SpoolDepth:   w.spoolDepth,
		}
		if age := now.Sub(w.firstSeen).Seconds(); age > 0 {
			ws.RatePerSec = float64(w.verdicts) / age
		}
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	if c.cov != nil {
		st.CoverageSites = c.cov.Sites()
		st.CoverageHits = c.cov.Total()
		st.Curve = append([]CoveragePoint(nil), c.covCurve...)
	}
	return st
}

// statusPage is the minimal HTML rendering of the same document: a
// dashboard for a human with a browser, nothing more.
var statusPage = template.Must(template.New("status").Parse(`<!doctype html>
<title>ratte fleet {{.Campaign}}</title>
<style>body{font:14px monospace;margin:2em}table{border-collapse:collapse}
td,th{border:1px solid #999;padding:2px 8px;text-align:right}th{background:#eee}
td:first-child,th:first-child{text-align:left}</style>
<h1>campaign {{.Campaign}}</h1>
<p>{{.Merged}}/{{.Programs}} seeds merged &middot; {{printf "%.1f" .RatePerSec}}/sec
&middot; shards: {{.ShardsDone}} done, {{.ShardsLeased}} leased, {{.ShardsPending}} pending</p>
{{if .CoverageSites}}<p>coverage: {{.CoverageSites}} sites, {{.CoverageHits}} hits</p>
<p>growth: {{range .Curve}}{{.Seeds}}&rarr;{{.Sites}} {{end}}</p>{{end}}
<table><tr><th>worker</th><th>host</th><th>live</th><th>seen ago</th>
<th>shards</th><th>verdicts</th><th>rate/s</th><th>spool</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{.Host}}</td><td>{{if .Live}}yes{{else}}no{{end}}</td>
<td>{{printf "%.1fs" .LastSeenSecs}}</td><td>{{.Shards}}</td><td>{{.Verdicts}}</td>
<td>{{printf "%.1f" .RatePerSec}}</td><td>{{.SpoolDepth}}</td></tr>{{end}}</table>
`))

// handleStatus serves the fleet status document: JSON by default, the
// HTML dashboard with ?format=html or an Accept header preferring
// text/html. Like /metrics, it is deliberately not token-gated.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := c.status()
	wantHTML := r.URL.Query().Get("format") == "html" ||
		strings.Contains(r.Header.Get("Accept"), "text/html")
	if wantHTML {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusPage.Execute(w, st); err != nil {
			http.Error(w, fmt.Sprintf("fleet: status render: %v", err), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, st)
}
