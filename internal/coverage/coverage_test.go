package coverage

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegisterIdempotent(t *testing.T) {
	a := Register("test/idempotent/a")
	b := Register("test/idempotent/a")
	if a != b {
		t.Fatalf("Register returned %d then %d for the same name", a, b)
	}
	if SiteName(a) != "test/idempotent/a" {
		t.Fatalf("SiteName(%d) = %q", a, SiteName(a))
	}
	if Register("test/idempotent/b") == a {
		t.Fatal("distinct names share a slot")
	}
}

func TestKeyedFamily(t *testing.T) {
	k := NewKeyed("test/keyed")
	s1 := k.Site("arith.addi")
	s2 := k.Site("arith.muli")
	if s1 == s2 {
		t.Fatal("distinct keys share a slot")
	}
	if k.Site("arith.addi") != s1 {
		t.Fatal("keyed lookup not stable")
	}
	if SiteName(s1) != "test/keyed/arith.addi" {
		t.Fatalf("full name = %q", SiteName(s1))
	}
}

func TestKeyedConcurrent(t *testing.T) {
	k := NewKeyed("test/keyed-conc")
	var wg sync.WaitGroup
	got := make([]Site, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = k.Site(fmt.Sprintf("op%d", i%4))
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] != k.Site(fmt.Sprintf("op%d", i%4)) {
			t.Fatalf("slot %d unstable under concurrency", i)
		}
	}
}

func TestMapHitSummaryMerge(t *testing.T) {
	a := Register("test/map/a")
	b := Register("test/map/b")
	m := NewMap()
	m.Hit(a)
	m.Hit(a)
	m.Hit(b)
	if m.Count(a) != 2 || m.Count(b) != 1 {
		t.Fatalf("counts = %d,%d", m.Count(a), m.Count(b))
	}
	if m.Sites() != 2 || m.Total() != 3 {
		t.Fatalf("Sites=%d Total=%d", m.Sites(), m.Total())
	}
	sum := m.Summary()
	if sum["test/map/a"] != 2 || sum["test/map/b"] != 1 {
		t.Fatalf("summary = %v", sum)
	}

	other := NewMap()
	other.Hit(b)
	m.Merge(other)
	if m.Count(b) != 2 {
		t.Fatalf("merged b = %d", m.Count(b))
	}

	folded := NewMap()
	folded.AddSummary(sum)
	if folded.Count(a) != 2 || folded.Count(b) != 1 {
		t.Fatal("AddSummary did not reconstruct the map")
	}
}

func TestNilMapIsInert(t *testing.T) {
	var m *Map
	s := Register("test/nil/a")
	m.Hit(s)
	m.Add(s, 5)
	m.Merge(NewMap())
	m.AddSummary(map[string]uint64{"x": 1})
	if m.Summary() != nil || m.Sites() != 0 || m.Total() != 0 || m.Count(s) != 0 {
		t.Fatal("nil map is not inert")
	}
	if m.Text() != "" {
		t.Fatal("nil map rendered text")
	}
}

func TestEmptySummaryIsNil(t *testing.T) {
	if NewMap().Summary() != nil {
		t.Fatal("empty map summary not nil (breaks json omitempty)")
	}
}

func TestTextDeterministic(t *testing.T) {
	m := NewMap()
	m.Add(Register("test/text/zz"), 3)
	m.Add(Register("test/text/aa"), 12)
	want := "test/text/aa 12\ntest/text/zz 3\n"
	if got := m.Text(); got != want {
		t.Fatalf("Text() = %q, want %q", got, want)
	}
}

// TestDisabledHitAddsNoAllocs pins the off switch at the package
// level: nil-map hits and keyed lookups on the hot path allocate
// nothing.
func TestDisabledHitAddsNoAllocs(t *testing.T) {
	k := NewKeyed("test/alloc")
	k.Site("warm") // pre-register so the measured path is the lookup
	var m *Map
	if n := testing.AllocsPerRun(100, func() {
		if m != nil {
			m.Hit(k.Site("warm"))
		}
	}); n != 0 {
		t.Fatalf("disabled coverage path allocates %.1f per op", n)
	}
	// The enabled path is allocation-free too once the map has grown.
	en := NewMap()
	en.Hit(k.Site("warm"))
	if n := testing.AllocsPerRun(100, func() {
		en.Hit(k.Site("warm"))
	}); n != 0 {
		t.Fatalf("enabled coverage hot path allocates %.1f per op", n)
	}
}
