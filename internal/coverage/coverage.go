// Package coverage is the semantic-coverage substrate of the fuzzing
// pipeline: a process-wide universe of named sites (rewrite patterns,
// legality branches, generator choices, executed op kinds) and a
// compact per-program Map of dense counter slots over that universe.
//
// The package mirrors internal/telemetry's two load-bearing
// properties:
//
//   - Nil safety. A nil *Map is a no-op: Hit, Add and Merge return
//     immediately, Summary returns nil. Instrumented code therefore
//     carries a single nil check per site and the disabled path costs
//     zero allocations (the interp/compiler alloc guards pin this).
//
//   - Observation only. Maps never feed back into the work they
//     measure: a campaign with coverage enabled produces the
//     byte-identical report of one with it disabled.
//
// Sites are registered once, process-wide, and resolve to stable
// dense slot indices for the life of the process. Slot indices are
// NOT stable across processes (registration order depends on which
// code paths run first), so anything that crosses a process boundary
// — journal lines, fleet snapshots — carries Summary()'s name-keyed
// form and is folded back with AddSummary.
//
// The package depends only on the standard library so every layer
// (gen, compiler, interp, difftest, fleet) can instrument itself
// without import cycles.
package coverage

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Site is a dense slot index into the process-wide site universe.
type Site int32

// universe is the process-wide site registry: an append-only name
// list (the slot order) plus a name index. Registration is rare and
// takes the lock; readers of names snapshot under it too (Summary is
// off the hot path).
var universe struct {
	mu    sync.Mutex
	names []string
	index map[string]Site
}

// Register resolves a site name to its slot, registering it on first
// use. Idempotent: the same name always returns the same Site.
func Register(name string) Site {
	universe.mu.Lock()
	defer universe.mu.Unlock()
	if universe.index == nil {
		universe.index = make(map[string]Site)
	}
	if s, ok := universe.index[name]; ok {
		return s
	}
	s := Site(len(universe.names))
	universe.names = append(universe.names, name)
	universe.index[name] = s
	return s
}

// SiteName returns the registered name of a slot ("" if out of range).
func SiteName(s Site) string {
	universe.mu.Lock()
	defer universe.mu.Unlock()
	if s < 0 || int(s) >= len(universe.names) {
		return ""
	}
	return universe.names[s]
}

// UniverseSize reports how many sites are registered process-wide.
func UniverseSize() int {
	universe.mu.Lock()
	defer universe.mu.Unlock()
	return len(universe.names)
}

// Keyed is a family of sites sharing one prefix and distinguished by a
// key — e.g. rewrite applications by op name, executed ops by kind.
// The full site name ("prefix/key") is built only on first
// registration; the hot path is one atomic pointer load plus one map
// lookup, allocation-free, so per-op instrumentation in the
// interpreter's dispatch loop stays cheap.
type Keyed struct {
	prefix string
	sites  atomic.Pointer[map[string]Site]
	mu     sync.Mutex
}

// NewKeyed builds a site family under prefix.
func NewKeyed(prefix string) *Keyed {
	return &Keyed{prefix: prefix}
}

// Site resolves a key to its family's slot, registering
// "prefix/key" in the universe on first use.
func (k *Keyed) Site(key string) Site {
	if m := k.sites.Load(); m != nil {
		if s, ok := (*m)[key]; ok {
			return s
		}
	}
	return k.register(key)
}

// register is the copy-on-write slow path of Site.
func (k *Keyed) register(key string) Site {
	k.mu.Lock()
	defer k.mu.Unlock()
	old := k.sites.Load()
	if old != nil {
		if s, ok := (*old)[key]; ok {
			return s
		}
	}
	s := Register(k.prefix + "/" + key)
	next := make(map[string]Site, 1)
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[key] = s
	k.sites.Store(&next)
	return s
}

// Map is a compact per-program coverage counter: one uint64 slot per
// universe site, grown lazily to the highest site hit. A nil *Map is
// a no-op everywhere. A Map is NOT safe for concurrent use — each
// seed's pipeline owns its own; unions happen behind locks one layer
// up (difftest.CampaignCoverage, the fleet coordinator).
type Map struct {
	counts []uint64
}

// NewMap builds an empty coverage map.
func NewMap() *Map { return &Map{} }

// Hit increments a site's counter.
func (m *Map) Hit(s Site) { m.Add(s, 1) }

// Add increments a site's counter by n.
func (m *Map) Add(s Site, n uint64) {
	if m == nil || s < 0 {
		return
	}
	if int(s) >= len(m.counts) {
		grown := make([]uint64, int(s)+1)
		copy(grown, m.counts)
		m.counts = grown
	}
	m.counts[s] += n
}

// Count returns a site's counter (0 for a nil Map or an unhit site).
func (m *Map) Count(s Site) uint64 {
	if m == nil || s < 0 || int(s) >= len(m.counts) {
		return 0
	}
	return m.counts[s]
}

// Sites reports how many distinct sites have a nonzero count.
func (m *Map) Sites() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, c := range m.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// Total returns the sum of all counters.
func (m *Map) Total() uint64 {
	if m == nil {
		return 0
	}
	var t uint64
	for _, c := range m.counts {
		t += c
	}
	return t
}

// Merge folds other's counters into m (slot-wise; both maps index the
// same process-wide universe).
func (m *Map) Merge(other *Map) {
	if m == nil || other == nil {
		return
	}
	for s, c := range other.counts {
		if c != 0 {
			m.Add(Site(s), c)
		}
	}
}

// Summary returns the map's nonzero counters keyed by site name — the
// process-portable form that rides in journal lines and fleet
// snapshots. Returns nil for a nil or empty map, so the field
// json-omits cleanly.
func (m *Map) Summary() map[string]uint64 {
	if m == nil {
		return nil
	}
	var out map[string]uint64
	universe.mu.Lock()
	for s, c := range m.counts {
		if c == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]uint64)
		}
		out[universe.names[s]] = c
	}
	universe.mu.Unlock()
	return out
}

// AddSummary folds a name-keyed summary (from Summary, possibly from
// another process) back into m, registering any unknown site names.
func (m *Map) AddSummary(sum map[string]uint64) {
	if m == nil {
		return
	}
	for name, c := range sum {
		m.Add(Register(name), c)
	}
}

// Text renders the map as sorted "site count" lines — the
// -coverage-dump format. Deterministic for a fixed set of counts.
func (m *Map) Text() string {
	sum := m.Summary()
	names := make([]string, 0, len(sum))
	for name := range sum {
		names = append(names, name)
	}
	sort.Strings(names)
	var b []byte
	for _, name := range names {
		b = append(b, name...)
		b = append(b, ' ')
		b = appendUint(b, sum[name])
		b = append(b, '\n')
	}
	return string(b)
}

// appendUint appends the decimal form of v.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
