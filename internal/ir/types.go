// Package ir defines the core intermediate-representation data structures
// used throughout Ratte: types, attributes, values, operations, regions,
// blocks and modules, together with a printer and parser for the generic
// textual format (the grammar of Figure 1 in the Ratte paper, which is in
// one-to-one correspondence with MLIR's "generic IR format").
//
// The representation is deliberately string-ID based: a Value is a pair of
// an SSA identifier and a type, exactly as the paper's Table 1 embeds MLIR
// values. Use-def relationships are resolved through scoped symbol tables
// by the verifier, interpreter and passes rather than by pointers, which
// keeps cloning, printing, parsing and test-case reduction straightforward.
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// DynamicSize marks a dimension whose extent is not statically known
// (printed as "?" in shaped types such as tensor<?xi64>).
const DynamicSize int64 = -1

// Type is the interface implemented by all IR types.
//
// Types are immutable value objects; two types are interchangeable exactly
// when their canonical printed forms are equal (see Equal).
type Type interface {
	// String returns the canonical textual form of the type, e.g. "i64",
	// "index", "tensor<3x?xi32>", "(i64, i64) -> i64".
	String() string

	isType()
}

// TypeEqual reports whether two types are structurally identical. A nil
// type is only equal to nil.
//
// This sits on the interpreter's per-operand hot path (every Get/Define
// checks the declared type), so it compares structurally rather than
// through the canonical printed forms — the two notions coincide, which
// TestTypeEqualMatchesStringEquality pins down.
func TypeEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch at := a.(type) {
	case IntegerType:
		bt, ok := b.(IntegerType)
		return ok && at.Width == bt.Width
	case IndexType:
		_, ok := b.(IndexType)
		return ok
	case TensorType:
		bt, ok := b.(TensorType)
		return ok && shapeEqual(at.Shape, bt.Shape) && TypeEqual(at.Elem, bt.Elem)
	case MemRefType:
		bt, ok := b.(MemRefType)
		return ok && shapeEqual(at.Shape, bt.Shape) && TypeEqual(at.Elem, bt.Elem)
	case VectorType:
		bt, ok := b.(VectorType)
		return ok && shapeEqual(at.Shape, bt.Shape) && TypeEqual(at.Elem, bt.Elem)
	case FunctionType:
		bt, ok := b.(FunctionType)
		return ok && typesEqual(at.Inputs, bt.Inputs) && typesEqual(at.Results, bt.Results)
	case NoneType:
		_, ok := b.(NoneType)
		return ok
	}
	// Types from outside this package: fall back to canonical text.
	return a.String() == b.String()
}

func shapeEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func typesEqual(a, b []Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !TypeEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// IntegerType is a signless two's-complement integer type iN with
// 1 <= N <= 64, e.g. i1, i8, i32, i64.
type IntegerType struct {
	Width uint
}

// I returns the integer type with the given bit width.
func I(width uint) IntegerType { return IntegerType{Width: width} }

// Convenience singletons for the common integer widths.
var (
	I1  = I(1)
	I8  = I(8)
	I16 = I(16)
	I32 = I(32)
	I64 = I(64)
)

// Pre-boxed Type values of the hot scalar types. Storing a value type
// into the Type interface normally boxes it; reusing these interned
// values keeps the parser, the generators and the semantic kernels from
// re-boxing i1/i8/i16/i32/i64/index on every construction. IntType
// hands them out behind the I constructor's contract.
var (
	typeI1    Type = I1
	typeI8    Type = I8
	typeI16   Type = I16
	typeI32   Type = I32
	typeI64   Type = I64
	TypeIndex Type = Index
)

// IntType returns i<width> as an interface value, interned for the
// common widths. It is the allocation-free counterpart of I for code
// that stores the result into a Type.
func IntType(width uint) Type {
	switch width {
	case 1:
		return typeI1
	case 8:
		return typeI8
	case 16:
		return typeI16
	case 32:
		return typeI32
	case 64:
		return typeI64
	}
	return IntegerType{Width: width}
}

func (t IntegerType) String() string {
	// The common widths dominate every hot path (printing, hashing,
	// legacy equality); hand out constants instead of formatting.
	switch t.Width {
	case 1:
		return "i1"
	case 8:
		return "i8"
	case 16:
		return "i16"
	case 32:
		return "i32"
	case 64:
		return "i64"
	}
	return "i" + strconv.FormatUint(uint64(t.Width), 10)
}
func (IntegerType) isType() {}

// IndexType is MLIR's platform-sized integer used for sizes and subscripts.
// Ratte models index as a 64-bit two's-complement integer, matching the
// behaviour of mlir-cpu-runner on 64-bit hosts.
type IndexType struct{}

// Index is the canonical index type value.
var Index = IndexType{}

func (IndexType) String() string { return "index" }
func (IndexType) isType()        {}

// TensorType is a ranked tensor type. A dimension equal to DynamicSize is
// dynamic ("?"). Elem is the element type.
type TensorType struct {
	Shape []int64
	Elem  Type
}

// TensorOf builds a ranked tensor type from a shape and element type.
func TensorOf(shape []int64, elem Type) TensorType {
	return TensorType{Shape: append([]int64(nil), shape...), Elem: elem}
}

func (t TensorType) String() string { return "tensor<" + shapeString(t.Shape, t.Elem) + ">" }
func (TensorType) isType()          {}

// Rank returns the number of dimensions.
func (t TensorType) Rank() int { return len(t.Shape) }

// HasStaticShape reports whether every dimension is statically known.
func (t TensorType) HasStaticShape() bool {
	for _, d := range t.Shape {
		if d == DynamicSize {
			return false
		}
	}
	return true
}

// NumElements returns the product of the static dimensions. It must only
// be called when HasStaticShape is true.
func (t TensorType) NumElements() int64 {
	n := int64(1)
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// MemRefType is a ranked buffer type, the bufferised counterpart of
// TensorType produced by the one-shot-bufferize pass.
type MemRefType struct {
	Shape []int64
	Elem  Type
}

// MemRefOf builds a ranked memref type from a shape and element type.
func MemRefOf(shape []int64, elem Type) MemRefType {
	return MemRefType{Shape: append([]int64(nil), shape...), Elem: elem}
}

func (t MemRefType) String() string { return "memref<" + shapeString(t.Shape, t.Elem) + ">" }
func (MemRefType) isType()          {}

// Rank returns the number of dimensions.
func (t MemRefType) Rank() int { return len(t.Shape) }

// HasStaticShape reports whether every dimension is statically known.
func (t MemRefType) HasStaticShape() bool {
	for _, d := range t.Shape {
		if d == DynamicSize {
			return false
		}
	}
	return true
}

// NumElements returns the product of the static dimensions. It must only
// be called when HasStaticShape is true.
func (t MemRefType) NumElements() int64 {
	n := int64(1)
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// VectorType is a fixed-shape vector type, e.g. vector<4xi32>. Ratte only
// needs it for completeness of the vector dialect surface; the fuzzers in
// the paper print scalars.
type VectorType struct {
	Shape []int64
	Elem  Type
}

// VectorOf builds a vector type from a shape and element type.
func VectorOf(shape []int64, elem Type) VectorType {
	return VectorType{Shape: append([]int64(nil), shape...), Elem: elem}
}

func (t VectorType) String() string { return "vector<" + shapeString(t.Shape, t.Elem) + ">" }
func (VectorType) isType()          {}

// FunctionType is the type of functions: a list of inputs and results.
type FunctionType struct {
	Inputs  []Type
	Results []Type
}

// FuncOf builds a function type.
func FuncOf(inputs, results []Type) FunctionType {
	return FunctionType{
		Inputs:  append([]Type(nil), inputs...),
		Results: append([]Type(nil), results...),
	}
}

func (t FunctionType) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, in := range t.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.String())
	}
	b.WriteString(") -> (")
	for i, out := range t.Results {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(out.String())
	}
	b.WriteByte(')')
	return b.String()
}
func (FunctionType) isType() {}

// NoneType is the unit type; it appears only in corners of the surface
// syntax and is included for parser completeness.
type NoneType struct{}

func (NoneType) String() string { return "none" }
func (NoneType) isType()        {}

// IsIntegerOrIndex reports whether t is an integer or index type — the
// scalar domain over which the arith dialect operates.
func IsIntegerOrIndex(t Type) bool {
	switch t.(type) {
	case IntegerType, IndexType:
		return true
	}
	return false
}

// BitWidth returns the runtime bit width of an integer or index type
// (index is modelled as 64 bits). ok is false for other types.
func BitWidth(t Type) (width uint, ok bool) {
	switch t := t.(type) {
	case IntegerType:
		return t.Width, true
	case IndexType:
		return 64, true
	}
	return 0, false
}

func shapeString(shape []int64, elem Type) string {
	var b strings.Builder
	for _, d := range shape {
		if d == DynamicSize {
			b.WriteByte('?')
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
		b.WriteByte('x')
	}
	b.WriteString(elem.String())
	return b.String()
}
