package ir

import (
	"bytes"
	"sync"
)

// printerPool recycles print buffers across calls: modules are printed
// constantly on the fuzzing hot path (reports, reduction predicates,
// determinism checks), and reusing the grown buffer leaves one final
// string copy as the only allocation that scales with module size.
var printerPool = sync.Pool{
	New: func() any { return &printer{} },
}

func renderToString(render func(p *printer)) string {
	p := printerPool.Get().(*printer)
	// Returned via defer so a panicking kernel mid-render (contained
	// upstream by the campaign's stage isolation) cannot leak the
	// buffer out of the pool; Reset on the way in handles whatever
	// partial state the panic left behind.
	defer printerPool.Put(p)
	p.b.Reset()
	render(p)
	return p.b.String() // copies out of the pooled buffer
}

// Print renders a module in the generic textual format of the paper's
// Figure 1 grammar:
//
//	"builtin.module"() ({
//	  "func.func"() ({
//	  ^bb0:
//	    %0 = "arith.constant"() {value = -1 : i1} : () -> (i1)
//	    ...
//	  }) {sym_name = "main", function_type = () -> ()} : () -> ()
//	}) {} : () -> ()
//
// The output of Print parses back to an equal module via Parse.
func Print(m *Module) string {
	return renderToString(func(p *printer) { p.op(m.Op, 0) })
}

// PrintOp renders a single operation (and its regions) in generic form.
func PrintOp(op *Operation) string {
	return renderToString(func(p *printer) { p.op(op, 0) })
}

type printer struct {
	b bytes.Buffer
}

func (p *printer) indent(n int) {
	for i := 0; i < n; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) op(o *Operation, depth int) {
	p.indent(depth)
	if len(o.Results) > 0 {
		for i, r := range o.Results {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(r.String())
		}
		p.b.WriteString(" = ")
	}
	p.b.WriteByte('"')
	p.b.WriteString(o.Name)
	p.b.WriteString(`"(`)
	for i, a := range o.Operands {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(a.String())
	}
	p.b.WriteByte(')')

	if len(o.Successors) > 0 {
		p.b.WriteByte('[')
		for i, s := range o.Successors {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteByte('^')
			p.b.WriteString(s.Block)
			if len(s.Args) > 0 {
				p.b.WriteByte('(')
				for j, a := range s.Args {
					if j > 0 {
						p.b.WriteString(", ")
					}
					p.b.WriteString(a.String())
					p.b.WriteString(" : ")
					p.b.WriteString(a.Type.String())
				}
				p.b.WriteByte(')')
			}
		}
		p.b.WriteByte(']')
	}

	if len(o.Regions) > 0 {
		p.b.WriteString(" (")
		for i, r := range o.Regions {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.region(r, depth)
		}
		p.b.WriteByte(')')
	}

	if o.Attrs.Len() > 0 {
		p.b.WriteByte(' ')
		p.b.WriteString(o.Attrs.String())
	}

	p.b.WriteString(" : (")
	for i, a := range o.Operands {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(a.Type.String())
	}
	p.b.WriteString(") -> (")
	for i, r := range o.Results {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(r.Type.String())
	}
	p.b.WriteByte(')')
}

func (p *printer) region(r *Region, depth int) {
	p.b.WriteString("{\n")
	for _, blk := range r.Blocks {
		p.block(blk, depth+1)
	}
	p.indent(depth)
	p.b.WriteByte('}')
}

func (p *printer) block(b *Block, depth int) {
	// The entry block's label may be omitted in MLIR when it has no
	// arguments; we always print labels for parse simplicity.
	p.indent(depth)
	p.b.WriteByte('^')
	p.b.WriteString(b.Label)
	if len(b.Args) > 0 {
		p.b.WriteByte('(')
		for i, a := range b.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(a.String())
			p.b.WriteString(": ")
			p.b.WriteString(a.Type.String())
		}
		p.b.WriteByte(')')
	}
	p.b.WriteString(":\n")
	for _, op := range b.Ops {
		p.op(op, depth+1)
		p.b.WriteByte('\n')
	}
}
