package ir

import "testing"

// FuzzParse is a native Go fuzz target for the generic-format parser:
// it must never panic, and anything it accepts must print and re-parse
// to a fixpoint. Run with `go test -fuzz=FuzzParse ./internal/ir`; in
// normal test runs the seed corpus is exercised.
func FuzzParse(f *testing.F) {
	f.Add(figure2Program)
	f.Add(`"builtin.module"() ({
  "func.func"() ({
    %0 = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`)
	f.Add(`"op"() : () -> ()`)
	f.Add(``)
	f.Add(`%0 = "x"() : () -> (tensor<?x3xvector<2xi8>>)`)
	f.Add(`"x"() {m = affine_map<(d0) -> (d0)>, u} : () -> ()`)
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted input re-prints unparseably: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		if Print(m2) != text {
			t.Fatalf("print/parse not a fixpoint for %q", src)
		}
	})
}

// FuzzParseType likewise for the type grammar.
func FuzzParseType(f *testing.F) {
	for _, seed := range []string{
		"i1", "i64", "index", "tensor<3x?xi8>", "memref<2x2xindex>",
		"(i64, index) -> (tensor<1xi1>)", "vector<4xi32>", "none",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ty, err := ParseType(src)
		if err != nil {
			return
		}
		back, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("accepted type re-prints unparseably: %v (%q -> %q)", err, src, ty.String())
		}
		if !TypeEqual(ty, back) {
			t.Fatalf("type round trip changed %q", src)
		}
	})
}
