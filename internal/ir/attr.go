package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Attribute is the interface implemented by all compile-time attribute
// values attached to operations (the paper embeds attributes as arguments
// to effect constructors; here they are plain data).
type Attribute interface {
	// String returns the canonical textual form of the attribute as it
	// appears in the generic format, e.g. `-1 : i64`, `"main"`, `@callee`.
	String() string

	isAttribute()
}

// AttrEqual reports whether two attributes are structurally identical.
func AttrEqual(a, b Attribute) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// IntegerAttr is a typed integer constant, e.g. `-1 : i1` or `9 : index`.
// Value stores the two's-complement bit pattern sign-extended to 64 bits.
type IntegerAttr struct {
	Value int64
	Type  Type // IntegerType or IndexType
}

// IntAttr builds an IntegerAttr.
func IntAttr(v int64, t Type) IntegerAttr { return IntegerAttr{Value: v, Type: t} }

func (a IntegerAttr) String() string {
	return strconv.FormatInt(a.Value, 10) + " : " + a.Type.String()
}
func (IntegerAttr) isAttribute() {}

// StringAttr is a quoted string, e.g. `"main"`.
type StringAttr struct {
	Value string
}

// StrAttr builds a StringAttr.
func StrAttr(s string) StringAttr { return StringAttr{Value: s} }

func (a StringAttr) String() string { return strconv.Quote(a.Value) }
func (StringAttr) isAttribute()     {}

// SymbolRefAttr references a symbol (function) by name, e.g. `@main`.
type SymbolRefAttr struct {
	Name string
}

// SymbolAttr builds a SymbolRefAttr.
func SymbolAttr(name string) SymbolRefAttr { return SymbolRefAttr{Name: name} }

func (a SymbolRefAttr) String() string { return "@" + a.Name }
func (SymbolRefAttr) isAttribute()     {}

// TypeAttr wraps a type used as an attribute, e.g. a function's
// `function_type`.
type TypeAttr struct {
	Type Type
}

// TypeAttrOf builds a TypeAttr.
func TypeAttrOf(t Type) TypeAttr { return TypeAttr{Type: t} }

func (a TypeAttr) String() string { return a.Type.String() }
func (TypeAttr) isAttribute()     {}

// UnitAttr is a presence-only attribute (printed as `unit`).
type UnitAttr struct{}

func (UnitAttr) String() string { return "unit" }
func (UnitAttr) isAttribute()   {}

// ArrayAttr is an ordered list of attributes, e.g. `[0, 1]`.
type ArrayAttr struct {
	Elems []Attribute
}

// ArrayAttrOf builds an ArrayAttr.
func ArrayAttrOf(elems ...Attribute) ArrayAttr {
	return ArrayAttr{Elems: append([]Attribute(nil), elems...)}
}

func (a ArrayAttr) String() string {
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
func (ArrayAttr) isAttribute() {}

// DenseIntAttr is a dense integer tensor literal, e.g.
// `dense<[1, 2, 3]> : tensor<3xi64>`. Values are stored in row-major
// order as sign-extended 64-bit patterns. A splat (single value) is
// printed without brackets.
type DenseIntAttr struct {
	Values []int64
	Type   TensorType
	Splat  bool
}

// DenseAttr builds a DenseIntAttr from row-major values.
func DenseAttr(values []int64, t TensorType) DenseIntAttr {
	return DenseIntAttr{Values: append([]int64(nil), values...), Type: t}
}

// SplatAttr builds a splat DenseIntAttr in which every element is v.
func SplatAttr(v int64, t TensorType) DenseIntAttr {
	return DenseIntAttr{Values: []int64{v}, Type: t, Splat: true}
}

func (a DenseIntAttr) String() string {
	var b strings.Builder
	b.WriteString("dense<")
	if a.Splat {
		fmt.Fprintf(&b, "%d", a.Values[0])
	} else {
		b.WriteByte('[')
		for i, v := range a.Values {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(']')
	}
	b.WriteString("> : ")
	b.WriteString(a.Type.String())
	return b.String()
}
func (DenseIntAttr) isAttribute() {}

// AffineMapAttr is a simplified affine map supporting exactly the subset
// Ratte's linalg.generic generator uses: pure dimension permutations
// (and projections of them), e.g. `affine_map<(d0, d1) -> (d1, d0)>`.
// Results[i] is the input dimension index selected for output i.
type AffineMapAttr struct {
	NumDims int
	Results []int
}

// PermutationMap builds an AffineMapAttr selecting the given dims.
func PermutationMap(numDims int, results ...int) AffineMapAttr {
	return AffineMapAttr{NumDims: numDims, Results: append([]int(nil), results...)}
}

// IdentityMap builds the identity affine map on n dims.
func IdentityMap(n int) AffineMapAttr {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return AffineMapAttr{NumDims: n, Results: r}
}

// IsPermutation reports whether the map is a bijection on its dims.
func (a AffineMapAttr) IsPermutation() bool {
	if len(a.Results) != a.NumDims {
		return false
	}
	seen := make([]bool, a.NumDims)
	for _, r := range a.Results {
		if r < 0 || r >= a.NumDims || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

func (a AffineMapAttr) String() string {
	var b strings.Builder
	b.WriteString("affine_map<(")
	for i := 0; i < a.NumDims; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "d%d", i)
	}
	b.WriteString(") -> (")
	for i, r := range a.Results {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "d%d", r)
	}
	b.WriteString(")>")
	return b.String()
}
func (AffineMapAttr) isAttribute() {}

// Attrs is an ordered attribute dictionary. Order is preserved so that
// printing is deterministic and round-trips through the parser.
//
// The representation is a pair of parallel slices, not a map: real
// operations carry a handful of attributes at most, linear scans beat
// map hashing at that size, and — decisively for the compile hot path,
// where module cloning is the dominant allocator — Clone becomes two
// slice copies instead of a map allocation per operation.
type Attrs struct {
	keys []string
	vals []Attribute
}

// NewAttrs builds an attribute dictionary from alternating key/value
// pairs supplied via Set.
func NewAttrs() *Attrs {
	return &Attrs{}
}

func (a *Attrs) index(key string) int {
	for i, k := range a.keys {
		if k == key {
			return i
		}
	}
	return -1
}

// Set inserts or replaces the attribute named key.
func (a *Attrs) Set(key string, val Attribute) {
	if i := a.index(key); i >= 0 {
		a.vals[i] = val
		return
	}
	a.keys = append(a.keys, key)
	a.vals = append(a.vals, val)
}

// Get returns the attribute named key, or nil if absent.
func (a *Attrs) Get(key string) Attribute {
	if a == nil {
		return nil
	}
	if i := a.index(key); i >= 0 {
		return a.vals[i]
	}
	return nil
}

// Has reports whether the dictionary contains key.
func (a *Attrs) Has(key string) bool { return a.Get(key) != nil }

// Delete removes the attribute named key if present.
func (a *Attrs) Delete(key string) {
	if a == nil {
		return
	}
	for i, k := range a.keys {
		if k == key {
			a.keys = append(a.keys[:i], a.keys[i+1:]...)
			a.vals = append(a.vals[:i], a.vals[i+1:]...)
			break
		}
	}
}

// Len returns the number of attributes.
func (a *Attrs) Len() int {
	if a == nil {
		return 0
	}
	return len(a.keys)
}

// Each calls f for every attribute in insertion order. Unlike Keys it
// does not copy — the iteration the hot paths (printing, fingerprinting)
// use.
func (a *Attrs) Each(f func(key string, val Attribute)) {
	if a == nil {
		return
	}
	for i, k := range a.keys {
		f(k, a.vals[i])
	}
}

// Keys returns the attribute names in insertion order.
func (a *Attrs) Keys() []string {
	if a == nil {
		return nil
	}
	return append([]string(nil), a.keys...)
}

// Clone returns a deep copy of the dictionary (attribute values are
// immutable and shared): two exact-size slice copies, nothing more.
// Clone dominates the compile hot path — every branch of a shared
// prefix tree starts from a cloned module — which is the reason Attrs
// is slice-backed in the first place.
func (a *Attrs) Clone() *Attrs {
	if a == nil || len(a.keys) == 0 {
		return NewAttrs()
	}
	return &Attrs{
		keys: append(make([]string, 0, len(a.keys)), a.keys...),
		vals: append(make([]Attribute, 0, len(a.vals)), a.vals...),
	}
}

func (a *Attrs) String() string {
	if a.Len() == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range a.keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		if _, isUnit := a.vals[i].(UnitAttr); isUnit {
			continue
		}
		b.WriteString(" = ")
		b.WriteString(a.vals[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// IntValueOf extracts the integer payload of an IntegerAttr stored under
// key; ok is false when the key is absent or holds a different kind.
func (a *Attrs) IntValueOf(key string) (int64, bool) {
	ia, ok := a.Get(key).(IntegerAttr)
	if !ok {
		return 0, false
	}
	return ia.Value, true
}

// StringValueOf extracts the payload of a StringAttr stored under key.
func (a *Attrs) StringValueOf(key string) (string, bool) {
	sa, ok := a.Get(key).(StringAttr)
	if !ok {
		return "", false
	}
	return sa.Value, true
}
