package ir

import (
	"fmt"
	"strconv"
)

// Builder incrementally constructs IR with automatically numbered SSA
// value IDs. It is the low-level construction convenience used by tests,
// passes and the fuzzer's fragment emitters.
type Builder struct {
	next  int
	block *Block
}

// NewBuilder returns a builder inserting at the end of block, allocating
// IDs starting from firstID.
func NewBuilder(block *Block, firstID int) *Builder {
	return &Builder{next: firstID, block: block}
}

// SetInsertionBlock redirects subsequent insertions to block.
func (b *Builder) SetInsertionBlock(block *Block) { b.block = block }

// NextID returns the next fresh SSA id without consuming it.
func (b *Builder) NextID() int { return b.next }

// FreshValue allocates a fresh SSA value of the given type.
func (b *Builder) FreshValue(t Type) Value {
	v := V(strconv.Itoa(b.next), t)
	b.next++
	return v
}

// Insert appends an already-built operation to the insertion block.
func (b *Builder) Insert(op *Operation) *Operation {
	b.block.Append(op)
	return op
}

// Op builds and inserts an operation with fresh results of the given
// types, returning the operation. Use op.Results to obtain the values.
func (b *Builder) Op(name string, operands []Value, resultTypes ...Type) *Operation {
	op := NewOp(name)
	op.Operands = append(op.Operands, operands...)
	for _, t := range resultTypes {
		op.Results = append(op.Results, b.FreshValue(t))
	}
	b.block.Append(op)
	return op
}

// Op1 is Op for the common single-result case, returning the result value.
func (b *Builder) Op1(name string, operands []Value, resultType Type) Value {
	return b.Op(name, operands, resultType).Results[0]
}

// BuildFunc constructs a func.func operation with the given symbol name,
// argument types and result types, and returns the function op together
// with a builder positioned in its entry block. Entry-block arguments are
// named arg0, arg1, ….
func BuildFunc(name string, ins, outs []Type) (*Operation, *Builder) {
	f := NewOp("func.func")
	args := make([]Value, len(ins))
	for i, t := range ins {
		args[i] = V(fmt.Sprintf("arg%d", i), t)
	}
	f.Regions = []*Region{NewRegion(args...)}
	f.Attrs.Set("sym_name", StrAttr(name))
	f.Attrs.Set("function_type", TypeAttrOf(FuncOf(ins, outs)))
	return f, NewBuilder(f.Regions[0].Entry(), 0)
}

// FuncArgs returns the entry-block arguments of a func-like op.
func FuncArgs(f *Operation) []Value {
	if len(f.Regions) == 0 || f.Regions[0].Entry() == nil {
		return nil
	}
	return f.Regions[0].Entry().Args
}
