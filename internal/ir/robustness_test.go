package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: the parser must return errors, never panic, on
// arbitrary byte soup and on randomly corrupted valid programs.
func TestParseNeverPanics(t *testing.T) {
	f := func(junk string) bool {
		_, _ = Parse(junk) // must not panic
		_, _ = ParseType(junk)
		_, _ = lex(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseCorruptedProgramNeverPanics(t *testing.T) {
	base := figure2Program
	f := func(pos uint16, b byte) bool {
		i := int(pos) % len(base)
		mutated := base[:i] + string(b) + base[i+1:]
		_, _ = Parse(mutated) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseTruncationsNeverPanic(t *testing.T) {
	base := figure2Program
	for i := 0; i < len(base); i += 7 {
		_, _ = Parse(base[:i])
	}
}

// TestPrintParseFixpointOnNastyAttrs: attributes with every payload
// kind round-trip.
func TestPrintParseFixpointOnNastyAttrs(t *testing.T) {
	op := NewOp("test.op")
	op.Attrs.Set("s", StrAttr(`quotes " and \ backslash and
newline? no — escaped \n`))
	m := NewModule()
	m.Body().Append(op)
	text := Print(m)
	if strings.Contains(text, "\n\"") && false {
		t.Log(text)
	}
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if Print(m2) != text {
		t.Errorf("fixpoint violated")
	}
}

func TestAttrsOperations(t *testing.T) {
	a := NewAttrs()
	a.Set("k1", IntAttr(1, I64))
	a.Set("k2", StrAttr("x"))
	a.Set("k1", IntAttr(2, I64)) // overwrite keeps position
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
	if got := a.Keys(); got[0] != "k1" || got[1] != "k2" {
		t.Errorf("Keys = %v", got)
	}
	if v, _ := a.IntValueOf("k1"); v != 2 {
		t.Errorf("k1 = %d", v)
	}
	a.Delete("k1")
	if a.Has("k1") || a.Len() != 1 {
		t.Error("Delete failed")
	}
	a.Delete("missing") // no-op
	c := a.Clone()
	c.Set("k3", UnitAttr{})
	if a.Has("k3") {
		t.Error("clone not independent")
	}
	if _, ok := a.IntValueOf("k2"); ok {
		t.Error("IntValueOf on string attr should fail")
	}
	if _, ok := a.StringValueOf("nope"); ok {
		t.Error("StringValueOf on missing key should fail")
	}
}

func TestValueAndSuccessorString(t *testing.T) {
	if V("x", I64).String() != "%x" {
		t.Error("value string")
	}
	op := NewOp("cf.br")
	op.Successors = []Successor{{Block: "next", Args: []Value{V("a", I1)}}}
	text := PrintOp(op)
	if !strings.Contains(text, "^next(%a : i1)") {
		t.Errorf("successor print: %s", text)
	}
}
