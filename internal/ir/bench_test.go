package ir

import "testing"

// Component micro-benchmarks: parser and printer throughput on the
// Figure 2 module (the hot path of every campaign's textual round
// trips).
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(figure2Program)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(figure2Program); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrint(b *testing.B) {
	m, err := Parse(figure2Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Print(m)
	}
}

func BenchmarkClone(b *testing.B) {
	m, err := Parse(figure2Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func BenchmarkWalk(b *testing.B) {
	m, err := Parse(figure2Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.Walk(func(*Operation) bool { n++; return true })
	}
}
