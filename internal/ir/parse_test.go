package ir

import (
	"strings"
	"testing"
)

const figure2Program = `
"builtin.module"() ({
  "func.func"() ({
  ^bb0:
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0:
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()
`

func TestParseFigure2(t *testing.T) {
	m, err := Parse(figure2Program)
	if err != nil {
		t.Fatal(err)
	}
	funcs := m.Funcs()
	if len(funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(funcs))
	}
	if FuncSymbol(funcs[0]) != "main" || FuncSymbol(funcs[1]) != "one" {
		t.Errorf("unexpected symbols %q %q", FuncSymbol(funcs[0]), FuncSymbol(funcs[1]))
	}
	main := m.Func("main")
	if main == nil {
		t.Fatal("Func(main) not found")
	}
	body := main.Regions[0].Entry()
	if len(body.Ops) != 6 {
		t.Fatalf("main has %d ops, want 6", len(body.Ops))
	}
	mul := body.Ops[2]
	if mul.Name != "arith.mulsi_extended" {
		t.Fatalf("op 2 is %s", mul.Name)
	}
	if len(mul.Results) != 2 || mul.Results[0].ID != "low" || mul.Results[1].ID != "high" {
		t.Errorf("mulsi_extended results wrong: %v", mul.Results)
	}
	if !TypeEqual(mul.Results[0].Type, I1) {
		t.Errorf("result type %v, want i1", mul.Results[0].Type)
	}
	ft, err := FuncType(m.Func("one"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Results) != 1 || !TypeEqual(ft.Results[0], I1) {
		t.Errorf("one: function type %v", ft)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m, err := Parse(figure2Program)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Print(m)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text1)
	}
	text2 := Print(m2)
	if text1 != text2 {
		t.Errorf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseAttributes(t *testing.T) {
	src := `"builtin.module"() ({
  "test.op"() {
    i = 42 : i32,
    neg = -7 : index,
    s = "hello\nworld",
    sym = @callee,
    arr = [1 : i64, 2 : i64],
    d = dense<[1, -2, 3]> : tensor<3xi64>,
    splat = dense<0> : tensor<2x2xi32>,
    map = affine_map<(d0, d1) -> (d1, d0)>,
    flag
  } : () -> ()
}) : () -> ()`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	op := m.Body().Ops[0]
	if v, ok := op.Attrs.IntValueOf("i"); !ok || v != 42 {
		t.Errorf("i = %d, %v", v, ok)
	}
	if v, ok := op.Attrs.IntValueOf("neg"); !ok || v != -7 {
		t.Errorf("neg = %d, %v", v, ok)
	}
	na := op.Attrs.Get("neg").(IntegerAttr)
	if !TypeEqual(na.Type, Index) {
		t.Errorf("neg type %v", na.Type)
	}
	if s, ok := op.Attrs.StringValueOf("s"); !ok || s != "hello\nworld" {
		t.Errorf("s = %q", s)
	}
	if sym, ok := op.Attrs.Get("sym").(SymbolRefAttr); !ok || sym.Name != "callee" {
		t.Errorf("sym = %v", op.Attrs.Get("sym"))
	}
	arr, ok := op.Attrs.Get("arr").(ArrayAttr)
	if !ok || len(arr.Elems) != 2 {
		t.Fatalf("arr = %v", op.Attrs.Get("arr"))
	}
	d, ok := op.Attrs.Get("d").(DenseIntAttr)
	if !ok || len(d.Values) != 3 || d.Values[1] != -2 || d.Splat {
		t.Fatalf("d = %v", op.Attrs.Get("d"))
	}
	sp, ok := op.Attrs.Get("splat").(DenseIntAttr)
	if !ok || !sp.Splat || sp.Values[0] != 0 {
		t.Fatalf("splat = %v", op.Attrs.Get("splat"))
	}
	am, ok := op.Attrs.Get("map").(AffineMapAttr)
	if !ok || am.NumDims != 2 || am.Results[0] != 1 || am.Results[1] != 0 {
		t.Fatalf("map = %v", op.Attrs.Get("map"))
	}
	if !am.IsPermutation() {
		t.Error("map should be a permutation")
	}
	if _, ok := op.Attrs.Get("flag").(UnitAttr); !ok {
		t.Errorf("flag = %v", op.Attrs.Get("flag"))
	}

	// Round trip the whole thing.
	m2, err := Parse(Print(m))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, Print(m))
	}
	if Print(m) != Print(m2) {
		t.Errorf("attr round trip mismatch:\n%s\nvs\n%s", Print(m), Print(m2))
	}
}

func TestParseSuccessorsAndBlocks(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%arg0: i1):
    "cf.cond_br"(%arg0)[^bb1(%arg0 : i1), ^bb2] : (i1) -> ()
  ^bb1(%x: i1):
    "func.return"(%x) : (i1) -> ()
  ^bb2:
    %f = "arith.constant"() {value = 0 : i1} : () -> (i1)
    "func.return"(%f) : (i1) -> ()
  }) {sym_name = "f", function_type = (i1) -> (i1)} : () -> ()
}) : () -> ()`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	r := f.Regions[0]
	if len(r.Blocks) != 3 {
		t.Fatalf("got %d blocks", len(r.Blocks))
	}
	br := r.Blocks[0].Terminator()
	if len(br.Successors) != 2 {
		t.Fatalf("got %d successors", len(br.Successors))
	}
	if br.Successors[0].Block != "bb1" || len(br.Successors[0].Args) != 1 {
		t.Errorf("successor 0 = %+v", br.Successors[0])
	}
	if br.Successors[1].Block != "bb2" || len(br.Successors[1].Args) != 0 {
		t.Errorf("successor 1 = %+v", br.Successors[1])
	}
	if r.Block("bb1").Args[0].ID != "x" {
		t.Errorf("bb1 args = %v", r.Block("bb1").Args)
	}
	// Round trip.
	m2, err := Parse(Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if Print(m) != Print(m2) {
		t.Error("successor round trip mismatch")
	}
}

func TestParseImplicitEntryBlock(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("main") == nil {
		t.Fatal("missing main")
	}
	if got := m.Func("main").Regions[0].Entry().Label; got != "bb0" {
		t.Errorf("entry label %q", got)
	}
}

func TestParseBareTopLevelFuncWrapped(t *testing.T) {
	src := `"func.func"() ({
  ^bb0:
    "func.return"() : () -> ()
}) {sym_name = "main", function_type = () -> ()} : () -> ()`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("main") == nil {
		t.Error("bare func should be wrapped into a module")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`"op"`,
		`"op"() : () -> (`,
		`%a = "op"() : () -> ()`,                 // result count mismatch
		`"op"(%a) : () -> ()`,                    // operand count mismatch
		`"op"() : () -> () trailing`,             // trailing tokens
		`"op"() {k = } : () -> ()`,               // missing attr value
		`"op"() {k = dense<1> : i64} : () -> ()`, // dense needs tensor type
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `// leading comment
"builtin.module"() ({
  // a comment inside
  "func.func"() ({
    "func.return"() : () -> () // trailing comment
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestModuleCloneIsDeep(t *testing.T) {
	m, err := Parse(figure2Program)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Func("main").Regions[0].Entry().Ops[0].Attrs.Set("value", IntAttr(5, I1))
	orig := m.Func("main").Regions[0].Entry().Ops[0]
	if v, _ := orig.Attrs.IntValueOf("value"); v != -1 {
		t.Error("clone mutation leaked into original")
	}
	c.Body().Ops = c.Body().Ops[:1]
	if len(m.Body().Ops) != 2 {
		t.Error("clone block mutation leaked into original")
	}
}

func TestWalkOrder(t *testing.T) {
	m, err := Parse(figure2Program)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	m.Walk(func(op *Operation) bool {
		names = append(names, op.Name)
		return true
	})
	want := strings.Join([]string{
		"builtin.module",
		"func.func",
		"arith.constant", "func.call", "arith.mulsi_extended",
		"vector.print", "vector.print", "func.return",
		"func.func",
		"arith.constant", "func.return",
	}, ",")
	if got := strings.Join(names, ","); got != want {
		t.Errorf("walk order:\n got %s\nwant %s", got, want)
	}
	if m.NumOps() != 10 {
		t.Errorf("NumOps = %d, want 10", m.NumOps())
	}
}

func TestBuilder(t *testing.T) {
	f, b := BuildFunc("add", []Type{I64, I64}, []Type{I64})
	args := FuncArgs(f)
	sum := b.Op1("arith.addi", []Value{args[0], args[1]}, I64)
	ret := NewOp("func.return")
	ret.Operands = []Value{sum}
	b.Insert(ret)

	m := NewModule()
	m.Body().Append(f)
	if _, err := Parse(Print(m)); err != nil {
		t.Fatalf("built module does not parse: %v\n%s", err, Print(m))
	}
	if sum.ID != "0" {
		t.Errorf("first fresh id = %q, want 0", sum.ID)
	}
	if b.NextID() != 1 {
		t.Errorf("NextID = %d", b.NextID())
	}
}
