// Structural fingerprinting. Fingerprint hashes everything Print would
// render — op names, SSA ids, types, attributes (constant payloads
// included), successors and nested regions — without building the text:
// the walk allocates nothing for the in-tree type and attribute
// inventory. Two modules with equal printed forms always have equal
// fingerprints; the converse holds only up to hash collision, so the
// fingerprint is an identity *filter*, not an identity — callers that
// need exactness (the interpreter's program cache) use it to decide
// whether paying for the printed form can possibly be worth it.
package ir

// Fingerprint returns a 64-bit structural hash of the module.
func Fingerprint(m *Module) uint64 {
	h := fnvOffset64
	for _, op := range m.Body().Ops {
		h = hashOp(h, op)
	}
	return h
}

// FNV-1a, inlined so the walk stays allocation-free.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	// Length separator: distinguishes "ab","c" from "a","bc".
	return hashUint64(h, uint64(len(s)))
}

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func hashInt64s(h uint64, vs []int64) uint64 {
	h = hashUint64(h, uint64(len(vs)))
	for _, v := range vs {
		h = hashUint64(h, uint64(v))
	}
	return h
}

func hashOp(h uint64, op *Operation) uint64 {
	h = hashString(h, op.Name)
	h = hashUint64(h, uint64(len(op.Operands)))
	for _, v := range op.Operands {
		h = hashValue(h, v)
	}
	h = hashUint64(h, uint64(len(op.Results)))
	for _, v := range op.Results {
		h = hashValue(h, v)
	}
	if op.Attrs != nil {
		h = hashUint64(h, uint64(op.Attrs.Len()))
		// Direct field iteration: an Each-style closure would make h
		// escape and cost one allocation per op.
		for i, k := range op.Attrs.keys {
			h = hashString(h, k)
			h = hashAttr(h, op.Attrs.vals[i])
		}
	}
	h = hashUint64(h, uint64(len(op.Successors)))
	for i := range op.Successors {
		s := &op.Successors[i]
		h = hashString(h, s.Block)
		h = hashUint64(h, uint64(len(s.Args)))
		for _, v := range s.Args {
			h = hashValue(h, v)
		}
	}
	h = hashUint64(h, uint64(len(op.Regions)))
	for _, r := range op.Regions {
		h = hashRegion(h, r)
	}
	return h
}

func hashRegion(h uint64, r *Region) uint64 {
	h = hashUint64(h, uint64(len(r.Blocks)))
	for _, b := range r.Blocks {
		h = hashString(h, b.Label)
		h = hashUint64(h, uint64(len(b.Args)))
		for _, v := range b.Args {
			h = hashValue(h, v)
		}
		h = hashUint64(h, uint64(len(b.Ops)))
		for _, op := range b.Ops {
			h = hashOp(h, op)
		}
	}
	return h
}

func hashValue(h uint64, v Value) uint64 {
	h = hashString(h, v.ID)
	return hashType(h, v.Type)
}

func hashType(h uint64, t Type) uint64 {
	switch tt := t.(type) {
	case nil:
		return hashByte(h, 0)
	case IntegerType:
		return hashUint64(hashByte(h, 1), uint64(tt.Width))
	case IndexType:
		return hashByte(h, 2)
	case TensorType:
		return hashType(hashInt64s(hashByte(h, 3), tt.Shape), tt.Elem)
	case MemRefType:
		return hashType(hashInt64s(hashByte(h, 4), tt.Shape), tt.Elem)
	case VectorType:
		return hashType(hashInt64s(hashByte(h, 5), tt.Shape), tt.Elem)
	case FunctionType:
		h = hashByte(h, 6)
		h = hashUint64(h, uint64(len(tt.Inputs)))
		for _, in := range tt.Inputs {
			h = hashType(h, in)
		}
		h = hashUint64(h, uint64(len(tt.Results)))
		for _, out := range tt.Results {
			h = hashType(h, out)
		}
		return h
	case NoneType:
		return hashByte(h, 7)
	default:
		// Out-of-tree type: fall back to its canonical text.
		return hashString(hashByte(h, 255), t.String())
	}
}

func hashAttr(h uint64, a Attribute) uint64 {
	switch at := a.(type) {
	case nil:
		return hashByte(h, 0)
	case IntegerAttr:
		return hashType(hashUint64(hashByte(h, 1), uint64(at.Value)), at.Type)
	case StringAttr:
		return hashString(hashByte(h, 2), at.Value)
	case SymbolRefAttr:
		return hashString(hashByte(h, 3), at.Name)
	case TypeAttr:
		return hashType(hashByte(h, 4), at.Type)
	case UnitAttr:
		return hashByte(h, 5)
	case ArrayAttr:
		h = hashByte(h, 6)
		h = hashUint64(h, uint64(len(at.Elems)))
		for _, e := range at.Elems {
			h = hashAttr(h, e)
		}
		return h
	case DenseIntAttr:
		h = hashByte(h, 7)
		if at.Splat {
			h = hashByte(h, 1)
		}
		h = hashInt64s(h, at.Values)
		return hashType(h, at.Type)
	case AffineMapAttr:
		h = hashByte(h, 8)
		h = hashUint64(h, uint64(at.NumDims))
		h = hashUint64(h, uint64(len(at.Results)))
		for _, r := range at.Results {
			h = hashUint64(h, uint64(r))
		}
		return h
	default:
		// Out-of-tree attribute: fall back to its canonical text.
		return hashString(hashByte(h, 255), a.String())
	}
}
