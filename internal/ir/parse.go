package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a module in the generic textual format (the format emitted
// by Print, and by `mlir-opt -mlir-print-op-generic`). The result is a
// structurally complete module; static validity is checked separately by
// the verifier.
func Parse(src string) (m *Module, err error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			m, err = nil, pe.err
		}
	}()
	op := p.operation()
	p.expect(tokEOF)
	if op.Name != "builtin.module" {
		// Wrap a bare top-level op (e.g. a single func) in a module for
		// convenience, mirroring mlir-opt's implicit module behaviour.
		wrapped := NewModule()
		wrapped.Body().Append(op)
		return wrapped, nil
	}
	if len(op.Regions) != 1 {
		return nil, fmt.Errorf("ir: builtin.module must have exactly one region")
	}
	return &Module{Op: op}, nil
}

// ParseType parses a single type from its textual form.
func ParseType(src string) (t Type, err error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{src: src, toks: toks}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			t, err = nil, pe.err
		}
	}()
	ty := p.parseType()
	p.expect(tokEOF)
	return ty, nil
}

type parseError struct{ err error }

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) fail(format string, args ...any) {
	tok := p.peek()
	panic(parseError{fmt.Errorf("ir: line %d (near %q): %s",
		tok.line, tok.text, fmt.Sprintf(format, args...))})
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind) token {
	if !p.at(k) {
		p.fail("expected token kind %d", k)
	}
	return p.advance()
}

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

// operation := (results `=`)? string-literal `(` operands `)`
//
//	successors? regions? attr-dict? `:` function-type
func (p *parser) operation() *Operation {
	var resultIDs []string
	if p.at(tokValueID) {
		// Could be results of this op; results are followed by '='.
		save := p.i
		for p.at(tokValueID) {
			resultIDs = append(resultIDs, p.advance().text)
			if !p.accept(tokComma) {
				break
			}
		}
		if !p.accept(tokEquals) {
			p.i = save
			p.fail("expected '=' after result list")
		}
	}

	name := p.expect(tokString).text
	op := NewOp(name)

	p.expect(tokLParen)
	var operandIDs []string
	for !p.at(tokRParen) {
		operandIDs = append(operandIDs, p.expect(tokValueID).text)
		if !p.accept(tokComma) {
			break
		}
	}
	p.expect(tokRParen)

	if p.accept(tokLBracket) {
		for !p.at(tokRBracket) {
			op.Successors = append(op.Successors, p.successor())
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRBracket)
	}

	if p.at(tokLParen) && p.lookaheadRegion() {
		p.expect(tokLParen)
		for !p.at(tokRParen) {
			op.Regions = append(op.Regions, p.region())
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRParen)
	}

	if p.at(tokLBrace) {
		op.Attrs = p.attrDict()
	}

	p.expect(tokColon)
	ft := p.parseFunctionType()
	if len(ft.Inputs) != len(operandIDs) {
		p.fail("operation %s: %d operands but %d operand types", name, len(operandIDs), len(ft.Inputs))
	}
	if len(ft.Results) != len(resultIDs) {
		p.fail("operation %s: %d results but %d result types", name, len(resultIDs), len(ft.Results))
	}
	for i, id := range operandIDs {
		op.Operands = append(op.Operands, V(id, ft.Inputs[i]))
	}
	for i, id := range resultIDs {
		op.Results = append(op.Results, V(id, ft.Results[i]))
	}
	return op
}

// lookaheadRegion distinguishes the `(`-introduced region list from the
// trailing `: (…) -> (…)` function type: a region list starts with `({`.
func (p *parser) lookaheadRegion() bool {
	return p.toks[p.i].kind == tokLParen && p.toks[p.i+1].kind == tokLBrace
}

// successor := ^id (`(` %id `:` type, … `)`)?
func (p *parser) successor() Successor {
	s := Successor{Block: p.expect(tokBlockID).text}
	if p.accept(tokLParen) {
		for !p.at(tokRParen) {
			id := p.expect(tokValueID).text
			p.expect(tokColon)
			t := p.parseType()
			s.Args = append(s.Args, V(id, t))
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRParen)
	}
	return s
}

// region := `{` block+ `}`; a block label may be omitted for an argumentless
// entry block, in which case the operations belong to an implicit ^bb0.
func (p *parser) region() *Region {
	p.expect(tokLBrace)
	r := &Region{}
	if !p.at(tokBlockID) && !p.at(tokRBrace) {
		// Implicit entry block without label.
		b := &Block{Label: "bb0"}
		for !p.at(tokRBrace) && !p.at(tokBlockID) {
			b.Append(p.operation())
		}
		r.Blocks = append(r.Blocks, b)
	}
	for p.at(tokBlockID) {
		r.Blocks = append(r.Blocks, p.blockBody())
	}
	p.expect(tokRBrace)
	return r
}

// blockBody := ^label block-args? `:` operation*
func (p *parser) blockBody() *Block {
	b := &Block{Label: p.expect(tokBlockID).text}
	if p.accept(tokLParen) {
		for !p.at(tokRParen) {
			id := p.expect(tokValueID).text
			p.expect(tokColon)
			t := p.parseType()
			b.Args = append(b.Args, V(id, t))
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRParen)
	}
	p.expect(tokColon)
	for !p.at(tokRBrace) && !p.at(tokBlockID) {
		b.Append(p.operation())
	}
	return b
}

// attrDict := `{` (id (`=` attr-value)?)* `}`
func (p *parser) attrDict() *Attrs {
	p.expect(tokLBrace)
	attrs := NewAttrs()
	for !p.at(tokRBrace) {
		key := p.expect(tokIdent).text
		if p.accept(tokEquals) {
			attrs.Set(key, p.attrValue())
		} else {
			attrs.Set(key, UnitAttr{})
		}
		if !p.accept(tokComma) {
			break
		}
	}
	p.expect(tokRBrace)
	return attrs
}

func (p *parser) attrValue() Attribute {
	switch tok := p.peek(); tok.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			p.fail("integer literal out of range: %s", tok.text)
		}
		var t Type = I64
		if p.accept(tokColon) {
			t = p.parseType()
		}
		return IntegerAttr{Value: v, Type: t}
	case tokString:
		p.advance()
		return StringAttr{Value: tok.text}
	case tokSymbol:
		p.advance()
		return SymbolRefAttr{Name: tok.text}
	case tokLBracket:
		p.advance()
		var arr ArrayAttr
		for !p.at(tokRBracket) {
			arr.Elems = append(arr.Elems, p.attrValue())
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRBracket)
		return arr
	case tokIdent:
		switch tok.text {
		case "unit":
			p.advance()
			return UnitAttr{}
		case "dense":
			return p.denseAttr()
		case "affine_map":
			return p.affineMapAttr()
		default:
			// A bare type used as an attribute value, e.g.
			// `function_type = (i64) -> (i64)`.
			return TypeAttr{Type: p.parseType()}
		}
	case tokLParen:
		return TypeAttr{Type: p.parseType()}
	}
	p.fail("expected attribute value")
	return nil
}

// denseAttr := `dense` `<` (int | `[` int, … `]`) `>` `:` tensor-type
func (p *parser) denseAttr() Attribute {
	p.expect(tokIdent) // dense
	p.expect(tokLess)
	var a DenseIntAttr
	if p.accept(tokLBracket) {
		for !p.at(tokRBracket) {
			a.Values = append(a.Values, p.intLit())
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRBracket)
	} else {
		a.Splat = true
		a.Values = []int64{p.intLit()}
	}
	p.expect(tokGreater)
	p.expect(tokColon)
	t := p.parseType()
	tt, ok := t.(TensorType)
	if !ok {
		p.fail("dense attribute requires a tensor type, got %s", t)
	}
	a.Type = tt
	return a
}

// affineMapAttr := `affine_map` `<` `(` d0, … `)` `->` `(` d…, … `)` `>`
func (p *parser) affineMapAttr() Attribute {
	p.expect(tokIdent) // affine_map
	p.expect(tokLess)
	p.expect(tokLParen)
	dims := map[string]int{}
	n := 0
	for !p.at(tokRParen) {
		name := p.expect(tokIdent).text
		dims[name] = n
		n++
		if !p.accept(tokComma) {
			break
		}
	}
	p.expect(tokRParen)
	p.expect(tokArrow)
	p.expect(tokLParen)
	var results []int
	for !p.at(tokRParen) {
		name := p.expect(tokIdent).text
		d, ok := dims[name]
		if !ok {
			p.fail("affine_map result %s is not a declared dim", name)
		}
		results = append(results, d)
		if !p.accept(tokComma) {
			break
		}
	}
	p.expect(tokRParen)
	p.expect(tokGreater)
	return AffineMapAttr{NumDims: n, Results: results}
}

func (p *parser) intLit() int64 {
	tok := p.expect(tokInt)
	v, err := strconv.ParseInt(tok.text, 10, 64)
	if err != nil {
		p.fail("integer literal out of range: %s", tok.text)
	}
	return v
}

// parseType parses a type, including shaped and function types.
func (p *parser) parseType() Type {
	switch tok := p.peek(); tok.kind {
	case tokIdent:
		switch {
		case tok.text == "index":
			p.advance()
			return Index
		case tok.text == "none":
			p.advance()
			return NoneType{}
		case tok.text == "tensor":
			p.advance()
			shape, elem := p.shapedBody()
			return TensorType{Shape: shape, Elem: elem}
		case tok.text == "memref":
			p.advance()
			shape, elem := p.shapedBody()
			return MemRefType{Shape: shape, Elem: elem}
		case tok.text == "vector":
			p.advance()
			shape, elem := p.shapedBody()
			return VectorType{Shape: shape, Elem: elem}
		case len(tok.text) > 1 && tok.text[0] == 'i' && allDigits(tok.text[1:]):
			p.advance()
			w, err := strconv.ParseUint(tok.text[1:], 10, 32)
			if err != nil || w == 0 || w > 64 {
				p.fail("unsupported integer width in %s", tok.text)
			}
			return IntType(uint(w))
		}
		p.fail("unknown type %q", tok.text)
	case tokLParen:
		return p.parseFunctionTypeAsType()
	}
	p.fail("expected type")
	return nil
}

// shapedBody parses `<` dims `x` elem-type `>` using raw source scanning
// for the dimension list, since `3x3xi64` does not tokenise cleanly.
func (p *parser) shapedBody() (shape []int64, elem Type) {
	lt := p.expect(tokLess)
	// Scan the raw source from just after '<' to the matching '>'.
	start := lt.pos + 1
	depth := 1
	j := start
	for j < len(p.src) && depth > 0 {
		switch p.src[j] {
		case '<':
			depth++
		case '>':
			if j > 0 && p.src[j-1] == '-' {
				// part of '->'
			} else {
				depth--
			}
		}
		j++
	}
	if depth != 0 {
		p.fail("unterminated shaped type")
	}
	body := p.src[start : j-1]
	// Resynchronise the token stream to the first token at or past j.
	for p.toks[p.i].kind != tokEOF && p.toks[p.i].pos < j {
		p.i++
	}

	rest := body
	for {
		k := 0
		for k < len(rest) && (isDigit(rest[k]) || rest[k] == '?') {
			k++
		}
		if k == 0 || k >= len(rest) || rest[k] != 'x' {
			break
		}
		dim := rest[:k]
		if dim == "?" {
			shape = append(shape, DynamicSize)
		} else {
			d, err := strconv.ParseInt(dim, 10, 64)
			if err != nil {
				p.fail("bad dimension %q", dim)
			}
			shape = append(shape, d)
		}
		rest = rest[k+1:]
	}
	et, err := ParseType(strings.TrimSpace(rest))
	if err != nil {
		p.fail("bad element type %q: %v", rest, err)
	}
	return shape, et
}

// parseFunctionType parses `(` types `)` `->` (type | `(` types `)`).
func (p *parser) parseFunctionType() FunctionType {
	p.expect(tokLParen)
	var ins []Type
	for !p.at(tokRParen) {
		ins = append(ins, p.parseType())
		if !p.accept(tokComma) {
			break
		}
	}
	p.expect(tokRParen)
	p.expect(tokArrow)
	var outs []Type
	if p.accept(tokLParen) {
		for !p.at(tokRParen) {
			outs = append(outs, p.parseType())
			if !p.accept(tokComma) {
				break
			}
		}
		p.expect(tokRParen)
	} else {
		outs = append(outs, p.parseType())
	}
	return FunctionType{Inputs: ins, Results: outs}
}

func (p *parser) parseFunctionTypeAsType() Type {
	ft := p.parseFunctionType()
	return ft
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return len(s) > 0
}
