package ir

import (
	"fmt"
	"strings"
)

// Value is an SSA value reference: an identifier paired with its type.
// This mirrors the paper's Table 1, which embeds MLIR Values as
// (ID, type) pairs; operands and results are both Values.
type Value struct {
	ID   string
	Type Type
}

// V builds a Value.
func V(id string, t Type) Value { return Value{ID: id, Type: t} }

func (v Value) String() string { return "%" + v.ID }

// Successor is a branch target: a block label plus the values forwarded
// as the target block's arguments.
type Successor struct {
	Block string
	Args  []Value
}

// Operation is a single IR operation: a name, operands, results,
// attributes, attached regions and (for terminators of the cf dialect)
// successors. Programming constructs are modelled as Operation instances
// (paper §2).
type Operation struct {
	Name       string
	Operands   []Value
	Results    []Value
	Attrs      *Attrs
	Regions    []*Region
	Successors []Successor
}

// NewOp builds an operation with the given name and empty attribute
// dictionary.
func NewOp(name string) *Operation {
	return &Operation{Name: name, Attrs: NewAttrs()}
}

// Dialect returns the dialect prefix of the operation name
// ("arith.addi" -> "arith"); ops without a dot return the whole name.
func (o *Operation) Dialect() string {
	if i := strings.IndexByte(o.Name, '.'); i >= 0 {
		return o.Name[:i]
	}
	return o.Name
}

// ResultTypes returns the types of the operation's results.
func (o *Operation) ResultTypes() []Type {
	ts := make([]Type, len(o.Results))
	for i, r := range o.Results {
		ts[i] = r.Type
	}
	return ts
}

// OperandTypes returns the types of the operation's operands.
func (o *Operation) OperandTypes() []Type {
	ts := make([]Type, len(o.Operands))
	for i, r := range o.Operands {
		ts[i] = r.Type
	}
	return ts
}

// Clone returns a deep copy of the operation. Child slices are
// allocated at exact capacity up front: Clone is the compile hot
// path's dominant allocator, and append-from-nil growth would roughly
// double its allocation count.
func (o *Operation) Clone() *Operation {
	c := &Operation{
		Name:     o.Name,
		Operands: append([]Value(nil), o.Operands...),
		Results:  append([]Value(nil), o.Results...),
		Attrs:    o.Attrs.Clone(),
	}
	if len(o.Regions) > 0 {
		c.Regions = make([]*Region, len(o.Regions))
		for i, r := range o.Regions {
			c.Regions[i] = r.Clone()
		}
	}
	if len(o.Successors) > 0 {
		c.Successors = make([]Successor, len(o.Successors))
		for i, s := range o.Successors {
			c.Successors[i] = Successor{
				Block: s.Block,
				Args:  append([]Value(nil), s.Args...),
			}
		}
	}
	return c
}

// Walk visits o and every operation nested in its regions in depth-first
// pre-order (the traversal order underlying the paper's Definition 3.1 of
// prefixes). Returning false from fn stops the walk.
func (o *Operation) Walk(fn func(*Operation) bool) bool {
	if !fn(o) {
		return false
	}
	for _, r := range o.Regions {
		for _, b := range r.Blocks {
			for _, op := range b.Ops {
				if !op.Walk(fn) {
					return false
				}
			}
		}
	}
	return true
}

// Region is a piece of IR attached to an operation: an ordered list of
// blocks. A region provides a scope: it can access values defined within
// it and — depending on the enclosing operation's scoping discipline —
// values of parent regions.
type Region struct {
	Blocks []*Block
}

// NewRegion builds a region containing a single entry block with the
// given arguments.
func NewRegion(args ...Value) *Region {
	return &Region{Blocks: []*Block{{Label: "bb0", Args: args}}}
}

// Entry returns the region's first block, or nil for an empty region.
func (r *Region) Entry() *Block {
	if len(r.Blocks) == 0 {
		return nil
	}
	return r.Blocks[0]
}

// Block returns the block with the given label, or nil.
func (r *Region) Block(label string) *Block {
	for _, b := range r.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Clone returns a deep copy of the region.
func (r *Region) Clone() *Region {
	c := &Region{}
	if len(r.Blocks) > 0 {
		c.Blocks = make([]*Block, len(r.Blocks))
		for i, b := range r.Blocks {
			c.Blocks[i] = b.Clone()
		}
	}
	return c
}

// Block is a labelled sequence of operations with block arguments. The
// final operation of a complete block is a terminator.
type Block struct {
	Label string
	Args  []Value
	Ops   []*Operation
}

// Append adds ops to the end of the block.
func (b *Block) Append(ops ...*Operation) { b.Ops = append(b.Ops, ops...) }

// Terminator returns the block's final operation, or nil if empty.
func (b *Block) Terminator() *Operation {
	if len(b.Ops) == 0 {
		return nil
	}
	return b.Ops[len(b.Ops)-1]
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	c := &Block{Label: b.Label, Args: append([]Value(nil), b.Args...)}
	if len(b.Ops) > 0 {
		c.Ops = make([]*Operation, len(b.Ops))
		for i, op := range b.Ops {
			c.Ops[i] = op.Clone()
		}
	}
	return c
}

// Module is the root of an IR tree: a builtin.module operation holding a
// single region with a single block whose operations are (typically)
// func.func definitions.
type Module struct {
	Op *Operation
}

// NewModule builds an empty module.
func NewModule() *Module {
	op := NewOp("builtin.module")
	op.Regions = []*Region{NewRegion()}
	return &Module{Op: op}
}

// Body returns the module's top-level block.
func (m *Module) Body() *Block { return m.Op.Regions[0].Entry() }

// Funcs returns every top-level func.func (or llvm.func) operation.
func (m *Module) Funcs() []*Operation {
	var fs []*Operation
	for _, op := range m.Body().Ops {
		if op.Name == "func.func" || op.Name == "llvm.func" {
			fs = append(fs, op)
		}
	}
	return fs
}

// Func returns the function with the given symbol name, or nil.
func (m *Module) Func(name string) *Operation {
	for _, f := range m.Funcs() {
		if sym, _ := f.Attrs.StringValueOf("sym_name"); sym == name {
			return f
		}
	}
	return nil
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module { return &Module{Op: m.Op.Clone()} }

// Walk visits every operation in the module in depth-first pre-order.
func (m *Module) Walk(fn func(*Operation) bool) { m.Op.Walk(fn) }

// NumOps returns the number of operations in the module, excluding the
// module operation itself.
func (m *Module) NumOps() int {
	n := -1
	m.Walk(func(*Operation) bool { n++; return true })
	return n
}

// String prints the module in the generic textual format.
func (m *Module) String() string { return Print(m) }

// FuncSymbol extracts the symbol name of a func-like operation.
func FuncSymbol(f *Operation) string {
	s, _ := f.Attrs.StringValueOf("sym_name")
	return s
}

// FuncType extracts the function type of a func-like operation.
func FuncType(f *Operation) (FunctionType, error) {
	ta, ok := f.Attrs.Get("function_type").(TypeAttr)
	if !ok {
		return FunctionType{}, fmt.Errorf("ir: %s missing function_type attribute", f.Name)
	}
	ft, ok := ta.Type.(FunctionType)
	if !ok {
		return FunctionType{}, fmt.Errorf("ir: %s function_type is not a function type", f.Name)
	}
	return ft, nil
}
