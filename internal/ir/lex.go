package ir

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the generic format.
type tokKind int

const (
	tokEOF      tokKind = iota
	tokIdent            // bare identifier: func, i64, dense, affine_map, unit …
	tokInt              // integer literal, possibly negative
	tokString           // quoted string literal (unquoted payload)
	tokValueID          // %id
	tokBlockID          // ^id
	tokSymbol           // @id
	tokLParen           // (
	tokRParen           // )
	tokLBrace           // {
	tokRBrace           // }
	tokLBracket         // [
	tokRBracket         // ]
	tokLess             // <
	tokGreater          // >
	tokComma            // ,
	tokColon            // :
	tokEquals           // =
	tokArrow            // ->
	tokQuestion         // ?
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenises src, returning the token stream or a lexical error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start, line}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start, line}, nil
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", start, line}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", start, line}, nil
	case c == '[':
		l.pos++
		return token{tokLBracket, "[", start, line}, nil
	case c == ']':
		l.pos++
		return token{tokRBracket, "]", start, line}, nil
	case c == '<':
		l.pos++
		return token{tokLess, "<", start, line}, nil
	case c == '>':
		l.pos++
		return token{tokGreater, ">", start, line}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start, line}, nil
	case c == ':':
		l.pos++
		return token{tokColon, ":", start, line}, nil
	case c == '=':
		l.pos++
		return token{tokEquals, "=", start, line}, nil
	case c == '?':
		l.pos++
		return token{tokQuestion, "?", start, line}, nil
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{tokArrow, "->", start, line}, nil
		}
		l.pos++
		digits := l.lexWhile(isDigit)
		if digits == "" {
			return token{}, l.errf("unexpected '-'")
		}
		return token{tokInt, "-" + digits, start, line}, nil
	case c == '%':
		l.pos++
		id := l.lexWhile(isIdentChar)
		if id == "" {
			return token{}, l.errf("empty value id after %%")
		}
		return token{tokValueID, id, start, line}, nil
	case c == '^':
		l.pos++
		id := l.lexWhile(isIdentChar)
		if id == "" {
			return token{}, l.errf("empty block label after ^")
		}
		return token{tokBlockID, id, start, line}, nil
	case c == '@':
		l.pos++
		id := l.lexWhile(isIdentChar)
		if id == "" {
			return token{}, l.errf("empty symbol name after @")
		}
		return token{tokSymbol, id, start, line}, nil
	case c == '"':
		s, err := l.lexString()
		if err != nil {
			return token{}, err
		}
		return token{tokString, s, start, line}, nil
	case isDigit(c):
		digits := l.lexWhile(isDigit)
		return token{tokInt, digits, start, line}, nil
	case isIdentStart(c):
		id := l.lexWhile(isIdentChar)
		return token{tokIdent, id, start, line}, nil
	}
	return token{}, l.errf("unexpected character %q", rune(c))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) lexWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return b.String(), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", l.errf("unterminated escape in string")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(e)
			default:
				return "", l.errf("unsupported escape \\%c", e)
			}
			l.pos++
		case '\n':
			return "", l.errf("newline in string literal")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", l.errf("unterminated string literal")
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		isDigit(c) || unicode.IsLetter(rune(c))
}
