package ir

import (
	"testing"
	"testing/quick"
)

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{I1, "i1"},
		{I8, "i8"},
		{I16, "i16"},
		{I32, "i32"},
		{I64, "i64"},
		{I(17), "i17"},
		{Index, "index"},
		{NoneType{}, "none"},
		{TensorOf([]int64{3, 3}, I64), "tensor<3x3xi64>"},
		{TensorOf([]int64{DynamicSize, 4}, I32), "tensor<?x4xi32>"},
		{TensorOf(nil, I1), "tensor<i1>"},
		{MemRefOf([]int64{2}, Index), "memref<2xindex>"},
		{VectorOf([]int64{4}, I32), "vector<4xi32>"},
		{FuncOf(nil, nil), "() -> ()"},
		{FuncOf([]Type{I64, I64}, []Type{I1}), "(i64, i64) -> (i1)"},
		{TensorOf([]int64{2}, TensorOf([]int64{3}, I8)), "tensor<2xtensor<3xi8>>"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !TypeEqual(I64, I(64)) {
		t.Error("i64 should equal i64")
	}
	if TypeEqual(I64, I32) {
		t.Error("i64 should not equal i32")
	}
	if TypeEqual(I64, Index) {
		t.Error("i64 should not equal index")
	}
	if !TypeEqual(nil, nil) {
		t.Error("nil should equal nil")
	}
	if TypeEqual(I64, nil) || TypeEqual(nil, I64) {
		t.Error("nil should not equal i64")
	}
	a := TensorOf([]int64{3, DynamicSize}, I64)
	b := TensorOf([]int64{3, DynamicSize}, I64)
	if !TypeEqual(a, b) {
		t.Error("structurally equal tensors should be equal")
	}
	if TypeEqual(a, TensorOf([]int64{3, 4}, I64)) {
		t.Error("dynamic and static dims should differ")
	}
}

// TestTypeEqualMatchesStringEquality pins down the invariant the
// structural fast path of TypeEqual relies on: two types are equal
// exactly when their canonical printed forms are equal.
func TestTypeEqualMatchesStringEquality(t *testing.T) {
	types := []Type{
		I1, I8, I16, I32, I64, I(17), IntType(17), IntType(64),
		Index, TypeIndex, NoneType{},
		TensorOf([]int64{3, 3}, I64),
		TensorOf([]int64{3, DynamicSize}, I64),
		TensorOf([]int64{3, 3}, I32),
		TensorOf(nil, I1),
		MemRefOf([]int64{3, 3}, I64),
		MemRefOf([]int64{2}, Index),
		VectorOf([]int64{4}, I32),
		VectorOf([]int64{4, 2}, I32),
		FuncOf(nil, nil),
		FuncOf([]Type{I64, I64}, []Type{I1}),
		FuncOf([]Type{I64}, []Type{I1, I1}),
		TensorOf([]int64{2}, TensorOf([]int64{3}, I8)),
	}
	for _, a := range types {
		for _, b := range types {
			want := a.String() == b.String()
			if got := TypeEqual(a, b); got != want {
				t.Errorf("TypeEqual(%s, %s) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestTensorTypeQueries(t *testing.T) {
	tt := TensorOf([]int64{3, 4}, I64)
	if tt.Rank() != 2 {
		t.Errorf("Rank = %d, want 2", tt.Rank())
	}
	if !tt.HasStaticShape() {
		t.Error("static tensor should have static shape")
	}
	if got := tt.NumElements(); got != 12 {
		t.Errorf("NumElements = %d, want 12", got)
	}
	dyn := TensorOf([]int64{DynamicSize, 4}, I64)
	if dyn.HasStaticShape() {
		t.Error("dynamic tensor should not have static shape")
	}
	mr := MemRefOf([]int64{5, 2}, I32)
	if mr.NumElements() != 10 || !mr.HasStaticShape() || mr.Rank() != 2 {
		t.Error("memref shape queries wrong")
	}
}

func TestBitWidth(t *testing.T) {
	if w, ok := BitWidth(I(13)); !ok || w != 13 {
		t.Errorf("BitWidth(i13) = %d,%v", w, ok)
	}
	if w, ok := BitWidth(Index); !ok || w != 64 {
		t.Errorf("BitWidth(index) = %d,%v", w, ok)
	}
	if _, ok := BitWidth(TensorOf(nil, I1)); ok {
		t.Error("tensor should have no bit width")
	}
	if !IsIntegerOrIndex(I1) || !IsIntegerOrIndex(Index) {
		t.Error("i1 and index are integer-or-index")
	}
	if IsIntegerOrIndex(TensorOf(nil, I1)) {
		t.Error("tensor is not integer-or-index")
	}
}

func TestTypeRoundTripProperty(t *testing.T) {
	// Types constructed from arbitrary widths and shapes must round-trip
	// through the parser.
	f := func(width uint8, d0, d1 int8) bool {
		w := uint(width%64) + 1
		shape := []int64{int64(d0%8) + 8, int64(d1%8) + 8}
		for _, ty := range []Type{
			I(w),
			Index,
			TensorOf(shape, I(w)),
			MemRefOf(shape, Index),
			VectorOf(shape[:1], I(w)),
			FuncOf([]Type{I(w), Index}, []Type{TensorOf(shape, I(w))}),
		} {
			parsed, err := ParseType(ty.String())
			if err != nil {
				t.Logf("parse %q: %v", ty.String(), err)
				return false
			}
			if !TypeEqual(parsed, ty) {
				t.Logf("round trip %q -> %q", ty.String(), parsed.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, src := range []string{
		"i0", "i65", "i", "floop", "tensor<", "tensor<3x>", "i64 i64", "",
	} {
		if ty, err := ParseType(src); err == nil {
			t.Errorf("ParseType(%q) = %v, want error", src, ty)
		}
	}
}

func TestParseDynamicShapes(t *testing.T) {
	ty, err := ParseType("tensor<?x?xi64>")
	if err != nil {
		t.Fatal(err)
	}
	tt := ty.(TensorType)
	if tt.Shape[0] != DynamicSize || tt.Shape[1] != DynamicSize {
		t.Errorf("got shape %v", tt.Shape)
	}
	if tt.HasStaticShape() {
		t.Error("should be dynamic")
	}
}
