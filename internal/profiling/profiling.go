// Package profiling wires runtime/pprof into the command-line tools.
// Fuzzing throughput is the product's headline number, and the campaign
// engine's hot paths (generation, compilation, the execution engine)
// are tuned against profiles of exactly these binaries — so the
// -cpuprofile/-memprofile flags live here once rather than per command.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (when non-empty). Profiles are written only on a clean
// shutdown: callers run stop at the end of a successful run, and an
// early os.Exit simply loses the profile, matching `go test` behavior.
// Stop is safe to call exactly once; with both paths empty it is a
// no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
