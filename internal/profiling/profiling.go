// Package profiling wires runtime/pprof into the command-line tools.
// Fuzzing throughput is the product's headline number, and the campaign
// engine's hot paths (generation, compilation, the execution engine)
// are tuned against profiles of exactly these binaries — so the
// -cpuprofile/-memprofile flags live here once rather than per command.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options selects which profiles a run collects. Empty paths disable
// the corresponding profile.
type Options struct {
	CPUPath   string // CPU profile, sampled for the whole run
	MemPath   string // heap profile, written at clean shutdown
	BlockPath string // goroutine blocking profile, written at shutdown
	MutexPath string // mutex contention profile, written at shutdown

	// BlockRate and MutexFraction tune the runtime's contention
	// samplers when the corresponding path is set (or when the live
	// /debug/pprof endpoints should have data). Zero means the
	// defaults below.
	BlockRate     int
	MutexFraction int
}

// Sampling defaults: block profiling records every event >=1µs rather
// than every event (rate 1 is measurably slow under heavy channel
// traffic), and mutex profiling samples 1 in 5 contended acquisitions.
const (
	DefaultBlockRate     = 1000 // nanoseconds, runtime.SetBlockProfileRate
	DefaultMutexFraction = 5    // runtime.SetMutexProfileFraction
)

// EnableContention turns on the runtime's block and mutex samplers so
// contention profiles — written at shutdown or scraped live from
// /debug/pprof/{block,mutex} — have data. Zero arguments select the
// package defaults; negative arguments leave the sampler untouched.
func EnableContention(blockRate, mutexFraction int) {
	if blockRate == 0 {
		blockRate = DefaultBlockRate
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	if mutexFraction == 0 {
		mutexFraction = DefaultMutexFraction
	}
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
}

// Start begins CPU profiling (when cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (when non-empty). Profiles are written only on a clean
// shutdown: callers run stop at the end of a successful run, and an
// early os.Exit simply loses the profile, matching `go test` behavior.
// Stop is safe to call exactly once; with both paths empty it is a
// no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartProfiles(Options{CPUPath: cpuPath, MemPath: memPath})
}

// StartProfiles is Start generalised to the full profile set. Block
// and mutex sampling are enabled up front when their paths are set (a
// profile enabled at shutdown would be empty) and the profiles are
// written by the returned stop function.
func StartProfiles(o Options) (stop func() error, err error) {
	var cpuFile *os.File
	if o.CPUPath != "" {
		cpuFile, err = os.Create(o.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if o.BlockPath != "" || o.MutexPath != "" {
		block, mutex := -1, -1
		if o.BlockPath != "" {
			block = o.BlockRate
		}
		if o.MutexPath != "" {
			mutex = o.MutexFraction
		}
		EnableContention(block, mutex)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if o.MemPath != "" {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := writeProfile("heap", o.MemPath); err != nil {
				return err
			}
		}
		if o.BlockPath != "" {
			if err := writeProfile("block", o.BlockPath); err != nil {
				return err
			}
		}
		if o.MutexPath != "" {
			if err := writeProfile("mutex", o.MutexPath); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// writeProfile dumps one named runtime profile to path.
func writeProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("profiling: no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
