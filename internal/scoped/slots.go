// Slot resolution: the compile-time companion of Table. A SlotTable
// walks the same scope discipline as Table[V] — a stack of Standard /
// IsolatedFromAbove scopes — but instead of holding runtime values it
// assigns each (scope, key) binding a dense integer slot. The
// interpreter's compile step (internal/interp.Compile) uses it to
// replace string-keyed environment lookups with direct frame indexing:
// every binding a program can create is enumerated once, ahead of
// execution, and every use is resolved to the slot it would find at
// run time.
//
// The equivalence with Table relies on one property of the interpreter
// effects layer: bindings are only ever written in the innermost scope
// (Table.Bind), so an enclosing scope's bindings are immutable while an
// inner scope executes. Under that discipline, "which binding does this
// use see" is a purely lexical question, answerable at compile time.
//
// Scopes are backed by small slices, not maps: a scope holds the
// bindings of one region (a few dozen at most), where a linear scan
// beats a map both on lookup and — decisively — on construction.
// Popped scopes keep their backing arrays for the next Push, so a whole
// compilation allocates a handful of arrays however many regions it
// walks. One SlotTable serves one compilation; it is not safe for
// concurrent use.
package scoped

// SlotRef is a resolved binding: the frame slot it lives in and the
// scope depth (0 = outermost scope of the walk) that owns it.
type SlotRef struct {
	Slot  int
	Depth int
}

type slotEntry struct {
	key  string
	slot int
}

type slotScope struct {
	entries []slotEntry
	kind    ScopeType
}

// SlotTable allocates dense frame slots for string keys under the same
// visibility rules as Table: resolution walks innermost-out and stops
// at (and including) the first IsolatedFromAbove scope. Slots are
// allocated monotonically; NumSlots is the frame size needed to hold
// every binding allocated through the table.
type SlotTable struct {
	scopes []slotScope
	live   int // scopes[:live] are active; the rest cache backing arrays
	next   int
}

// NewSlotTable returns an empty slot table with no scopes; callers push
// the outermost scope themselves (for the interpreter compiler, the
// function body region).
func NewSlotTable() *SlotTable {
	return &SlotTable{}
}

// Push enters a new innermost scope of the given kind.
func (t *SlotTable) Push(kind ScopeType) {
	if t.live < len(t.scopes) {
		s := &t.scopes[t.live]
		s.entries = s.entries[:0]
		s.kind = kind
	} else {
		t.scopes = append(t.scopes, slotScope{kind: kind})
	}
	t.live++
}

// Pop leaves the innermost scope. Its slot assignments are forgotten
// for resolution purposes, but the slots themselves stay allocated —
// distinct scopes must not share frame storage, because a re-entered
// scope is cleared wholesale while its siblings' values survive.
func (t *SlotTable) Pop() {
	if t.live == 0 {
		panic("scoped: pop of empty slot table")
	}
	t.live--
}

// Depth returns the current scope-stack depth.
func (t *SlotTable) Depth() int { return t.live }

// Next returns the next slot that Alloc would hand out; [lo, hi) pairs
// of Next() calls delimit the contiguous slot range a scope owns.
func (t *SlotTable) Next() int { return t.next }

// NumSlots returns the total number of slots allocated so far.
func (t *SlotTable) NumSlots() int { return t.next }

// Alloc binds key in the innermost scope and returns its slot. Like
// Table.Bind, allocating a key already bound in the innermost scope is
// idempotent: the existing slot is returned, because at run time both
// writes would hit the same binding.
func (t *SlotTable) Alloc(key string) int {
	s := &t.scopes[t.live-1]
	for i := range s.entries {
		if s.entries[i].key == key {
			return s.entries[i].slot
		}
	}
	slot := t.next
	t.next++
	s.entries = append(s.entries, slotEntry{key: key, slot: slot})
	return slot
}

func (s *slotScope) find(key string) (int, bool) {
	for i := range s.entries {
		if s.entries[i].key == key {
			return s.entries[i].slot, true
		}
	}
	return 0, false
}

// Resolve finds the binding a runtime Lookup of key would see: the
// innermost visible scope that binds it, honouring IsolatedFromAbove
// barriers. The returned Depth is the owning scope's index on the
// stack.
func (t *SlotTable) Resolve(key string) (SlotRef, bool) {
	for i := t.live - 1; i >= 0; i-- {
		if slot, ok := t.scopes[i].find(key); ok {
			return SlotRef{Slot: slot, Depth: i}, true
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	return SlotRef{}, false
}

// ResolveAll returns every visible binding of key, innermost-out,
// honouring IsolatedFromAbove barriers. The first element is what
// Resolve returns; later elements are outer bindings the innermost one
// shadows. The compiled interpreter uses the tail to emulate the tree
// walker's dynamic lookup exactly: a pre-allocated inner slot that has
// not been written yet must fall through to the shadowed outer binding,
// just as Table.Lookup would before the inner Bind happens.
func (t *SlotTable) ResolveAll(key string) []SlotRef {
	var refs []SlotRef
	for i := t.live - 1; i >= 0; i-- {
		if slot, ok := t.scopes[i].find(key); ok {
			refs = append(refs, SlotRef{Slot: slot, Depth: i})
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	return refs
}

// ResolveShadowed returns the outer bindings of key hidden behind the
// binding at scope depth — the tail ResolveAll would return after its
// first element. Shadowing is rare (SSA ids are normally unique within
// a function), so the common result is nil with no allocation; this is
// what the interpreter compiler calls per operand instead of
// ResolveAll.
func (t *SlotTable) ResolveShadowed(key string, depth int) []SlotRef {
	if depth < 0 || depth >= t.live || t.scopes[depth].kind == IsolatedFromAbove {
		return nil
	}
	var refs []SlotRef
	for i := depth - 1; i >= 0; i-- {
		if slot, ok := t.scopes[i].find(key); ok {
			refs = append(refs, SlotRef{Slot: slot, Depth: i})
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	return refs
}

// InInnermost reports whether key is already bound in the innermost
// scope (i.e. whether Alloc would be a no-op).
func (t *SlotTable) InInnermost(key string) bool {
	_, ok := t.scopes[t.live-1].find(key)
	return ok
}
