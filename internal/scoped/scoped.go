// Package scoped implements the parameterisable hierarchical symbol
// table of the Ratte paper (§3.2): a stack of scopes, each tagged with a
// visibility discipline that captures MLIR's value scoping rules.
//
// A Standard scope can read bindings of its parents; an
// IsolatedFromAbove scope (e.g. a func.func body) sees only bindings
// introduced at or below itself.
package scoped

import "fmt"

// ScopeType is the visibility tag of a scope.
type ScopeType int

const (
	// Standard scopes can access everything their parent can access.
	Standard ScopeType = iota
	// IsolatedFromAbove scopes hide all enclosing bindings.
	IsolatedFromAbove
)

func (s ScopeType) String() string {
	switch s {
	case Standard:
		return "Standard"
	case IsolatedFromAbove:
		return "IsolatedFromAbove"
	}
	return fmt.Sprintf("ScopeType(%d)", int(s))
}

type scope[V any] struct {
	vals map[string]V
	kind ScopeType
}

// Table is a stack of scopes mapping string keys (SSA value IDs, symbol
// names, …) to values of type V. The zero Table is not usable; call New.
type Table[V any] struct {
	scopes []scope[V] // index 0 is the outermost scope
}

// New returns a table with a single outermost Standard scope.
func New[V any]() *Table[V] {
	t := &Table[V]{}
	t.Push(Standard)
	return t
}

// Push enters a new innermost scope with the given visibility.
func (t *Table[V]) Push(kind ScopeType) {
	t.scopes = append(t.scopes, scope[V]{vals: make(map[string]V), kind: kind})
}

// Pop leaves the innermost scope, discarding its bindings. Popping the
// last scope panics: it indicates a bug in region bookkeeping.
func (t *Table[V]) Pop() {
	if len(t.scopes) <= 1 {
		panic("scoped: pop of outermost scope")
	}
	t.scopes = t.scopes[:len(t.scopes)-1]
}

// Depth returns the number of scopes currently on the stack.
func (t *Table[V]) Depth() int { return len(t.scopes) }

// Define binds key in the innermost scope. It returns an error if key is
// already bound in the innermost scope (SSA IDs must be unique within a
// scope — the first undesirable behaviour of the paper's Figure 4).
func (t *Table[V]) Define(key string, v V) error {
	s := &t.scopes[len(t.scopes)-1]
	if _, dup := s.vals[key]; dup {
		return fmt.Errorf("scoped: redefinition of %q in the same scope", key)
	}
	s.vals[key] = v
	return nil
}

// Bind sets key in the innermost scope, overwriting any existing binding
// in that scope. Interpreters executing lowered loop code use Bind: a
// block re-entered by a back edge re-executes its operations, re-binding
// the same SSA identifiers.
func (t *Table[V]) Bind(key string, v V) {
	t.scopes[len(t.scopes)-1].vals[key] = v
}

// Update rebinds key in the innermost *visible* scope where it is bound.
// It returns an error if key is not visible.
func (t *Table[V]) Update(key string, v V) error {
	for i := len(t.scopes) - 1; i >= 0; i-- {
		if _, ok := t.scopes[i].vals[key]; ok {
			t.scopes[i].vals[key] = v
			return nil
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	return fmt.Errorf("scoped: update of unbound key %q", key)
}

// Lookup resolves key through the visible scopes: from the innermost
// scope outward, stopping at (and including) the first
// IsolatedFromAbove scope.
func (t *Table[V]) Lookup(key string) (V, bool) {
	for i := len(t.scopes) - 1; i >= 0; i-- {
		if v, ok := t.scopes[i].vals[key]; ok {
			return v, true
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	var zero V
	return zero, false
}

// VisibleKeys returns every key visible from the innermost scope.
// Shadowed keys are reported once. Order is unspecified.
func (t *Table[V]) VisibleKeys() []string {
	seen := make(map[string]bool)
	var keys []string
	for i := len(t.scopes) - 1; i >= 0; i-- {
		for k := range t.scopes[i].vals {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		if t.scopes[i].kind == IsolatedFromAbove {
			break
		}
	}
	return keys
}

// InInnermost reports whether key is bound in the innermost scope.
func (t *Table[V]) InInnermost(key string) bool {
	_, ok := t.scopes[len(t.scopes)-1].vals[key]
	return ok
}

// Snapshot returns a shallow copy of the table that can diverge from the
// original by pushes/pops/defines (scope maps are copied, values are
// shared). Generators use snapshots to explore candidate extensions.
func (t *Table[V]) Snapshot() *Table[V] {
	c := &Table[V]{scopes: make([]scope[V], len(t.scopes))}
	for i, s := range t.scopes {
		m := make(map[string]V, len(s.vals))
		for k, v := range s.vals {
			m[k] = v
		}
		c.scopes[i] = scope[V]{vals: m, kind: s.kind}
	}
	return c
}
