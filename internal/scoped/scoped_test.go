package scoped

import (
	"testing"
	"testing/quick"
)

func TestDefineLookup(t *testing.T) {
	tab := New[int]()
	if err := tab.Define("a", 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Lookup("a"); !ok || v != 1 {
		t.Errorf("Lookup a = %d, %v", v, ok)
	}
	if _, ok := tab.Lookup("b"); ok {
		t.Error("b should not be bound")
	}
	if err := tab.Define("a", 2); err == nil {
		t.Error("redefinition in same scope must fail (Figure 4 case 1)")
	}
}

func TestStandardScopeSeesParent(t *testing.T) {
	tab := New[string]()
	mustDefine(t, tab, "outer", "o")
	tab.Push(Standard)
	mustDefine(t, tab, "inner", "i")
	if v, ok := tab.Lookup("outer"); !ok || v != "o" {
		t.Error("standard scope must see parent bindings")
	}
	if v, ok := tab.Lookup("inner"); !ok || v != "i" {
		t.Error("inner binding lost")
	}
	// Shadowing in an inner scope is allowed (different scope).
	if err := tab.Define("outer", "shadow"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tab.Lookup("outer"); v != "shadow" {
		t.Error("inner definition should shadow outer")
	}
	tab.Pop()
	if v, _ := tab.Lookup("outer"); v != "o" {
		t.Error("pop should unshadow")
	}
	if _, ok := tab.Lookup("inner"); ok {
		t.Error("inner binding should be gone after pop")
	}
}

func TestIsolatedFromAboveHidesParent(t *testing.T) {
	tab := New[int]()
	mustDefine(t, tab, "x", 1)
	tab.Push(IsolatedFromAbove)
	if _, ok := tab.Lookup("x"); ok {
		t.Error("isolated scope must not see parent bindings")
	}
	mustDefine(t, tab, "y", 2)
	tab.Push(Standard)
	if _, ok := tab.Lookup("x"); ok {
		t.Error("lookup must stop at the isolated boundary")
	}
	if v, ok := tab.Lookup("y"); !ok || v != 2 {
		t.Error("standard scope inside isolated scope must see it")
	}
}

func TestUpdate(t *testing.T) {
	tab := New[int]()
	mustDefine(t, tab, "x", 1)
	tab.Push(Standard)
	if err := tab.Update("x", 5); err != nil {
		t.Fatal(err)
	}
	tab.Pop()
	if v, _ := tab.Lookup("x"); v != 5 {
		t.Error("update should rebind in the defining scope")
	}
	tab.Push(IsolatedFromAbove)
	if err := tab.Update("x", 9); err == nil {
		t.Error("update through an isolated boundary must fail")
	}
}

func TestVisibleKeys(t *testing.T) {
	tab := New[int]()
	mustDefine(t, tab, "a", 1)
	mustDefine(t, tab, "b", 2)
	tab.Push(Standard)
	mustDefine(t, tab, "b", 3) // shadows
	mustDefine(t, tab, "c", 4)
	keys := tab.VisibleKeys()
	if len(keys) != 3 {
		t.Errorf("VisibleKeys = %v, want 3 distinct", keys)
	}
	tab.Push(IsolatedFromAbove)
	mustDefine(t, tab, "d", 5)
	if keys := tab.VisibleKeys(); len(keys) != 1 || keys[0] != "d" {
		t.Errorf("isolated VisibleKeys = %v", keys)
	}
}

func TestPopOutermostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pop of outermost scope should panic")
		}
	}()
	New[int]().Pop()
}

func TestInInnermost(t *testing.T) {
	tab := New[int]()
	mustDefine(t, tab, "x", 1)
	tab.Push(Standard)
	if tab.InInnermost("x") {
		t.Error("x is in the parent, not innermost")
	}
	mustDefine(t, tab, "x", 2)
	if !tab.InInnermost("x") {
		t.Error("x now bound in innermost")
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	tab := New[int]()
	mustDefine(t, tab, "x", 1)
	snap := tab.Snapshot()
	mustDefine(t, snap, "y", 2)
	if _, ok := tab.Lookup("y"); ok {
		t.Error("snapshot define leaked into original")
	}
	if err := snap.Update("x", 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := tab.Lookup("x"); v != 1 {
		t.Error("snapshot update leaked into original")
	}
	if tab.Depth() != snap.Depth() {
		t.Error("snapshot depth mismatch")
	}
}

// Property: after any sequence of push/define/pop, lookups in the
// original table are unaffected by operations on a snapshot.
func TestSnapshotProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tab := New[int]()
		mustDefineQ(tab, "k0", 0)
		for i, op := range ops {
			switch op % 3 {
			case 0:
				tab.Push(Standard)
			case 1:
				if tab.Depth() > 1 {
					tab.Pop()
				}
			case 2:
				_ = tab.Define(key(i), i)
			}
		}
		before := tab.VisibleKeys()
		snap := tab.Snapshot()
		snap.Push(IsolatedFromAbove)
		_ = snap.Define("poison", 1)
		after := tab.VisibleKeys()
		return len(before) == len(after)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func key(i int) string { return "k" + string(rune('a'+i%26)) }

func mustDefine[V any](t *testing.T, tab *Table[V], k string, v V) {
	t.Helper()
	if err := tab.Define(k, v); err != nil {
		t.Fatal(err)
	}
}

func mustDefineQ[V any](tab *Table[V], k string, v V) {
	if err := tab.Define(k, v); err != nil {
		panic(err)
	}
}
