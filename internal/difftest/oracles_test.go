package difftest_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/ir"
)

// TestOptimisationBugVisibleToDTO completes the DT-O story in the
// positive direction: an *optimisation* bug (bug 5, canonicalize)
// produces different outputs at O0 (no canonicalize) and O1 — so DT-O
// alone, without any reference semantics, would have sufficed for it
// (the paper: optimisation miscompilations "could in principle be
// detected by applying differential testing over optimisation passes").
func TestOptimisationBugVisibleToDTO(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	rep := difftest.TestModule(m, ref.Output, "ariths", bugs.Only(bugs.MulsiExtendedI1Fold))
	if !rep.DTO() {
		t.Errorf("optimisation bug 5 should be DT-O-visible: %+v", rep.Levels)
	}
	if !rep.DTR() {
		t.Error("DT-R should also fire")
	}
	if rep.NC() {
		t.Error("no crash expected")
	}
	if rep.Detected() != difftest.OracleDTR {
		t.Errorf("attribution should prefer DT-R, got %s", rep.Detected())
	}
}

// TestWrongRejectionClassifiedNC: bug 4 produces a compile-time
// rejection, which the report classifies as NC with the failing config
// identifiable.
func TestWrongRejectionClassifiedNC(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i1, i1)
    %s, %o = "arith.addui_extended"(%a, %b) : (i1, i1) -> (i1, i1)
    "vector.print"(%o) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%a, %a) : (i1, i1) -> ()
  }) {sym_name = "c", function_type = () -> (i1, i1)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	rep := difftest.TestModule(m, ref.Output, "ariths", bugs.Only(bugs.AdduiExtendedLegalize))
	if rep.Detected() != difftest.OracleNC {
		t.Errorf("wrong rejection should be NC, got %s", rep.Detected())
	}
	failing := 0
	for _, lr := range rep.Levels {
		if lr.CompileErr != nil {
			failing++
		}
	}
	if failing == 0 {
		t.Error("no config recorded the rejection")
	}
}

// TestReportOnCorrectCompilerIsClean re-checks the baseline on the
// figure programs specifically.
func TestReportOnCorrectCompilerIsClean(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 10 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %q = "arith.ceildivsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	rep := difftest.TestModule(m, ref.Output, "ariths", bugs.None())
	if rep.Detected() != difftest.OracleNone {
		t.Errorf("correct compiler flagged: %s (%+v)", rep.Detected(), rep.Levels)
	}
	for bc, lr := range rep.Levels {
		if lr.Output != "4\n" {
			t.Errorf("%s printed %q", bc, lr.Output)
		}
	}
	if len(rep.Levels) != len(difftest.BuildConfigs) {
		t.Errorf("report covers %d configs, want %d", len(rep.Levels), len(difftest.BuildConfigs))
	}
}
