package difftest

import (
	"fmt"
	"sort"
	"strings"
)

// ReportText renders a campaign result as the canonical human-readable
// summary. The rendering is deterministic (oracle tallies are sorted,
// robustness lines appear only when non-zero), which is what lets a
// resumed campaign prove it reproduced the original run: same verdicts,
// same report text, byte for byte.
func ReportText(res *CampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs tested: %d\n", res.Programs)
	if res.Plans > 0 {
		fmt.Fprintf(&b, "plans per program: %d (set %016x)\n", res.Plans, res.PlanSet)
	}
	fmt.Fprintf(&b, "detections: %d\n", len(res.Detections))
	oracles := make([]string, 0, len(res.ByOracle))
	for o := range res.ByOracle {
		oracles = append(oracles, string(o))
	}
	sort.Strings(oracles)
	for _, o := range oracles {
		fmt.Fprintf(&b, "  %s: %d\n", o, res.ByOracle[Oracle(o)])
	}
	if res.StageFailures > 0 {
		fmt.Fprintf(&b, "stage failures: %d\n", res.StageFailures)
	}
	if res.Timeouts > 0 {
		fmt.Fprintf(&b, "timeouts: %d\n", res.Timeouts)
	}
	if res.Skipped > 0 {
		fmt.Fprintf(&b, "skipped members: %d\n", res.Skipped)
	}
	if len(res.Quarantined) > 0 {
		fmt.Fprintf(&b, "quarantined seeds: %d\n", len(res.Quarantined))
	}
	if res.Plans > 0 && len(res.Detections) > 0 {
		fmt.Fprintf(&b, "distinct program-plan detections: %d\n", res.DistinctDetections)
	}
	if len(res.Detections) > 0 {
		d := res.Detections[0]
		if d.Plan != "" {
			fmt.Fprintf(&b, "first detection: seed %d via %s (plan %s)\n", d.Seed, d.Oracle, d.Plan)
		} else {
			fmt.Fprintf(&b, "first detection: seed %d via %s\n", d.Seed, d.Oracle)
		}
	}
	return b.String()
}
