package difftest_test

import (
	"testing"

	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/mlirsmith"
)

// TestDOLFalsePositives quantifies §4.2's usability argument: feeding
// MLIRSmith output to plain cross-optimisation-level testing of a
// CORRECT compiler raises alarms (every one a UB-induced false
// positive), while Ratte's UB-free programs raise none.
func TestDOLFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of compilations; skipped in -short mode")
	}
	const n = 150

	// Ratte: zero false positives, ever.
	for seed := int64(0); seed < 40; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		compiled, alarm := difftest.DOLAlarm(p.Module, "ariths")
		if !compiled {
			t.Fatalf("seed %d: Ratte program did not compile", seed)
		}
		if alarm {
			t.Fatalf("seed %d: false positive on a UB-free program", seed)
		}
	}

	// MLIRSmith: a substantial share of its compiling programs raise
	// false alarms.
	compiledN, alarms := 0, 0
	for seed := int64(0); seed < n; seed++ {
		m, err := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		compiled, alarm := difftest.DOLAlarm(m, "ariths")
		if compiled {
			compiledN++
		}
		if alarm {
			alarms++
		}
	}
	if compiledN == 0 {
		t.Fatal("no MLIRSmith program compiled")
	}
	rate := float64(alarms) / float64(compiledN)
	t.Logf("MLIRSmith DOL false-positive rate: %d/%d = %.1f%%", alarms, compiledN, 100*rate)
	if rate < 0.10 {
		t.Errorf("false-positive rate %.1f%% implausibly low — the §4.2 usability contrast is gone", 100*rate)
	}
}
