// Campaign verdicts: the per-seed outcome record of the fault-isolated
// engine. Every seed a campaign inspects ends in exactly one Verdict —
// clean, detection, contained stage failure, or watchdog timeout — so
// a crash-prone substrate degrades a campaign's yield instead of
// killing it, and a journal of verdicts is a complete, resumable
// account of the run.
package difftest

import (
	"fmt"
	"runtime/debug"

	"ratte/internal/faultinject"
	"ratte/internal/ir"
)

// Stage names one step of the per-seed pipeline.
type Stage string

// The per-seed stages, in execution order. StageReference only exists
// in family mode, where the expected output is computed per member
// instead of arriving with the generated program.
const (
	StageGenerate  Stage = "generate"
	StageReference Stage = "reference"
	StageVerify    Stage = "verify"
	StageCompile   Stage = "compile"
	StageInterpret Stage = "interpret"
	StageCompare   Stage = "compare"
)

// StageFailure is a contained failure of one per-seed stage: a panic
// caught by the stage guard, or an injected transient error whose
// retries were exhausted. It is recorded as the seed's verdict instead
// of crashing the campaign.
type StageFailure struct {
	Stage Stage `json:"stage"`
	Seed  int64 `json:"seed"`
	// Reason is the panic value or error text.
	Reason string `json:"reason"`
	// Stack is the goroutine stack at the panic site (empty for
	// non-panic failures). Stacks differ across engines and runs, so
	// verdict comparison ignores them.
	Stack string `json:"stack,omitempty"`
	// Module is the failing program's textual form, when available —
	// everything needed to reproduce the failure offline.
	Module string `json:"module,omitempty"`
	// Injected marks failures manufactured by the fault-injection
	// layer; the retry layer treats those as transient.
	Injected bool `json:"injected,omitempty"`
}

// VerdictKind classifies one seed's final outcome.
type VerdictKind string

// The verdict kinds.
const (
	// VerdictOK: the program behaved identically under every build
	// configuration and matched the reference.
	VerdictOK VerdictKind = "ok"
	// VerdictDetection: a differential-testing oracle fired.
	VerdictDetection VerdictKind = "detection"
	// VerdictStageFailure: a stage panicked (or kept failing with
	// injected errors) and the failure was contained.
	VerdictStageFailure VerdictKind = "stage-failure"
	// VerdictTimeout: the per-program wall-clock budget expired.
	VerdictTimeout VerdictKind = "timeout"
	// VerdictSkipped: a mutation-family member whose reference run had
	// no defined output (mutated constants reached UB, a trap, or the
	// step budget) — there is nothing to differentially test against.
	VerdictSkipped VerdictKind = "skipped"
)

// Verdict is one seed's final, journaled outcome.
type Verdict struct {
	Seed    int64         `json:"seed"`
	Kind    VerdictKind   `json:"kind"`
	Oracle  Oracle        `json:"oracle,omitempty"`
	Failure *StageFailure `json:"failure,omitempty"`
	// Attempts is 1 plus the transient-failure retries taken.
	Attempts int `json:"attempts"`
	// Faults counts injected fault points that fired across all
	// attempts; a seed with zero is "unaffected" and must behave
	// byte-identically to a fault-free run.
	Faults int `json:"faults,omitempty"`
	// Quarantined marks seeds that could not be tested (stage failure
	// or timeout after exhausting retries); they are listed in
	// CampaignResult.Quarantined for offline triage.
	Quarantined bool `json:"quarantined,omitempty"`
	// Plan is the Key (name|fingerprint) of the compilation plan a
	// plan-mode detection is attributed to. Empty outside plan mode
	// and for non-detection verdicts, so classic journals are
	// unchanged byte for byte.
	Plan string `json:"plan,omitempty"`
	// Program is the detected program's ir.Fingerprint — the program
	// half of the (program, plan) dedup key plan-mode reports count
	// distinct detections by. Zero outside plan-mode detections.
	Program uint64 `json:"program,omitempty"`
	// Coverage is the seed's semantic-coverage summary (site name →
	// hit count) when the campaign runs with coverage attached; nil
	// otherwise, so coverage-off journals are unchanged byte for byte.
	// Riding the verdict is what lets a journal resume — and a fleet
	// coordinator merging shard uploads — reconstruct the campaign
	// union exactly.
	Coverage map[string]uint64 `json:"cov,omitempty"`
}

// guard runs one stage with panic containment: a panic becomes a
// structured *StageFailure (stage, seed, panic value, stack, module
// text) instead of unwinding the campaign.
func guard(stage Stage, seed int64, m *ir.Module, fn func()) (sf *StageFailure) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		sf = &StageFailure{
			Stage:    stage,
			Seed:     seed,
			Reason:   fmt.Sprint(r),
			Stack:    string(debug.Stack()),
			Module:   safePrint(m),
			Injected: faultinject.IsInjectedPanic(r),
		}
	}()
	fn()
	return nil
}

// safePrint renders a module for a failure record, tolerating modules
// a panicking pass left in an unprintable state.
func safePrint(m *ir.Module) (text string) {
	if m == nil {
		return ""
	}
	defer func() {
		if recover() != nil {
			text = "<module unprintable>"
		}
	}()
	return ir.Print(m)
}
