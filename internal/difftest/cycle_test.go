package difftest_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/dialects/arith"
	"ratte/internal/dialects/funcd"
	"ratte/internal/dialects/linalg"
	"ratte/internal/dialects/scf"
	"ratte/internal/dialects/tensor"
	"ratte/internal/dialects/vector"
	"ratte/internal/gen"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// TestHarmoniousCycleCatchesSemanticsBugs demonstrates the paper's §1
// "harmonious cycle": the fuzzer does not only validate the compiler
// against the semantics — it validates the SEMANTICS against the
// compiler. A deliberately wrong reference kernel (arith.subi computing
// a−b−1) makes generated programs' reference outputs disagree with the
// correct compiler's outputs, which systematic cross-checking exposes.
func TestHarmoniousCycleCatchesSemanticsBugs(t *testing.T) {
	// Build a reference interpreter whose subi kernel is wrong.
	broken := arith.Semantics()
	broken.Register("arith.subi", func(ctx *interp.Context, op *ir.Operation) error {
		a, err := ctx.GetInt(op.Operands[0])
		if err != nil {
			return err
		}
		b, err := ctx.GetInt(op.Operands[1])
		if err != nil {
			return err
		}
		one := rtval.NewInt(a.Width(), 1)
		return ctx.Define(op.Results[0], a.Sub(b).Sub(one)) // off by one
	})
	brokenRef := interp.New(
		broken, funcd.Semantics(), scf.Semantics(),
		vector.Semantics(), tensor.Semantics(), linalg.Semantics(),
	)

	mismatches := 0
	checked := 0
	for seed := int64(0); seed < 40 && mismatches == 0; seed++ {
		// Programs come from the normal (correct-semantics) generator;
		// the broken interpreter plays the role of a semantics draft
		// under validation.
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		draft, err := brokenRef.Run(p.Module, "main")
		if err != nil {
			continue // the wrong kernel may push a value into a UB guard
		}
		c := &compiler.Compiler{Level: compiler.O0, Bugs: bugs.None()}
		lowered, err := c.Compile(p.Module, "ariths")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := dialects.NewExecutor().Run(lowered, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checked++
		if out.Output != draft.Output {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Fatalf("broken subi semantics never disagreed with the implementation across %d programs — the cycle is not validating", checked)
	}
}
