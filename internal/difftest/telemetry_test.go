package difftest_test

import (
	"path/filepath"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/telemetry"
)

// telemetryTestConfig is a small campaign that exercises every verdict
// path: an injected compiler bug (detections), fault injection
// (retries, stage failures, quarantine) and plenty of OK seeds.
func telemetryTestConfig() difftest.CampaignConfig {
	return difftest.CampaignConfig{
		Preset:     "ariths",
		Programs:   24,
		Size:       16,
		Seed:       97,
		Bugs:       bugs.Only(bugs.RemoveDeadValuesCall),
		MaxRetries: 2,
		Faults: &faultinject.Spec{
			Seed: 11,
			Rate: 0.02,
			Kinds: []faultinject.Kind{
				faultinject.KindError, faultinject.KindPanic,
			},
		},
	}
}

// TestTelemetryDoesNotPerturbDeterminism is the observability layer's
// core guarantee: attaching telemetry changes nothing about a
// campaign's results. Telemetry on vs off, serial vs parallel — all
// four combinations must produce byte-identical canonical reports.
func TestTelemetryDoesNotPerturbDeterminism(t *testing.T) {
	run := func(withTel bool, workers int) (string, *difftest.CampaignResult) {
		cfg := telemetryTestConfig()
		if withTel {
			cfg.Telemetry = difftest.NewCampaignTelemetry(nil)
		}
		res, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatalf("telemetry=%v workers=%d: %v", withTel, workers, err)
		}
		return difftest.ReportText(res), res
	}

	baseline, baseRes := run(false, 1)
	if len(baseRes.Detections) == 0 {
		t.Fatal("campaign found no detections; the guard needs a non-trivial report")
	}
	for _, c := range []struct {
		withTel bool
		workers int
	}{{true, 1}, {false, 4}, {true, 4}} {
		got, _ := run(c.withTel, c.workers)
		if got != baseline {
			t.Errorf("telemetry=%v workers=%d: report diverges from baseline\n--- baseline ---\n%s\n--- got ---\n%s",
				c.withTel, c.workers, baseline, got)
		}
	}
}

// TestCampaignTelemetryCounters runs an instrumented campaign and
// cross-checks every exported counter against the campaign result it
// observed — the counters must agree with the report, not merely be
// plausible.
func TestCampaignTelemetryCounters(t *testing.T) {
	cfg := telemetryTestConfig()
	tel := difftest.NewCampaignTelemetry(nil)
	cfg.Telemetry = tel
	res, err := difftest.RunCampaignParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	snap := tel.Registry.Snapshot()
	counter := func(series string) uint64 {
		t.Helper()
		v, ok := snap[series]
		if !ok {
			return 0
		}
		return v.(uint64)
	}

	if got := counter("ratte_campaign_seeds_done_total"); got != uint64(len(res.Verdicts)) {
		t.Errorf("seeds_done = %d, want %d", got, len(res.Verdicts))
	}
	byKind := map[difftest.VerdictKind]uint64{}
	var retries, quarantined uint64
	for _, v := range res.Verdicts {
		byKind[v.Kind]++
		if v.Attempts > 1 {
			retries += uint64(v.Attempts - 1)
		}
		if v.Quarantined {
			quarantined++
		}
	}
	for kind, want := range byKind {
		series := `ratte_campaign_verdicts_total{kind="` + string(kind) + `"}`
		if got := counter(series); got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
	if got := counter("ratte_campaign_retries_total"); got != retries {
		t.Errorf("retries = %d, want %d", got, retries)
	}
	if got := counter("ratte_campaign_quarantined_total"); got != quarantined {
		t.Errorf("quarantined = %d, want %d", got, quarantined)
	}
	for oracle, n := range res.ByOracle {
		series := `ratte_campaign_detections_total{oracle="` + string(oracle) + `"}`
		if got := counter(series); got != uint64(n) {
			t.Errorf("%s = %d, want %d", series, got, n)
		}
	}

	// The generator and interpreter fed their instruments.
	if counter("ratte_gen_programs_total") == 0 {
		t.Error("generator reported no programs")
	}
	if counter("ratte_interp_runs_total") == 0 {
		t.Error("interpreter reported no runs")
	}

	// Stage spans were recorded for the full pipeline.
	stats := tel.Spans.StageStats()
	seen := map[string]bool{}
	for _, st := range stats {
		seen[st.Stage] = true
	}
	for _, stage := range []string{"generate", "verify", "compile", "interpret", "compare"} {
		if !seen[stage] {
			t.Errorf("no spans recorded for stage %q (have %v)", stage, stats)
		}
	}

	// The rendered surfaces work.
	text := tel.Registry.PrometheusText()
	for _, want := range []string{
		"ratte_campaign_verdicts_total", "ratte_stage_latency_ns_bucket",
		"ratte_interp_program_cache_hits", "ratte_gen_ops_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus export missing %s", want)
		}
	}
	section := tel.ReportSection()
	if !strings.Contains(section, "telemetry:") || !strings.Contains(section, "program cache") {
		t.Errorf("report section incomplete:\n%s", section)
	}
	line := tel.ProgressLine()
	if !strings.Contains(line, "progress: 24/24") {
		t.Errorf("progress line = %q", line)
	}
}

// TestTelemetryJournalGauges checks journal I/O accounting: the line
// gauge counts header + verdicts, the byte gauge the file's size.
func TestTelemetryJournalGauges(t *testing.T) {
	cfg := telemetryTestConfig()
	cfg.Faults = nil
	cfg.Programs = 8
	tel := difftest.NewCampaignTelemetry(nil)
	cfg.Telemetry = tel

	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := difftest.CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snap := tel.Registry.Snapshot()
	if got := snap["ratte_journal_lines"].(int64); got != int64(len(res.Verdicts)+1) {
		t.Errorf("journal lines = %d, want %d", got, len(res.Verdicts)+1)
	}
	if got := snap["ratte_journal_bytes"].(int64); got <= 0 {
		t.Errorf("journal bytes = %d, want > 0", got)
	}
	// The journal stage appears in the span latency table.
	found := false
	for _, st := range tel.Spans.StageStats() {
		if st.Stage == "journal" {
			found = true
			if st.Count != uint64(len(res.Verdicts)) {
				t.Errorf("journal spans = %d, want %d", st.Count, len(res.Verdicts))
			}
		}
	}
	if !found {
		t.Error("no journal spans recorded")
	}
}

// TestNilCampaignTelemetry pins the off switch: every method is safe
// and inert on a nil receiver.
func TestNilCampaignTelemetry(t *testing.T) {
	var tel *difftest.CampaignTelemetry
	if tel.ProgressLine() != "" || tel.ReportSection() != "" {
		t.Fatal("nil telemetry rendered output")
	}
	// A campaign with nil telemetry runs normally (the common path).
	cfg := telemetryTestConfig()
	cfg.Faults = nil
	cfg.Programs = 4
	if _, err := difftest.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignTelemetrySharedRegistry checks a caller-supplied registry
// receives the campaign series (the -metrics-addr wiring).
func TestCampaignTelemetrySharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := difftest.NewCampaignTelemetry(reg)
	if tel.Registry != reg {
		t.Fatal("telemetry did not adopt the supplied registry")
	}
	cfg := telemetryTestConfig()
	cfg.Faults = nil
	cfg.Programs = 4
	cfg.Telemetry = tel
	if _, err := difftest.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reg.PrometheusText(), "ratte_campaign_seeds_done_total 4") {
		t.Error("campaign counters not visible on the shared registry")
	}
}
