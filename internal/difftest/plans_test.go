package difftest_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/gen"
)

func samplePlans(t *testing.T, preset string, n int, seed int64) []compiler.Plan {
	t.Helper()
	plans, err := compiler.SamplePlans(preset, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

func planCfg(programs int, bugSet bugs.Set) difftest.CampaignConfig {
	return difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: programs,
		Size:     16,
		Seed:     200,
		Bugs:     bugSet,
	}
}

// TestPlanCampaignCleanCompilerIsQuiet: with no injected bugs, every
// sampled legal plan agrees with the reference on every program — the
// no-false-positives property that makes plan fuzzing usable at all.
func TestPlanCampaignCleanCompilerIsQuiet(t *testing.T) {
	cfg := planCfg(40, bugs.None())
	cfg.Plans = samplePlans(t, "ariths", 8, 1)
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 0 {
		t.Fatalf("clean compiler produced %d plan-mode detections; first: seed %d plan %s",
			len(res.Detections), res.Detections[0].Seed, res.Detections[0].Plan)
	}
	if res.Plans != 8 || res.PlanSet == 0 {
		t.Errorf("result plan set not stamped: %d plans, set %016x", res.Plans, res.PlanSet)
	}
}

// TestPlanCampaignFindsLoweringBug: bug 6 lives in the direct
// convert-arith-to-llvm conversion and fires exactly when arith-expand
// is absent — i.e. under the bare-skeleton plan every sampled set
// contains. The fixed-config campaign needs the O1-noexpand config to
// see it; plan mode reaches it through the plan axis.
func TestPlanCampaignFindsLoweringBug(t *testing.T) {
	cfg := planCfg(60, bugs.Only(bugs.CeilDivSiConvert))
	cfg.Plans = samplePlans(t, "ariths", 8, 1)
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) == 0 {
		t.Fatal("plan campaign missed the ceildivsi lowering bug")
	}
	d := res.Detections[0]
	if d.Plan == "" {
		t.Error("detection not attributed to a plan")
	}
	if d.PlanReport == nil {
		t.Fatal("detection carries no plan report")
	}
	if d.Report != nil {
		t.Error("plan-mode detection carries a classic report")
	}
	for _, v := range res.Verdicts {
		if v.Kind == difftest.VerdictDetection {
			if v.Plan == "" {
				t.Errorf("seed %d: detection verdict missing plan tag", v.Seed)
			}
			if v.Program == 0 {
				t.Errorf("seed %d: detection verdict missing program fingerprint", v.Seed)
			}
		}
	}
	if res.DistinctDetections == 0 || res.DistinctDetections > len(res.Detections) {
		t.Errorf("distinct detections %d outside (0, %d]", res.DistinctDetections, len(res.Detections))
	}
}

// TestPlanCampaignParallelMatchesSerial pins plan-mode byte-determinism
// across engines and worker counts, including the rendered report.
func TestPlanCampaignParallelMatchesSerial(t *testing.T) {
	cfg := planCfg(30, bugs.Only(bugs.CeilDivSiConvert))
	cfg.Plans = samplePlans(t, "ariths", 6, 3)
	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if d := difftest.DiffResults(serial, par); d != "" {
			t.Fatalf("workers=%d: %s", workers, d)
		}
		if difftest.ReportText(serial) != difftest.ReportText(par) {
			t.Fatalf("workers=%d: report text differs", workers)
		}
	}
}

// TestPlanCampaignJournalResume: a plan-mode campaign interrupted
// mid-run resumes from its journal to the byte-identical final report.
func TestPlanCampaignJournalResume(t *testing.T) {
	dir := t.TempDir()
	cfg := planCfg(24, bugs.Only(bugs.CeilDivSiConvert))
	cfg.Plans = samplePlans(t, "ariths", 6, 3)

	full := runJournaled(t, filepath.Join(dir, "full.jsonl"), cfg)

	// Record a truncated prefix, then resume it to the full count.
	path := filepath.Join(dir, "partial.jsonl")
	part := cfg
	part.Programs = 10
	runJournaled(t, path, part)

	j, resumed, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re := cfg
	re.Journal = j
	re.Resumed = resumed
	res, err := difftest.RunCampaign(re)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffResults(full, res); d != "" {
		t.Fatalf("resumed run differs: %s", d)
	}
	if difftest.ReportText(full) != difftest.ReportText(res) {
		t.Fatal("resumed report text differs")
	}
}

// TestPlanJournalRejectsDifferentPlanSet: same count, different plans
// — the header's plan-set fingerprint must refuse the resume.
func TestPlanJournalRejectsDifferentPlanSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.jsonl")
	cfg := planCfg(6, bugs.None())
	cfg.Plans = samplePlans(t, "ariths", 6, 3)
	runJournaled(t, path, cfg)

	other := cfg
	other.Plans = samplePlans(t, "ariths", 6, 4)
	if _, _, err := difftest.OpenJournalForResume(path, other); err == nil {
		t.Fatal("resume under a different plan set accepted")
	}
	// The original plan set still resumes.
	j, _, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
}

// TestPlanModeDisablesFamilyMode: the two campaign axes are mutually
// exclusive; with Plans set the classic per-seed plan pipeline runs
// and FamilySize is ignored.
func TestPlanModeDisablesFamilyMode(t *testing.T) {
	cfg := planCfg(12, bugs.None())
	cfg.Plans = samplePlans(t, "ariths", 4, 1)
	plain, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fam := cfg
	fam.FamilySize = 4
	got, err := difftest.RunCampaign(fam)
	if err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffResults(plain, got); d != "" {
		t.Fatalf("FamilySize changed a plan-mode campaign: %s", d)
	}
}

// TestPlanReportKeysByFingerprint: two plans sharing a display name
// stay distinct through TestModulePlans — the satellite-4 regression.
func TestPlanReportKeysByFingerprint(t *testing.T) {
	skel, err := compiler.PlanSkeleton("ariths")
	if err != nil {
		t.Fatal(err)
	}
	a := compiler.Plan{Preset: "ariths", Passes: append([]string{"arith-expand"}, skel...)}
	b := compiler.Plan{Preset: "ariths", Passes: append([]string{"canonicalize"}, skel...)}
	if a.Name() != b.Name() {
		t.Fatalf("fixture plans must share a name: %s vs %s", a.Name(), b.Name())
	}
	prog, err := gen.Generate(gen.Config{Preset: "ariths", Size: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Under bug 6 the no-expand plan (b) can diverge while a stays
	// clean; if results keyed by name the two would merge silently.
	rep := difftest.TestModulePlans(prog.Module, prog.Expected, []compiler.Plan{a, b}, bugs.Only(bugs.CeilDivSiConvert))
	if len(rep.Results) != 2 {
		t.Fatalf("plan report holds %d results, want 2 (name-keyed merge?)", len(rep.Results))
	}
	if _, ok := rep.Results[a.Key()]; !ok {
		t.Errorf("result for %s missing", a.Key())
	}
	if _, ok := rep.Results[b.Key()]; !ok {
		t.Errorf("result for %s missing", b.Key())
	}
}

// TestPlanReportText: the plan-mode lines render and stay stable.
func TestPlanReportText(t *testing.T) {
	cfg := planCfg(20, bugs.Only(bugs.CeilDivSiConvert))
	cfg.Plans = samplePlans(t, "ariths", 6, 1)
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := difftest.ReportText(res)
	if !strings.Contains(text, "plans per program: 6") {
		t.Errorf("report missing plan-set line:\n%s", text)
	}
	if len(res.Detections) > 0 {
		if !strings.Contains(text, "distinct program-plan detections:") {
			t.Errorf("report missing dedup line:\n%s", text)
		}
		if !strings.Contains(text, "(plan plan-") {
			t.Errorf("first-detection line missing plan key:\n%s", text)
		}
	}
}

// TestPlanCampaignCancellation: plan mode honours context cancellation
// with a resumable partial result, like the classic engine.
func TestPlanCampaignCancellation(t *testing.T) {
	cfg := planCfg(200, bugs.None())
	cfg.Plans = samplePlans(t, "ariths", 6, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := difftest.RunCampaignCtx(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled plan campaign returned nil error")
	}
	if res == nil {
		t.Fatal("cancelled plan campaign returned nil result")
	}
	if res.Programs >= cfg.Programs {
		t.Fatalf("cancelled campaign claims %d programs", res.Programs)
	}
}
