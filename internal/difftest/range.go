// Shard-ranged campaign entry points: the difftest half of the fleet
// protocol (internal/fleet). A distributed campaign is the same seed
// space as a single-process one, partitioned into contiguous index
// ranges (shards). Because every verdict depends only on (config,
// seed) — the invariant the per-seed pipeline already guarantees — a
// worker that runs RunCampaignRange over its shard produces exactly
// the verdicts the serial engine would have produced at those
// positions, and a coordinator that splices shard verdict streams back
// into seed order reproduces the serial campaign byte for byte.
package difftest

import (
	"context"
	"encoding/json"
	"fmt"
)

// CampaignFingerprint renders the configuration fingerprint of a
// campaign: a deterministic JSON encoding of everything that
// determines its verdicts except the program count — the same header
// the campaign journal stores on line 1. Two processes with equal
// fingerprints produce identical verdicts for identical seeds, which
// is exactly the check the fleet coordinator applies when a worker
// registers (and the journal applies on resume).
func CampaignFingerprint(cfg CampaignConfig) ([]byte, error) {
	data, err := json.Marshal(headerFor(&cfg))
	if err != nil {
		return nil, fmt.Errorf("difftest: fingerprint: %w", err)
	}
	return data, nil
}

// ValidateShardRange checks that [first, first+count) is a legal shard
// of the campaign: within bounds and, in family mode, aligned to the
// mutation-family boundaries (a family generates its base program from
// its first seed, so splitting one across shards would change which
// program its members test).
func ValidateShardRange(cfg *CampaignConfig, first, count int) error {
	if first < 0 || count <= 0 || first+count > cfg.Programs {
		return fmt.Errorf("difftest: shard [%d,%d) outside campaign of %d programs", first, first+count, cfg.Programs)
	}
	if familyActive(cfg) {
		if first%cfg.FamilySize != 0 {
			return fmt.Errorf("difftest: shard start %d not aligned to family size %d", first, cfg.FamilySize)
		}
		if count%cfg.FamilySize != 0 && first+count != cfg.Programs {
			return fmt.Errorf("difftest: shard count %d not aligned to family size %d", count, cfg.FamilySize)
		}
	}
	return nil
}

// RunCampaignRange runs the index range [first, first+count) of the
// campaign's seed space and returns the verdicts in seed order — the
// worker half of a distributed campaign. The range runs under the
// campaign's full configuration (preset, bugs, faults, plans, family
// structure...); only the window of seeds differs, so the returned
// verdicts are byte-identical to the corresponding slice of a
// single-process run. Journals, resume maps and StopAtFirst belong to
// the whole-campaign engines and are ignored here; workers is the
// in-process parallelism of the range engine.
func RunCampaignRange(ctx context.Context, cfg CampaignConfig, first, count, workers int) ([]Verdict, error) {
	if err := ValidateShardRange(&cfg, first, count); err != nil {
		return nil, err
	}
	sub := cfg
	sub.Seed = cfg.Seed + int64(first)
	sub.Programs = count
	sub.Journal = nil
	sub.Resumed = nil
	sub.StopAtFirst = false
	res, err := RunCampaignParallelCtx(ctx, sub, workers)
	if err != nil {
		return nil, err
	}
	return res.Verdicts, nil
}

// AssembleResult reconstructs a campaign result from its verdicts in
// seed order, replaying exactly the accounting the engines perform as
// they sequence verdicts — the merge half of a distributed campaign
// (and the same reconstruction a journal resume performs seed by
// seed). ReportText over the assembled result is byte-identical to the
// single-process run's, because the report depends only on the
// sequenced verdicts. When cfg.Telemetry is set, each verdict is also
// folded into its counters.
func AssembleResult(cfg CampaignConfig, verdicts []Verdict) *CampaignResult {
	res := newCampaignResult()
	res.notePlans(&cfg)
	for _, v := range verdicts {
		res.record(v, nil)
		cfg.Telemetry.onVerdict(v)
		cfg.Coverage.onVerdict(v)
	}
	return res
}
