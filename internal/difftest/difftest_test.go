package difftest_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/mlirsmith"
)

// TestNoFalsePositives: against the correct compiler, no oracle may
// ever fire — the soundness precondition for every Table 3 claim.
func TestNoFalsePositives(t *testing.T) {
	for _, preset := range gen.Presets() {
		res, err := difftest.RunCampaign(difftest.CampaignConfig{
			Preset:   preset,
			Programs: 25,
			Size:     25,
			Seed:     9000,
			Bugs:     bugs.None(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Detections) != 0 {
			d := res.Detections[0]
			t.Fatalf("%s: false positive (seed %d, oracle %s):\nreference: %q\nreport: %+v",
				preset, d.Seed, d.Oracle, d.Expected, d.Report.Levels)
		}
	}
}

// bugCampaign runs a (non-stopping) campaign with one injected bug and
// returns the detection summary.
func bugCampaign(t *testing.T, id bugs.ID, programs int) *difftest.CampaignResult {
	t.Helper()
	res, err := difftest.RunCampaign(difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: programs,
		Size:     30,
		Seed:     1000 * int64(id),
		Bugs:     bugs.Only(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTable3BugDetection re-runs the paper's bug-finding experiment:
// each injected defect must be detected, and the oracle the paper
// credits for it must be among the oracles that fired.
func TestTable3BugDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are seconds-long; skipped in -short mode")
	}
	for _, info := range bugs.Table() {
		info := info
		t.Run(info.Pass+"/"+info.DetectedWith, func(t *testing.T) {
			t.Parallel()
			res := bugCampaign(t, info.ID, 900)
			if len(res.Detections) == 0 {
				t.Fatalf("bug %d (%s in %s) was never detected in %d programs",
					info.ID, info.DetectedWith, info.Pass, res.Programs)
			}
			if res.ByOracle[difftest.Oracle(info.Oracle)] == 0 {
				t.Errorf("bug %d: paper oracle %s never fired; oracles seen: %v",
					info.ID, info.Oracle, res.ByOracle)
			}
		})
	}
}

// TestLoweringBugsInvisibleToDTO asserts the paper's central claim: the
// two lowering bugs (7, 8) are never attributable to cross-optimisation-
// level testing, because the buggy lowering runs at every level.
func TestLoweringBugsInvisibleToDTO(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are seconds-long; skipped in -short mode")
	}
	for _, id := range []bugs.ID{bugs.FloorDivSiExpand, bugs.CeilDivSiExpand} {
		res := bugCampaign(t, id, 250)
		for _, d := range res.Detections {
			if d.Report.DTO() {
				t.Errorf("bug %d: DT-O fired (seed %d) — lowering bugs must be invisible to DT-O", id, d.Seed)
			}
		}
	}
}

// TestTable4Shape re-measures the MLIRSmith comparison: Ratte's
// programs are 100%% compileable and UB-free; MLIRSmith's arith programs
// almost all compile but almost none are UB-free; its tensor programs
// compile but are essentially never UB-free; its linalg programs mostly
// fail to compile.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("classification over hundreds of programs; skipped in -short mode")
	}
	const n = 200

	classify := func(preset string) (compiled, ubFree int) {
		for seed := int64(0); seed < n; seed++ {
			m, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cl := difftest.Classify(m, preset)
			if cl.Compiled {
				compiled++
			}
			if cl.UBFree {
				ubFree++
			}
		}
		return
	}

	// Ratte: all compile, all UB-free (by construction; checked via the
	// same classifier for symmetry).
	for _, preset := range gen.Presets() {
		okC, okU := 0, 0
		for seed := int64(0); seed < 40; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cl := difftest.Classify(p.Module, preset)
			if cl.Compiled {
				okC++
			}
			if cl.UBFree {
				okU++
			}
		}
		if okC != 40 || okU != 40 {
			t.Errorf("ratte %s: compiled %d/40, UB-free %d/40 — must be 40/40", preset, okC, okU)
		}
	}

	// MLIRSmith arith: ≈100% compiled, ≈1% UB-free (paper: 100% / 1.1%).
	c, u := classify("ariths")
	if c < n*95/100 {
		t.Errorf("mlirsmith ariths: %d/%d compiled, expected ~100%%", c, n)
	}
	if u > n*10/100 {
		t.Errorf("mlirsmith ariths: %d/%d UB-free, expected ~1%%", u, n)
	}

	// MLIRSmith tensor: ≈99% compiled, ≈0% UB-free (paper: 99.4% / 0%).
	c, u = classify("tensor")
	if c < n*90/100 {
		t.Errorf("mlirsmith tensor: %d/%d compiled, expected ~99%%", c, n)
	}
	if u > n*5/100 {
		t.Errorf("mlirsmith tensor: %d/%d UB-free, expected ~0%%", u, n)
	}

	// MLIRSmith linalg: ≈7% compiled (paper: 6.9%).
	c, _ = classify("linalggeneric")
	if c > n*30/100 {
		t.Errorf("mlirsmith linalggeneric: %d/%d compiled, expected ~7%%", c, n)
	}
	if c == 0 {
		t.Error("mlirsmith linalggeneric: nothing compiled — baseline too weak")
	}

	// MLIRSmith unmodified: ≈8% compiled (paper: 7.8%, -canonicalize
	// only).
	c, _ = classify("unmod")
	if c > n*35/100 {
		t.Errorf("mlirsmith unmod: %d/%d compiled, expected ~8%%", c, n)
	}
}

func TestBuildConfigString(t *testing.T) {
	if got := difftest.BuildConfigs[0].String(); got != "O0" {
		t.Errorf("got %q", got)
	}
	if got := difftest.BuildConfigs[3].String(); got != "O1-noexpand" {
		t.Errorf("got %q", got)
	}
}
