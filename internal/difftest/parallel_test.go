package difftest_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
)

// TestParallelCampaignMatchesSerial: the parallel runner must produce
// the same detections as the serial one — determinism regardless of
// worker count.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 60,
		Size:     25,
		Seed:     4242,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := difftest.RunCampaignParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Programs != parallel.Programs {
		t.Errorf("programs: serial %d, parallel %d", serial.Programs, parallel.Programs)
	}
	if len(serial.Detections) != len(parallel.Detections) {
		t.Fatalf("detections: serial %d, parallel %d", len(serial.Detections), len(parallel.Detections))
	}
	for i := range serial.Detections {
		if serial.Detections[i].Seed != parallel.Detections[i].Seed ||
			serial.Detections[i].Oracle != parallel.Detections[i].Oracle {
			t.Errorf("detection %d differs: serial (%d, %s) parallel (%d, %s)",
				i, serial.Detections[i].Seed, serial.Detections[i].Oracle,
				parallel.Detections[i].Seed, parallel.Detections[i].Oracle)
		}
	}
	for o, n := range serial.ByOracle {
		if parallel.ByOracle[o] != n {
			t.Errorf("oracle %s: serial %d, parallel %d", o, n, parallel.ByOracle[o])
		}
	}
}

// TestParallelStopAtFirstReportsInOrderDetection: with StopAtFirst the
// parallel runner reports the same (seed-order) first detection as the
// serial runner would.
func TestParallelStopAtFirstReportsInOrderDetection(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:      "ariths",
		Programs:    80,
		Size:        25,
		Seed:        515,
		Bugs:        bugs.Only(bugs.RemoveDeadValuesCall),
		StopAtFirst: true,
	}
	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := difftest.RunCampaignParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Detections) == 0 {
		t.Skip("bug 3 not hit in this budget")
	}
	if len(parallel.Detections) != 1 {
		t.Fatalf("parallel reported %d detections", len(parallel.Detections))
	}
	if parallel.Detections[0].Seed != serial.Detections[0].Seed {
		t.Errorf("first detection seed: serial %d, parallel %d",
			serial.Detections[0].Seed, parallel.Detections[0].Seed)
	}
}

// TestParallelWithOneWorkerDelegates exercises the fallback path.
func TestParallelWithOneWorkerDelegates(t *testing.T) {
	cfg := difftest.CampaignConfig{Preset: "ariths", Programs: 5, Size: 10, Seed: 1}
	res, err := difftest.RunCampaignParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Programs != 5 {
		t.Errorf("programs = %d", res.Programs)
	}
}
