// Plan-mode differential testing: the phase-ordering axis. A classic
// campaign tests every program under the four fixed build
// configurations; a plan-mode campaign (CampaignConfig.Plans non-empty,
// the -fuzz-pipelines flag) tests it under N sampled legal pass plans
// instead, compiled through the same prefix tree. The oracles carry
// over — NC and DT-R mean exactly what they always mean — plus DT-P,
// the cross-plan analogue of DT-O: two legal plans over the same
// program must agree.
//
// Everything is keyed by Plan.Key (name|fingerprint), never by the
// deliberately non-unique display name: two sampled plans of the same
// length must not silently merge in reports, journals or comparisons.
package difftest

import (
	"context"
	"errors"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/faultinject"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// OracleDTP is differential testing across compilation plans: two
// legal plans compiled and ran, and their outputs differ. Like DT-O it
// is structurally shadowed in attribution — the reference output is
// always defined, so a cross-plan divergence implies at least one plan
// diverged from the reference and DT-R fires first — but it is the
// honest name for what a phase-ordering campaign is hunting, and
// PlanReport.DTP keeps it observable on its own.
const OracleDTP Oracle = "DT-P"

// PlanReport is the differential-testing record of one program across
// a plan set — the plan-mode analogue of Report. Results are keyed by
// Plan.Key.
type PlanReport struct {
	Preset    string
	Reference string // expected output per the Ratte semantics
	Plans     []compiler.Plan
	Results   map[string]LevelResult
}

// TestModulePlans compiles and runs a UB-free module under every plan
// of the given (possibly bug-injected) compiler build and records the
// outcomes, sharing the plans' common pipeline prefixes. reference is
// the expected output from the Ratte semantics.
func TestModulePlans(m *ir.Module, reference string, plans []compiler.Plan, bugSet bugs.Set) *PlanReport {
	rep := newPlanReport(reference, plans)
	outs := compiler.CompilePlans(m, plans, bugSet)
	for i, p := range plans {
		var lr LevelResult
		if outs[i].Err != nil {
			lr.CompileErr = outs[i].Err
		} else {
			res, err := dialects.NewExecutor().Run(outs[i].Module, "main")
			if err != nil {
				lr.RunErr = err
			} else {
				lr.Output = res.Output
			}
		}
		rep.Results[p.Key()] = lr
	}
	return rep
}

func newPlanReport(reference string, plans []compiler.Plan) *PlanReport {
	preset := ""
	if len(plans) > 0 {
		preset = plans[0].Preset
	}
	return &PlanReport{
		Preset:    preset,
		Reference: reference,
		Plans:     plans,
		Results:   make(map[string]LevelResult, len(plans)),
	}
}

// NC reports whether the non-crash oracle fires under any plan, and
// returns the first offending plan's key in plan-set order.
func (r *PlanReport) NC() (string, bool) {
	for _, p := range r.Plans {
		lr := r.Results[p.Key()]
		if lr.CompileErr != nil || lr.RunErr != nil {
			return p.Key(), true
		}
	}
	return "", false
}

// DTR reports whether any successful plan's output differs from the
// reference semantics, and returns the first offending plan's key.
func (r *PlanReport) DTR() (string, bool) {
	for _, p := range r.Plans {
		lr := r.Results[p.Key()]
		if lr.CompileErr == nil && lr.RunErr == nil && lr.Output != r.Reference {
			return p.Key(), true
		}
	}
	return "", false
}

// DTP reports whether two plans that both compiled and ran disagree,
// and returns the key of the first plan differing from the first
// successful one.
func (r *PlanReport) DTP() (string, bool) {
	var first *string
	for _, p := range r.Plans {
		lr := r.Results[p.Key()]
		if lr.CompileErr != nil || lr.RunErr != nil {
			continue
		}
		out := lr.Output
		if first == nil {
			first = &out
		} else if *first != out {
			return p.Key(), true
		}
	}
	return "", false
}

// Detected returns the strongest-attribution oracle that fired and the
// plan the detection is attributed to, with the same reporting
// convention as Report.Detected: crash or rejection is NC; a mismatch
// against the reference is DT-R; a pure cross-plan difference is DT-P.
func (r *PlanReport) Detected() (Oracle, string) {
	if key, ok := r.NC(); ok {
		return OracleNC, key
	}
	if key, ok := r.DTR(); ok {
		return OracleDTR, key
	}
	if key, ok := r.DTP(); ok {
		return OracleDTP, key
	}
	return OracleNone, ""
}

// planTestOnce is the plan-mode body of one guarded, deadline-bounded
// attempt: testOnce with the plan set in place of the fixed build
// configurations. The stage structure, panic containment, fault
// classification and abort semantics are identical — only the compile
// fan-out and the compare stage differ.
func planTestOnce(ctx context.Context, cfg *CampaignConfig, seed int64, prog *gen.Program, inj *faultinject.Injector, cov *coverage.Map) attemptResult {
	hitsBefore := inj.Hits()
	pctx := ctx
	cancel := func() {}
	if cfg.Timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	}
	defer cancel()

	m := prog.Module
	fail := func(sf *StageFailure) attemptResult {
		if ctx.Err() != nil && !sf.Injected {
			return attemptResult{aborted: true}
		}
		return attemptResult{
			verdict:   Verdict{Seed: seed, Kind: VerdictStageFailure, Failure: sf},
			transient: sf.Injected,
		}
	}

	// Verify stage: a verification error is the wrong-rejection half of
	// the NC oracle, recorded per plan exactly as CompilePlans reports it.
	var verr error
	t0 := cfg.Telemetry.stageStart()
	if sf := guard(StageVerify, seed, m, func() {
		verr = verify.Module(m, dialects.SourceSpecs())
	}); sf != nil {
		cfg.Telemetry.stageDone(seed, StageVerify, t0, spanOutcome(sf, nil))
		return fail(sf)
	}
	cfg.Telemetry.stageDone(seed, StageVerify, t0, spanOutcome(nil, verr))

	rep := newPlanReport(prog.Expected, cfg.Plans)
	rep.Preset = cfg.Preset
	if verr != nil {
		for _, p := range cfg.Plans {
			rep.Results[p.Key()] = LevelResult{CompileErr: verr}
		}
	} else {
		// Compile stage: the shared prefix-tree compilation of
		// TestModulePlans, minus the verification already done above.
		opts := &compiler.Options{Bugs: cfg.Bugs, Ctx: pctx, Faults: inj, SkipVerify: true, Coverage: cov}
		var outs []compiler.ConfigResult
		tc := cfg.Telemetry.stageStart()
		if sf := guard(StageCompile, seed, m, func() {
			outs = compiler.CompilePlansOpts(m, opts, cfg.Plans)
		}); sf != nil {
			cfg.Telemetry.stageDone(seed, StageCompile, tc, spanOutcome(sf, nil))
			return fail(sf)
		}
		cfg.Telemetry.stageDone(seed, StageCompile, tc, "ok")
		// Interpret stage: run each successfully compiled plan.
		ti := cfg.Telemetry.stageStart()
		if sf := guard(StageInterpret, seed, m, func() {
			for i, p := range cfg.Plans {
				var lr LevelResult
				if outs[i].Err != nil {
					lr.CompileErr = outs[i].Err
				} else {
					ex := dialects.NewExecutor()
					ex.Ctx = pctx
					ex.Faults = inj
					ex.Metrics = cfg.Telemetry.interpMetrics()
					ex.Coverage = cov
					res, err := ex.Run(outs[i].Module, "main")
					if err != nil {
						lr.RunErr = err
					} else {
						lr.Output = res.Output
					}
				}
				rep.Results[p.Key()] = lr
			}
		}); sf != nil {
			cfg.Telemetry.stageDone(seed, StageInterpret, ti, spanOutcome(sf, nil))
			return fail(sf)
		}
		cfg.Telemetry.stageDone(seed, StageInterpret, ti, "ok")
	}

	// Classification sweep: injected errors and expired budgets landed
	// in the per-plan results as CompileErr/RunErr; they must become
	// stage-failure/timeout verdicts, not masquerade as NC detections.
	var injectedErr error
	var injectedStage Stage
	timedOut := false
	for _, p := range cfg.Plans {
		lr := rep.Results[p.Key()]
		if e := lr.CompileErr; e != nil {
			if faultinject.IsInjected(e) && injectedErr == nil {
				injectedErr, injectedStage = e, StageCompile
			}
			if errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled) {
				timedOut = true
			}
		}
		if e := lr.RunErr; e != nil {
			if faultinject.IsInjected(e) && injectedErr == nil {
				injectedErr, injectedStage = e, StageInterpret
			}
			if errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled) {
				timedOut = true
			}
		}
	}
	if ctx.Err() != nil {
		return attemptResult{aborted: true}
	}
	if injectedErr != nil {
		return attemptResult{
			verdict: Verdict{Seed: seed, Kind: VerdictStageFailure, Failure: &StageFailure{
				Stage:    injectedStage,
				Seed:     seed,
				Reason:   injectedErr.Error(),
				Module:   safePrint(m),
				Injected: true,
			}},
			transient: true,
		}
	}
	if timedOut {
		return attemptResult{
			verdict:   Verdict{Seed: seed, Kind: VerdictTimeout},
			transient: inj.Hits() > hitsBefore,
		}
	}

	// Compare stage.
	var oracle Oracle
	var planKey string
	tcmp := cfg.Telemetry.stageStart()
	if sf := guard(StageCompare, seed, m, func() {
		oracle, planKey = rep.Detected()
	}); sf != nil {
		cfg.Telemetry.stageDone(seed, StageCompare, tcmp, spanOutcome(sf, nil))
		return fail(sf)
	}
	cfg.Telemetry.stageDone(seed, StageCompare, tcmp, "ok")
	if oracle == OracleNone {
		return attemptResult{verdict: Verdict{Seed: seed, Kind: VerdictOK}}
	}
	return attemptResult{
		verdict: Verdict{
			Seed: seed, Kind: VerdictDetection, Oracle: oracle,
			Plan: planKey, Program: ir.Fingerprint(m),
		},
		detection: &Detection{
			Seed:       seed,
			Oracle:     oracle,
			Plan:       planKey,
			Program:    m,
			Expected:   prog.Expected,
			PlanReport: rep,
		},
	}
}
