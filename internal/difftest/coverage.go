// Campaign semantic coverage: the per-campaign union of the per-seed
// coverage maps the generator, compiler and interpreter populate while
// a seed runs. Like CampaignTelemetry, the layer is strictly
// observational — a campaign with coverage attached produces the
// byte-identical ReportText of one without, serial, parallel or
// sharded — and a nil *CampaignCoverage disables everything down to a
// nil check per instrumentation point.
//
// The union is folded from each verdict's name-keyed summary
// (Verdict.Coverage) at the exact points the engines sequence
// verdicts, never from live maps. That makes the union a pure function
// of the sequenced verdicts: a resumed campaign (whose journal lines
// carry the summaries) and a fleet coordinator (whose shards upload
// them) reconstruct the identical union.
//
// Family mode is excluded: batched families share one generated
// program across members, so a per-member map would double-count the
// shared work; the engines simply do not allocate seed maps there.
package difftest

import (
	"sync"

	"ratte/internal/coverage"
	"ratte/internal/telemetry"
)

// CampaignCoverage accumulates a campaign's semantic-coverage union.
// Construct with NewCampaignCoverage and attach via
// CampaignConfig.Coverage; all methods are safe on a nil receiver and
// from concurrent callers.
type CampaignCoverage struct {
	mu    sync.Mutex
	union *coverage.Map

	// sites mirrors the union into ratte_coverage_hits_total{site=...}
	// counters when a registry was supplied (nil otherwise).
	sites *telemetry.CounterVec
}

// NewCampaignCoverage builds the campaign coverage accumulator. When
// reg is non-nil, every folded site is also exported as a
// ratte_coverage_hits_total{site="..."} counter.
func NewCampaignCoverage(reg *telemetry.Registry) *CampaignCoverage {
	c := &CampaignCoverage{union: coverage.NewMap()}
	if reg != nil {
		c.sites = reg.CounterVec("ratte_coverage_hits_total", "site",
			"semantic-coverage hits by site (campaign union)")
	}
	return c
}

// newSeedMap returns a fresh per-seed coverage map, or nil when
// coverage is off — the nil map is inert, so the stages thread it
// unconditionally.
func (c *CampaignCoverage) newSeedMap() *coverage.Map {
	if c == nil {
		return nil
	}
	return coverage.NewMap()
}

// onVerdict folds one sequenced verdict's coverage summary into the
// union. Both engines (and AssembleResult) call it exactly where they
// record the verdict, beside CampaignTelemetry.onVerdict.
func (c *CampaignCoverage) onVerdict(v Verdict) {
	if c == nil || len(v.Coverage) == 0 {
		return
	}
	c.mu.Lock()
	c.union.AddSummary(v.Coverage)
	c.mu.Unlock()
	if c.sites != nil {
		for site, n := range v.Coverage {
			c.sites.With(site).Add(n)
		}
	}
}

// AddSummary folds an externally produced name-keyed summary (a fleet
// shard's union, a journal's reconstruction) into the campaign union.
func (c *CampaignCoverage) AddSummary(sum map[string]uint64) {
	if c == nil || len(sum) == 0 {
		return
	}
	c.mu.Lock()
	c.union.AddSummary(sum)
	c.mu.Unlock()
	if c.sites != nil {
		for site, n := range sum {
			c.sites.With(site).Add(n)
		}
	}
}

// Summary returns the union as a name-keyed summary (nil when empty or
// when coverage is off).
func (c *CampaignCoverage) Summary() map[string]uint64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.union.Summary()
}

// Sites returns the number of distinct sites hit.
func (c *CampaignCoverage) Sites() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.union.Sites()
}

// Total returns the total hit count across all sites.
func (c *CampaignCoverage) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.union.Total()
}

// Text renders the union as sorted "site count" lines — the payload of
// the -coverage-dump flag.
func (c *CampaignCoverage) Text() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.union.Text()
}
