package difftest_test

import (
	"context"
	"testing"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
)

// faultSpec is a shared non-trivial spec for header-mismatch checks.
var faultSpec = faultinject.Spec{Seed: 7, Rate: 0.5}

// fastRetries makes retry backoff negligible in tests.
const fastRetries = time.Microsecond

// TestStageFailureContainment: with faults injected at every site on
// every decision (Rate 1), the campaign must still verdict every seed —
// contained stage failures, never a crash — and account attempts,
// fault hits and quarantine correctly.
func TestStageFailureContainment(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 6,
		Size:     12,
		Seed:     1000,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
		Faults: &faultinject.Spec{
			Seed:  1,
			Rate:  1,
			Kinds: []faultinject.Kind{faultinject.KindError},
		},
		MaxRetries:   1,
		RetryBackoff: fastRetries,
	}
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Programs != cfg.Programs || len(res.Verdicts) != cfg.Programs {
		t.Fatalf("verdicted %d/%d programs", len(res.Verdicts), cfg.Programs)
	}
	if res.StageFailures != cfg.Programs {
		t.Fatalf("stage failures: %d, want %d", res.StageFailures, cfg.Programs)
	}
	if len(res.Quarantined) != cfg.Programs {
		t.Fatalf("quarantined: %d, want %d", len(res.Quarantined), cfg.Programs)
	}
	for i, v := range res.Verdicts {
		if v.Kind != difftest.VerdictStageFailure {
			t.Fatalf("verdict %d: kind %s, want stage-failure", i, v.Kind)
		}
		if v.Attempts != cfg.MaxRetries+1 {
			t.Fatalf("verdict %d: attempts %d, want %d", i, v.Attempts, cfg.MaxRetries+1)
		}
		if v.Faults < v.Attempts {
			t.Fatalf("verdict %d: %d fault hits across %d attempts", i, v.Faults, v.Attempts)
		}
		if !v.Quarantined || v.Failure == nil || !v.Failure.Injected {
			t.Fatalf("verdict %d: not a quarantined injected failure: %+v", i, v)
		}
		if v.Failure.Reason == "" {
			t.Fatalf("verdict %d: empty failure reason", i)
		}
	}
}

// TestInjectedPanicContainment: an injected panic is caught by the
// stage guard and recorded with a stack and the module text — the
// campaign keeps going.
func TestInjectedPanicContainment(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 4,
		Size:     12,
		Seed:     2000,
		Faults: &faultinject.Spec{
			Seed:  2,
			Rate:  1,
			Kinds: []faultinject.Kind{faultinject.KindPanic},
		},
		RetryBackoff: fastRetries,
	}
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Verdicts {
		if v.Kind != difftest.VerdictStageFailure || v.Failure == nil {
			t.Fatalf("verdict %d: %+v, want contained stage failure", i, v)
		}
		if !v.Failure.Injected {
			t.Fatalf("verdict %d: panic not marked injected", i)
		}
		if v.Failure.Stack == "" {
			t.Fatalf("verdict %d: contained panic has no stack", i)
		}
		if v.Failure.Module == "" {
			t.Fatalf("verdict %d: contained panic has no module text", i)
		}
	}
}

// TestRetrySucceedsAfterTransientFault: a fault budget of one means the
// first attempt fails injected and the retry runs clean — the seed must
// end with its true verdict, Attempts 2, one fault hit, no quarantine.
func TestRetrySucceedsAfterTransientFault(t *testing.T) {
	base := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 6,
		Size:     12,
		Seed:     3000,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
	clean, err := difftest.RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Faults = &faultinject.Spec{
		Seed:      3,
		Rate:      1,
		Kinds:     []faultinject.Kind{faultinject.KindError},
		MaxFaults: 1,
	}
	cfg.MaxRetries = 2
	cfg.RetryBackoff = fastRetries
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Verdicts {
		want := clean.Verdicts[i]
		if v.Kind != want.Kind || v.Oracle != want.Oracle {
			t.Fatalf("verdict %d: (%s,%s) after retry, clean run got (%s,%s)",
				i, v.Kind, v.Oracle, want.Kind, want.Oracle)
		}
		if v.Attempts != 2 {
			t.Fatalf("verdict %d: attempts %d, want 2", i, v.Attempts)
		}
		if v.Faults != 1 {
			t.Fatalf("verdict %d: fault hits %d, want 1", i, v.Faults)
		}
		if v.Quarantined {
			t.Fatalf("verdict %d: quarantined despite clean retry", i)
		}
	}
}

// TestTimeoutVerdict: an expired per-program budget is its own verdict
// kind — not a crash, not an NC detection — and a clean program that
// blew its budget is not retried (it would blow it again).
func TestTimeoutVerdict(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:     "ariths",
		Programs:   4,
		Size:       12,
		Seed:       4000,
		Timeout:    time.Nanosecond, // expired before the first stage check
		MaxRetries: 3,
	}
	res, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts != cfg.Programs {
		t.Fatalf("timeouts: %d, want %d", res.Timeouts, cfg.Programs)
	}
	for i, v := range res.Verdicts {
		if v.Kind != difftest.VerdictTimeout {
			t.Fatalf("verdict %d: kind %s, want timeout", i, v.Kind)
		}
		if v.Attempts != 1 {
			t.Fatalf("verdict %d: %d attempts for a deterministic timeout, want 1", i, v.Attempts)
		}
		if !v.Quarantined {
			t.Fatalf("verdict %d: timeout not quarantined", i)
		}
	}
}

// TestFaultedCampaignDeterminism: fault injection is addressed by
// (spec, seed, site, occurrence) — never by wall clock or goroutine —
// so a faulted campaign must produce byte-identical verdicts serial
// vs parallel at any worker count, and across repeat runs.
func TestFaultedCampaignDeterminism(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 24,
		Size:     16,
		Seed:     97,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
		Faults: &faultinject.Spec{
			Seed: 11,
			Rate: 0.002,
			Kinds: []faultinject.Kind{
				faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay,
			},
		},
		MaxRetries:   1,
		RetryBackoff: fastRetries,
	}
	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	affected := 0
	for _, v := range serial.Verdicts {
		if v.Faults > 0 {
			affected++
		}
	}
	if affected == 0 {
		t.Fatalf("no seed was affected by faults; the determinism check needs some")
	}
	again, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffResults(serial, again); d != "" {
		t.Fatalf("repeat serial run differs: %s", d)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := difftest.DiffResults(serial, parallel); d != "" {
			t.Fatalf("workers=%d: %s", workers, d)
		}
	}
}

// TestUnaffectedSeedsMatchFaultFreeRun: seeds where no fault fired must
// be byte-identical to the fault-free campaign — injection must have
// zero blast radius beyond the seeds it actually touched (in
// particular, no poisoning through shared compiled-program caches).
func TestUnaffectedSeedsMatchFaultFreeRun(t *testing.T) {
	base := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 24,
		Size:     16,
		Seed:     97,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
	clean, err := difftest.RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Faults = &faultinject.Spec{Seed: 11, Rate: 0.002}
	cfg.MaxRetries = 0
	cfg.RetryBackoff = fastRetries
	faulty, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unaffected := 0
	for i, v := range faulty.Verdicts {
		if v.Faults > 0 {
			continue
		}
		unaffected++
		want := clean.Verdicts[i]
		want.Faults = v.Faults // zero either way
		if d := difftest.DiffVerdicts([]difftest.Verdict{want}, []difftest.Verdict{v}); d != "" {
			t.Fatalf("unaffected seed %d drifted from fault-free run: %s", v.Seed, d)
		}
	}
	if unaffected == 0 {
		t.Fatalf("every seed was affected; lower the rate")
	}
}

// TestCampaignCancellation: cancelling the caller's context stops both
// engines promptly with the partial result and ctx.Err().
func TestCampaignCancellation(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: 50,
		Size:     16,
		Seed:     97,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() (*difftest.CampaignResult, error){
		"serial":   func() (*difftest.CampaignResult, error) { return difftest.RunCampaignCtx(ctx, cfg) },
		"parallel": func() (*difftest.CampaignResult, error) { return difftest.RunCampaignParallelCtx(ctx, cfg, 4) },
	} {
		res, err := run()
		if err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res == nil {
			t.Errorf("%s: cancelled campaign must still return its partial result", name)
		} else if res.Programs != len(res.Verdicts) {
			t.Errorf("%s: partial result inconsistent: %d programs, %d verdicts", name, res.Programs, len(res.Verdicts))
		}
	}
}
