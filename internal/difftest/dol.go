package difftest

import (
	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/ir"
)

// DOLAlarm implements plain different-optimisation-levels testing with
// NO reference semantics — the technique §4.2 argues MLIRSmith cannot
// usably feed. The module is compiled by the CORRECT compiler at every
// optimisation level; the "alarm" is raised when any level crashes or
// two levels print different outputs. On a correct compiler every alarm
// is a false positive, caused by undefined behaviour in the input — the
// cost the paper says "requires costly manual intervention to
// differentiate between a real bug vs. a UB".
func DOLAlarm(m *ir.Module, preset string) (compiled, alarm bool) {
	var first *string
	for _, level := range compiler.OptLevels {
		c := &compiler.Compiler{Level: level, Bugs: bugs.None()}
		lowered, err := c.Compile(m, preset)
		if err != nil {
			// Static rejection: the program never enters DOL testing.
			return false, false
		}
		compiled = true
		in := dialects.NewExecutor()
		in.MaxSteps = 2_000_000
		res, err := in.Run(lowered, "main")
		if err != nil {
			// A crash at some level: under DOL testing this reads as a
			// compiler bug — here, a false positive.
			return true, true
		}
		out := res.Output
		if first == nil {
			first = &out
		} else if *first != out {
			return true, true
		}
	}
	return compiled, false
}
