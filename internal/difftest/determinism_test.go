package difftest_test

import (
	"fmt"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

// TestCrossEngineDeterminism asserts the parallel campaign engine is a
// drop-in replacement for the serial one: for every preset, worker
// count and StopAtFirst mode, RunCampaignParallel must produce a result
// identical to RunCampaign — same program count, same detections (seed,
// oracle, program text, expected output, per-configuration report) and
// same oracle tallies. Bugs are injected so detections actually occur
// and the detection paths are exercised, not just the empty case.
func TestCrossEngineDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  difftest.CampaignConfig
	}{
		// Bug 3 (remove-dead-values drops calls) fires within a few
		// programs on every preset.
		{"ariths_bug3", difftest.CampaignConfig{Preset: "ariths", Programs: 24, Size: 16, Seed: 97, Bugs: bugs.Only(bugs.RemoveDeadValuesCall)}},
		{"linalggeneric_bug3", difftest.CampaignConfig{Preset: "linalggeneric", Programs: 24, Size: 16, Seed: 97, Bugs: bugs.Only(bugs.RemoveDeadValuesCall)}},
		{"tensor_bug3", difftest.CampaignConfig{Preset: "tensor", Programs: 24, Size: 16, Seed: 97, Bugs: bugs.Only(bugs.RemoveDeadValuesCall)}},
		// Bug 7 (floordivsi arith-expand) first fires at seed index 22
		// with this configuration, so StopAtFirst cancels a pipeline
		// that is already deep into speculative work.
		{"ariths_bug7_late", difftest.CampaignConfig{Preset: "ariths", Programs: 24, Size: 16, Seed: 97, Bugs: bugs.Only(bugs.FloorDivSiExpand)}},
	}
	for _, tc := range cases {
		for _, stop := range []bool{false, true} {
			cfg := tc.cfg
			cfg.StopAtFirst = stop
			t.Run(fmt.Sprintf("%s/stop=%v", tc.name, stop), func(t *testing.T) {
				serial, err := difftest.RunCampaign(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(serial.Detections) == 0 {
					t.Fatalf("campaign found no detections; the determinism check needs some")
				}
				for _, workers := range []int{1, 2, 4, 8} {
					parallel, err := difftest.RunCampaignParallel(cfg, workers)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					assertSameResult(t, workers, serial, parallel)
				}
			})
		}
	}
}

// assertSameResult compares two campaign results field by field,
// including the detected programs' printed text and the full
// per-configuration reports.
func assertSameResult(t *testing.T, workers int, serial, parallel *difftest.CampaignResult) {
	t.Helper()
	if serial.Programs != parallel.Programs {
		t.Errorf("workers=%d: programs: serial %d, parallel %d", workers, serial.Programs, parallel.Programs)
	}
	if len(serial.Detections) != len(parallel.Detections) {
		t.Fatalf("workers=%d: detections: serial %d, parallel %d", workers, len(serial.Detections), len(parallel.Detections))
	}
	for i := range serial.Detections {
		s, p := serial.Detections[i], parallel.Detections[i]
		if s.Seed != p.Seed || s.Oracle != p.Oracle || s.Expected != p.Expected {
			t.Errorf("workers=%d: detection %d: serial (seed %d, %s), parallel (seed %d, %s)",
				workers, i, s.Seed, s.Oracle, p.Seed, p.Oracle)
		}
		if ir.Print(s.Program) != ir.Print(p.Program) {
			t.Errorf("workers=%d: detection %d: program text differs", workers, i)
		}
		for _, bc := range difftest.BuildConfigs {
			sl, pl := s.Report.Levels[bc], p.Report.Levels[bc]
			if sl.Output != pl.Output ||
				(sl.CompileErr == nil) != (pl.CompileErr == nil) ||
				(sl.RunErr == nil) != (pl.RunErr == nil) {
				t.Errorf("workers=%d: detection %d: report for %s differs", workers, i, bc)
			}
		}
	}
	if len(serial.ByOracle) != len(parallel.ByOracle) {
		t.Errorf("workers=%d: byOracle: serial %v, parallel %v", workers, serial.ByOracle, parallel.ByOracle)
	}
	for o, n := range serial.ByOracle {
		if parallel.ByOracle[o] != n {
			t.Errorf("workers=%d: oracle %s: serial %d, parallel %d", workers, o, n, parallel.ByOracle[o])
		}
	}
}

// TestParallelStopAtFirstProgramCount pins the satellite fix: under
// StopAtFirst the parallel runner must report the serial runner's
// program count (programs tested up to and including the first in-order
// detection), not the number of speculatively drained jobs.
func TestParallelStopAtFirstProgramCount(t *testing.T) {
	cfg := difftest.CampaignConfig{
		Preset:      "ariths",
		Programs:    24,
		Size:        16,
		Seed:        97,
		Bugs:        bugs.Only(bugs.FloorDivSiExpand),
		StopAtFirst: true,
	}
	serial, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Detections) != 1 {
		t.Fatalf("serial campaign found %d detections, want 1", len(serial.Detections))
	}
	if serial.Programs == cfg.Programs {
		t.Fatalf("serial campaign did not stop early; pick a later-firing configuration")
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Programs != serial.Programs {
			t.Errorf("workers=%d: programs = %d, want %d (serial)", workers, parallel.Programs, serial.Programs)
		}
		if len(parallel.Detections) != 1 || parallel.Detections[0].Seed != serial.Detections[0].Seed {
			t.Errorf("workers=%d: wrong first detection", workers)
		}
		if parallel.ByOracle[serial.Detections[0].Oracle] != 1 || len(parallel.ByOracle) != 1 {
			t.Errorf("workers=%d: byOracle = %v", workers, parallel.ByOracle)
		}
	}
}

// TestPresetsCoveredByDeterminism keeps the determinism matrix honest:
// if a new generator preset is added, this fails until the matrix above
// covers it.
func TestPresetsCoveredByDeterminism(t *testing.T) {
	covered := map[string]bool{"ariths": true, "linalggeneric": true, "tensor": true}
	for _, p := range gen.Presets() {
		if !covered[p] {
			t.Errorf("preset %q is not covered by TestCrossEngineDeterminism", p)
		}
	}
}
