// The fault-isolated per-seed pipeline: generate → verify → compile →
// interpret → compare, each stage guarded against panics, the whole
// attempt bounded by a per-program wall-clock budget, with bounded
// retry for transient (injected) failures. Both campaign engines run
// seeds through this file, which is what makes their verdicts
// byte-identical: everything here depends only on (config, seed).
package difftest

import (
	"context"
	"errors"
	"time"

	"ratte/internal/compiler"
	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/faultinject"
	"ratte/internal/gen"
	"ratte/internal/verify"
)

// DefaultRetryBackoff is the base delay between attempts of a seed
// that failed transiently (doubled per retry) when CampaignConfig
// leaves RetryBackoff zero.
const DefaultRetryBackoff = time.Millisecond

// seedOutcome is everything one seed's pipeline produced.
type seedOutcome struct {
	verdict   Verdict
	detection *Detection
	// genErr is a non-panic generation failure; it aborts the whole
	// campaign exactly as it always has (a broken generator is a bug
	// in the fuzzer, not in the compiler under test).
	genErr error
	// aborted means the campaign context was cancelled mid-seed; the
	// seed has no verdict and the engine should drain and stop.
	aborted bool
}

// runSeed executes the full per-seed pipeline. It is the one entry
// point both engines share.
func runSeed(ctx context.Context, cfg *CampaignConfig, seed int64) seedOutcome {
	cov := cfg.Coverage.newSeedMap()
	prog, sf, err := generateStage(cfg, seed, cov)
	if err != nil {
		return seedOutcome{genErr: err}
	}
	if sf != nil {
		return seedOutcome{verdict: Verdict{
			Seed: seed, Kind: VerdictStageFailure, Failure: sf,
			Attempts: 1, Quarantined: true,
			Coverage: cov.Summary(),
		}}
	}
	return testSeed(ctx, cfg, seed, prog, cov)
}

// generateStage produces the seed's program with panic containment.
// Generation runs outside the per-program budget and the fault
// injector: the generator is our own deterministic code, and a
// contained panic here is a generator bug worth a verdict of its own.
// cov is the seed's coverage map (nil when coverage is off).
func generateStage(cfg *CampaignConfig, seed int64, cov *coverage.Map) (p *gen.Program, sf *StageFailure, err error) {
	t0 := cfg.Telemetry.stageStart()
	sf = guard(StageGenerate, seed, nil, func() {
		p, err = gen.Generate(gen.Config{
			Preset: cfg.Preset, Size: cfg.Size, Seed: seed,
			Metrics:  cfg.Telemetry.genMetrics(),
			Coverage: cov,
		})
	})
	if sf != nil {
		p, err = nil, nil
	}
	cfg.Telemetry.stageDone(seed, StageGenerate, t0, spanOutcome(sf, err))
	return p, sf, err
}

// spanOutcome classifies a stage execution for its span record.
func spanOutcome(sf *StageFailure, err error) string {
	switch {
	case sf != nil && sf.Injected:
		return "injected"
	case sf != nil:
		return "panic"
	case err != nil:
		return "error"
	}
	return "ok"
}

// attemptResult is one attempt's outcome, before retry accounting.
type attemptResult struct {
	verdict   Verdict
	detection *Detection
	// transient marks failures worth retrying: injected faults, and
	// timeouts that an injected delay plausibly caused.
	transient bool
	aborted   bool
}

// testSeed differentially tests one generated program, retrying
// transient failures up to cfg.MaxRetries with exponential backoff and
// quarantining seeds that never produce a clean attempt. One injector
// serves all attempts, so retries see fresh fault decisions (site
// occurrence counters advance) — the model of a transient failure.
func testSeed(ctx context.Context, cfg *CampaignConfig, seed int64, prog *gen.Program, cov *coverage.Map) seedOutcome {
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(cfg.Faults.ForSeed(seed))
		if cfg.Telemetry != nil {
			inj.SetObserver(cfg.Telemetry.onFault)
		}
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	for attempt := 1; ; attempt++ {
		var out attemptResult
		if len(cfg.Plans) > 0 {
			out = planTestOnce(ctx, cfg, seed, prog, inj, cov)
		} else {
			out = testOnce(ctx, cfg, seed, prog, inj, cov)
		}
		if out.aborted {
			return seedOutcome{aborted: true}
		}
		if !out.transient || attempt > cfg.MaxRetries {
			v := out.verdict
			v.Attempts = attempt
			v.Faults = inj.Hits()
			if v.Kind == VerdictStageFailure || v.Kind == VerdictTimeout {
				v.Quarantined = true
			}
			// The summary spans every attempt (retries are themselves
			// deterministic per seed), so the verdict's coverage is a
			// pure function of (config, seed).
			v.Coverage = cov.Summary()
			return seedOutcome{verdict: v, detection: out.detection}
		}
		time.Sleep(backoff << (attempt - 1))
	}
}

// testOnce is one guarded, deadline-bounded attempt: the verify,
// compile, interpret and compare stages of TestModule, each under
// panic containment, with the per-program context threaded through the
// compiler's pass pipeline and both execution engines.
func testOnce(ctx context.Context, cfg *CampaignConfig, seed int64, prog *gen.Program, inj *faultinject.Injector, cov *coverage.Map) attemptResult {
	hitsBefore := inj.Hits()
	pctx := ctx
	cancel := func() {}
	if cfg.Timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	}
	defer cancel()

	m := prog.Module
	fail := func(sf *StageFailure) attemptResult {
		if ctx.Err() != nil && !sf.Injected {
			return attemptResult{aborted: true}
		}
		return attemptResult{
			verdict:   Verdict{Seed: seed, Kind: VerdictStageFailure, Failure: sf},
			transient: sf.Injected,
		}
	}

	// Verify stage. A verification error is not a stage failure: it is
	// the wrong-rejection half of the NC oracle, recorded per config
	// exactly as CompileConfigs reports it.
	var verr error
	t0 := cfg.Telemetry.stageStart()
	if sf := guard(StageVerify, seed, m, func() {
		verr = verify.Module(m, dialects.SourceSpecs())
	}); sf != nil {
		cfg.Telemetry.stageDone(seed, StageVerify, t0, spanOutcome(sf, nil))
		return fail(sf)
	}
	cfg.Telemetry.stageDone(seed, StageVerify, t0, spanOutcome(nil, verr))

	rep := &Report{
		Preset:    cfg.Preset,
		Reference: prog.Expected,
		Levels:    make(map[BuildConfig]LevelResult, len(BuildConfigs)),
	}
	if verr != nil {
		for _, bc := range BuildConfigs {
			rep.Levels[bc] = LevelResult{CompileErr: verr}
		}
	} else {
		// Compile stage: the shared-prefix compilation of TestModule,
		// minus the verification already done above.
		opts := &compiler.Options{Bugs: cfg.Bugs, Ctx: pctx, Faults: inj, SkipVerify: true, Coverage: cov}
		var outs []compiler.ConfigResult
		tc := cfg.Telemetry.stageStart()
		if sf := guard(StageCompile, seed, m, func() {
			outs = compiler.CompileConfigsOpts(m, cfg.Preset, opts, BuildConfigs)
		}); sf != nil {
			cfg.Telemetry.stageDone(seed, StageCompile, tc, spanOutcome(sf, nil))
			return fail(sf)
		}
		cfg.Telemetry.stageDone(seed, StageCompile, tc, "ok")
		// Interpret stage: run each successfully compiled config.
		ti := cfg.Telemetry.stageStart()
		if sf := guard(StageInterpret, seed, m, func() {
			for i, bc := range BuildConfigs {
				var lr LevelResult
				if outs[i].Err != nil {
					lr.CompileErr = outs[i].Err
				} else {
					ex := dialects.NewExecutor()
					ex.Ctx = pctx
					ex.Faults = inj
					ex.Metrics = cfg.Telemetry.interpMetrics()
					ex.Coverage = cov
					res, err := ex.Run(outs[i].Module, "main")
					if err != nil {
						lr.RunErr = err
					} else {
						lr.Output = res.Output
					}
				}
				rep.Levels[bc] = lr
			}
		}); sf != nil {
			cfg.Telemetry.stageDone(seed, StageInterpret, ti, spanOutcome(sf, nil))
			return fail(sf)
		}
		cfg.Telemetry.stageDone(seed, StageInterpret, ti, "ok")
	}

	// Classification sweep: injected errors and expired budgets landed
	// in the per-config results as CompileErr/RunErr; they must become
	// stage-failure/timeout verdicts, not masquerade as NC detections.
	var injectedErr error
	var injectedStage Stage
	timedOut := false
	for _, bc := range BuildConfigs {
		lr := rep.Levels[bc]
		if e := lr.CompileErr; e != nil {
			if faultinject.IsInjected(e) && injectedErr == nil {
				injectedErr, injectedStage = e, StageCompile
			}
			if errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled) {
				timedOut = true
			}
		}
		if e := lr.RunErr; e != nil {
			if faultinject.IsInjected(e) && injectedErr == nil {
				injectedErr, injectedStage = e, StageInterpret
			}
			if errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled) {
				timedOut = true
			}
		}
	}
	if ctx.Err() != nil {
		// The campaign itself was cancelled (signal, StopAtFirst):
		// whatever this attempt observed is an artifact of shutdown.
		return attemptResult{aborted: true}
	}
	if injectedErr != nil {
		return attemptResult{
			verdict: Verdict{Seed: seed, Kind: VerdictStageFailure, Failure: &StageFailure{
				Stage:    injectedStage,
				Seed:     seed,
				Reason:   injectedErr.Error(),
				Module:   safePrint(m),
				Injected: true,
			}},
			transient: true,
		}
	}
	if timedOut {
		return attemptResult{
			verdict: Verdict{Seed: seed, Kind: VerdictTimeout},
			// A timeout during a fault-injected attempt (delays!) is
			// worth retrying; a clean program that blows its budget
			// will blow it again.
			transient: inj.Hits() > hitsBefore,
		}
	}

	// Compare stage.
	var oracle Oracle
	tcmp := cfg.Telemetry.stageStart()
	if sf := guard(StageCompare, seed, m, func() {
		oracle = rep.Detected()
	}); sf != nil {
		cfg.Telemetry.stageDone(seed, StageCompare, tcmp, spanOutcome(sf, nil))
		return fail(sf)
	}
	cfg.Telemetry.stageDone(seed, StageCompare, tcmp, "ok")
	if oracle == OracleNone {
		return attemptResult{verdict: Verdict{Seed: seed, Kind: VerdictOK}}
	}
	return attemptResult{
		verdict: Verdict{Seed: seed, Kind: VerdictDetection, Oracle: oracle},
		detection: &Detection{
			Seed:     seed,
			Oracle:   oracle,
			Program:  m,
			Expected: prog.Expected,
			Report:   rep,
		},
	}
}

// resumedDetection reconstructs the Detection entry for a seed whose
// verdict was replayed from a journal. The program and report are not
// journaled — they are regenerable from the seed — so only the fields
// the final report uses are populated.
func resumedDetection(v Verdict) *Detection {
	return &Detection{Seed: v.Seed, Oracle: v.Oracle, Plan: v.Plan}
}
