// Campaign telemetry: the instrument bundle both campaign engines feed
// while they run. One CampaignTelemetry owns a metrics registry and a
// span recorder; the per-seed pipeline records a span per stage
// (generate/verify/compile/interpret/compare, plus journal I/O), the
// engines count verdicts as they are sequenced, the generator reports
// its op-coverage distribution, the interpreter its run/step counters,
// and the shared program/pipeline caches are exported as callback
// gauges read only at scrape time.
//
// Everything here is observation: a campaign with telemetry attached
// produces the byte-identical ReportText of one without, serial or
// parallel (TestTelemetryDoesNotPerturbDeterminism pins this). A nil
// *CampaignTelemetry disables the whole layer — the stages then pay a
// nil check and not even a time.Now.
package difftest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/faultinject"
	"ratte/internal/gen"
	"ratte/internal/interp"
	"ratte/internal/telemetry"
)

// DefaultSlowestN is how many of the costliest seeds the telemetry
// report section lists.
const DefaultSlowestN = 10

// journalStage is the span-recorder key for journal appends; it sits
// beside the pipeline stages in the latency table.
const journalStage = "journal"

// CampaignTelemetry instruments one campaign. Construct with
// NewCampaignTelemetry and attach via CampaignConfig.Telemetry; all
// methods are safe on a nil receiver and from concurrent workers.
type CampaignTelemetry struct {
	// Registry holds every metric this campaign emits (plus the
	// process-wide cache gauges). Export it via PrometheusText /
	// Snapshot, or serve it with telemetry.Serve.
	Registry *telemetry.Registry
	// Spans is the stage-span recorder behind the latency table and
	// the slowest-seeds list.
	Spans *telemetry.SpanRecorder
	// SlowestN overrides how many seeds ReportSection lists
	// (DefaultSlowestN if 0).
	SlowestN int

	seedsDone   *telemetry.Counter
	verdicts    *telemetry.CounterVec
	vOK         *telemetry.Counter
	vDetection  *telemetry.Counter
	vFailure    *telemetry.Counter
	vTimeout    *telemetry.Counter
	oracles     *telemetry.CounterVec
	retries     *telemetry.Counter
	quarantined *telemetry.Counter
	faults      *telemetry.CounterVec
	stageLat    map[Stage]*telemetry.Histogram
	journalLat  *telemetry.Histogram

	genM    *gen.Metrics
	interpM *interp.Metrics

	total       atomic.Int64
	startNano   atomic.Int64
	journalOnce sync.Once
	planOnce    sync.Once
	planPos     *telemetry.CounterVec
}

// NewCampaignTelemetry builds the campaign instrument bundle on the
// given registry (a fresh private registry when reg is nil). The
// shared program caches and the compiler's pipeline cache are
// registered as callback gauges — their counters are always on inside
// the caches; exporting them costs nothing until scraped.
func NewCampaignTelemetry(reg *telemetry.Registry) *CampaignTelemetry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	t := &CampaignTelemetry{
		Registry: reg,
		Spans:    telemetry.NewSpanRecorder(0),
		seedsDone: reg.Counter("ratte_campaign_seeds_done_total",
			"seeds with a final verdict (resumed seeds included)"),
		verdicts: reg.CounterVec("ratte_campaign_verdicts_total", "kind",
			"final verdicts by kind"),
		oracles: reg.CounterVec("ratte_campaign_detections_total", "oracle",
			"detections by firing oracle"),
		retries: reg.Counter("ratte_campaign_retries_total",
			"re-attempts of transiently failing seeds"),
		quarantined: reg.Counter("ratte_campaign_quarantined_total",
			"seeds that never produced a testable attempt"),
		faults: reg.CounterVec("ratte_campaign_faults_total", "site",
			"injected faults fired, by site"),
		planPos: reg.CounterVec("ratte_plan_pass_position_total", "pass",
			"sampled plan-set coverage: occurrences of each pass at each pipeline position (pass@pos)"),
		stageLat: make(map[Stage]*telemetry.Histogram),
	}
	t.vOK = t.verdicts.With(string(VerdictOK))
	t.vDetection = t.verdicts.With(string(VerdictDetection))
	t.vFailure = t.verdicts.With(string(VerdictStageFailure))
	t.vTimeout = t.verdicts.With(string(VerdictTimeout))
	for _, st := range []Stage{StageGenerate, StageVerify, StageCompile, StageInterpret, StageCompare} {
		t.stageLat[st] = reg.HistogramWith("ratte_stage_latency_ns",
			`stage="`+string(st)+`"`, "per-seed pipeline stage latency")
	}
	t.journalLat = reg.HistogramWith("ratte_stage_latency_ns",
		`stage="`+journalStage+`"`, "per-seed pipeline stage latency")
	t.genM = gen.NewMetrics(reg)
	t.interpM = interp.NewMetrics(reg)

	interp.RegisterProgramCacheMetrics(reg, "source", dialects.SourceProgramCache())
	interp.RegisterProgramCacheMetrics(reg, "executor", dialects.ExecutorProgramCache())
	reg.GaugeFunc("ratte_compiler_pipeline_cache_hits", "memoized pass-pipeline lookups served from cache",
		func() int64 { h, _, _ := compiler.PipelineCacheStats(); return int64(h) })
	reg.GaugeFunc("ratte_compiler_pipeline_cache_misses", "pass-pipeline builds", func() int64 {
		_, m, _ := compiler.PipelineCacheStats()
		return int64(m)
	})
	reg.GaugeFunc("ratte_compiler_pipeline_cache_size", "distinct memoized pipelines", func() int64 {
		_, _, s := compiler.PipelineCacheStats()
		return int64(s)
	})
	return t
}

// begin stamps the campaign's size and start time; idempotent, so a
// resumed or restarted engine keeps the first start.
func (t *CampaignTelemetry) begin(total int) {
	if t == nil {
		return
	}
	t.total.Store(int64(total))
	t.startNano.CompareAndSwap(0, time.Now().UnixNano())
}

// stageStart returns the stage clock's start — the zero time (no
// clock read at all) when telemetry is off.
func (t *CampaignTelemetry) stageStart() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone records one stage span.
func (t *CampaignTelemetry) stageDone(seed int64, stage Stage, start time.Time, outcome string) {
	if t == nil {
		return
	}
	d := time.Since(start)
	t.Spans.Record(seed, string(stage), d, outcome)
	t.stageLat[stage].ObserveDuration(d)
}

// onFault is the fault-injector observer: counts fired faults by site.
func (t *CampaignTelemetry) onFault(f faultinject.Fault) {
	t.faults.Inc(f.Site)
}

// onVerdict folds one sequenced verdict into the counters and
// finalizes the seed's span total. Both engines call it exactly where
// they record the verdict, so counts match the final report.
func (t *CampaignTelemetry) onVerdict(v Verdict) {
	if t == nil {
		return
	}
	t.seedsDone.Inc()
	switch v.Kind {
	case VerdictOK:
		t.vOK.Inc()
	case VerdictDetection:
		t.vDetection.Inc()
		t.oracles.Inc(string(v.Oracle))
	case VerdictStageFailure:
		t.vFailure.Inc()
	case VerdictTimeout:
		t.vTimeout.Inc()
	default:
		t.verdicts.Inc(string(v.Kind))
	}
	if v.Quarantined {
		t.quarantined.Inc()
	}
	if v.Attempts > 1 {
		t.retries.Add(uint64(v.Attempts - 1))
	}
	t.Spans.SeedDone(v.Seed, string(v.Kind))
}

// journalDone records one journal append's latency.
func (t *CampaignTelemetry) journalDone(start time.Time) {
	if t == nil {
		return
	}
	d := time.Since(start)
	t.journalLat.ObserveDuration(d)
	t.Spans.Record(-1, journalStage, d, "")
}

// attachJournal exposes the journal's line/byte counters as gauges
// (registered once per telemetry instance).
func (t *CampaignTelemetry) attachJournal(j *Journal) {
	if t == nil || j == nil {
		return
	}
	t.journalOnce.Do(func() {
		t.Registry.GaugeFunc("ratte_journal_lines", "verdict lines appended (header included)",
			func() int64 { l, _ := j.Written(); return l })
		t.Registry.GaugeFunc("ratte_journal_bytes", "bytes appended to the campaign journal",
			func() int64 { _, b := j.Written(); return b })
	})
}

// attachPlans exposes a plan-mode campaign's plan-space coverage: the
// plan-set size as a gauge and, for every plan, each pass occurrence
// counted at its pipeline position ("name@pos"). The counts describe
// the sampled set itself — which phase orders this campaign exercises
// — and are registered once per telemetry instance.
func (t *CampaignTelemetry) attachPlans(plans []compiler.Plan) {
	if t == nil || len(plans) == 0 {
		return
	}
	t.planOnce.Do(func() {
		n := int64(len(plans))
		t.Registry.GaugeFunc("ratte_plan_set_size", "sampled compilation plans per program",
			func() int64 { return n })
		for _, p := range plans {
			for pos, name := range p.Passes {
				t.planPos.Inc(fmt.Sprintf("%s@%d", name, pos))
			}
		}
	})
}

// genMetrics returns the generator instrument bundle (nil when
// telemetry is off).
func (t *CampaignTelemetry) genMetrics() *gen.Metrics {
	if t == nil {
		return nil
	}
	return t.genM
}

// interpMetrics returns the interpreter instrument bundle (nil when
// telemetry is off).
func (t *CampaignTelemetry) interpMetrics() *interp.Metrics {
	if t == nil {
		return nil
	}
	return t.interpM
}

// CacheHitRate returns the executor program cache's lifetime hit rate
// in [0,1] (0 with no lookups).
func CacheHitRate() float64 {
	st := dialects.ExecutorProgramCache().StatsDetail()
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// ProgressLine renders the one-line live status the -progress flag
// prints: seeds done/total, verdict tallies, throughput, cache hit
// rate and ETA. Safe to call from any goroutine while the campaign
// runs; returns "" when telemetry is off or the campaign has not
// started.
func (t *CampaignTelemetry) ProgressLine() string {
	if t == nil {
		return ""
	}
	start := t.startNano.Load()
	if start == 0 {
		return ""
	}
	done := int64(t.seedsDone.Value())
	total := t.total.Load()
	elapsed := time.Since(time.Unix(0, start))
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	eta := "-"
	if rate > 0 && total > done {
		eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second).String()
	}
	var b strings.Builder
	pctDone := 0.0
	if total > 0 {
		pctDone = 100 * float64(done) / float64(total)
	}
	fmt.Fprintf(&b, "progress: %d/%d (%.1f%%)", done, total, pctDone)
	fmt.Fprintf(&b, " | ok:%d det:%d fail:%d to:%d",
		t.vOK.Value(), t.vDetection.Value(), t.vFailure.Value(), t.vTimeout.Value())
	fmt.Fprintf(&b, " | %.1f/sec", rate)
	fmt.Fprintf(&b, " | cache %.1f%%", 100*CacheHitRate())
	fmt.Fprintf(&b, " | eta %s", eta)
	return b.String()
}

// ReportSection renders the telemetry appendix of the final report:
// the per-stage latency table, the slowest-N seeds, and cache
// effectiveness. Timings vary run to run, so this section is printed
// after — never inside — the canonical ReportText the determinism
// guards compare. Returns "" when telemetry is off.
func (t *CampaignTelemetry) ReportSection() string {
	if t == nil {
		return ""
	}
	n := t.SlowestN
	if n <= 0 {
		n = DefaultSlowestN
	}
	var b strings.Builder
	b.WriteString(t.Spans.ReportSection(n))
	ex := dialects.ExecutorProgramCache().StatsDetail()
	src := dialects.SourceProgramCache().StatsDetail()
	fmt.Fprintf(&b, "  program cache (executor): %d hits, %d misses, %d evictions, %d entries\n",
		ex.Hits, ex.Misses, ex.Evictions, ex.Size)
	fmt.Fprintf(&b, "  program cache (source):   %d hits, %d misses, %d evictions, %d entries\n",
		src.Hits, src.Misses, src.Evictions, src.Size)
	ph, pm, ps := compiler.PipelineCacheStats()
	fmt.Fprintf(&b, "  pipeline cache: %d hits, %d misses, %d pipelines\n", ph, pm, ps)
	return b.String()
}
