package difftest_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ratte/internal/difftest"
	"ratte/internal/telemetry"
)

// TestCoverageDoesNotPerturbDeterminism is the coverage layer's core
// guarantee, at the same bar as telemetry: attaching coverage changes
// nothing about a campaign's results. Coverage on vs off, serial vs
// parallel — every combination must produce byte-identical canonical
// reports.
func TestCoverageDoesNotPerturbDeterminism(t *testing.T) {
	run := func(withCov bool, workers int) string {
		cfg := telemetryTestConfig()
		if withCov {
			cfg.Coverage = difftest.NewCampaignCoverage(nil)
		}
		res, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatalf("coverage=%v workers=%d: %v", withCov, workers, err)
		}
		if withCov && cfg.Coverage.Sites() == 0 {
			t.Fatalf("coverage=%v workers=%d: campaign hit no coverage sites", withCov, workers)
		}
		return difftest.ReportText(res)
	}

	baseline := run(false, 1)
	for _, c := range []struct {
		withCov bool
		workers int
	}{{true, 1}, {true, 4}} {
		got := run(c.withCov, c.workers)
		if got != baseline {
			t.Errorf("coverage=%v workers=%d: report diverges from baseline\n--- baseline ---\n%s\n--- got ---\n%s",
				c.withCov, c.workers, baseline, got)
		}
	}
}

// TestCampaignCoverageUnionDeterminism pins the union itself: serial
// and parallel runs of the same campaign fold the identical
// site-by-site union, and it reaches every instrumented layer.
func TestCampaignCoverageUnionDeterminism(t *testing.T) {
	run := func(workers int) map[string]uint64 {
		cfg := telemetryTestConfig()
		cfg.Coverage = difftest.NewCampaignCoverage(nil)
		if _, err := difftest.RunCampaignParallel(cfg, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return cfg.Coverage.Summary()
	}

	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel unions differ\nserial:   %v\nparallel: %v", serial, parallel)
	}
	// Every instrumented layer contributed: generation, compilation
	// (pass runs at minimum) and interpretation.
	for _, prefix := range []string{"gen/pick/", "gen/op/", "compiler/pass/", "interp/op/"} {
		found := false
		for site := range serial {
			if strings.HasPrefix(site, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no site with prefix %q in campaign union", prefix)
		}
	}
}

// TestCoverageResumeReconstructsUnion checks the journal path: verdict
// summaries ride journal lines, so a resumed campaign folds the exact
// union of the original run without re-executing a single seed.
func TestCoverageResumeReconstructsUnion(t *testing.T) {
	cfg := telemetryTestConfig()
	cfg.Coverage = difftest.NewCampaignCoverage(nil)
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := difftest.CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	if _, err := difftest.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := cfg.Coverage.Summary()
	if len(want) == 0 {
		t.Fatal("original campaign produced an empty union")
	}

	// Resume with every seed replayed from the journal: the union must
	// be rebuilt from the journaled summaries alone.
	rcfg := telemetryTestConfig()
	rcfg.Coverage = difftest.NewCampaignCoverage(nil)
	rj, resumed, err := difftest.OpenJournalForResume(path, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Close()
	if len(resumed) != rcfg.Programs {
		t.Fatalf("resumed %d verdicts, want %d", len(resumed), rcfg.Programs)
	}
	rcfg.Journal = rj
	rcfg.Resumed = resumed
	if _, err := difftest.RunCampaign(rcfg); err != nil {
		t.Fatal(err)
	}
	if got := rcfg.Coverage.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed union differs from original\noriginal: %v\nresumed:  %v", want, got)
	}
}

// TestCoverageOffJournalUnchanged pins the omitempty contract: a
// coverage-off campaign's journal is byte-identical to one written
// before the coverage field existed — no "cov" key appears anywhere.
func TestCoverageOffJournalUnchanged(t *testing.T) {
	cfg := telemetryTestConfig()
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := difftest.CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	if _, err := difftest.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"cov"`) {
		t.Error(`coverage-off journal contains a "cov" field`)
	}
}

// TestCampaignCoverageTelemetryExport checks the CounterVec mirror: with
// a registry attached, the exported ratte_coverage_hits_total series
// agree site for site with the campaign union.
func TestCampaignCoverageTelemetryExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := telemetryTestConfig()
	cfg.Coverage = difftest.NewCampaignCoverage(reg)
	if _, err := difftest.RunCampaignParallel(cfg, 4); err != nil {
		t.Fatal(err)
	}
	sum := cfg.Coverage.Summary()
	if len(sum) == 0 {
		t.Fatal("empty union")
	}
	counters := reg.Counters()
	for site, n := range sum {
		series := `ratte_coverage_hits_total{site="` + site + `"}`
		if got := counters[series]; got != n {
			t.Errorf("%s = %d, want %d", series, got, n)
		}
	}
	var exported int
	for series := range counters {
		if strings.HasPrefix(series, "ratte_coverage_hits_total{") {
			exported++
		}
	}
	if exported != len(sum) {
		t.Errorf("exported %d coverage series, union has %d sites", exported, len(sum))
	}
}
