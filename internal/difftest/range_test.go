package difftest_test

import (
	"context"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
)

func rangeCfg(programs int) difftest.CampaignConfig {
	return difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: programs,
		Size:     16,
		Seed:     97,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
}

// TestRunCampaignRangeMatchesSerial: the concatenation of shard-ranged
// runs is verdict-identical to one serial run — the invariant the
// fleet's merge determinism stands on — and AssembleResult over the
// spliced stream reproduces the serial report byte for byte.
func TestRunCampaignRangeMatchesSerial(t *testing.T) {
	cfg := rangeCfg(24)
	want, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		var spliced []difftest.Verdict
		for _, shard := range []struct{ first, count int }{{0, 7}, {7, 7}, {14, 10}} {
			vs, err := difftest.RunCampaignRange(context.Background(), cfg, shard.first, shard.count, workers)
			if err != nil {
				t.Fatalf("workers=%d shard [%d,%d): %v", workers, shard.first, shard.first+shard.count, err)
			}
			spliced = append(spliced, vs...)
		}
		if d := difftest.DiffVerdicts(want.Verdicts, spliced); d != "" {
			t.Fatalf("workers=%d: spliced ranges differ from serial: %s", workers, d)
		}
		res := difftest.AssembleResult(cfg, spliced)
		if a, b := difftest.ReportText(want), difftest.ReportText(res); a != b {
			t.Fatalf("workers=%d: assembled report differs from serial:\n--- serial\n%s--- assembled\n%s", workers, a, b)
		}
	}
}

// TestRunCampaignRangePlansAndFamilies: shard-ranged runs agree with
// the serial engine in plan-fuzzing mode and in batched family mode
// too — the modes the fleet must not perturb.
func TestRunCampaignRangePlansAndFamilies(t *testing.T) {
	plans, err := compiler.SamplePlans("ariths", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  difftest.CampaignConfig
	}{
		{"plans", func() difftest.CampaignConfig {
			c := rangeCfg(12)
			c.Plans = plans
			return c
		}()},
		{"batched-family", difftest.CampaignConfig{
			Preset: "ariths", Programs: 16, Size: 16, Seed: 97,
			FamilySize: 4, Batched: true,
			Bugs: bugs.Only(bugs.RemoveDeadValuesCall),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := difftest.RunCampaign(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			half := tc.cfg.Programs / 2
			var spliced []difftest.Verdict
			for _, shard := range []struct{ first, count int }{{0, half}, {half, tc.cfg.Programs - half}} {
				vs, err := difftest.RunCampaignRange(context.Background(), tc.cfg, shard.first, shard.count, 2)
				if err != nil {
					t.Fatal(err)
				}
				spliced = append(spliced, vs...)
			}
			if d := difftest.DiffVerdicts(want.Verdicts, spliced); d != "" {
				t.Fatalf("spliced ranges differ from serial: %s", d)
			}
			if a, b := difftest.ReportText(want), difftest.ReportText(difftest.AssembleResult(tc.cfg, spliced)); a != b {
				t.Fatalf("assembled report differs from serial:\n--- serial\n%s--- assembled\n%s", a, b)
			}
		})
	}
}

// TestValidateShardRange: bounds and family-alignment violations are
// rejected before any work runs.
func TestValidateShardRange(t *testing.T) {
	plain := rangeCfg(20)
	family := difftest.CampaignConfig{Preset: "ariths", Programs: 20, Size: 12, Seed: 1, FamilySize: 4}
	cases := []struct {
		name         string
		cfg          *difftest.CampaignConfig
		first, count int
		ok           bool
	}{
		{"whole", &plain, 0, 20, true},
		{"inner", &plain, 5, 10, true},
		{"negative-first", &plain, -1, 5, false},
		{"zero-count", &plain, 0, 0, false},
		{"past-end", &plain, 15, 6, false},
		{"family-aligned", &family, 4, 8, true},
		{"family-tail", &family, 16, 4, true},
		{"family-misaligned-start", &family, 2, 4, false},
		{"family-misaligned-count", &family, 0, 6, false},
	}
	for _, tc := range cases {
		err := difftest.ValidateShardRange(tc.cfg, tc.first, tc.count)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid shard [%d,%d) accepted", tc.name, tc.first, tc.first+tc.count)
		}
	}
}

// TestCampaignFingerprintSensitivity: the fingerprint moves with every
// verdict-relevant knob and ignores the program count — the contract
// worker registration validates against.
func TestCampaignFingerprintSensitivity(t *testing.T) {
	base := rangeCfg(20)
	fp := func(c difftest.CampaignConfig) string {
		t.Helper()
		b, err := difftest.CampaignFingerprint(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := fp(base)

	same := base
	same.Programs = 4000
	if fp(same) != want {
		t.Fatal("program count must be outside the fingerprint")
	}

	mutations := map[string]func(*difftest.CampaignConfig){
		"preset": func(c *difftest.CampaignConfig) { c.Preset = "tensor" },
		"seed":   func(c *difftest.CampaignConfig) { c.Seed++ },
		"size":   func(c *difftest.CampaignConfig) { c.Size++ },
		"bugs":   func(c *difftest.CampaignConfig) { c.Bugs = bugs.None() },
		"family": func(c *difftest.CampaignConfig) { c.FamilySize = 4 },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if fp(c) == want {
			t.Errorf("%s: fingerprint unchanged by a verdict-relevant knob", name)
		}
	}
}
