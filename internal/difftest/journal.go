// The campaign journal: an append-only JSONL record that makes a
// campaign durable. Line 1 is a header fingerprinting the campaign
// configuration; every following line is one seed's final Verdict, in
// seed order. A journal plus the original flags reproduces the exact
// final report — the verdicts ARE the campaign, because programs are
// regenerable from their seeds.
package difftest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"ratte/internal/compiler"
)

// journalVersion guards the on-disk format.
const journalVersion = 1

// journalHeader fingerprints everything that determines a campaign's
// verdicts EXCEPT the program count: a resumed run may extend a
// campaign to more programs, but it must not silently reinterpret the
// recorded verdicts under a different preset, seed, bug set or fault
// schedule.
type journalHeader struct {
	Version   int     `json:"ratte_journal"`
	Preset    string  `json:"preset"`
	Size      int     `json:"size"`
	Seed      int64   `json:"seed"`
	Bugs      []int   `json:"bugs,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Family is the mutation-family size when family mode is active
	// (zero otherwise): family structure changes which program a seed
	// tests, so a journal recorded with one family size must not be
	// resumed under another. The Batched flag is deliberately absent —
	// it never changes verdicts.
	Family int `json:"family,omitempty"`
	// PlanCount and PlanSet identify a plan-mode campaign's sampled
	// plan set (zero outside plan mode): verdicts recorded under one
	// plan set mean nothing under another, so a resume with different
	// plans — even the same count — is rejected by fingerprint.
	PlanCount int    `json:"plans,omitempty"`
	PlanSet   uint64 `json:"plan_set,omitempty"`
}

func headerFor(cfg *CampaignConfig) journalHeader {
	h := journalHeader{
		Version: journalVersion,
		Preset:  cfg.Preset,
		Size:    cfg.Size,
		Seed:    cfg.Seed,
	}
	for id, on := range cfg.Bugs {
		if on {
			h.Bugs = append(h.Bugs, int(id))
		}
	}
	sort.Ints(h.Bugs)
	if cfg.Faults != nil {
		h.FaultSeed = cfg.Faults.Seed
		h.FaultRate = cfg.Faults.Rate
	}
	if familyActive(cfg) {
		h.Family = cfg.FamilySize
	}
	if len(cfg.Plans) > 0 {
		h.PlanCount = len(cfg.Plans)
		h.PlanSet = compiler.PlanSetFingerprint(cfg.Plans)
	}
	return h
}

func headerMatches(a, b journalHeader) bool {
	if a.Version != b.Version || a.Preset != b.Preset || a.Size != b.Size ||
		a.Seed != b.Seed || a.FaultSeed != b.FaultSeed || a.FaultRate != b.FaultRate ||
		a.Family != b.Family || a.PlanCount != b.PlanCount || a.PlanSet != b.PlanSet ||
		len(a.Bugs) != len(b.Bugs) {
		return false
	}
	for i := range a.Bugs {
		if a.Bugs[i] != b.Bugs[i] {
			return false
		}
	}
	return true
}

// Journal is an open campaign journal accepting verdict appends. It is
// not safe for concurrent use; both campaign engines append from a
// single goroutine (the serial loop, the parallel collector), which is
// also what keeps the journal in seed order.
type Journal struct {
	f    *os.File
	path string
	// I/O accounting, atomic because telemetry's export-time gauges
	// read them from scrape goroutines while the campaign appends.
	lines atomic.Int64
	bytes atomic.Int64
}

// CreateJournal starts a fresh journal at path, truncating any
// existing file, and writes the config header.
func CreateJournal(path string, cfg CampaignConfig) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	line, err := json.Marshal(headerFor(&cfg))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := j.writeLine(line); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournalForResume reads the journal at path, validates its header
// against cfg, and returns the journal reopened for appending together
// with the recorded verdicts keyed by seed (for CampaignConfig.Resumed).
//
// A torn final line — the crash the journal exists to survive — is
// recovered, not fatal: every complete verdict line is kept, the
// partial tail is dropped, and the journal is compacted via a
// write-to-temp-then-rename so the recovery itself is atomic.
func OpenJournalForResume(path string, cfg CampaignConfig) (*Journal, map[int64]Verdict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends in "\n", leaving one empty trailing
	// element; anything else after the last newline is a torn write.
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("journal: %s is empty", path)
	}

	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("journal: %s: bad header: %w", path, err)
	}
	want := headerFor(&cfg)
	if !headerMatches(hdr, want) {
		return nil, nil, fmt.Errorf("journal: %s was recorded under a different campaign config (preset/size/seed/bugs/faults/plans must match)", path)
	}

	resumed := make(map[int64]Verdict, len(lines)-1)
	good := 1 // lines[:good] are intact (header included)
	for _, line := range lines[1:] {
		var v Verdict
		if err := json.Unmarshal(line, &v); err != nil {
			// Torn or corrupt line: everything before it stands,
			// everything from here on is dropped. Only the final line
			// can legitimately be torn; a corrupt middle line would
			// silently skip seeds, so re-run from the break instead.
			break
		}
		resumed[v.Seed] = v
		good++
	}

	if good != len(lines) {
		if err := compactJournal(path, lines[:good]); err != nil {
			return nil, nil, err
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path}, resumed, nil
}

// compactJournal rewrites the journal to exactly the given intact
// lines, atomically: the replacement is fully written and synced to a
// sibling temp file before a rename swaps it in, so a crash during
// recovery leaves either the old journal or the recovered one — never
// a half-written hybrid.
func compactJournal(path string, lines [][]byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, line := range lines {
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("journal: recover: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: recover: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	return nil
}

// Append records one verdict. The line is marshaled first and handed
// to the kernel in a single Write call, so a crash mid-campaign can
// tear at most the final line — exactly the case OpenJournalForResume
// recovers.
func (j *Journal) Append(v Verdict) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.writeLine(line)
}

func (j *Journal) writeLine(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.lines.Add(1)
	j.bytes.Add(int64(len(buf)))
	return nil
}

// Written reports the lines (header included) and bytes this handle
// has appended. Safe for concurrent use.
func (j *Journal) Written() (lines, bytes int64) {
	return j.lines.Load(), j.bytes.Load()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
