package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/verify"
)

// TestParameterizedMainIsValidAndFaithful pins the parameterization
// contract across presets: the hoisted module still passes the
// frontend verifier, and member 0 (original constants as arguments)
// reproduces the generator's expected output exactly.
func TestParameterizedMainIsValidAndFaithful(t *testing.T) {
	for _, preset := range gen.Presets() {
		for seed := int64(0); seed < 8; seed++ {
			prog, err := gen.Generate(gen.Config{Preset: preset, Size: 14, Seed: seed})
			if err != nil {
				t.Fatalf("%s/%d: generate: %v", preset, seed, err)
			}
			pm, params := parameterizeMain(prog.Module)
			if err := verify.Module(pm, dialects.SourceSpecs()); err != nil {
				t.Fatalf("%s/%d: parameterized module fails verify: %v", preset, seed, err)
			}
			args := familyArgs(params, seed, 0)
			in := dialects.NewCompiledReferenceInterpreter()
			in.MaxSteps = familyMaxSteps
			res, err := in.RunArgs(pm, "main", args)
			if err != nil {
				t.Fatalf("%s/%d: member-0 reference run: %v", preset, seed, err)
			}
			if res.Output != prog.Expected {
				t.Fatalf("%s/%d: member 0 diverged from generator expectation:\n got %q\nwant %q",
					preset, seed, res.Output, prog.Expected)
			}
		}
	}
}

// TestFamilyCleanCompilerHasNoDetections: mutated inputs must never
// manufacture detections on a correct compiler — a member either
// agrees everywhere or is skipped for lack of defined reference
// behaviour.
func TestFamilyCleanCompilerHasNoDetections(t *testing.T) {
	for _, preset := range gen.Presets() {
		for _, batched := range []bool{false, true} {
			cfg := CampaignConfig{
				Preset: preset, Programs: 12, Size: 14, Seed: 300,
				FamilySize: 4, Batched: batched,
			}
			res, err := RunCampaign(cfg)
			if err != nil {
				t.Fatalf("%s/batched=%v: %v", preset, batched, err)
			}
			if len(res.Detections) != 0 {
				t.Fatalf("%s/batched=%v: clean compiler produced %d detections: %+v",
					preset, batched, len(res.Detections), res.Detections[0])
			}
			if res.Programs != cfg.Programs {
				t.Fatalf("%s/batched=%v: programs = %d, want %d", preset, batched, res.Programs, cfg.Programs)
			}
		}
	}
}

// TestBatchedMatchesUnbatched is the tentpole determinism contract:
// batched and unbatched family campaigns produce byte-identical
// ReportText, serial and parallel, with and without an injected bug.
func TestBatchedMatchesUnbatched(t *testing.T) {
	cases := []CampaignConfig{
		{Preset: "ariths", Programs: 16, Size: 16, Seed: 97, FamilySize: 4, Bugs: bugs.Only(bugs.RemoveDeadValuesCall)},
		{Preset: "linalggeneric", Programs: 12, Size: 14, Seed: 41, FamilySize: 3},
		{Preset: "tensor", Programs: 10, Size: 14, Seed: 55, FamilySize: 4},
	}
	for _, base := range cases {
		t.Run(fmt.Sprintf("%s_fam%d", base.Preset, base.FamilySize), func(t *testing.T) {
			unb := base
			unb.Batched = false
			want, err := RunCampaign(unb)
			if err != nil {
				t.Fatal(err)
			}
			bat := base
			bat.Batched = true
			got, err := RunCampaign(bat)
			if err != nil {
				t.Fatal(err)
			}
			if ReportText(got) != ReportText(want) {
				t.Fatalf("batched != unbatched (serial):\n got:\n%s\nwant:\n%s", ReportText(got), ReportText(want))
			}
			assertSameVerdicts(t, want, got)
			for _, workers := range []int{2, 4} {
				for _, batched := range []bool{false, true} {
					cfg := base
					cfg.Batched = batched
					pres, err := RunCampaignParallel(cfg, workers)
					if err != nil {
						t.Fatalf("workers=%d batched=%v: %v", workers, batched, err)
					}
					if ReportText(pres) != ReportText(want) {
						t.Fatalf("workers=%d batched=%v: parallel family run diverged:\n got:\n%s\nwant:\n%s",
							workers, batched, ReportText(pres), ReportText(want))
					}
					assertSameVerdicts(t, want, pres)
				}
			}
		})
	}
}

// assertSameVerdicts compares the per-seed verdict streams (ignoring
// panic stacks, which legitimately differ across engines).
func assertSameVerdicts(t *testing.T, want, got *CampaignResult) {
	t.Helper()
	if len(want.Verdicts) != len(got.Verdicts) {
		t.Fatalf("verdict count: got %d, want %d", len(got.Verdicts), len(want.Verdicts))
	}
	for i := range want.Verdicts {
		w, g := want.Verdicts[i], got.Verdicts[i]
		if w.Seed != g.Seed || w.Kind != g.Kind || w.Oracle != g.Oracle ||
			w.Attempts != g.Attempts || w.Quarantined != g.Quarantined {
			t.Fatalf("verdict %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestFamilyExercisesSkips pins that constant mutation actually
// reaches UB on the arithmetic preset (divisors drawn to zero, shifts
// out of range) and that those members are skipped, not misreported.
func TestFamilyExercisesSkips(t *testing.T) {
	cfg := CampaignConfig{
		Preset: "ariths", Programs: 40, Size: 18, Seed: 1000,
		FamilySize: 5, Batched: true,
	}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatalf("expected some skipped members across %d mutated programs; report:\n%s",
			cfg.Programs, ReportText(res))
	}
	if len(res.Detections) != 0 {
		t.Fatalf("clean compiler produced detections:\n%s", ReportText(res))
	}
}

// TestFamilyJournalResume: a batched family campaign journaled and
// interrupted must resume — even under the opposite strategy — to the
// exact same final report.
func TestFamilyJournalResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fam.jsonl")
	cfg := CampaignConfig{
		Preset: "ariths", Programs: 12, Size: 14, Seed: 77,
		FamilySize: 4, Batched: true,
	}
	full, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// First leg: journal a 7-program prefix (a partial family).
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	legCfg := cfg
	legCfg.Programs = 7
	legCfg.Journal = j
	if _, err := RunCampaign(legCfg); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second leg: resume to the full count under the other strategy.
	j2, resumed, err := OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resCfg := cfg
	resCfg.Batched = false
	resCfg.Journal = j2
	resCfg.Resumed = resumed
	res, err := RunCampaign(resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if ReportText(res) != ReportText(full) {
		t.Fatalf("resumed family campaign diverged:\n got:\n%s\nwant:\n%s", ReportText(res), ReportText(full))
	}

	// A journal recorded under one family size must refuse another.
	other := cfg
	other.FamilySize = 3
	if _, _, err := OpenJournalForResume(path, other); err == nil {
		t.Fatal("journal resume accepted a different family size")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestFamilyIgnoredUnderFaultsAndTimeouts: family mode silently yields
// to the classic per-seed campaign when fault injection or per-program
// budgets are configured, and the journal header reflects that.
func TestFamilyIgnoredUnderFaultsAndTimeouts(t *testing.T) {
	classic := CampaignConfig{Preset: "ariths", Programs: 6, Size: 12, Seed: 9}
	want, err := RunCampaign(classic)
	if err != nil {
		t.Fatal(err)
	}
	famCfg := classic
	famCfg.FamilySize = 3
	famCfg.Batched = true
	famCfg.Timeout = 1 << 40 // effectively unbounded, but set
	got, err := RunCampaign(famCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ReportText(got) != ReportText(want) {
		t.Fatalf("family config with Timeout did not fall back to classic:\n got:\n%s\nwant:\n%s",
			ReportText(got), ReportText(want))
	}
	if h := headerFor(&famCfg); h.Family != 0 {
		t.Fatalf("journal header records family %d for an inactive family config", h.Family)
	}
}
